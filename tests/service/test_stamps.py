"""Property tests for the per-job lifecycle stamps the service records
(the SLIs behind repro.obs.slo): every job's submit/admit/start/drain
timeline is monotone, the phase decomposition tiles the latency exactly,
and the stamp stream is byte-deterministic across reruns for both
open- and closed-loop load."""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.service import LoadGenerator, Service, TrafficPattern

TENANTS = ("t0", "t1", "t2")
SMALL_KW = {
    "heat": {"shape": (16, 8, 8), "steps": 1},
    "compute": {"shape": (8, 8, 8), "steps": 1, "kernel_iteration": 256},
}


def run_load(seed, *, closed=False, slo=None):
    gen = LoadGenerator(seed, TENANTS, workload_kwargs=SMALL_KW,
                        pattern=TrafficPattern(mean_gap=3e-4))
    svc = Service(total_slots=48, slo=slo)
    for i, t in enumerate(TENANTS):
        svc.add_tenant(t, 2.0 if i == 0 else 1.0, priority=(i == 0))
    if closed:
        gen.replay_closed(svc, jobs_per_tenant=2)
    else:
        gen.replay_open(svc, 6)
    report = svc.run()
    session = svc.session.to_bytes()
    slo_bytes = svc.slo.to_bytes() if svc.slo is not None else b""
    svc.close()
    return report, session, slo_bytes


def stamp_stream(report) -> bytes:
    """Canonical bytes of every job's timeline, for rerun comparison."""
    return json.dumps(
        {jid: report.jobs[jid].timeline for jid in sorted(report.jobs)},
        sort_keys=True,
    ).encode()


class TestStampInvariants:
    @given(st.integers(0, 1000), st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_stamps_are_monotone_and_tile_the_latency(self, seed, closed):
        report, _, _ = run_load(seed, closed=closed)
        assert report.jobs
        for res in report.jobs.values():
            tl = res.timeline
            assert tl["submitted"] <= tl["admitted"] <= tl["started"]
            assert tl["started"] <= tl["last_quantum_end"] <= tl["drained"]
            assert res.arrival == tl["submitted"]
            assert res.admitted == tl["admitted"]
            assert res.finished == tl["drained"]
            assert res.latency == tl["drained"] - tl["submitted"]
            # the job's own quantum time fits inside its execute span
            assert 0.0 <= tl["own_seconds"] <= (
                tl["last_quantum_end"] - tl["started"]) + 1e-12
            # recorded wait reasons never exceed the pre-admission span
            assert sum(tl["wait"].values()) <= (
                tl["admitted"] - tl["submitted"]) + 1e-12

    @given(st.integers(0, 1000), st.booleans())
    @settings(max_examples=6, deadline=None)
    def test_stamps_are_byte_deterministic_across_reruns(self, seed, closed):
        rep1, session1, _ = run_load(seed, closed=closed)
        rep2, session2, _ = run_load(seed, closed=closed)
        assert stamp_stream(rep1) == stamp_stream(rep2)
        assert session1 == session2

    @given(st.integers(0, 1000))
    @settings(max_examples=4, deadline=None)
    def test_monitored_run_matches_unmonitored(self, seed):
        # arming the SLO tracker must not move a single stamp
        rep_plain, session_plain, _ = run_load(seed)
        rep_slo, session_slo, slo_bytes = run_load(
            seed, slo={t: 1.0 for t in TENANTS})
        assert stamp_stream(rep_plain) == stamp_stream(rep_slo)
        assert session_plain == session_slo
        # and the SLI stream itself reruns byte-identically
        _, _, slo_bytes2 = run_load(seed, slo={t: 1.0 for t in TENANTS})
        assert slo_bytes == slo_bytes2
