"""The happens-before hazard detector.

Every device-buffer access the runtime performs — ``memcpy_async``
(H2D/D2H, incl. eviction write-backs), ``launch`` (with per-buffer
read/write sets), ``peer_copy`` — is recorded as one *event* on the
issuing stream's timeline.  Two kinds of happens-before are tracked with
two vector clocks per event:

* **strong** order: what the program actually synchronized —
  stream-FIFO program order, ``event_record``/``stream_wait_event``
  edges, host blocking syncs (``stream_synchronize``,
  ``device_synchronize``, ``event_synchronize``, synchronous copies,
  ``destroy_stream``), and explicit ``after=`` readiness dependencies
  (the simulator's stand-in for ``cudaStreamWaitEvent`` between queues);
* **weak** order: strong order plus the FIFO order of the hardware
  engines (compute, H2D DMA, D2H DMA).  Two conflicting operations that
  happen to share an engine always execute in submission order on *this*
  machine model — but nothing in the program guarantees it.

A conflicting pair (RAW/WAR/WAW on the same buffer) that is strong-
ordered is fine; one that is only weak-ordered is reported as a
``"warning"`` (ordered by FIFO luck); one that is neither is an
``"error"`` (racy).  In ``"strict"`` mode racy pairs raise
:class:`~repro.errors.HazardError`; in ``"observe"`` mode everything is
collected, counted (``check.*`` metrics) and trace-marked (``hazard``
decision marks) for ``python -m repro.obs.report``.

``after=`` edges are resolved by completion time: every recorded event
registers its end time, and an ``after`` component equal to a registered
completion joins that event's clocks.  The simulation's virtual times
are derived deterministically (no float noise), so exact matching is
reliable; unmatched components are counted under
``check.after_unresolved`` and ignored.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import HazardError
from .dag import DagNode, dag_to_json
from .vclock import Timeline, VectorClock

#: Recognized checker modes.
MODES = ("off", "observe", "strict")

HOST: Timeline = ("host",)

_default_mode: str | None = None


def set_default_mode(mode: str | bool | None) -> None:
    """Set the process-wide default checker mode.

    ``CudaRuntime(check=None)`` (the default) consults this — it is how
    ``harness --check`` arms strict checking on every runtime the
    benchmarks create without threading a flag through every layer.
    ``None`` restores the built-in default (the ``REPRO_CHECK``
    environment variable, else off).
    """
    global _default_mode
    _default_mode = None if mode is None else resolve_mode(mode)


def default_mode() -> str:
    """The mode a runtime constructed with ``check=None`` gets."""
    if _default_mode is not None:
        return _default_mode
    env = os.environ.get("REPRO_CHECK", "").strip().lower()
    return env if env in MODES else "off"


def resolve_mode(check: str | bool | None) -> str:
    """Normalize a ``check=`` argument to a mode name."""
    if check is None:
        return default_mode()
    if check is True:
        return "strict"
    if check is False:
        return "off"
    if check not in MODES:
        raise ValueError(f"check must be one of {MODES} or a bool, got {check!r}")
    return check


def resolve_checker(
    check: str | bool | None, *, trace: Any = None, metrics: Any = None
) -> "HazardChecker | None":
    """Build the checker a runtime should use (None when checking is off)."""
    mode = resolve_mode(check)
    if mode == "off":
        return None
    return HazardChecker(mode, trace=trace, metrics=metrics)


@dataclass(frozen=True)
class AccessInfo:
    """Light record of one checked operation (kept in hazard reports)."""

    op_id: int
    kind: str
    label: str
    start: float
    end: float
    streams: tuple[tuple[int, int], ...]     # (runtime_id, stream_id)
    engines: tuple[str, ...]
    epochs: tuple[tuple[Timeline, int], ...]  # (timeline, tick) this op ticked


@dataclass(frozen=True)
class Hazard:
    """One unordered conflicting pair on one buffer."""

    severity: str           # "warning" (fifo-luck) | "error" (racy)
    kind: str               # "RAW" | "WAR" | "WAW"
    buffer: str             # buffer label (or its id when unlabeled)
    earlier: AccessInfo
    later: AccessInfo

    def describe(self) -> str:
        how = "ordered only by engine FIFO" if self.severity == "warning" else "racy"
        return (
            f"{self.kind} hazard ({how}) on buffer {self.buffer!r}: "
            f"op#{self.earlier.op_id} {self.earlier.kind}:{self.earlier.label!r} "
            f"[{self.earlier.start:.3e}..{self.earlier.end:.3e}] vs "
            f"op#{self.later.op_id} {self.later.kind}:{self.later.label!r} "
            f"[{self.later.start:.3e}..{self.later.end:.3e}] "
            f"(streams {self.earlier.streams} / {self.later.streams})"
        )


class _BufferState:
    """Per-buffer access summary: last write + reads since that write."""

    __slots__ = ("label", "last_write", "readers")

    def __init__(self, label: str) -> None:
        self.label = label
        self.last_write: AccessInfo | None = None
        self.readers: list[AccessInfo] = []


@dataclass
class _StreamState:
    strong: VectorClock = field(default_factory=VectorClock)
    weak: VectorClock = field(default_factory=VectorClock)


class HazardChecker:
    """Vector-clock race detection over one (or several) runtimes.

    One checker may be shared by the runtimes of a multi-GPU group — all
    timelines carry the owning runtime's id, and a ``peer_copy`` event
    ticks both devices' stream timelines at once.
    """

    def __init__(self, mode: str = "observe", *, trace: Any = None,
                 metrics: Any = None) -> None:
        if mode not in ("observe", "strict"):
            raise ValueError(f"checker mode must be 'observe' or 'strict', got {mode!r}")
        self.mode = mode
        self.trace = trace
        self.metrics = metrics
        # set by CudaRuntime.attach_telemetry so a strict-mode raise can
        # trigger a flight-recorder incident dump before unwinding
        self.telemetry = None
        self.hazards: list[Hazard] = []
        self._op_seq = 0
        # runtime ids are a process-global counter; alias them to dense
        # per-checker ids (first appearance order) so recorded stream keys
        # — and therefore the exported DAG — are identical across runs in
        # one process.  Stable for the checker's lifetime (not reset).
        self._rt_ids: dict[int, int] = {}
        self._ticks: dict[Timeline, int] = {}
        self._streams: dict[tuple[int, int], _StreamState] = {}
        self._host = _StreamState()
        # per-engine weak knowledge (the FIFO chain) keyed by object id;
        # the engine objects are retained so ids cannot be recycled
        self._engine_weak: dict[int, VectorClock] = {}
        self._engine_refs: dict[int, Any] = {}
        # event snapshots (event_record), keyed by object id + retained
        self._events: dict[int, tuple[VectorClock, VectorClock]] = {}
        self._event_refs: dict[int, Any] = {}
        # completion-time -> merged clock snapshot (after= resolution)
        self._completions: dict[float, tuple[VectorClock, VectorClock]] = {}
        # buffer access state keyed by object id + retained
        self._buffers: dict[int, _BufferState] = {}
        self._buffer_refs: dict[int, Any] = {}
        # -- causal-DAG recording (consumed by repro.obs.critpath) --------
        # one DagNode per record_op, with explicit predecessor edges
        self.dag: list[DagNode] = []
        self._last_stream_op: dict[tuple[int, int], tuple[int, float]] = {}
        self._last_engine_op: dict[int, tuple[int, float]] = {}
        self._completion_ops: dict[float, list[int]] = {}
        self._event_op: dict[int, tuple[int, float] | None] = {}
        self._pending_event_deps: dict[tuple[int, int], list[tuple[int, float]]] = {}
        self._host_op: tuple[int, float] | None = None
        self._last_issue = 0.0

    # -- summaries -----------------------------------------------------------

    @property
    def op_count(self) -> int:
        return self._op_seq

    def counts(self) -> dict[str, int]:
        out = {"warning": 0, "error": 0}
        for h in self.hazards:
            out[h.severity] += 1
        return out

    def racy(self) -> list[Hazard]:
        return [h for h in self.hazards if h.severity == "error"]

    # -- state transitions ---------------------------------------------------

    def _rt(self, runtime_id: int) -> int:
        """Dense per-checker alias for a process-global runtime id."""
        rid = self._rt_ids.get(runtime_id)
        if rid is None:
            rid = self._rt_ids[runtime_id] = len(self._rt_ids) + 1
        return rid

    def _stream_state(self, key: tuple[int, int]) -> _StreamState:
        st = self._streams.get(key)
        if st is None:
            st = self._streams[key] = _StreamState()
        return st

    def _tick(self, tid: Timeline) -> int:
        t = self._ticks.get(tid, 0) + 1
        self._ticks[tid] = t
        return t

    def record_op(
        self,
        *,
        kind: str,
        label: str,
        streams: Sequence[tuple[int, Any]],
        engines: Sequence[Any] = (),
        start: float,
        end: float,
        after: Iterable[float] = (),
        reads: Sequence[Any] = (),
        writes: Sequence[Any] = (),
        now: float = 0.0,
        nbytes: int = 0,
        cost: tuple[float, float] | None = None,
    ) -> None:
        """Record one device operation and check its buffer accesses.

        ``streams`` is ``[(runtime_id, Stream), ...]`` — usually one, two
        for peer copies.  ``after`` are the individual readiness
        dependencies the call site declared (the components of the
        effective ``max``, not the collapsed value).  In strict mode a
        racy conflict raises :class:`HazardError` *after* the op's state
        is folded in (the trace and counters stay consistent).
        """
        skeys = tuple((self._rt(rtid), s.stream_id) for rtid, s in streams)
        strong = VectorClock()
        weak = VectorClock()
        # DAG edges, strongest kind first (a predecessor reachable several
        # ways keeps the most meaningful kind)
        dag_deps: dict[int, str] = {}
        for key in skeys:
            st = self._streams.get(key)
            if st is not None:
                strong.join(st.strong)
                weak.join(st.weak)
            for oid, _oend in self._pending_event_deps.pop(key, ()):
                dag_deps.setdefault(oid, "event")
        strong.join(self._host.strong)
        weak.join(self._host.weak)
        for a in after:
            if a is None or a <= 0.0:
                continue
            snap = self._completions.get(float(a))
            if snap is None:
                self._inc("check.after_unresolved")
                continue
            strong.join(snap[0])
            weak.join(snap[1])
            for oid in self._completion_ops.get(float(a), ()):
                dag_deps.setdefault(oid, "after")
        for key in skeys:
            prev = self._last_stream_op.get(key)
            if prev is not None:
                dag_deps.setdefault(prev[0], "stream")
        weak.join(strong)
        for e in engines:
            ew = self._engine_weak.get(id(e))
            if ew is not None:
                weak.join(ew)
            prev = self._last_engine_op.get(id(e))
            if prev is not None:
                dag_deps.setdefault(prev[0], "engine")
        epochs = []
        for key in skeys:
            tid: Timeline = ("stream",) + key
            t = self._tick(tid)
            strong.set(tid, t)
            weak.set(tid, t)
            epochs.append((tid, t))
        self._op_seq += 1
        self._inc("check.ops")
        info = AccessInfo(
            op_id=self._op_seq, kind=kind, label=label, start=start, end=end,
            streams=skeys, engines=tuple(getattr(e, "name", "?") for e in engines),
            epochs=tuple(epochs),
        )
        # host edge: the op the host last blocked on, plus the host's own
        # time between that wake-up (or the previous issue) and this issue
        host_dep = self._host_op[0] if self._host_op is not None else None
        host_floor = max(
            self._last_issue,
            self._host_op[1] if self._host_op is not None else 0.0,
        )
        self.dag.append(DagNode(
            op_id=info.op_id, kind=kind, label=label,
            start=start, end=end, issue=now, nbytes=int(nbytes),
            streams=skeys, engines=info.engines,
            deps=tuple(sorted(dag_deps.items())),
            host_dep=host_dep, host_gap=max(0.0, now - host_floor),
            cost=cost,
        ))
        self._last_issue = max(self._last_issue, now)

        found = self._check_accesses(info, strong, weak, reads, writes)

        # fold the op into the world before (possibly) raising
        for key in skeys:
            st = self._stream_state(key)
            st.strong = strong
            st.weak = weak
            self._last_stream_op[key] = (info.op_id, end)
        for e in engines:
            self._engine_weak[id(e)] = weak
            self._engine_refs[id(e)] = e
            self._last_engine_op[id(e)] = (info.op_id, end)
        self._completion_ops.setdefault(end, []).append(info.op_id)
        snap = self._completions.get(end)
        if snap is None:
            self._completions[end] = (strong, weak)
        else:
            # two ops completing at the same instant: merge (an `after=`
            # equal to that instant depends on both)
            self._completions[end] = (
                snap[0].copy().join(strong), snap[1].copy().join(weak)
            )

        for hazard in found:
            self._report(hazard, now)
        if self.mode == "strict":
            for hazard in found:
                if hazard.severity == "error":
                    err = HazardError(hazard.describe(), hazard=hazard)
                    if self.telemetry is not None:
                        self.telemetry.notify_incident("hazard", error=err, now=now)
                    raise err

    def _check_accesses(
        self,
        info: AccessInfo,
        strong: VectorClock,
        weak: VectorClock,
        reads: Sequence[Any],
        writes: Sequence[Any],
    ) -> list[Hazard]:
        found: list[Hazard] = []
        write_ids = {id(b) for b in writes}

        def classify(earlier: AccessInfo, kind: str, buf_label: str) -> None:
            if strong.covers_any(earlier.epochs):
                return
            severity = "warning" if weak.covers_any(earlier.epochs) else "error"
            found.append(Hazard(severity, kind, buf_label, earlier, info))

        for buf in reads:
            if id(buf) in write_ids:
                continue  # handled as a write below (RAW reported there)
            st = self._buf_state(buf)
            if st.last_write is not None:
                classify(st.last_write, "RAW", st.label)
            # drop readers this read already covers: any later write that
            # covers this read transitively covers them too
            st.readers = [r for r in st.readers if not strong.covers_any(r.epochs)]
            st.readers.append(info)
        for buf in writes:
            st = self._buf_state(buf)
            is_rw = any(id(b) == id(buf) for b in reads)
            if st.last_write is not None:
                classify(st.last_write, "RAW" if is_rw else "WAW", st.label)
            for r in st.readers:
                classify(r, "WAR", st.label)
            st.last_write = info
            st.readers = []
        return found

    def _buf_state(self, buf: Any) -> _BufferState:
        key = id(buf)
        st = self._buffers.get(key)
        if st is None:
            label = getattr(buf, "label", "") or f"buf@{key:x}"
            st = self._buffers[key] = _BufferState(label)
            self._buffer_refs[key] = buf
        return st

    def _report(self, hazard: Hazard, now: float) -> None:
        self.hazards.append(hazard)
        self._inc("check.hazards")
        self._inc("check.hazards.racy" if hazard.severity == "error"
                  else "check.hazards.fifo_luck")
        self._inc(f"check.{hazard.kind.lower()}")
        if self.trace is not None:
            self.trace.mark(
                "hazard", now,
                severity=hazard.severity, kind=hazard.kind, buffer=hazard.buffer,
                earlier=f"{hazard.earlier.kind}:{hazard.earlier.label}",
                later=f"{hazard.later.kind}:{hazard.later.label}",
                earlier_op=hazard.earlier.op_id, later_op=hazard.later.op_id,
            )

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    # -- synchronization edges ----------------------------------------------

    def on_event_record(self, event: Any, runtime_id: int, stream: Any) -> None:
        """``cudaEventRecord``: snapshot the stream's knowledge."""
        key = (self._rt(runtime_id), stream.stream_id)
        st = self._stream_state(key)
        self._events[id(event)] = (st.strong, st.weak)
        self._event_refs[id(event)] = event
        self._event_op[id(event)] = self._last_stream_op.get(key)

    def on_stream_wait_event(self, runtime_id: int, stream: Any, event: Any) -> None:
        """``cudaStreamWaitEvent``: the stream acquires the event's snapshot."""
        snap = self._events.get(id(event))
        if snap is None:
            return  # recorded before the checker existed (or never): no edge
        key = (self._rt(runtime_id), stream.stream_id)
        st = self._stream_state(key)
        st.strong = st.strong.copy().join(snap[0])
        st.weak = st.weak.copy().join(snap[1])
        ev_op = self._event_op.get(id(event))
        if ev_op is not None:
            self._pending_event_deps.setdefault(key, []).append(ev_op)

    def host_sync_stream(self, runtime_id: int, stream: Any) -> None:
        """The host blocked until ``stream`` drained: it now knows its past."""
        key = (self._rt(runtime_id), stream.stream_id)
        st = self._streams.get(key)
        if st is not None:
            self._host.strong = self._host.strong.copy().join(st.strong)
            self._host.weak = self._host.weak.copy().join(st.weak)
        self._note_host_blocked_on(self._last_stream_op.get(key))

    def _note_host_blocked_on(self, op: tuple[int, float] | None) -> None:
        """Keep the latest-completing op the host has blocked on (DAG host edge)."""
        if op is not None and (self._host_op is None or op[1] > self._host_op[1]):
            self._host_op = op

    def host_sync_streams(self, runtime_id: int, streams: Iterable[Any]) -> None:
        """``cudaDeviceSynchronize``: the host acquires every stream."""
        for s in streams:
            self.host_sync_stream(runtime_id, s)

    def host_sync_event(self, event: Any) -> None:
        """``cudaEventSynchronize``."""
        snap = self._events.get(id(event))
        if snap is not None:
            self._host.strong = self._host.strong.copy().join(snap[0])
            self._host.weak = self._host.weak.copy().join(snap[1])
        self._note_host_blocked_on(self._event_op.get(id(event)))

    def forget(self, buf: Any) -> None:
        """A buffer was freed: stop tracking it (its id may be recycled)."""
        key = id(buf)
        self._buffers.pop(key, None)
        self._buffer_refs.pop(key, None)

    def reset_schedule(self, *, drop_dag: bool = False) -> None:
        """Forget per-run scheduling state between harness repetitions.

        Collected hazards and tick counters survive (timelines keep
        advancing — a fresh repetition must not resurrect old epochs);
        stream/host/engine knowledge, event snapshots, completion-time
        resolution and buffer access summaries are dropped, matching
        :meth:`repro.cuda.runtime.CudaRuntime.reset_schedule`.

        ``drop_dag=True`` additionally clears the recorded DAG and the
        collected hazard list.  Harness *repetitions* of one logical run
        must keep them (the DAG is the run's record), but back-to-back
        **independent jobs** on a shared runtime — the multi-tenant
        service's serialized path — must not leak one job's nodes,
        hazards, or ``racy()`` verdicts into the next job's report.
        """
        if drop_dag:
            self.dag.clear()
            self.hazards.clear()
        self._streams.clear()
        self._host = _StreamState()
        self._engine_weak.clear()
        self._engine_refs.clear()
        self._events.clear()
        self._event_refs.clear()
        self._completions.clear()
        self._buffers.clear()
        self._buffer_refs.clear()
        # DAG bookkeeping follows the same rule: ``self.dag`` survives
        # (it is the run's record), per-schedule resolution state resets.
        self._last_stream_op.clear()
        self._last_engine_op.clear()
        self._completion_ops.clear()
        self._event_op.clear()
        self._pending_event_deps.clear()
        self._host_op = None

    def dag_export(self) -> list[dict[str, Any]]:
        """The recorded causal DAG as manifest-ready plain dicts."""
        return dag_to_json(self.dag)
