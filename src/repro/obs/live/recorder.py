"""The flight recorder: bounded incident capture for live runs.

A :class:`FlightRecorder` subscribes to a
:class:`~repro.obs.live.bus.TelemetryBus` and keeps a fixed-size ring of
the most recent telemetry samples and alerts.  When something goes wrong
— a :class:`~repro.errors.FaultError` escapes the retry policy, a
strict-mode :class:`~repro.errors.HazardError` fires, or a watchdog
alert at/above ``min_severity`` lands — it dumps everything it knows
into one self-contained ``incident.json``:

* the trigger (what fired, when, with what message),
* the recent sample window with all derived rates,
* recent alerts,
* the tail of the trace (span events + decision marks),
* active-op state per engine and the causal DAG tail (when a hazard
  checker is recording),
* a full metrics snapshot and the watched-counter deltas across the
  buffered window.

Dump contents are plain dicts serialized with sorted keys, so two runs
of the same seed produce byte-identical incident files.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any

from .bus import TelemetryBus, TelemetrySample, TelemetrySubscriber
from .watchdog import Alert, severity_at_least

#: Schema tag written into every incident dump.
INCIDENT_SCHEMA = "repro-incident/1"


class FlightRecorder(TelemetrySubscriber):
    """Bounded ring buffer of recent run state with automatic dumps.

    Parameters
    ----------
    capacity:
        Samples retained in the ring (alerts keep their own ring of the
        same size).
    incident_dir:
        Directory for automatic dumps; files are named
        ``incident.json``, ``incident-2.json``, ... in trigger order.
        ``None`` keeps dumps in memory only (``recorder.incidents``).
    min_severity:
        Lowest alert severity that triggers an automatic dump
        (``None`` disables alert-triggered dumps; fault/hazard
        incidents always dump).
    trace_tail / dag_tail:
        Number of trailing trace events / DAG nodes included in a dump.
    """

    def __init__(
        self,
        *,
        capacity: int = 128,
        incident_dir: str | Path | None = None,
        min_severity: str | None = "warning",
        trace_tail: int = 64,
        dag_tail: int = 32,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.incident_dir = Path(incident_dir) if incident_dir is not None else None
        self.min_severity = min_severity
        self.trace_tail = trace_tail
        self.dag_tail = dag_tail
        self.ring: deque[TelemetrySample] = deque(maxlen=capacity)
        self.alert_ring: deque[Alert] = deque(maxlen=capacity)
        self.incidents: list[dict[str, Any]] = []
        self.incident_paths: list[Path] = []
        self._bus: TelemetryBus | None = None

    # -- subscriber hooks ---------------------------------------------------

    def bind(self, bus: TelemetryBus) -> None:
        self._bus = bus

    def on_sample(self, sample: TelemetrySample) -> None:
        self.ring.append(sample)

    def on_alert(self, alert: Any) -> None:
        if isinstance(alert, Alert):
            self.alert_ring.append(alert)
            if (self.min_severity is not None
                    and severity_at_least(alert.severity, self.min_severity)):
                self.dump({"kind": "alert", "t": alert.t,
                           "error": None, "message": alert.message,
                           "detector": alert.detector,
                           "severity": alert.severity})

    def on_incident(self, trigger: dict[str, Any]) -> None:
        self.dump(trigger)

    # -- the dump -----------------------------------------------------------

    def dump(self, trigger: dict[str, Any]) -> dict[str, Any]:
        """Assemble (and optionally write) a self-contained incident."""
        bus = self._bus
        samples = [s.to_dict() for s in self.ring]
        incident: dict[str, Any] = {
            "schema": INCIDENT_SCHEMA,
            "trigger": dict(sorted(trigger.items())),
            "t": bus.now if bus is not None else trigger.get("t", 0.0),
            "health": bus.health() if bus is not None else None,
            "window": {
                "start": samples[0]["t"] - samples[0]["dt"] if samples else None,
                "end": samples[-1]["t"] if samples else None,
                "n_samples": len(samples),
                "samples": samples,
            },
            "alerts": [a.to_dict() for a in self.alert_ring],
            "metric_deltas": self._window_deltas(),
            "active_ops": bus.engine_state() if bus is not None else [],
            "trace_tail": self._trace_tail(),
            "marks_tail": self._marks_tail(),
            "dag_tail": self._dag_tail(),
            "metrics": (bus.metrics.snapshot()
                        if bus is not None and bus.metrics is not None else None),
        }
        self.incidents.append(incident)
        if self.incident_dir is not None:
            self.incident_dir.mkdir(parents=True, exist_ok=True)
            n = len(self.incident_paths)
            name = "incident.json" if n == 0 else f"incident-{n + 1}.json"
            path = self.incident_dir / name
            path.write_text(json.dumps(incident, indent=2, sort_keys=True) + "\n")
            self.incident_paths.append(path)
        return incident

    # -- tail assembly ------------------------------------------------------

    def _window_deltas(self) -> dict[str, float]:
        """Watched-counter movement across the whole buffered window."""
        if not self.ring:
            return {}
        first, last = self.ring[0], self.ring[-1]
        keys = set(first.totals) | set(last.totals)
        return {
            k: last.totals.get(k, 0.0) - (first.totals.get(k, 0.0)
                                          - first.deltas.get(k, 0.0))
            for k in sorted(keys)
        }

    def _trace_tail(self) -> list[dict[str, Any]]:
        bus = self._bus
        if bus is None or bus.trace is None or not self.trace_tail:
            return []
        events = bus.trace.events[-self.trace_tail:]
        return [
            {
                "name": e.name,
                "category": e.category,
                "lane": e.lane,
                "stream": e.stream,
                "start": e.start,
                "end": e.end,
                "nbytes": e.nbytes,
            }
            for e in events
        ]

    def _marks_tail(self) -> list[dict[str, Any]]:
        bus = self._bus
        if bus is None or bus.trace is None or not self.trace_tail:
            return []
        marks = bus.trace.marks[-self.trace_tail:]
        return [dict(m) for m in marks]

    def _dag_tail(self) -> list[dict[str, Any]]:
        bus = self._bus
        if bus is None or bus.checker is None or not self.dag_tail:
            return []
        from ...check.dag import dag_to_json

        return dag_to_json(bus.checker.dag[-self.dag_tail:])
