"""Figure 3: data transfers overlapped with tile execution (§III)."""

from repro.bench import figures


def test_fig3_overlap_timeline(run_once, results_dir):
    result = run_once(figures.figure3)
    print()
    print(result.table.format())
    print(result.gantt)
    result.table.save_json(results_dir / "fig3.json")
    (results_dir / "fig3.txt").write_text(result.gantt)

    # the schematic's claim: kernels execute while transfers are in flight
    assert result.overlap_fraction > 0.5
    # and pipelining compresses the run well below the serial engine sum
    end_to_end = result.table.row_by("lane", "end_to_end")[1]
    serial = result.table.row_by("lane", "serial_sum")[1]
    assert end_to_end < 0.8 * serial
    # both copy engines genuinely carried traffic
    assert result.table.row_by("lane", "h2d")[1] > 0
    assert result.table.row_by("lane", "d2h")[1] > 0
