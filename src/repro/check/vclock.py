"""Vector clocks over dynamically discovered timelines.

Timelines are hashable keys — ``("stream", runtime_id, stream_id)``,
``("host",)``, ``("engine", name)`` — so one clock spans every stream of
every device plus the host thread.  Ticks are assigned by the checker
(one global counter per timeline); the clock itself only stores and
merges them.
"""

from __future__ import annotations

from typing import Hashable, Iterable

Timeline = Hashable


class VectorClock:
    """A mapping ``timeline -> last-seen tick`` with join/covers."""

    __slots__ = ("_c",)

    def __init__(self, clocks: dict[Timeline, int] | None = None) -> None:
        self._c: dict[Timeline, int] = dict(clocks) if clocks else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def get(self, tid: Timeline) -> int:
        return self._c.get(tid, 0)

    def set(self, tid: Timeline, tick: int) -> None:
        if tick > self._c.get(tid, 0):
            self._c[tid] = tick

    def join(self, other: "VectorClock | None") -> "VectorClock":
        """Pointwise maximum, in place; returns self for chaining."""
        if other is not None:
            c = self._c
            for tid, tick in other._c.items():
                if tick > c.get(tid, 0):
                    c[tid] = tick
        return self

    def covers(self, tid: Timeline, tick: int) -> bool:
        """True when this clock has seen ``tid`` up to (and incl.) ``tick``."""
        return self._c.get(tid, 0) >= tick

    def covers_any(self, epochs: Iterable[tuple[Timeline, int]]) -> bool:
        """True when any of an event's (timeline, tick) epochs is covered.

        An event that ticked several timelines (a peer copy ticks both
        devices' streams) is one event: seeing it on either timeline means
        it happened-before the observer.
        """
        c = self._c
        return any(c.get(tid, 0) >= tick for tid, tick in epochs)

    def __len__(self) -> int:
        return len(self._c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._c == other._c

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{tid}:{tick}" for tid, tick in sorted(
            self._c.items(), key=repr))
        return f"VC({inner})"
