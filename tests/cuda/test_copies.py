"""Memory transfer semantics: directions, pinned vs pageable, engines, deps."""

import numpy as np
import pytest

from repro.errors import CudaInvalidValueError


class TestFunctionalCopies:
    def test_h2d_d2h_roundtrip(self, runtime):
        host = runtime.malloc_pinned((8,), fill=3.0)
        dev = runtime.malloc((8,))
        runtime.memcpy(dev, host)
        assert np.all(dev.array == 3.0)
        host2 = runtime.malloc_pinned((8,))
        runtime.memcpy(host2, dev)
        assert np.all(host2.array == 3.0)

    def test_reshaping_copy_same_bytes(self, runtime):
        host = runtime.malloc_pinned((2, 4), fill=1.0)
        dev = runtime.malloc((8,))
        runtime.memcpy(dev, host)
        assert np.all(dev.array == 1.0)

    def test_size_mismatch_rejected(self, runtime):
        host = runtime.malloc_pinned((8,))
        dev = runtime.malloc((9,))
        with pytest.raises(CudaInvalidValueError):
            runtime.memcpy(dev, host)

    def test_host_host_copy_rejected(self, runtime):
        a = runtime.malloc_pinned((8,))
        b = runtime.malloc_pinned((8,))
        with pytest.raises(CudaInvalidValueError):
            runtime.memcpy(a, b)

    def test_device_device_copy_rejected(self, runtime):
        a = runtime.malloc((8,))
        b = runtime.malloc((8,))
        with pytest.raises(CudaInvalidValueError):
            runtime.memcpy(a, b)

    def test_freed_buffer_copy_rejected(self, runtime):
        host = runtime.malloc_pinned((8,))
        dev = runtime.malloc((8,))
        runtime.free(dev)
        with pytest.raises(CudaInvalidValueError):
            runtime.memcpy(dev, host)


class TestTimingSemantics:
    def test_sync_memcpy_blocks_host(self, tiny_runtime):
        rt = tiny_runtime
        host = rt.malloc_pinned((100_000,))   # 800 KB
        dev = rt.malloc((100_000,))
        t0 = rt.now
        rt.memcpy(dev, host)
        assert rt.now - t0 >= 800e-6 * 0.99  # 1 GB/s link

    def test_async_pinned_does_not_block_host(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        host = rt.malloc_pinned((100_000,))
        dev = rt.malloc((100_000,))
        t0 = rt.now
        end = rt.memcpy_async(dev, host, s)
        assert rt.now - t0 < 100e-6
        assert end >= t0 + 800e-6 * 0.99

    def test_async_pageable_blocks_host(self, tiny_runtime):
        """cudaMemcpyAsync on pageable memory is synchronous (paper §II-B)."""
        rt = tiny_runtime
        s = rt.create_stream()
        host = rt.malloc_pageable((100_000,))
        dev = rt.malloc((100_000,))
        t0 = rt.now
        end = rt.memcpy_async(dev, host, s)
        assert rt.now >= end
        assert rt.now - t0 >= 800e-6 / 0.5 * 0.99  # half bandwidth too

    def test_pageable_slower_than_pinned(self, tiny_runtime):
        rt = tiny_runtime
        pinned = rt.malloc_pinned((100_000,))
        pageable = rt.malloc_pageable((100_000,))
        dev = rt.malloc((100_000,))
        t0 = rt.now
        rt.memcpy(dev, pinned)
        t_pinned = rt.now - t0
        t0 = rt.now
        rt.memcpy(dev, pageable)
        t_pageable = rt.now - t0
        assert t_pageable > t_pinned * 1.5

    def test_h2d_and_d2h_use_separate_engines(self, tiny_runtime):
        """Dual copy engines: opposite-direction copies overlap."""
        rt = tiny_runtime
        s1, s2 = rt.create_stream(), rt.create_stream()
        h1 = rt.malloc_pinned((1_000_000,))
        h2 = rt.malloc_pinned((1_000_000,))
        d1 = rt.malloc((1_000_000,))
        d2 = rt.malloc((1_000_000,))
        end_up = rt.memcpy_async(d1, h1, s1)
        end_down = rt.memcpy_async(h2, d2, s2)
        # both ~8 ms; if serialized the second would end at ~16 ms
        assert abs(end_up - end_down) < 4e-3

    def test_same_direction_copies_serialize(self, tiny_runtime):
        rt = tiny_runtime
        s1, s2 = rt.create_stream(), rt.create_stream()
        h1 = rt.malloc_pinned((1_000_000,))
        h2 = rt.malloc_pinned((1_000_000,))
        d1 = rt.malloc((1_000_000,))
        d2 = rt.malloc((1_000_000,))
        end1 = rt.memcpy_async(d1, h1, s1)
        end2 = rt.memcpy_async(d2, h2, s2)
        assert end2 >= end1 + 8e-3 * 0.99

    def test_in_stream_fifo(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        host = rt.malloc_pinned((1_000_000,))
        d1 = rt.malloc((1_000_000,))
        d2 = rt.malloc((1_000_000,))
        end1 = rt.memcpy_async(d1, host, s)
        end2 = rt.memcpy_async(d2, host, s)
        assert end2 >= end1

    def test_after_dependency_delays_start(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        host = rt.malloc_pinned((1000,))
        dev = rt.malloc((1000,))
        end = rt.memcpy_async(dev, host, s, after=1.0)
        assert end >= 1.0

    def test_trace_records_direction_and_bytes(self, tiny_runtime):
        rt = tiny_runtime
        host = rt.malloc_pinned((100,), label="x")
        dev = rt.malloc((100,))
        rt.memcpy(dev, host)
        events = rt.trace.by_category("h2d")
        assert len(events) == 1
        assert events[0].nbytes == 800

    def test_latency_charged_per_transfer(self, machine):
        """Paper machine has 10 us PCIe latency: tiny copies are latency-bound."""
        from repro.cuda.runtime import CudaRuntime
        rt = CudaRuntime(machine)
        host = rt.malloc_pinned((1,))
        dev = rt.malloc((1,))
        t0 = rt.now
        rt.memcpy(dev, host)
        assert rt.now - t0 >= 10e-6
