"""TiDA-acc: the paper's primary contribution.

The core couples the TiDA tiling abstractions to the simulated CUDA and
OpenACC runtimes:

* :class:`~repro.core.tile_acc.TileAcc` — per-tileArray device-memory
  manager: slot list sized by ``cudaMemGetInfo``, one CUDA stream per
  slot, the cache list, asynchronous region transfers and eviction
  (§IV-B.1-4);
* :func:`~repro.core.ghost.fill_boundary_hybrid` — the hybrid CPU/GPU
  ghost-cell update (§IV-B.6, Fig. 4);
* :class:`~repro.core.library.TidaAcc` — the user-facing library (§V):
  named tile arrays, tile iterators with the GPU switch, the ``compute``
  lambda method, field swap, and result gathering.
"""

from .slots import DeviceSlot, HOST, DEVICE
from .tile_acc import TileAcc
from .ghost import fill_boundary_hybrid
from .library import TidaAcc

__all__ = ["TidaAcc", "TileAcc", "DeviceSlot", "fill_boundary_hybrid", "HOST", "DEVICE"]
