"""Back-to-back jobs on one runtime: per-job state must not leak.

The serialized scheduler runs independent jobs on one shared
``CudaRuntime``, calling ``reset_schedule(drop_dag=True)`` between
them.  Plain ``reset_schedule()`` deliberately *keeps* the hazard
checker's DAG and hazard list — harness repetitions of one logical run
accumulate there by design — which is exactly wrong between independent
tenants: job A's nodes, hazards, and ``racy()`` verdicts would leak
into job B's report.  These tests pin the ``drop_dag`` contract at the
runtime level and the no-leak behavior at the service level, plus the
telemetry lifecycle (watchdog detectors must not carry one job's state
into spurious alerts on the next).
"""

from __future__ import annotations

import pytest

from repro.cuda.runtime import CudaRuntime
from repro.obs.live.bus import TelemetryBus
from repro.service import Service, run_solo

HEAT_KW = {"shape": (16, 8, 8), "steps": 1, "seed": 0}


class TestDropDagContract:
    def _one_job(self, rt, stream):
        h = rt.malloc_pinned(1024, label="h")
        d = rt.malloc(1024, label="d")
        rt.memcpy_async(d, h, stream)
        rt.free(d)
        rt.free_host(h)

    def test_plain_reset_keeps_the_dag(self, tiny_machine):
        # repetition semantics: the DAG is the run's record
        rt = CudaRuntime(tiny_machine, check="observe")
        self._one_job(rt, rt.create_stream())
        recorded = len(rt.checker.dag)
        assert recorded > 0
        rt.reset_schedule()
        assert len(rt.checker.dag) == recorded

    def test_drop_dag_clears_record_and_verdicts(self, tiny_machine):
        # independent-job semantics: nothing of job A survives
        rt = CudaRuntime(tiny_machine, check="observe")
        self._one_job(rt, rt.create_stream())
        assert len(rt.checker.dag) > 0
        rt.reset_schedule(drop_dag=True)
        assert len(rt.checker.dag) == 0
        assert rt.checker.hazards == []
        assert rt.checker.racy() == []

    def test_cross_job_conflicts_are_not_hazards(self, tiny_machine):
        # job B touches the same buffers job A wrote, with no ordering
        # between them — legal, because they are different jobs
        rt = CudaRuntime(tiny_machine, check="observe")
        a = rt.malloc(1024, label="shared")
        h = rt.malloc_pinned(1024, label="host")
        rt.memcpy_async(a, h, rt.create_stream())
        rt.reset_schedule(drop_dag=True)
        rt.memcpy_async(h, a, rt.create_stream())
        assert rt.checker.racy() == []


class TestServiceBackToBack:
    def _serial(self, n_jobs, **kwargs):
        svc = Service(scheduler="serial", **kwargs)
        svc.add_tenant("t")
        jids = [
            svc.submit("t", workload="heat", workload_kwargs=HEAT_KW, at=0.0)
            for _ in range(n_jobs)
        ]
        report = svc.run()
        dag_nodes = len(svc.runtime.checker.dag)
        svc.close()
        return report, jids, dag_nodes

    def test_no_dag_accumulation_across_jobs(self):
        # every job's record is dropped at its finish: the surviving DAG
        # never grows with the job count
        _, _, after_two = self._serial(2)
        _, _, after_four = self._serial(4)
        assert after_two == after_four

    def test_later_jobs_identical_to_first(self):
        report, jids, _ = self._serial(3)
        solo = run_solo("t", workload="heat", workload_kwargs=HEAT_KW)
        for jid in jids:
            assert report.jobs[jid].digests == solo.digests
        assert report.racy_hazards == 0

    def test_busy_accounting_survives_the_resets(self):
        # reset_schedule rewinds engine busy_time; the service must fold
        # each job's busy into the aggregate before rewinding
        one, _, _ = self._serial(1)
        three, _, _ = self._serial(3)
        assert three.busy_seconds == pytest.approx(3 * one.busy_seconds,
                                                   rel=1e-6)
        assert 0 < three.utilization <= 1.0

    def test_fair_mode_keeps_the_multiplexed_record(self):
        # the fair scheduler interleaves jobs on one schedule: its DAG is
        # the cross-job record the checker's verdict is based on, so it
        # must NOT be dropped mid-run
        svc = Service()
        svc.add_tenant("t")
        for _ in range(2):
            svc.submit("t", workload="heat", workload_kwargs=HEAT_KW, at=0.0)
        svc.run()
        assert len(svc.runtime.checker.dag) > 0
        svc.close()


class TestTelemetryLifecycle:
    def test_watchdog_quiet_across_back_to_back_jobs(self):
        bus = TelemetryBus()
        svc = Service(scheduler="serial", telemetry=bus)
        svc.add_tenant("a", 2.0)
        svc.add_tenant("b", 1.0)
        for tenant in ("a", "b"):
            for _ in range(2):
                svc.submit(tenant, workload="heat", workload_kwargs=HEAT_KW,
                           at=0.0)
        report = svc.run()
        svc.close()
        assert report.racy_hazards == 0
        starvation = [a for a in bus.alerts
                      if a.detector == "tenant_starvation"]
        assert starvation == []

    def test_per_tenant_counters_published(self):
        svc = Service()
        svc.add_tenant("t")
        svc.submit("t", workload="heat", workload_kwargs=HEAT_KW)
        svc.run()
        counters = svc.runtime.metrics.snapshot()["counters"]
        svc.close()
        assert counters.get("service.tenant.t.quanta", 0) > 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(pytest.main([__file__, "-v"]))
