"""Unit tests for the live telemetry bus (repro.obs.live.bus)."""

import json

import numpy as np
import pytest

from repro.baselines.tida_runners import run_tida_heat
from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.obs.live import TelemetryBus, TelemetrySample, TelemetrySubscriber
from repro.obs.live.bus import read_session
from repro.obs.metrics import ObsError

SHAPE = (64, 64, 64)


def busy_kernel():
    def body(arr):
        arr += 1.0
    return KernelSpec(name="busy", body=body, bytes_per_cell=16.0,
                      flops_per_cell=100.0)


def drive(runtime, *, rounds=3):
    """A few H2D + kernel + sync rounds: deterministic mixed activity."""
    host = runtime.malloc_pinned((256, 256))
    dev = runtime.malloc((256, 256))
    stream = runtime.create_stream()
    for _ in range(rounds):
        runtime.memcpy_async(dev, host, stream)
        runtime.launch(busy_kernel(), buffers=[dev], stream=stream)
        runtime.stream_synchronize(stream)
    return runtime.clock.now


class TestBusBasics:
    def test_rejects_bad_interval(self):
        with pytest.raises(ObsError):
            TelemetryBus(sample_interval=0.0)
        with pytest.raises(ObsError):
            TelemetryBus(sample_interval=-1e-3)

    def test_attach_is_idempotent_and_single_clock(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        rt.attach_telemetry(bus)  # same clock: fine
        other = CudaRuntime(tiny_machine)
        with pytest.raises(ObsError):
            bus.attach(other)  # second clock: refused

    def test_samples_on_interval_boundaries(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        assert bus.samples, "monitored run produced no samples"
        for s in bus.samples:
            # every boundary sample sits on the k*interval grid
            k = s.t / bus.sample_interval
            assert abs(k - round(k)) < 1e-6
            assert s.dt == pytest.approx(bus.sample_interval)
        seqs = [s.seq for s in bus.samples]
        assert seqs == list(range(len(seqs)))

    def test_one_jump_backfills_every_boundary(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        rt.clock.advance(5.5e-3)  # one advancement over five boundaries
        assert [round(s.t * 1e3) for s in bus.samples] == [1, 2, 3, 4, 5]

    def test_derived_rates(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt, rounds=6)
        bus.close()
        total_bytes = sum(s.deltas.get("h2d_bytes", 0.0) for s in bus.samples)
        assert total_bytes == pytest.approx(6 * 256 * 256 * 8)
        for s in bus.samples:
            assert s.h2d_bytes_per_s == pytest.approx(
                s.deltas.get("h2d_bytes", 0.0) / s.dt)
            assert 0.0 <= s.stall_fraction <= 1.0
            assert 0.0 <= s.compute_fraction <= 1.0
            assert 0.0 <= s.transfer_fraction <= 1.0
            if s.overlap_efficiency is not None:
                assert 0.0 <= s.overlap_efficiency <= 1.0
        # the workload computes and transfers: fractions must show up
        assert any(s.compute_fraction > 0 for s in bus.samples)
        assert any(s.transfer_fraction > 0 for s in bus.samples)

    def test_close_emits_final_partial_sample(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1.0)  # far coarser than the run
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        assert not bus.samples  # no boundary was crossed
        bus.close()
        assert len(bus.samples) == 1 and bus.samples[-1].final
        assert bus.samples[-1].t == pytest.approx(rt.clock.now)

    def test_health_transitions(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        assert bus.health()["status"] == "idle"
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        assert bus.health()["status"] == "ok"
        bus.notify_incident("fault", error=RuntimeError("boom"))
        h = bus.health()
        assert h["status"] == "critical" and h["incidents"] == 1
        bus.close()
        assert bus.health()["now"] > 0.0  # time survives detach

    def test_sample_roundtrips_through_dict(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        s = bus.samples[-1]
        assert TelemetrySample.from_dict(s.to_dict()).to_dict() == s.to_dict()


class TestSubscribers:
    def test_fanout_order_and_hooks(self, tiny_machine):
        seen = []

        class Probe(TelemetrySubscriber):
            def __init__(self, name):
                self.name = name

            def on_sample(self, sample):
                seen.append((self.name, sample.seq))

        bus = TelemetryBus(sample_interval=1e-3)
        bus.add_subscriber(Probe("a"))
        bus.add_subscriber(Probe("b"))
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        assert seen[:2] == [("a", 0), ("b", 0)]


class TestJsonlSession:
    def test_session_file_roundtrip(self, tiny_machine, tmp_path):
        path = tmp_path / "session.jsonl"
        bus = TelemetryBus(sample_interval=1e-3, jsonl=path)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        bus.notify_incident("fault", error=RuntimeError("boom"))
        bus.close()
        records = read_session(path)
        assert len(records["session"]) == 1
        assert records["session"][0]["schema"] == "repro-telemetry/1"
        assert len(records["sample"]) == len(bus.samples)
        assert len(records["incident"]) == 1
        # sorted keys: the line is byte-stable
        line = path.read_text().splitlines()[1]
        assert json.loads(line) == json.loads(
            json.dumps(json.loads(line), sort_keys=True))


class TestNoOverhead:
    """Telemetry must not perturb the run it observes."""

    def run(self, telemetry):
        return run_tida_heat(shape=SHAPE, steps=2, n_regions=4,
                             functional=False, telemetry=telemetry)

    def test_monitored_run_is_bit_identical(self):
        bare = self.run(None)
        bus = TelemetryBus(sample_interval=1e-4)
        monitored = self.run(bus)
        bus.close()
        assert bus.samples, "sanity: the bus actually sampled"
        assert monitored.elapsed == bare.elapsed
        assert len(monitored.trace.events) == len(bare.trace.events)
        assert monitored.trace.to_chrome_trace() == bare.trace.to_chrome_trace()

    def test_disabled_bus_is_inert(self):
        bus = TelemetryBus(sample_interval=1e-4, enabled=False)
        r = self.run(bus)
        bus.close()
        assert bus.samples == [] and bus.alerts == []
        assert not bus.attached
        assert r.elapsed > 0

    def test_no_new_metrics_from_sampling(self, tiny_machine):
        bare_rt = CudaRuntime(tiny_machine)
        drive(bare_rt)
        bus = TelemetryBus(sample_interval=1e-3)
        mon_rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(mon_rt)
        bus.close()
        assert mon_rt.metrics.snapshot() == bare_rt.metrics.snapshot()


class TestRuntimeSurface:
    def test_unmonitored_health(self, tiny_machine):
        rt = CudaRuntime(tiny_machine)
        h = rt.health()
        assert h["status"] == "unmonitored" and not h["monitored"]

    def test_monitored_health_delegates(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        assert rt.health() == bus.health()

    def test_engine_state_rows(self, tiny_machine):
        bus = TelemetryBus(sample_interval=1e-3)
        rt = CudaRuntime(tiny_machine, telemetry=bus)
        drive(rt)
        rows = bus.engine_state()
        assert rows and {"name", "kind", "tail", "busy_time", "op_count"} <= set(rows[0])
