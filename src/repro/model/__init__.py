"""Analytic performance model and region-size autotuner.

§III: "tools such as ExaSAT can be leveraged to determine optimal sizes
for working set and available cache."  This package provides the
equivalent for TiDA-acc's knob that matters — the region count — via a
closed-form pipeline model (:mod:`~repro.model.analytic`) and a sweep
driver that can either consult the model or measure the simulator
(:mod:`~repro.model.autotune`).  Ablation A3 compares the two.
"""

from .analytic import PipelineEstimate, estimate_resident, estimate_streaming
from .autotune import (
    autotune_machine,
    autotune_region_count,
    sweep_machines,
    sweep_region_counts,
)

__all__ = [
    "PipelineEstimate",
    "estimate_streaming",
    "estimate_resident",
    "autotune_machine",
    "autotune_region_count",
    "sweep_machines",
    "sweep_region_counts",
]
