"""Property-based scheduling invariants on the full CUDA runtime.

Hypothesis drives random programs (streams, copies, kernels, syncs)
against one runtime and checks the invariants every CUDA implementation
guarantees:

* engine exclusivity — compute/H2D/D2H engines never run two operations
  at once;
* in-stream FIFO — operations on one stream never overlap and complete
  in issue order;
* host monotonicity — the virtual clock never goes backwards;
* post-sync visibility — after a stream synchronize, the host clock is
  at/after everything issued to that stream.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import k40m_pcie3
from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime

_noop = KernelSpec(name="noop", body=None, bytes_per_cell=8.0, flops_per_cell=1.0)

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["h2d", "d2h", "kernel", "sync", "device_sync"]),
        st.integers(0, 3),              # stream index
        st.integers(1, 200_000),        # payload cells
    ),
    min_size=1,
    max_size=30,
)


class TestSchedulingProperties:
    @given(ops=op_strategy)
    @settings(max_examples=30, deadline=None)
    def test_random_programs_preserve_invariants(self, ops):
        rt = CudaRuntime(k40m_pcie3(), functional=False)
        streams = [rt.create_stream() for _ in range(4)]
        host = rt.malloc_pinned((200_000,))
        devs = [rt.malloc((200_000,)) for _ in range(4)]

        clock_history = [rt.now]
        for kind, s_idx, cells in ops:
            stream = streams[s_idx]
            if kind == "h2d":
                rt.memcpy_async(devs[s_idx], host, stream)
            elif kind == "d2h":
                rt.memcpy_async(host, devs[s_idx], stream)
            elif kind == "kernel":
                rt.launch(_noop, buffers=[devs[s_idx]], n_cells=cells, stream=stream)
            elif kind == "sync":
                rt.stream_synchronize(stream)
                assert rt.now >= stream.tail
            else:
                rt.device_synchronize()
            clock_history.append(rt.now)

        # host clock monotone
        assert all(a <= b for a, b in zip(clock_history, clock_history[1:]))

        # engine exclusivity
        for lane in ("compute", "h2d", "d2h"):
            events = sorted(rt.trace.by_lane(lane), key=lambda e: e.start)
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12, f"{lane} double-booked"

        # in-stream FIFO (sync events live on the host lane and are excluded)
        for stream in streams:
            events = [
                e for e in rt.trace
                if e.stream == stream.stream_id and e.category != "sync"
            ]
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12 or a.start <= b.start, (
                    "stream order violated"
                )
                assert a.end <= b.end + 1e-12

        rt.device_synchronize()
        tails = [s.tail for s in streams]
        assert rt.now >= max(tails, default=0.0)

    @given(
        sizes=st.lists(st.integers(1, 500_000), min_size=2, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_pipelined_never_slower_than_serial(self, sizes):
        """Work spread over streams finishes no later than the same work
        issued synchronously (overlap can only help)."""
        machine = k40m_pcie3()

        rt_async = CudaRuntime(machine, functional=False)
        streams = [rt_async.create_stream() for _ in sizes]
        host = rt_async.malloc_pinned((500_000,))
        for s, n in zip(streams, sizes):
            dev = rt_async.malloc((500_000,))
            rt_async.memcpy_async(dev, host, s)
            rt_async.launch(_noop, buffers=[dev], n_cells=n, stream=s)
        t_async = rt_async.device_synchronize()

        rt_sync = CudaRuntime(machine, functional=False)
        host_s = rt_sync.malloc_pinned((500_000,))
        for n in sizes:
            dev = rt_sync.malloc((500_000,))
            rt_sync.memcpy(dev, host_s)
            rt_sync.launch(_noop, buffers=[dev], n_cells=n)
            rt_sync.device_synchronize()
        t_sync = rt_sync.now

        assert t_async <= t_sync + 1e-12
