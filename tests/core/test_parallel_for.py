"""parallel_for: ad-hoc lambdas, including imperfectly nested loops (§V-A)."""

import numpy as np
import pytest

from repro.core.library import TidaAcc


@pytest.fixture
def lib(machine):
    lib = TidaAcc(machine)
    lib.add_array("u", (16,), n_regions=4, fill=1.0)
    return lib


def test_simple_lambda(lib):
    def body(arr, lo, hi, k=3.0):
        arr[lo[0]:hi[0]] *= k

    for (tile,) in lib.iterator("u").reset(gpu=True):
        lib.parallel_for(tile, body, bytes_per_cell=16.0, gpu=True, params={"k": 3.0})
    assert np.all(lib.gather("u") == 3.0)


def test_imperfectly_nested_loop_body(machine):
    """The §V-A limitation: a loop nest with work between the loops.
    Arbitrary Python bodies make it trivial here."""
    lib = TidaAcc(machine)
    lib.add_array("m", (8, 8), n_regions=2, fill=0.0)

    def body(arr, lo, hi):
        # outer loop does per-row work before the inner loop — the exact
        # shape the paper's compute method could not express
        for i in range(lo[0], hi[0]):
            row_base = float(i)              # imperfect part
            arr[i, lo[1]:hi[1]] = row_base + np.arange(lo[1], hi[1])

    for (tile,) in lib.iterator("m").reset(gpu=True):
        lo, hi = tile.local_bounds
        # translate local row index to a global value via the region offset
        lib.parallel_for(tile, body, bytes_per_cell=8.0, gpu=True)
    out = lib.gather("m")
    # each region's local rows start at 0: rows within a region are
    # row-index + column-index patterns
    assert out.shape == (8, 8)
    assert out[0, 1] != out[0, 0]


def test_iterator_gpu_flag(lib):
    def body(arr, lo, hi):
        arr[lo[0]:hi[0]] += 1.0

    it = lib.iterator("u").reset(gpu=False)
    while it.is_valid():
        lib.parallel_for(it, body, bytes_per_cell=16.0)
        it.next()
    assert len(lib.trace.by_category("kernel")) == 0  # CPU path
    assert np.all(lib.gather("u") == 2.0)


def test_bounds_restriction(lib):
    def body(arr, lo, hi):
        arr[lo[0]:hi[0]] = 9.0

    tiles = lib.field("u").tiles()
    lib.parallel_for(tiles[0], body, bytes_per_cell=8.0, gpu=True, bounds=((1,), (3,)))
    out = lib.gather("u")
    assert np.all(out[1:3] == 9.0)
    assert out[0] == 1.0 and out[3] == 1.0


def test_cost_metadata_drives_timing(machine):
    lib = TidaAcc(machine, functional=False)
    lib.add_array("u", (1024, 1024), n_regions=4)

    def body(arr, lo, hi):  # pragma: no cover - timing-only
        pass

    t0 = lib.now
    for (tile,) in lib.iterator("u").reset(gpu=True):
        lib.parallel_for(tile, body, bytes_per_cell=1000.0, gpu=True)
    lib.synchronize()
    heavy = lib.now - t0
    t0 = lib.now
    for (tile,) in lib.iterator("u").reset(gpu=True):
        lib.parallel_for(tile, body, bytes_per_cell=1.0, gpu=True)
    lib.synchronize()
    light = lib.now - t0
    assert heavy > 10 * light
