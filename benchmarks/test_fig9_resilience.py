"""Figure 9 (extension): heat under injected chaos, recovered in-pipeline."""

from repro.bench import figures


def test_fig9_resilience(run_once, results_dir):
    table = run_once(
        figures.figure9_resilience,
        shape=(96, 96, 96), steps=5, n_regions=8,
        fault_rates=(0.01, 0.05),
    )
    print()
    print(table.format())
    table.save_json(results_dir / "fig9.json")

    base = table.row_by("plan", "fault-free")
    assert base[2] == 1.0               # slowdown column is relative to row 0
    assert base[3] == 0                 # nothing injected without a plan

    seconds, slowdown, injected, retries, recovered, overlap = range(1, 7)
    for rate in (0.01, 0.05):
        row = table.row_by("plan", f"p={rate:g}")
        # every injected fault was retried and recovered — the run finished
        assert row[injected] > 0
        assert row[retries] >= row[recovered] > 0
        # recovery costs time but never collapses the pipeline
        assert row[slowdown] >= 1.0
        assert 0.0 < row[overlap] <= 1.0

    mild = table.row_by("plan", "p=0.01")
    harsh = table.row_by("plan", "p=0.05")
    assert harsh[injected] > mild[injected]
    assert harsh[seconds] >= mild[seconds]
