"""Workload kernels: numerics, invariants, cost metadata, registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CUDA_LIBM, PGI_MATH
from repro.errors import CudaInvalidValueError, ReproError
from repro.kernels import (
    blur_kernel,
    blur_reference_step,
    compute_intensive_kernel,
    compute_intensive_reference_step,
    get_kernel_factory,
    heat_kernel,
    heat_reference_step,
    wave_kernel,
    wave_reference_step,
    KERNELS,
)


class TestHeat:
    def test_constant_field_is_fixed_point(self):
        arr = np.full((6, 6, 6), 3.0)
        out = heat_reference_step(arr)
        np.testing.assert_allclose(out, arr)

    def test_diffusion_smooths_peak(self):
        arr = np.zeros((9,))
        arr[4] = 1.0
        out = heat_reference_step(arr, coef=0.1, ghost=1)
        assert out[4] < 1.0
        assert out[3] > 0.0 and out[5] > 0.0

    def test_conservation_interior(self):
        """With zero boundary flux contributions the stencil conserves mass
        away from the edges (symmetric operator)."""
        rng = np.random.default_rng(0)
        arr = rng.random((32,))
        arr[0] = arr[-1] = 0.0
        out = heat_reference_step(arr, coef=0.1, ghost=1)
        # total change equals flux through the two boundary faces
        lhs = out[1:-1].sum() - arr[1:-1].sum()
        flux = 0.1 * (arr[0] - arr[1]) + 0.1 * (arr[-1] - arr[-2])
        assert lhs == pytest.approx(flux)

    def test_ghosts_left_untouched(self):
        arr = np.arange(8.0)
        out = heat_reference_step(arr, ghost=1)
        assert out[0] == arr[0] and out[-1] == arr[-1]

    def test_kernel_spec_metadata(self):
        k = heat_kernel(3)
        assert k.bytes_per_cell == 16.0
        assert k.flops_per_cell == 8.0
        assert k.meta["stencil_radius"] == 1

    def test_works_in_1d_2d_3d(self):
        for ndim in (1, 2, 3):
            arr = np.ones((8,) * ndim)
            out = heat_reference_step(arr, ghost=1)
            np.testing.assert_allclose(out, arr)


class TestComputeIntensive:
    def test_adds_about_one_per_iteration(self):
        """sqrt(sin^2 + cos^2) == 1 exactly, so each inner iteration adds 1."""
        arr = np.linspace(0, 3, 16)
        out = compute_intensive_reference_step(arr, kernel_iteration=5)
        np.testing.assert_allclose(out, arr + 5.0, rtol=1e-12)

    def test_spec_costs_scale_with_iteration(self):
        k1 = compute_intensive_kernel(1)
        k10 = compute_intensive_kernel(10)
        assert k10.sin_per_cell == 10 * k1.sin_per_cell
        assert k10.flops_per_cell == 10 * k1.flops_per_cell

    def test_libm_more_expensive_than_pgi(self):
        k = compute_intensive_kernel(10)
        assert k.flop_equivalents(CUDA_LIBM, 100) > k.flop_equivalents(PGI_MATH, 100)

    def test_invalid_iteration_rejected(self):
        with pytest.raises(CudaInvalidValueError):
            compute_intensive_kernel(0)

    @given(st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_property_monotone_in_steps(self, it):
        arr = np.zeros(4)
        one = compute_intensive_reference_step(arr, kernel_iteration=it)
        np.testing.assert_allclose(one, it * np.ones(4), rtol=1e-12)


class TestBlur:
    def test_constant_invariant(self):
        arr = np.full((6, 6), 2.0)
        out = blur_reference_step(arr)
        np.testing.assert_allclose(out[1:-1, 1:-1], 2.0)

    def test_mean_of_neighbourhood(self):
        arr = np.zeros((5, 5))
        arr[2, 2] = 9.0
        out = blur_reference_step(arr)
        assert out[2, 2] == pytest.approx(1.0)
        assert out[1, 1] == pytest.approx(1.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            blur_reference_step(np.zeros((4, 4, 4)))


class TestWave:
    def test_flat_state_stays_flat(self):
        u = np.full((8, 8), 1.0)
        out = wave_reference_step(u, u)
        np.testing.assert_allclose(out[1:-1, 1:-1], 1.0)

    def test_second_order_identity(self):
        """u_next = 2u - u_prev when laplacian is zero (linear ramp)."""
        x = np.arange(10.0)
        u = np.tile(x, (10, 1))
        u_prev = u - 1.0
        out = wave_reference_step(u, u_prev, c2=0.25)
        np.testing.assert_allclose(out[1:-1, 1:-1], u[1:-1, 1:-1] + 1.0)


class TestRegistry:
    def test_all_registered(self):
        assert set(KERNELS) == {"heat", "compute-intensive", "blur", "wave"}

    def test_factories_produce_specs(self):
        for name in KERNELS:
            spec = get_kernel_factory(name)()
            assert spec.name

    def test_unknown_kernel(self):
        with pytest.raises(ReproError):
            get_kernel_factory("fft")
