"""Seeded hazard mutants: schedules with a sync edge deliberately removed.

Each mutant is a correct program minus exactly one ordering edge — the
kind of bug the checker exists to catch.  Every mutant MUST be detected
(the acceptance bar for this suite); each one is paired with its fixed
twin to prove the detection is the mutation's fault, not noise.

The library-level mutants patch one ordering mechanism out of
:class:`~repro.core.tile_acc.TileAcc` and run a real workload under
``check="strict"``: dropping the mechanism must abort the run with
:class:`~repro.errors.HazardError`.
"""

import pytest

from repro.baselines.tida_runners import run_tida_compute, run_tida_heat
from repro.core.tile_acc import TileAcc
from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.errors import HazardError


@pytest.fixture
def rt(machine):
    return CudaRuntime(machine, check="strict")


def touch_kernel(arg_access):
    return KernelSpec(
        name="touch", body=None, bytes_per_cell=8.0, flops_per_cell=1.0,
        arg_access=arg_access,
    )


class TestDroppedAfterEdge:
    """Mutant 1: a producer/consumer `after=` dependency removed."""

    def test_fixed_twin_is_clean(self, rt):
        a = rt.malloc(1024, label="a")
        b = rt.malloc(1024, label="b")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        end = rt.memcpy_async(b, h, s1)
        rt.launch(touch_kernel(("w", "r")), buffers=[a, b], n_cells=128,
                  stream=s2, after=end)
        assert rt.checker.hazards == []

    def test_mutant_raw_detected(self, rt):
        a = rt.malloc(1024, label="a")
        b = rt.malloc(1024, label="b")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(b, h, s1)
        with pytest.raises(HazardError) as exc:
            # MUTATION: after=end dropped — the kernel may read b before
            # its upload lands
            rt.launch(touch_kernel(("w", "r")), buffers=[a, b], n_cells=128,
                      stream=s2)
        assert exc.value.hazard.kind == "RAW"
        assert exc.value.hazard.buffer == "b"


class TestDroppedWaitBeforeOverwrite:
    """Mutant 2: host overwrites a buffer a kernel still reads (WAR)."""

    def test_fixed_twin_is_clean(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        end = rt.launch(touch_kernel(("r",)), buffers=[a], n_cells=128, stream=s1)
        rt.memcpy_async(a, h, s2, after=end)
        assert rt.checker.hazards == []

    def test_mutant_war_detected(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.launch(touch_kernel(("r",)), buffers=[a], n_cells=128, stream=s1)
        with pytest.raises(HazardError) as exc:
            # MUTATION: the upload no longer waits for the reader
            rt.memcpy_async(a, h, s2)
        assert exc.value.hazard.kind == "WAR"
        assert exc.value.hazard.buffer == "a"


class TestDroppedWriterOrdering:
    """Mutant 3: two writers of one buffer on different engines (WAW)."""

    def test_fixed_twin_is_clean(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        end = rt.memcpy_async(a, h, s1)
        rt.launch(touch_kernel(("w",)), buffers=[a], n_cells=128,
                  stream=s2, after=end)
        assert rt.checker.hazards == []

    def test_mutant_waw_detected(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)  # H2D engine writes a
        with pytest.raises(HazardError) as exc:
            # MUTATION: compute engine writes a with no edge to the copy
            rt.launch(touch_kernel(("w",)), buffers=[a], n_cells=128, stream=s2)
        assert exc.value.hazard.kind == "WAW"


class TestDroppedStreamWaitEvent:
    """Mutant 4: the cudaStreamWaitEvent of an event-synced pipeline removed."""

    def _pipeline(self, rt, *, wait: bool):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        ev = rt.create_event()
        rt.memcpy_async(a, h, s1)
        rt.event_record(ev, s1)
        if wait:
            rt.stream_wait_event(s2, ev)
        rt.memcpy_async(h, a, s2)

    def test_fixed_twin_is_clean(self, rt):
        self._pipeline(rt, wait=True)
        assert rt.checker.hazards == []

    def test_mutant_detected(self, rt):
        with pytest.raises(HazardError):
            # MUTATION: event recorded but never waited on
            self._pipeline(rt, wait=False)


class TestFifoLuckStaysWarning:
    """Severity control: an engine-FIFO-ordered mutant is NOT racy.

    Dropping the edge between two same-engine writers leaves them ordered
    by the copy engine's FIFO — a fragile program, but not a racy one.
    The checker must say "warning", not kill the run.
    """

    def test_same_engine_mutant_warns_but_completes(self, rt):
        a = rt.malloc(1024, label="a")
        h1 = rt.malloc_pinned(1024, label="h1")
        h2 = rt.malloc_pinned(1024, label="h2")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h1, s1)
        rt.memcpy_async(a, h2, s2)  # same H2D engine: FIFO luck
        assert rt.checker.counts() == {"warning": 1, "error": 0}


SMALL_HEAT = dict(shape=(48, 24, 24), steps=1, n_regions=8, n_slots=3,
                  device_memory_limit=310_000, functional=True)
SMALL_COMPUTE = dict(shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
                     device_memory_limit=70_000, functional=True)


class TestTileAccReadyDepsMutant:
    """Mutant 5: TileAcc stops exporting per-region readiness deps.

    ``device_ready_deps`` is how cross-stream consumers (kernels, ghost
    exchange) learn what they must wait for.  Returning an empty tuple
    silently drops every one of those edges — the workload must abort
    under strict checking.
    """

    def test_fixed_twin_is_clean(self):
        res = run_tida_heat(check="strict", **SMALL_HEAT)
        assert res.metrics["counters"].get("check.hazards", 0) == 0

    def test_mutant_detected(self, monkeypatch):
        monkeypatch.setattr(
            TileAcc, "device_ready_deps", lambda self, rid: (), raising=True
        )
        with pytest.raises(HazardError):
            run_tida_heat(check="strict", **SMALL_HEAT)


class TestSlotBarrierMutant:
    """Mutant 6: the per-slot upload barrier leaks away after eviction.

    An eviction write-back (D2H on the dedicated write-back stream) and
    the replacement upload (H2D on the slot stream) share a device
    buffer; ``_slot_after`` is the only edge between them.  Clearing it
    after ``_evict`` reintroduces the write-back/upload race.
    """

    def test_fixed_twin_is_clean(self):
        res = run_tida_compute(check="strict", **SMALL_COMPUTE)
        assert res.meta["device_memory_limit"] is not None
        assert res.metrics["counters"].get("check.hazards", 0) == 0
        # the workload genuinely evicts (else this mutant tests nothing)
        evictions = sum(v for k, v in res.metrics["counters"].items()
                        if k.startswith("cache.evictions."))
        assert evictions > 0

    def test_mutant_detected(self, monkeypatch):
        orig = TileAcc._evict

        def leaky_evict(self, slot):
            end = orig(self, slot)
            self._slot_after.clear()  # MUTATION: drop the barrier
            return end

        monkeypatch.setattr(TileAcc, "_evict", leaky_evict, raising=True)
        with pytest.raises(HazardError):
            run_tida_compute(check="strict", **SMALL_COMPUTE)
