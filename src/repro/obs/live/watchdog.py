"""Online anomaly watchdog: rolling-window detectors over telemetry.

Each detector consumes the :class:`~repro.obs.live.bus.TelemetrySample`
stream and fires a structured :class:`Alert` when its rolling statistic
crosses a deterministic threshold.  All state is derived from sampled
virtual-time series, so the alert sequence for a given seed and fault
plan is byte-reproducible.

Detector catalog (defaults chosen so the nominal paper figure runs are
alert-free while the seeded degradation legs in ``repro.bench.live``
alert; see ``docs/OBSERVABILITY.md`` for the full table):

==================  =====================================================
``overlap_collapse``  EWMA of overlap efficiency stays below a floor
                      while transfers occupy a real share of each window.
``stall_spike``       Host stall fraction z-score spikes against the
                      rolling window baseline (and exceeds a floor).
``cache_thrash``      EWMA cache hit rate collapses while the run is
                      stall-bound — misses are no longer being hidden.
``retry_storm``       Fault retries in the rolling window exceed a
                      budget (critical at twice the budget).
``hazard_rate``       Hazard-warning marks keep accumulating.
``queue_runaway``     Per-stream queue depth grows monotonically past a
                      high-water threshold.
``tenant_starvation`` A backlogged service tenant scheduled zero quanta
                      across the whole window (armed by ``metrics=``).
``slo_burn``          A tenant's SLO error budget is burning at
                      multi-window alert rates (armed by ``slo=``).
==================  =====================================================

Every detector has a ``warmup`` (samples before it may fire) and a
``cooldown`` (virtual seconds between fires) so one sustained condition
produces a bounded alert stream instead of one alert per sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from .bus import TelemetryBus, TelemetrySample, TelemetrySubscriber

#: Severity levels in increasing order of badness.
SEVERITIES: tuple[str, ...] = ("info", "warning", "critical")

_SEVERITY_RANK = {name: i for i, name in enumerate(SEVERITIES)}


def severity_at_least(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at or above ``threshold``."""
    try:
        return _SEVERITY_RANK[severity] >= _SEVERITY_RANK[threshold]
    except KeyError as exc:
        raise ValueError(
            f"unknown severity {exc.args[0]!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class Alert:
    """One watchdog detection.

    ``window`` is the (start, end) virtual-time span of samples the
    decision was based on; ``evidence`` carries the statistics that
    crossed the threshold, so an alert is auditable on its own.
    """

    detector: str
    severity: str
    t: float
    window: tuple[float, float]
    message: str
    evidence: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "t": self.t,
            "window": list(self.window),
            "message": self.message,
            "evidence": dict(sorted(self.evidence.items())),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Alert":
        return cls(
            detector=str(d["detector"]),
            severity=str(d["severity"]),
            t=float(d["t"]),
            window=tuple(d.get("window", (0.0, 0.0))),  # type: ignore[arg-type]
            message=str(d.get("message", "")),
            evidence=dict(d.get("evidence", {})),
        )


class _Ewma:
    """Exponentially weighted moving average over an irregular series."""

    __slots__ = ("alpha", "value", "n")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.value: float | None = None
        self.n = 0

    def update(self, x: float) -> float:
        self.value = x if self.value is None else (
            self.alpha * x + (1.0 - self.alpha) * self.value
        )
        self.n += 1
        return self.value


class Detector:
    """Rolling-window detector base: warmup, cooldown, history ring."""

    name = "detector"

    def __init__(self, *, window: int = 8, warmup: int | None = None,
                 cooldown: float = 0.0) -> None:
        if window < 2:
            raise ValueError(f"{self.name}: window must be >= 2, got {window}")
        self.window = window
        self.warmup = window if warmup is None else warmup
        self.cooldown = cooldown
        self.history: list[TelemetrySample] = []
        self._seen = 0
        self._last_fire: float | None = None

    def update(self, sample: TelemetrySample) -> Alert | None:
        self.history.append(sample)
        if len(self.history) > self.window:
            del self.history[0]
        self._seen += 1
        self._observe(sample)
        if self._seen < self.warmup:
            return None
        if (self._last_fire is not None
                and sample.t - self._last_fire < self.cooldown):
            return None
        alert = self._evaluate(sample)
        if alert is not None:
            self._last_fire = sample.t
        return alert

    def _observe(self, sample: TelemetrySample) -> None:
        """Update rolling statistics (always runs, even during warmup)."""

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        raise NotImplementedError

    def _window_span(self) -> tuple[float, float]:
        return (self.history[0].t - self.history[0].dt, self.history[-1].t)

    def _alert(self, severity: str, message: str, t: float,
               **evidence: Any) -> Alert:
        return Alert(
            detector=self.name,
            severity=severity,
            t=t,
            window=self._window_span(),
            message=message,
            evidence=evidence,
        )


class OverlapCollapseDetector(Detector):
    """Transfers stopped hiding behind compute.

    Tracks an EWMA of per-window overlap efficiency over *qualifying*
    windows — those where both engines did real work (transfer and
    compute fractions above ``min_busy_fraction``).  Fires when the EWMA
    sinks below ``min_efficiency`` (critical below half of it).
    """

    name = "overlap_collapse"

    def __init__(self, *, min_efficiency: float = 0.15,
                 min_busy_fraction: float = 0.15, alpha: float = 0.35,
                 window: int = 8, warmup: int | None = None,
                 cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.min_efficiency = min_efficiency
        self.min_busy_fraction = min_busy_fraction
        self._ewma = _Ewma(alpha)

    def _observe(self, sample: TelemetrySample) -> None:
        if (sample.overlap_efficiency is not None
                and sample.transfer_fraction >= self.min_busy_fraction
                and sample.compute_fraction >= self.min_busy_fraction):
            self._ewma.update(sample.overlap_efficiency)

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        if self._ewma.n < self.warmup or self._ewma.value is None:
            return None
        eff = self._ewma.value
        if eff >= self.min_efficiency:
            return None
        severity = "critical" if eff < self.min_efficiency / 2 else "warning"
        return self._alert(
            severity,
            f"overlap efficiency collapsed: EWMA {eff:.3f} < "
            f"{self.min_efficiency} over {self._ewma.n} busy windows",
            sample.t,
            ewma_efficiency=eff,
            threshold=self.min_efficiency,
            busy_windows=self._ewma.n,
            transfer_fraction=sample.transfer_fraction,
            compute_fraction=sample.compute_fraction,
        )


class StallSpikeDetector(Detector):
    """Host stall fraction spiked against its own rolling baseline.

    Computes the z-score of the newest window's stall fraction against
    the mean/std of the windows preceding the spike; fires once the
    condition — z-score above ``z_threshold``, absolute stall above
    ``min_stall``, and rise over baseline above ``min_rise`` — holds for
    ``consecutive`` windows in a row.  The persistence requirement keeps
    one-off dead windows (a run's final teardown, a lone barrier) quiet
    while hangs and backoff storms, which deaden many windows in a row,
    still fire.
    """

    name = "stall_spike"

    def __init__(self, *, z_threshold: float = 3.0, min_stall: float = 0.5,
                 min_rise: float = 0.25, consecutive: int = 2,
                 window: int = 12, warmup: int | None = None,
                 cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        if consecutive < 1:
            raise ValueError(
                f"{self.name}: consecutive must be >= 1, got {consecutive}"
            )
        self.z_threshold = z_threshold
        self.min_stall = min_stall
        self.min_rise = min_rise
        self.consecutive = consecutive
        self._streak = 0

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        spike = self._spiking(sample)
        if spike is None:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak < self.consecutive:
            return None
        mean, std, z = spike
        return self._alert(
            "warning",
            f"stall spike: fraction {sample.stall_fraction:.3f} is "
            f"{'inf' if math.isinf(z) else format(z, '.1f')} sigma above "
            f"rolling mean {mean:.3f}",
            sample.t,
            stall_fraction=sample.stall_fraction,
            rolling_mean=mean,
            rolling_std=std,
            z_score=None if math.isinf(z) else z,
            threshold=self.z_threshold,
            min_rise=self.min_rise,
            streak=self._streak,
        )

    def _spiking(self, sample: TelemetrySample) -> tuple[float, float, float] | None:
        """(baseline mean, std, z) when this window spikes, else None."""
        if sample.stall_fraction < self.min_stall:
            return None
        # baseline excludes the current streak so a sustained spike keeps
        # comparing against the pre-spike level instead of itself
        cut = len(self.history) - 1 - self._streak
        baseline = [s.stall_fraction for s in self.history[:max(cut, 0) + 1][:-1]]
        if not baseline:
            baseline = [s.stall_fraction for s in self.history[:-1]]
        if not baseline:
            return None
        mean = sum(baseline) / len(baseline)
        # absolute rise gate: a near-constant series has tiny variance, so
        # an epsilon wiggle would z-spike without this floor
        if sample.stall_fraction - mean < self.min_rise:
            return None
        var = sum((x - mean) ** 2 for x in baseline) / len(baseline)
        std = math.sqrt(var)
        if std < 1e-9:
            z = float("inf")
        else:
            z = (sample.stall_fraction - mean) / std
        if z <= self.z_threshold:
            return None
        return (mean, std, z)


class CacheThrashDetector(Detector):
    """The tile cache stopped absorbing reuse and misses hurt.

    Fires when, over qualifying windows (at least ``min_accesses`` slot
    accesses), the EWMA hit rate drops below ``max_hit_rate`` *while*
    compute starves (EWMA compute fraction below
    ``max_compute_fraction``) and the link stays saturated (EWMA
    transfer fraction above ``min_transfer_fraction``).  A low hit rate
    alone is normal for capacity-streaming runs — the paper's Fig. 7/8
    pipeline misses on purpose and hides it behind compute; it is the
    starving GPU that distinguishes thrash.
    """

    name = "cache_thrash"

    def __init__(self, *, max_hit_rate: float = 0.05,
                 max_compute_fraction: float = 0.25,
                 min_transfer_fraction: float = 0.5,
                 min_accesses: float = 2.0, alpha: float = 0.35,
                 window: int = 8, warmup: int | None = None,
                 cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.max_hit_rate = max_hit_rate
        self.max_compute_fraction = max_compute_fraction
        self.min_transfer_fraction = min_transfer_fraction
        self.min_accesses = min_accesses
        self._hit_ewma = _Ewma(alpha)
        self._compute_ewma = _Ewma(alpha)
        self._transfer_ewma = _Ewma(alpha)

    def _observe(self, sample: TelemetrySample) -> None:
        accesses = (sample.deltas.get("cache_hits", 0.0)
                    + sample.deltas.get("cache_misses", 0.0))
        if sample.cache_hit_rate is not None and accesses >= self.min_accesses:
            self._hit_ewma.update(sample.cache_hit_rate)
            self._compute_ewma.update(sample.compute_fraction)
            self._transfer_ewma.update(sample.transfer_fraction)

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        if self._hit_ewma.n < self.warmup or self._hit_ewma.value is None:
            return None
        hit = self._hit_ewma.value
        compute = self._compute_ewma.value or 0.0
        transfer = self._transfer_ewma.value or 0.0
        if (hit > self.max_hit_rate
                or compute > self.max_compute_fraction
                or transfer < self.min_transfer_fraction):
            return None
        return self._alert(
            "warning",
            f"cache thrash: EWMA hit rate {hit:.3f} <= {self.max_hit_rate} "
            f"with compute starving ({compute:.3f} busy) behind transfers "
            f"({transfer:.3f} busy)",
            sample.t,
            ewma_hit_rate=hit,
            ewma_compute_fraction=compute,
            ewma_transfer_fraction=transfer,
            max_hit_rate=self.max_hit_rate,
            max_compute_fraction=self.max_compute_fraction,
            min_transfer_fraction=self.min_transfer_fraction,
            access_windows=self._hit_ewma.n,
        )


class RetryStormDetector(Detector):
    """Fault retries are burning the retry budget across the window."""

    name = "retry_storm"

    def __init__(self, *, max_retries: float = 3.0, window: int = 8,
                 warmup: int | None = 2, cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.max_retries = max_retries

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        retries = sum(s.deltas.get("retries", 0.0) for s in self.history)
        if retries < self.max_retries:
            return None
        severity = "critical" if retries >= 2 * self.max_retries else "warning"
        return self._alert(
            severity,
            f"retry storm: {retries:.0f} retries in the last "
            f"{len(self.history)} windows (budget {self.max_retries:.0f})",
            sample.t,
            retries=retries,
            budget=self.max_retries,
            windows=len(self.history),
            injected=sum(s.deltas.get("faults_injected", 0.0)
                         for s in self.history),
        )


class HazardRateDetector(Detector):
    """Hazard findings keep accumulating while the run executes."""

    name = "hazard_rate"

    def __init__(self, *, max_hazards: float = 2.0, window: int = 8,
                 warmup: int | None = 2, cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.max_hazards = max_hazards

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        hazards = sum(s.deltas.get("hazards", 0.0) for s in self.history)
        if hazards < self.max_hazards:
            return None
        return self._alert(
            "warning",
            f"hazard rate: {hazards:.0f} hazard findings in the last "
            f"{len(self.history)} windows (budget {self.max_hazards:.0f})",
            sample.t,
            hazards=hazards,
            budget=self.max_hazards,
            windows=len(self.history),
            total_hazards=sample.totals.get("hazards", 0.0),
        )


class QueueRunawayDetector(Detector):
    """Per-stream queue depth is growing without bound."""

    name = "queue_runaway"

    def __init__(self, *, min_depth: float = 256.0, growth: float = 2.0,
                 window: int = 8, warmup: int | None = None,
                 cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.min_depth = min_depth
        self.growth = growth

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        if sample.queue_depth < self.min_depth or len(self.history) < 2:
            return None
        depths = [s.queue_depth for s in self.history]
        monotone = all(b >= a for a, b in zip(depths, depths[1:]))
        base = max(depths[0], 1.0)
        if not monotone or depths[-1] < self.growth * base:
            return None
        return self._alert(
            "warning",
            f"queue runaway: stream depth grew {base:.0f} -> "
            f"{depths[-1]:.0f} over {len(depths)} windows",
            sample.t,
            depth=depths[-1],
            start_depth=depths[0],
            min_depth=self.min_depth,
            growth=self.growth,
        )


class TenantStarvationDetector(Detector):
    """A backlogged tenant is making no scheduling progress.

    The multi-tenant service publishes per-tenant progress counters
    (``service.tenant.<t>.quanta``) and backlog gauges
    (``service.tenant.<t>.backlog``) into the runtime's metrics registry
    — telemetry samples carry only aggregate engine counters, so this
    detector reads the registry directly.  It fires when some tenant has
    held a non-empty backlog across the whole window while its quantum
    counter never moved: the weighted-fair scheduler should never let
    that happen, so an alert means a QoS bug or a pathological admission
    stall.  Without a registry the detector is inert.
    """

    name = "tenant_starvation"

    def __init__(self, metrics=None, *, window: int = 8,
                 warmup: int | None = None, cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.metrics = metrics
        self._progress: dict[str, list[tuple[float, float]]] = {}
        #: per-tenant observation counts: a tenant first observed
        #: mid-window has no baseline, so it must be watched for a full
        #: ``window`` of its *own* samples (not the detector's global
        #: warmup) before it may fire
        self._tenant_seen: dict[str, int] = {}

    def _tenants(self) -> list[str]:
        if self.metrics is None:
            return []
        snap = self.metrics.snapshot()
        names = set()
        for key in snap.get("counters", {}):
            if key.startswith("service.tenant.") and key.endswith(".quanta"):
                names.add(key[len("service.tenant."):-len(".quanta")])
        # quanta counters are created on first *scheduled* quantum, so a
        # fully starved tenant — the one this detector exists for — is
        # only visible through its backlog gauge
        for key in snap.get("gauges", {}):
            if key.startswith("service.tenant.") and key.endswith(".backlog"):
                names.add(key[len("service.tenant."):-len(".backlog")])
        return sorted(names)

    def _observe(self, sample: TelemetrySample) -> None:
        for tenant in self._tenants():
            quanta = self.metrics.value(f"service.tenant.{tenant}.quanta")
            backlog = self.metrics.max_gauge(f"service.tenant.{tenant}.backlog")
            ring = self._progress.setdefault(tenant, [])
            ring.append((quanta, backlog))
            if len(ring) > self.window:
                del ring[0]
            self._tenant_seen[tenant] = self._tenant_seen.get(tenant, 0) + 1

    def _evaluate(self, sample: TelemetrySample) -> Alert | None:
        for tenant, ring in sorted(self._progress.items()):
            if (len(ring) < self.window
                    or self._tenant_seen.get(tenant, 0) < self.window):
                continue
            backlogged = all(backlog > 0 for _, backlog in ring)
            stalled = ring[-1][0] <= ring[0][0]
            if backlogged and stalled:
                return self._alert(
                    "critical",
                    f"tenant starvation: {tenant!r} backlogged for "
                    f"{len(ring)} windows with zero scheduled quanta",
                    sample.t,
                    tenant=tenant,
                    backlog=ring[-1][1],
                    quanta=ring[-1][0],
                    windows=len(ring),
                )
        return None


def default_detectors(*, cooldown: float | None = None,
                      metrics=None, slo=None) -> list[Detector]:
    """The standard detector set with catalog-default thresholds.

    ``cooldown`` (virtual seconds) applies to every detector; ``None``
    picks a per-run-scale default of 0 (fire at most once per sample,
    bounded further by each detector's own cooldown if set later).
    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) arms the
    :class:`TenantStarvationDetector`; ``slo`` (a
    :class:`~repro.obs.slo.SloTracker`) arms the
    :class:`~repro.obs.slo.SloBurnDetector`.  Without them the
    multi-tenant detectors are omitted, keeping single-run watchdogs
    unchanged.
    """
    cd = 0.0 if cooldown is None else cooldown
    detectors: list[Detector] = [
        OverlapCollapseDetector(cooldown=cd),
        StallSpikeDetector(cooldown=cd),
        CacheThrashDetector(cooldown=cd),
        RetryStormDetector(cooldown=cd),
        HazardRateDetector(cooldown=cd),
        QueueRunawayDetector(cooldown=cd),
    ]
    if metrics is not None:
        detectors.append(TenantStarvationDetector(metrics, cooldown=cd))
    if slo is not None:
        from ..slo import SloBurnDetector
        detectors.append(SloBurnDetector(slo, cooldown=cd))
    return detectors


class Watchdog(TelemetrySubscriber):
    """Runs a detector set over the sample stream and publishes alerts.

    Alerts land on ``bus.alerts`` (and the JSONL session log) via
    :meth:`TelemetryBus.publish_alert`; the watchdog itself keeps only
    its detector state, so two watchdogs on one bus never double-count.
    """

    def __init__(self, detectors: list[Detector] | None = None) -> None:
        self.detectors = detectors if detectors is not None else default_detectors()
        self._bus: TelemetryBus | None = None

    def bind(self, bus: TelemetryBus) -> None:
        self._bus = bus

    def on_sample(self, sample: TelemetrySample) -> None:
        for det in self.detectors:
            alert = det.update(sample)
            if alert is not None:
                if self._bus is not None:
                    self._bus.publish_alert(alert)
