"""OpenACC 'compiler' model: target flags and construct validation.

``-ta=tesla:pinned`` makes the runtime allocate user data in pinned host
memory; ``-ta=tesla:managed`` switches allocations to CUDA managed memory
(§II-B).  The flags object is how a 'build' of an OpenACC application
selects its memory behaviour, mirroring the paper's per-bar variants in
Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AccCompileError


@dataclass(frozen=True)
class AccFlags:
    """Compile-time configuration of the simulated OpenACC toolchain."""

    target: str = "tesla"
    pinned: bool = False   # -ta=tesla:pinned
    managed: bool = False  # -ta=tesla:managed

    def __post_init__(self) -> None:
        if self.target != "tesla":
            raise AccCompileError(f"unsupported -ta target {self.target!r}")
        if self.pinned and self.managed:
            raise AccCompileError("-ta=tesla:pinned and -ta=tesla:managed are exclusive")

    @property
    def describe(self) -> str:
        if self.managed:
            return "-ta=tesla:managed"
        if self.pinned:
            return "-ta=tesla:pinned"
        return "-ta=tesla"


def validate_collapse(collapse: int | None, loop_dims: int) -> int:
    """Check a ``collapse(n)`` clause against the loop nest depth.

    The PGI compiler rejects collapsing more loops than are tightly
    nested; we reproduce that as :class:`AccCompileError`.
    """
    if loop_dims < 1:
        raise AccCompileError(f"loop nest must have >= 1 dimension, got {loop_dims}")
    if collapse is None:
        return 1
    if not isinstance(collapse, int) or collapse < 1:
        raise AccCompileError(f"collapse takes a positive integer, got {collapse!r}")
    if collapse > loop_dims:
        raise AccCompileError(
            f"collapse({collapse}) exceeds the {loop_dims}-deep tightly nested loop"
        )
    return collapse
