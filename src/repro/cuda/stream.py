"""CUDA streams.

A stream is a FIFO sequence of device operations (§IV-B.2): operations in
one stream execute in issue order; operations in different streams may
overlap.  The simulated stream tracks only the completion time of its most
recently issued operation — that is all the FIFO discipline requires —
plus identity/lifetime bookkeeping so misuse (foreign streams, destroyed
streams) fails the way the real runtime would.
"""

from __future__ import annotations

from ..errors import CudaInvalidResourceHandleError


class Stream:
    """One CUDA stream (or OpenACC activity queue; they interoperate, §IV-B.2)."""

    __slots__ = ("stream_id", "_tail", "_destroyed", "_runtime_id")

    def __init__(self, stream_id: int, runtime_id: int) -> None:
        self.stream_id = stream_id
        self._tail = 0.0
        self._destroyed = False
        self._runtime_id = runtime_id

    @property
    def tail(self) -> float:
        """Virtual completion time of the last operation issued to this stream."""
        return self._tail

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def _check_usable(self, runtime_id: int) -> None:
        if self._destroyed:
            raise CudaInvalidResourceHandleError(
                f"stream {self.stream_id} has been destroyed"
            )
        if runtime_id != self._runtime_id:
            raise CudaInvalidResourceHandleError(
                f"stream {self.stream_id} belongs to a different runtime/context"
            )

    def _push(self, end: float) -> None:
        if end > self._tail:
            self._tail = end

    def _destroy(self) -> None:
        self._destroyed = True

    def _reset(self) -> None:
        """Forget queued work (runtime ``reset_schedule`` between runs)."""
        self._tail = 0.0

    @property
    def is_default(self) -> bool:
        return self.stream_id == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "destroyed" if self._destroyed else f"tail={self._tail:.6g}"
        return f"Stream({self.stream_id}, {state})"
