"""TileIterator: paper-style and Pythonic traversal, GPU flag, multi-array."""

import pytest

from repro.errors import TidaError
from repro.tida.tile_array import TileArray
from repro.tida.tile_iterator import TileIterator


@pytest.fixture
def pair():
    a = TileArray((8,), n_regions=4, ghost=1, label="a")
    b = TileArray((8,), n_regions=4, ghost=1, label="b")
    return a, b


class TestPaperStyle:
    def test_loop(self, pair):
        a, _ = pair
        it = TileIterator(a)
        seen = []
        it.reset(gpu=True)
        while it.is_valid():
            seen.append(it.tile().rid)
            it.next()
        assert seen == [0, 1, 2, 3]
        assert it.gpu

    def test_reset_restarts_and_sets_gpu(self, pair):
        a, _ = pair
        it = TileIterator(a)
        it.reset(gpu=True)
        it.next()
        it.reset()
        assert not it.gpu
        assert it.tile().rid == 0

    def test_exhaustion_errors(self, pair):
        a, _ = pair
        it = TileIterator(a)
        for _ in range(4):
            it.next()
        assert not it.is_valid()
        with pytest.raises(TidaError):
            it.next()
        with pytest.raises(TidaError):
            it.tiles()

    def test_tile_on_multi_array_rejected(self, pair):
        it = TileIterator(*pair)
        with pytest.raises(TidaError):
            it.tile()


class TestMultiArray:
    def test_zipped_tiles_same_box(self, pair):
        it = TileIterator(*pair)
        for ta, tb in it:
            assert ta.box == tb.box
            assert ta.array is pair[0]
            assert tb.array is pair[1]

    def test_incompatible_arrays_rejected(self):
        a = TileArray((8,), n_regions=2)
        b = TileArray((8,), n_regions=4)
        with pytest.raises(TidaError):
            TileIterator(a, b)

    def test_ghost_mismatch_rejected(self):
        a = TileArray((8,), n_regions=2, ghost=1)
        b = TileArray((8,), n_regions=2, ghost=0)
        with pytest.raises(TidaError):
            TileIterator(a, b)

    def test_no_arrays_rejected(self):
        with pytest.raises(TidaError):
            TileIterator()


class TestOrdering:
    def test_tile_shape_expands_count(self, pair):
        a, _ = pair
        it = TileIterator(a, tile_shape=(1,))
        assert it.n_tiles == 8

    def test_shuffled_deterministic_by_seed(self, pair):
        a, _ = pair
        order1 = [t[0].rid for t in TileIterator(a, order="shuffled", seed=7)]
        order2 = [t[0].rid for t in TileIterator(a, order="shuffled", seed=7)]
        assert order1 == order2

    def test_shuffled_differs_from_sequential_eventually(self, pair):
        a, _ = pair
        it = TileIterator(a, tile_shape=(1,), order="shuffled", seed=1)
        assert [t[0].box.lo[0] for t in it] != list(range(8))

    def test_bad_order_rejected(self, pair):
        with pytest.raises(TidaError):
            TileIterator(pair[0], order="random")

    def test_len(self, pair):
        assert len(TileIterator(pair[0])) == 4


class TestScheduleIntrospection:
    """The traversal-order surface the prefetcher consumes."""

    def test_schedule_known_only_for_sequential(self, pair):
        a, _ = pair
        assert TileIterator(a).schedule_known
        assert not TileIterator(a, order="shuffled", seed=3).schedule_known

    def test_remaining_rids_current_first(self, pair):
        a, _ = pair
        it = TileIterator(a)
        assert it.remaining_rids() == [0, 1, 2, 3]
        it.next()
        assert it.remaining_rids() == [1, 2, 3]

    def test_remaining_rids_dedups_tiles_of_one_region(self, pair):
        a, _ = pair
        it = TileIterator(a, tile_shape=(1,))   # several tiles per region
        assert len(it) > a.n_regions
        assert it.remaining_rids() == [0, 1, 2, 3]

    def test_upcoming_rids_excludes_current_region(self, pair):
        a, _ = pair
        it = TileIterator(a)
        assert it.upcoming_rids(2) == [1, 2]
        assert it.upcoming_rids(99) == [1, 2, 3]
        assert it.upcoming_rids(0) == []

    def test_upcoming_rids_skips_same_region_tiles(self, pair):
        a, _ = pair
        it = TileIterator(a, tile_shape=(1,))
        # current tile is region 0's first tile; its later tiles are skipped
        assert it.upcoming_rids(2) == [1, 2]

    def test_upcoming_rids_empty_when_exhausted(self, pair):
        a, _ = pair
        it = TileIterator(a)
        for _ in range(4):
            it.next()
        assert it.upcoming_rids(2) == []
        assert it.remaining_rids() == []
