"""Result tables: aligned text, markdown, and JSON output."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ReproError
from ..sim.trace import Trace


@dataclass
class Table:
    """A titled grid of experiment results."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ReproError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ReproError(f"no column {name!r} in {self.columns}") from None
        return [row[idx] for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> list[Any]:
        idx = self.columns.index(key_column)
        for row in self.rows:
            if row[idx] == key:
                return row
        raise ReproError(f"no row with {key_column}={key!r}")

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        if isinstance(value, dict) and "counts" in value and "buckets" in value:
            # histogram snapshot: render compactly (non-empty buckets only)
            # so CLI output and JSON dumps stay short and diff-friendly
            parts = [
                f"<={ub:g}:{n}"
                for ub, n in zip(value["buckets"], value["counts"])
                if n
            ]
            if value["counts"][-1]:
                parts.append(f">last:{value['counts'][-1]}")
            body = " ".join(parts) or "-"
            return f"n={value['count']} sum={value['sum']:.4g} [{body}]"
        return str(value)

    def format(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    @classmethod
    def from_trace(cls, trace: Trace, *, title: str = "trace summary") -> "Table":
        """Performance-counter view of a run's trace.

        Rows: wall span; per-engine busy time, utilization, operation
        count; transfer byte totals and achieved bandwidths; overlap
        fractions both ways (transfer hidden behind compute and vice
        versa).  This is the at-a-glance check that a pipeline behaved.
        """
        table = cls(title=title, columns=["metric", "value", "unit"])
        span = trace.span()
        table.add_row("span", span, "s")
        for lane in ("compute", "h2d", "d2h"):
            busy = trace.busy_time(lane)
            ops = len(trace.by_lane(lane))
            table.add_row(f"{lane} busy", busy, "s")
            table.add_row(f"{lane} utilization", busy / span if span else 0.0, "fraction")
            table.add_row(f"{lane} operations", ops, "count")
        for category in ("h2d", "d2h"):
            events = trace.by_category(category)
            nbytes = sum(e.nbytes for e in events)
            seconds = sum(e.duration for e in events)
            table.add_row(f"{category} bytes", nbytes, "B")
            table.add_row(
                f"{category} achieved bandwidth",
                nbytes / seconds if seconds else 0.0,
                "B/s",
            )
        table.add_row(
            "transfer hidden behind compute",
            trace.overlap_fraction(["h2d", "d2h"], ["compute"]),
            "fraction",
        )
        table.add_row(
            "compute overlapped with transfer",
            trace.overlap_fraction(["compute"], ["h2d", "d2h"]),
            "fraction",
        )
        return table

    def to_json(self) -> dict[str, Any]:
        """The JSON payload: title, columns, raw (unformatted) rows, notes."""
        return {
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, default=str))
        return path
