"""2-D box-blur stencil: the image-processing workload the intro motivates.

A 3×3 mean filter — a second transfer-intensive kernel with a different
stencil footprint (corners included), used by the image-pipeline example
and as extra coverage for the ghost machinery (it needs corner ghosts,
unlike the face-only heat stencil).
"""

from __future__ import annotations

import numpy as np

from ..cuda.kernel import KernelSpec


def _blur_body(
    dst: np.ndarray,
    src: np.ndarray,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
) -> None:
    if dst.ndim != 2:
        raise ValueError("blur kernel is 2-D")
    acc = np.zeros(tuple(h - l for l, h in zip(lo, hi)), dtype=dst.dtype)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            acc += src[lo[0] + dy:hi[0] + dy, lo[1] + dx:hi[1] + dx]
    dst[lo[0]:hi[0], lo[1]:hi[1]] = acc / 9.0


def blur_kernel() -> KernelSpec:
    return KernelSpec(
        name="blur3x3",
        body=_blur_body,
        bytes_per_cell=16.0,   # streaming read + write; neighbour reads cached
        flops_per_cell=10.0,   # 8 adds + multiply by 1/9 + store arithmetic
        cpu_spill_bytes_per_cell=16.0,  # two neighbour rows re-fetched without tiling
        arg_access=("w", "r"),
        footprint=(None, 1),   # radius-1 read including corners
        meta={"ndim": 2, "stencil_radius": 1, "corners": True},
    )


def blur_reference_step(src: np.ndarray, ghost: int = 1) -> np.ndarray:
    """Reference blur on a global ghosted 2-D array."""
    dst = src.copy()
    lo = (ghost,) * src.ndim
    hi = tuple(s - ghost for s in src.shape)
    _blur_body(dst, src, lo, hi)
    return dst
