"""Ablation A3: closed-form analytic model vs the simulator."""

from repro.bench import figures


def test_ablation_model_accuracy(run_once, results_dir):
    table = run_once(figures.ablation_model_accuracy)
    print()
    print(table.format())
    table.save_json(results_dir / "ablation_a3.json")

    ratios = table.column("ratio")
    # the model is close enough to drive the autotuner
    assert all(0.6 < r < 1.4 for r in ratios)
    # and the compute-dominated cases are tighter still
    compute_rows = [r for r in table.rows if r[0].startswith("compute-intensive")]
    assert all(0.9 < row[3] < 1.1 for row in compute_rows)
