"""The causal run DAG: every device operation with its true ordering edges.

The hazard checker (:mod:`repro.check.hazards`) already observes every
device operation the runtime issues, together with the synchronization
facts that order it: stream FIFO program order, ``event_record`` /
``stream_wait_event`` pairs, host blocking syncs, and explicit ``after=``
readiness dependencies.  This module defines the node record the checker
appends per operation — a :class:`DagNode` — plus (de)serialization, so a
run manifest can carry the full causal DAG and
:mod:`repro.obs.critpath` can compute critical paths and replay the
schedule under perturbed machine parameters offline.

Edge kinds on ``DagNode.deps`` (predecessor op id, kind):

* ``"stream"`` — the previous operation issued to the same stream (FIFO
  program order; strong);
* ``"event"`` — a ``stream_wait_event`` edge consumed by this operation
  (strong);
* ``"after"`` — an explicit ``after=`` readiness component, resolved to
  the operation whose completion time it names (strong);
* ``"engine"`` — the previous operation on the same hardware engine
  (FIFO of the machine, not of the program; weak, but it is what bounds
  the start time on *this* machine).

Host ordering is carried separately: ``host_dep`` is the operation the
host most recently blocked on before issuing this one (via a stream /
event / device synchronize), and ``host_gap`` the host's own
non-blocked time between that wake-up (or the previous issue, whichever
is later) and this issue — API-call overheads, host compute, driver
work.  A replay reconstructs issue times as
``max(previous issue', end'(host_dep)) + host_gap``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = ["DagNode", "dag_to_json", "dag_from_json"]


@dataclass(frozen=True)
class DagNode:
    """One scheduled device operation and everything that ordered it."""

    op_id: int
    kind: str                      # "h2d" | "d2h" | "kernel" | "peer"
    label: str
    start: float
    end: float
    issue: float                   # host virtual time at issue
    nbytes: int
    streams: tuple[tuple[int, int], ...]   # (runtime_id, stream_id)
    engines: tuple[str, ...]               # engine lane names
    deps: tuple[tuple[int, str], ...]      # (predecessor op id, edge kind)
    host_dep: int | None = None            # op the host last blocked on
    host_gap: float = 0.0                  # host-only time before issue
    #: Kernel roofline legs ``(mem_time, flop_time)`` on the recording
    #: machine (launch overhead and hang excluded; ``max`` = body time).
    #: Lets the replay surrogate rescale each leg under a candidate
    #: machine exactly — None on transfers and on pre-cost recordings.
    cost: tuple[float, float] | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, start: float, end: float, issue: float) -> "DagNode":
        """A copy of this node rescheduled to new times (what-if replay)."""
        return DagNode(
            op_id=self.op_id, kind=self.kind, label=self.label,
            start=start, end=end, issue=issue, nbytes=self.nbytes,
            streams=self.streams, engines=self.engines, deps=self.deps,
            host_dep=self.host_dep, host_gap=self.host_gap, cost=self.cost,
        )


def dag_to_json(nodes: Iterable[DagNode]) -> list[dict[str, Any]]:
    """Plain-dict rows for a run manifest's ``"dag"`` key."""
    out: list[dict[str, Any]] = []
    for n in nodes:
        out.append({
            "op": n.op_id,
            "kind": n.kind,
            "label": n.label,
            "start": n.start,
            "end": n.end,
            "issue": n.issue,
            "nbytes": n.nbytes,
            "streams": [list(s) for s in n.streams],
            "engines": list(n.engines),
            "deps": [[d, k] for d, k in n.deps],
            "host_dep": n.host_dep,
            "host_gap": n.host_gap,
            "cost": (None if n.cost is None else list(n.cost)),
        })
    return out


def dag_from_json(rows: Sequence[dict[str, Any]]) -> list[DagNode]:
    """Rebuild :func:`dag_to_json` output (tolerates missing optionals)."""
    nodes: list[DagNode] = []
    for r in rows:
        nodes.append(DagNode(
            op_id=int(r["op"]),
            kind=str(r.get("kind", "?")),
            label=str(r.get("label", "")),
            start=float(r["start"]),
            end=float(r["end"]),
            issue=float(r.get("issue", r["start"])),
            nbytes=int(r.get("nbytes", 0)),
            streams=tuple((int(a), int(b)) for a, b in r.get("streams", ())),
            engines=tuple(str(e) for e in r.get("engines", ())),
            deps=tuple((int(d), str(k)) for d, k in r.get("deps", ())),
            host_dep=(None if r.get("host_dep") is None else int(r["host_dep"])),
            host_gap=float(r.get("host_gap", 0.0)),
            cost=(None if r.get("cost") is None
                  else (float(r["cost"][0]), float(r["cost"][1]))),
        ))
    nodes.sort(key=lambda n: n.op_id)
    return nodes
