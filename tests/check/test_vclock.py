"""Vector-clock primitives behind the hazard detector."""

from repro.check.vclock import VectorClock

S1 = ("stream", 0, 1)
S2 = ("stream", 0, 2)
HOST = ("host",)


class TestBasics:
    def test_empty_clock_covers_nothing(self):
        vc = VectorClock()
        assert not vc.covers(S1, 1)
        assert vc.get(S1) == 0
        assert len(vc) == 0

    def test_set_and_covers(self):
        vc = VectorClock()
        vc.set(S1, 3)
        assert vc.covers(S1, 3)
        assert vc.covers(S1, 2)
        assert not vc.covers(S1, 4)
        assert not vc.covers(S2, 1)

    def test_set_never_rewinds(self):
        vc = VectorClock()
        vc.set(S1, 5)
        vc.set(S1, 2)
        assert vc.get(S1) == 5

    def test_copy_is_independent(self):
        vc = VectorClock({S1: 1})
        cp = vc.copy()
        cp.set(S1, 9)
        cp.set(S2, 1)
        assert vc.get(S1) == 1
        assert vc.get(S2) == 0


class TestJoin:
    def test_join_is_pointwise_max(self):
        a = VectorClock({S1: 3, S2: 1})
        b = VectorClock({S1: 2, S2: 4, HOST: 1})
        a.join(b)
        assert a.get(S1) == 3
        assert a.get(S2) == 4
        assert a.get(HOST) == 1

    def test_join_returns_self_for_chaining(self):
        a = VectorClock()
        assert a.join(VectorClock({S1: 1})) is a
        assert a.get(S1) == 1

    def test_join_none_is_noop(self):
        a = VectorClock({S1: 2})
        a.join(None)
        assert a.get(S1) == 2

    def test_join_idempotent(self):
        a = VectorClock({S1: 3})
        b = a.copy()
        a.join(b).join(b)
        assert a == b


class TestCoversAny:
    def test_any_single_epoch(self):
        vc = VectorClock({S1: 5})
        assert vc.covers_any([(S1, 4)])
        assert not vc.covers_any([(S1, 6)])
        assert not vc.covers_any([])

    def test_multi_timeline_event_seen_on_either_side(self):
        # a peer copy ticks both devices' streams; observing either
        # epoch means the whole event happened-before
        vc = VectorClock({S2: 7})
        epochs = [(S1, 3), (S2, 7)]
        assert vc.covers_any(epochs)
        vc2 = VectorClock({S1: 3})
        assert vc2.covers_any(epochs)
        vc3 = VectorClock({S1: 2, S2: 6})
        assert not vc3.covers_any(epochs)


class TestEquality:
    def test_eq(self):
        assert VectorClock({S1: 1}) == VectorClock({S1: 1})
        assert VectorClock({S1: 1}) != VectorClock({S1: 2})
        assert VectorClock() != object()
