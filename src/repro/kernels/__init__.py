"""Workload kernels.

The paper evaluates two kernels — the 3-D heat solver (data
transfer-intensive, §VI-A) and NVIDIA's sin/cos benchmark kernel
(compute-intensive, §VI-B) — plus the ghost-copy and boundary-face
kernels the library launches internally.  Two extra workloads (2-D blur,
2-D wave equation) exercise the public API in the examples and widen the
test surface.

Each kernel is a :class:`~repro.cuda.kernel.KernelSpec`: a vectorised
numpy body (functional mode) plus per-cell cost metadata (timing mode).
Bodies take the buffers' arrays followed by ``lo``/``hi`` local bounds,
so the same body serves whole-array baselines and per-tile launches.
"""

from .heat import (
    HEAT_BYTES_PER_CELL,
    coeff_heat_kernel,
    coeff_heat_reference_step,
    heat_kernel,
    heat_reference_step,
)
from .compute_intensive import compute_intensive_kernel, compute_intensive_reference_step
from .exchange import ghost_copy_kernel, face_fill_kernel, face_copy_kernel
from .blur import blur_kernel, blur_reference_step
from .wave import wave_kernel, wave_reference_step
from .registry import KERNELS, get_kernel_factory

__all__ = [
    "heat_kernel",
    "heat_reference_step",
    "coeff_heat_kernel",
    "coeff_heat_reference_step",
    "HEAT_BYTES_PER_CELL",
    "compute_intensive_kernel",
    "compute_intensive_reference_step",
    "ghost_copy_kernel",
    "face_fill_kernel",
    "face_copy_kernel",
    "blur_kernel",
    "blur_reference_step",
    "wave_kernel",
    "wave_reference_step",
    "KERNELS",
    "get_kernel_factory",
]
