"""Chrome/Perfetto trace export."""

import json

from repro.sim.trace import Trace, TraceEvent


def make_trace():
    t = Trace()
    t.record("k1", "kernel", "compute", 0.0, 1e-3, stream=1, n_cells=100)
    t.record("up", "h2d", "h2d", 0.0, 5e-4, stream=2, nbytes=4096)
    return t


class TestChromeTrace:
    def test_events_have_required_fields(self):
        events = make_trace().to_chrome_trace()
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}

    def test_microsecond_conversion(self):
        events = make_trace().to_chrome_trace()
        k1 = next(e for e in events if e["name"] == "k1")
        assert k1["dur"] == 1000.0  # 1 ms -> 1000 us

    def test_lane_metadata_events(self):
        events = make_trace().to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"compute", "h2d"}

    def test_args_carry_stream_and_bytes(self):
        events = make_trace().to_chrome_trace()
        up = next(e for e in events if e["name"] == "up")
        assert up["args"]["stream"] == 2
        assert up["args"]["nbytes"] == 4096

    def test_save_is_valid_json(self, tmp_path):
        path = make_trace().save_chrome_trace(str(tmp_path / "t.json"))
        data = json.loads(open(path).read())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) == 4

    def test_empty_trace(self, tmp_path):
        path = Trace().save_chrome_trace(str(tmp_path / "e.json"))
        assert json.loads(open(path).read()) == {"traceEvents": []}


class TestCli:
    def test_machine_subcommand(self, capsys):
        from repro.__main__ import main
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "tesla-k40m" in out and "pcie" in out

    def test_kernels_subcommand(self, capsys):
        from repro.__main__ import main
        assert main(["kernels"]) == 0
        assert "heat" in capsys.readouterr().out

    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--steps", "1", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert len(data["traceEvents"]) > 0
