"""The redesigned API surface: exports, halo="auto", override warnings.

Satellites of the planner redesign: top-level exports, the ``halo=``
rename with its deprecation shim, footprint-derived ghost widths on
``add_array``, the ``launch(reads=/writes=)`` contradiction warning, and
the ports (CG, plan_bench) riding on them.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core.library import TidaAcc
from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.errors import AccessOverrideWarning, TidaError
from repro.kernels import blur_kernel, compute_intensive_kernel, heat_kernel


class TestTopLevelExports:
    def test_plan_layer_is_exported(self):
        for name in ("Program", "plan_program", "PlanReport", "ref",
                     "coeff_heat_kernel"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_exported_program_builds_and_plans(self, machine):
        prog = repro.Program((16, 16))
        with prog.sweep(2):
            prog.step(repro.heat_kernel(2), ("u_new", "u_old"),
                      params={"coef": 0.1})
            prog.swap("u_old", "u_new")
        plan = repro.plan_program(prog, machine=machine)
        assert isinstance(plan, repro.PlanReport)


class TestHaloParameter:
    def test_ghost_alias_warns_but_works(self, machine):
        lib = TidaAcc(machine, functional=True)
        with pytest.warns(DeprecationWarning, match="use halo="):
            ta = lib.add_array("u", (16, 16), n_regions=2, ghost=2)
        assert ta.ghost == (2, 2)

    def test_halo_auto_derives_from_footprints(self, machine):
        lib = TidaAcc(machine, functional=True)
        ta = lib.add_array("u", (16, 16), n_regions=2, halo="auto",
                           kernels=(heat_kernel(2), blur_kernel()))
        assert ta.ghost == (1, 1)
        flat = lib.add_array("d", (16, 16), n_regions=2, halo="auto",
                             kernels=(compute_intensive_kernel(4),))
        assert flat.ghost == (0, 0)

    def test_halo_auto_needs_kernels(self, machine):
        lib = TidaAcc(machine, functional=True)
        with pytest.raises(TidaError, match="kernels="):
            lib.add_array("u", (16, 16), n_regions=2, halo="auto")

    def test_kernels_without_auto_rejected(self, machine):
        lib = TidaAcc(machine, functional=True)
        with pytest.raises(TidaError, match="halo='auto'"):
            lib.add_array("u", (16, 16), n_regions=2, halo=1,
                          kernels=(heat_kernel(2),))

    def test_bogus_halo_string_rejected(self, machine):
        lib = TidaAcc(machine, functional=True)
        with pytest.raises(TidaError, match="'auto'"):
            lib.add_array("u", (16, 16), n_regions=2, halo="wide")


class TestAccessOverrideWarning:
    def _setup(self, machine):
        rt = CudaRuntime(machine, functional=True)
        k = KernelSpec(name="scale", body=lambda dst, src: None, bytes_per_cell=8.0,
                       arg_access=("w", "r"))
        dst = rt.malloc((8,), float)
        src = rt.malloc((8,), float)
        return rt, k, dst, src

    def test_contradicting_override_warns(self, machine):
        rt, k, dst, src = self._setup(machine)
        with pytest.warns(AccessOverrideWarning, match="contradict"):
            rt.launch(k, buffers=(dst, src), n_cells=8,
                      reads=(dst, src), writes=(dst,))

    def test_matching_override_is_silent(self, machine):
        rt, k, dst, src = self._setup(machine)
        with warnings.catch_warnings():
            warnings.simplefilter("error", AccessOverrideWarning)
            rt.launch(k, buffers=(dst, src), n_cells=8,
                      reads=(src,), writes=(dst,))

    def test_no_declaration_no_warning(self, machine):
        rt = CudaRuntime(machine, functional=True)
        k = KernelSpec(name="anon", body=lambda dst, src: None, bytes_per_cell=8.0)
        dst = rt.malloc((8,), float)
        src = rt.malloc((8,), float)
        with warnings.catch_warnings():
            warnings.simplefilter("error", AccessOverrideWarning)
            rt.launch(k, buffers=(dst, src), n_cells=8,
                      reads=(dst,), writes=(dst,))


class TestRunProgram:
    def test_plan_and_knobs_are_exclusive(self, machine):
        lib = TidaAcc(machine, functional=True)
        prog = repro.Program((16, 16))
        prog.step(heat_kernel(2), ("u_new", "u_old"))
        plan = repro.plan_program(prog, machine=machine)
        with pytest.raises(TidaError, match="not both"):
            lib.run_program(prog, plan=plan, n_regions=4)

    def test_unknown_input_rejected(self, machine):
        from repro.errors import PlanError

        lib = TidaAcc(machine, functional=True)
        prog = repro.Program((16, 16))
        prog.step(compute_intensive_kernel(2), ("data",),
                  params={"kernel_iteration": 2})
        with pytest.raises(PlanError, match="unplanned"):
            lib.run_program(prog, inputs={"nope": np.zeros((16, 16))})


class TestCgHaloAuto:
    def test_auto_matches_pinned_bit_for_bit(self, machine):
        from repro.apps.cg import TiledCG

        rng = np.random.default_rng(5)
        b = rng.standard_normal((7, 6))
        solved = {}
        for label, halo in (("auto", "auto"), ("pinned", 1)):
            solver = TiledCG((7, 6), machine=machine, n_regions=2,
                             functional=True, halo=halo)
            solved[label] = solver.solve(b, tol=1e-10, max_iterations=200)
        assert solved["auto"].converged
        assert solved["auto"].x.tobytes() == solved["pinned"].x.tobytes()

    def test_derived_ghost_width_is_one(self, machine):
        from repro.apps.cg import TiledCG

        solver = TiledCG((8, 8), machine=machine, n_regions=2, functional=True)
        assert all(solver.lib.field(n).ghost == (1, 1) for n in TiledCG.FIELDS)

    def test_cg_program_runs_to_convergence(self, machine):
        from repro.apps.cg import assemble_laplacian_dense, cg_program

        shape = (6, 5)
        rng = np.random.default_rng(3)
        b = rng.standard_normal(shape)
        prog = cg_program(shape, max_iterations=200, tol=1e-10)
        lib = TidaAcc(machine, functional=True)
        threshold = (1e-10 ** 2) * float((b * b).sum())
        run = lib.run_program(
            prog, n_regions=2,
            inputs={"r": b, "p": b, "x": np.zeros(shape)},
            env={"threshold": threshold},
        )
        x = lib.gather("x")
        oracle = np.linalg.solve(assemble_laplacian_dense(shape),
                                 b.ravel()).reshape(shape)
        assert run.env["rr"] <= threshold
        np.testing.assert_allclose(x, oracle, rtol=1e-6, atol=1e-8)


class TestPlanBench:
    def test_savings_and_cg_legs(self, tmp_path):
        from repro.bench.plan_bench import cg_check, measure_savings

        failures, _detail = cg_check()
        assert failures == []
        savings = measure_savings(dict(
            shape=(32, 16, 16), steps=3, n_regions=8, n_slots=2,
            device_memory_limit=98_304, eviction="lru",
            functional=True, check="observe",
        ))
        assert savings["byte_identical"]
        assert savings["writebacks_skipped"] > 0
        assert savings["halo_bytes_saved"] > 0
