"""Timing-only mode: bit-identical schedules, no numerics.

The tentpole property of the timing fast path (``mode="timing"``): a
timing-only run executes the exact same scheduling decisions as a
functional run — its trace, causal DAG, and non-numeric metric counters
are *byte-identical* — while skipping every array operation and
host/device copy.  The differential here asserts that identity on each
workload family and, property-based, across the whole scheduling knob
space (eviction × prefetch depth × slot count × visit order × transfer
faults with retries).

The flip side: a timing run has no numbers.  Requesting them —
``gather``, ``scatter``, a buffer's ``.array`` — must raise
:class:`~repro.errors.TimingModeError` naming the fix, never return
garbage silently.
"""

import json

import conftest
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.tida_runners import (
    run_tida_compute,
    run_tida_heat,
    run_tida_wave,
)
from repro.check.dag import dag_to_json
from repro.core.library import TidaAcc
from repro.cuda.runtime import CudaRuntime, _resolve_mode
from repro.errors import CudaInvalidValueError, TimingModeError
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.multi.heat import run_multi_gpu_heat

WORKLOADS = {
    "heat": (run_tida_heat, dict(shape=(32, 16, 16), steps=2, n_regions=8)),
    "wave": (run_tida_wave, dict(shape=(48, 48), steps=3, n_regions=8)),
    "limited-memory": (run_tida_compute,
                       dict(shape=(64, 16, 16), steps=2, n_regions=8,
                            n_slots=3, device_memory_limit=70_000)),
    "multi-gpu": (run_multi_gpu_heat,
                  dict(shape=(32, 16, 16), steps=2, n_devices=2,
                       regions_per_device=4)),
}


def fingerprint(res):
    """Trace + DAG + counters + elapsed: what both modes must agree on."""
    return (
        json.dumps(res.trace.to_chrome_trace(), sort_keys=True),
        json.dumps(dag_to_json(res.dag or []), sort_keys=True),
        json.dumps(res.metrics["counters"], sort_keys=True),
        res.elapsed,
    )


class TestModeResolution:
    def test_mode_overrides_functional_flag(self, machine):
        rt = CudaRuntime(machine, functional=True, mode="timing")
        assert rt.functional is False
        assert rt.mode == "timing"

    def test_mode_none_defers_to_functional(self, machine):
        assert CudaRuntime(machine, functional=True).mode == "functional"
        assert CudaRuntime(machine, functional=False).mode == "timing"

    def test_unknown_mode_rejected(self):
        with pytest.raises(CudaInvalidValueError, match="mode"):
            _resolve_mode(True, "replay")  # replay is not a *runtime* mode

    def test_library_exposes_mode(self, machine):
        assert TidaAcc(machine, mode="timing").mode == "timing"
        assert TidaAcc(machine, functional=True).mode == "functional"


class TestByteIdenticalSchedules:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_trace_dag_metrics_identical(self, name):
        fn, kw = WORKLOADS[name]
        functional = fingerprint(
            fn(mode="functional", check="observe", **kw))
        timing = fingerprint(fn(mode="timing", check="observe", **kw))
        for part, a, b in zip(("trace", "dag", "counters", "elapsed"),
                              functional, timing):
            assert a == b, f"{name}: {part} differs between modes"

    def test_timing_run_reports_its_mode(self):
        fn, kw = WORKLOADS["heat"]
        assert fn(mode="timing", **kw).meta["mode"] == "timing"
        assert fn(mode="functional", **kw).meta["mode"] == "functional"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cfg=conftest.schedule_configs(),
       faults=st.sampled_from([None, "h2d:p=0.1; seed=9",
                               "copy:p=0.08; launch:p=0.04; seed=3"]))
def test_modes_identical_across_schedule_space(cfg, faults):
    """Functional vs timing differential over the whole knob space.

    Any draw — eviction policy, prefetch depth, slot count, shuffled
    order, fault plan with retries — must schedule identically in both
    modes; fault injection and recovery decisions are part of the
    schedule, so they too must not depend on numerics being present.
    """
    base = dict(
        shape=(64, 16, 16), steps=2, n_regions=8,
        device_memory_limit=70_000, check="observe",
        eviction=cfg["eviction"], prefetch_depth=cfg["prefetch_depth"],
        n_slots=cfg["n_slots"],
        order="sequential" if cfg["order_seed"] is None else "shuffled",
        order_seed=cfg["order_seed"],
    )
    if faults is not None:
        base["retry"] = RetryPolicy(max_attempts=8)
    fps = []
    for mode in ("functional", "timing"):
        kw = dict(base)
        if faults is not None:
            # each run needs a fresh plan: plans are stateful iterators
            kw["faults"] = FaultPlan.from_spec(faults)
        fps.append(fingerprint(run_tida_compute(mode=mode, **kw)))
    for part, a, b in zip(("trace", "dag", "counters", "elapsed"), *fps):
        assert a == b, f"{part} differs between modes for {cfg}, {faults}"


class TestTimingModeRefusesNumerics:
    """A timing run must fail loudly when numbers are requested."""

    def test_gather_raises(self, machine):
        lib = TidaAcc(machine, mode="timing")
        lib.add_array("u", (32, 32), n_regions=4, halo=0)
        with pytest.raises(TimingModeError, match="timing"):
            lib.gather("u")

    def test_scatter_raises(self, machine):
        import numpy as np

        lib = TidaAcc(machine, mode="timing")
        lib.add_array("u", (32, 32), n_regions=4, halo=0)
        with pytest.raises(TimingModeError, match='mode="timing"'):
            lib.scatter("u", np.zeros((32, 32)))

    def test_device_buffer_array_raises(self, machine):
        rt = CudaRuntime(machine, mode="timing")
        buf = rt.malloc(128, label="d")
        with pytest.raises(TimingModeError, match="functional"):
            buf.array

    def test_host_buffer_array_raises(self, machine):
        rt = CudaRuntime(machine, mode="timing")
        buf = rt.malloc_pinned(128, label="h")
        with pytest.raises(TimingModeError, match="functional"):
            buf.array

    def test_error_is_a_cuda_invalid_value(self):
        # callers catching the runtime's argument errors keep working
        assert issubclass(TimingModeError, CudaInvalidValueError)

    def test_functional_mode_unaffected(self, machine):
        lib = TidaAcc(machine, mode="functional")
        lib.add_array("u", (16, 16), n_regions=4, halo=0)
        assert lib.gather("u").shape == (16, 16)
