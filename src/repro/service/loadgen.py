"""Seeded load generator: heavy-traffic arrival patterns for the service.

Replays deterministic multi-tenant traffic against a
:class:`~repro.service.Service`:

* **open loop** — arrival times are drawn up front (Poisson process or
  Poisson bursts) and jobs are submitted with ``at=``; tenants keep
  submitting regardless of completions, which is what drives the
  contention the QoS machinery exists for;
* **closed loop** — each tenant keeps at most one job in flight and
  thinks for an exponential gap after every completion, the classic
  interactive-tenant model.

Everything is derived from one ``numpy`` generator seeded explicitly, so
the same seed reproduces the same arrivals, tenants, workloads, and
initial data — the property the ``service.jsonl`` byte-determinism test
pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..errors import ServiceError
from .workloads import WORKLOADS


@dataclass(frozen=True)
class Arrival:
    """One generated job submission."""

    t: float                 # virtual submission time
    tenant: str
    workload: str
    seed: int                # perturbs the job's initial condition
    kwargs: tuple            # extra build_workload knobs, as sorted items


@dataclass(frozen=True)
class TrafficPattern:
    """Knobs of the arrival process."""

    mean_gap: float = 2e-3          # mean inter-arrival gap, virtual seconds
    burst_size: int = 1             # arrivals per burst (1 = plain Poisson)
    burst_gap: float = 1e-5         # gap between arrivals inside one burst
    start: float = 0.0


class LoadGenerator:
    """Deterministic arrival-pattern generator over a tenant set."""

    def __init__(
        self,
        seed: int,
        tenants: Sequence[str],
        *,
        workloads: Sequence[str] = ("heat", "compute"),
        pattern: TrafficPattern | None = None,
        workload_kwargs: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        if not tenants:
            raise ServiceError("load generator needs at least one tenant",
                               reason="no-tenants")
        for w in workloads:
            if w not in WORKLOADS:
                raise ServiceError(
                    f"unknown workload {w!r}; have {', '.join(WORKLOADS)}",
                    reason="unknown-workload",
                )
        self.seed = int(seed)
        self.tenants = tuple(tenants)
        self.workloads = tuple(workloads)
        self.pattern = pattern if pattern is not None else TrafficPattern()
        self.workload_kwargs = dict(workload_kwargs or {})

    def _job_kwargs(self, workload: str) -> tuple:
        return tuple(sorted(self.workload_kwargs.get(workload, {}).items()))

    def arrivals(self, n_jobs: int) -> tuple[Arrival, ...]:
        """Open-loop arrival list: Poisson process (with optional bursts).

        Bursts model the "a tenant submits a batch" pattern: gaps
        *between* bursts are exponential with the configured mean, gaps
        *inside* a burst are a fixed tiny spacing, and each burst stays
        on one tenant (a burst is one tenant's batch).
        """
        if n_jobs < 1:
            raise ServiceError(f"need at least one job, got {n_jobs}",
                               reason="bad-load")
        rng = np.random.default_rng(self.seed)
        p = self.pattern
        out: list[Arrival] = []
        t = p.start
        while len(out) < n_jobs:
            t += float(rng.exponential(p.mean_gap))
            tenant = self.tenants[int(rng.integers(len(self.tenants)))]
            for i in range(min(p.burst_size, n_jobs - len(out))):
                workload = self.workloads[int(rng.integers(len(self.workloads)))]
                out.append(Arrival(
                    t=t + i * p.burst_gap,
                    tenant=tenant,
                    workload=workload,
                    seed=int(rng.integers(2**31)),
                    kwargs=self._job_kwargs(workload),
                ))
        return tuple(out)

    def think_time(self, rng: np.random.Generator) -> float:
        """One closed-loop think gap (exponential, same mean as arrivals)."""
        return float(rng.exponential(self.pattern.mean_gap))

    def replay_open(self, service, n_jobs: int) -> list[str]:
        """Submit ``n_jobs`` open-loop arrivals; returns the job ids."""
        ids = []
        for a in self.arrivals(n_jobs):
            ids.append(service.submit(
                a.tenant, workload=a.workload, at=a.t,
                workload_kwargs=dict(a.kwargs, seed=a.seed),
            ))
        return ids

    def replay_closed(self, service, jobs_per_tenant: int) -> list[str]:
        """Closed loop: one job in flight per tenant, think-gap resubmits.

        Submits the first wave, then chains follow-ups from the
        service's completion hook.  Returns the ids of the first wave
        (later ids appear in the service report).
        """
        rng = np.random.default_rng(self.seed)
        remaining = {t: jobs_per_tenant - 1 for t in self.tenants}
        ids = []

        def on_finish(result, svc) -> None:
            tenant = result.tenant
            if remaining.get(tenant, 0) <= 0:
                return
            remaining[tenant] -= 1
            workload = self.workloads[int(rng.integers(len(self.workloads)))]
            svc.submit(
                tenant, workload=workload,
                at=svc.now + self.think_time(rng),
                workload_kwargs=dict(self._job_kwargs(workload),
                                     seed=int(rng.integers(2**31))),
            )

        service.on_finish = on_finish
        for tenant in self.tenants:
            workload = self.workloads[int(rng.integers(len(self.workloads)))]
            ids.append(service.submit(
                tenant, workload=workload,
                at=self.pattern.start + self.think_time(rng),
                workload_kwargs=dict(self._job_kwargs(workload),
                                     seed=int(rng.integers(2**31))),
            ))
        return ids
