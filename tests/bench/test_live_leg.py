"""Tests for the live-telemetry harness leg (repro.bench.live).

The full ``python -m repro.bench.live`` sweep runs in CI; here each
mechanism is exercised with fast, shrunken legs.
"""

import json

from repro.baselines.tida_runners import run_tida_heat
from repro.bench.live import Leg, _legs, _manifest, run_leg
from repro.errors import FaultError
from repro.faults import FaultPlan, FaultRule, RetryPolicy

SHAPE = (64, 64, 64)


def nominal_leg(name="mini_nominal"):
    return Leg(name, 1e-3,
               lambda t: run_tida_heat(shape=SHAPE, steps=2, n_regions=4,
                                       functional=False, telemetry=t))


def incident_leg():
    return Leg("mini_incident", 1e-3,
               lambda t: run_tida_heat(
                   shape=SHAPE, steps=2, n_regions=4,
                   faults=FaultPlan([FaultRule(op="h2d")]),
                   retry=RetryPolicy(max_attempts=2),
                   functional=False, telemetry=t),
               nominal=False, expect_error=FaultError, expect_incident=True)


class TestRunLeg:
    def test_nominal_leg_passes_and_persists(self, tmp_path):
        entry = run_leg(nominal_leg(), tmp_path)
        assert entry["problems"] == []
        assert entry["samples"] > 0 and entry["alerts"] == []
        assert entry["health"]["status"] == "ok"
        session = tmp_path / "telemetry_mini_nominal.jsonl"
        assert session.exists()
        first = json.loads(session.read_text().splitlines()[0])
        assert first["schema"] == "repro-telemetry/1"

    def test_incident_leg_dumps_and_passes(self, tmp_path):
        entry = run_leg(incident_leg(), tmp_path)
        assert entry["problems"] == []
        assert entry["error"] == "FaultError"
        assert len(entry["incidents"]) == 1
        incident = json.loads((tmp_path / "incidents_mini_incident"
                               / "incident.json").read_text())
        assert incident["schema"] == "repro-incident/1"

    def test_unexpected_error_is_flagged(self, tmp_path):
        leg = Leg("mini_dies", 1e-3,
                  lambda t: run_tida_heat(
                      shape=SHAPE, steps=2, n_regions=4,
                      faults=FaultPlan([FaultRule(op="h2d")]),
                      retry=RetryPolicy(max_attempts=2),
                      functional=False, telemetry=t))
        entry = run_leg(leg, tmp_path)
        assert any("died with FaultError" in p for p in entry["problems"])

    def test_missing_expected_alert_is_flagged(self, tmp_path):
        leg = Leg("mini_expects", 1e-3,
                  nominal_leg().run,
                  expect_alerts=frozenset({"overlap_collapse"}), nominal=False)
        entry = run_leg(leg, tmp_path)
        assert any("never fired" in p for p in entry["problems"])


class TestManifest:
    def test_shape_matches_report_cli_contract(self, tmp_path):
        entries = [run_leg(nominal_leg(), tmp_path)]
        manifest = _manifest(entries)
        assert manifest["schema"] == "repro-run-manifest/1"
        assert set(manifest["legs"]) == {"mini_nominal"}
        assert manifest["alerts"] == []
        assert manifest["health"]["mini_nominal"]["status"] == "ok"

    def test_leg_catalog_covers_expected_classes(self):
        legs = _legs()
        by_name = {leg.name: leg for leg in legs}
        assert sum(leg.nominal for leg in legs) == 4
        assert by_name["overlap_collapse"].expect_alerts == {"overlap_collapse"}
        assert by_name["cache_thrash"].expect_alerts == {"cache_thrash"}
        assert by_name["retry_storm"].expect_alerts == {"retry_storm"}
        assert by_name["incident_fault"].expect_incident
