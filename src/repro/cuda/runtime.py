"""The simulated CUDA runtime: memory, streams, copies, kernels, events.

Semantics reproduced from the real runtime (and relied on by the paper):

* **streams are FIFO**: operations issued to one stream execute in issue
  order; different streams may overlap (§IV-B.2);
* **two copy engines** (K40m): one H2D and one D2H DMA engine, each FIFO,
  so an upload, a download and a kernel can all proceed simultaneously —
  the mechanism behind Figs. 3 and 7;
* **pinned vs pageable**: ``cudaMemcpyAsync`` from/to pageable memory is
  synchronous with respect to the host and runs at staging bandwidth;
  only pinned transfers overlap (§II-B, §II-C);
* **managed memory** (Kepler): whole allocations migrate to the device at
  kernel launch and back on host access, at a fraction of pinned
  bandwidth plus a per-launch cost (:mod:`repro.cuda.uvm`);
* **kernel launches** cost host API time plus a device-side launch
  overhead serialized on the compute engine, so many small kernels are
  visibly worse than one large one (the paper's §II-C observation about
  OpenACC boundary kernels).

Every operation is recorded in a :class:`~repro.sim.trace.Trace`; the
host clock (`now`) is the virtual wall-clock the benches measure with.
"""

from __future__ import annotations

import itertools
import warnings
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..config import DEFAULT_MACHINE, MachineSpec, MathModel
from ..errors import (
    AccessOverrideWarning,
    CudaInvalidResourceHandleError,
    CudaInvalidValueError,
    CudaMemoryAllocationError,
)
from ..faults.plan import FaultPlan
from ..obs.metrics import MetricsRegistry
from ..sim.device import DeviceBuffer, DeviceMemoryPool
from ..sim.engine import EventCalendar, FifoEngine, HostClock
from ..sim.hostmem import HostBuffer
from ..sim.trace import Trace
from .event import Event
from .kernel import KernelSpec, LaunchConfig
from .stream import Stream
from .uvm import DEVICE, HOST, ManagedBuffer

if TYPE_CHECKING:  # pragma: no cover
    from ..check.hazards import HazardChecker
    from ..obs.live.bus import TelemetryBus

_runtime_ids = itertools.count(1)

#: The execution modes a runtime (or any layer that forwards ``mode=``)
#: accepts.  ``"replay"`` is *not* a runtime mode — replay happens in
#: :mod:`repro.obs.critpath` on a recorded DAG, with no runtime at all.
EXECUTION_MODES = ("functional", "timing")


def _resolve_mode(functional: bool, mode: str | None) -> bool:
    """Collapse the (functional, mode) pair to the functional flag.

    ``mode`` names the switch explicitly ("functional"/"timing") and wins
    over the boolean when both are given; ``None`` defers to the boolean.
    """
    if mode is None:
        return bool(functional)
    if mode not in EXECUTION_MODES:
        raise CudaInvalidValueError(
            f"unknown execution mode {mode!r}: expected one of {EXECUTION_MODES} "
            "(replay mode operates on recorded DAGs, see repro.obs.critpath)"
        )
    return mode == "functional"


class CudaRuntime:
    """One simulated device context.

    Parameters
    ----------
    machine:
        Hardware specification (defaults to the paper's K40m testbed).
    functional:
        If True, allocations carry numpy arrays and kernel bodies really
        execute (use for correctness tests at small sizes).  If False,
        only virtual time flows (use for paper-sized benches).
    mode:
        The same switch, by name: ``"functional"`` or ``"timing"``.
        Timing-only runs produce byte-identical traces, DAGs, metrics,
        and hazard streams to functional runs — only the array math and
        host/device payload copies are skipped (reading values back
        raises :class:`~repro.errors.TimingModeError`).  ``None`` (the
        default) defers to ``functional``; when given, it overrides it.
    device_memory_limit:
        Optional cap (bytes) on allocatable device memory, below the
        hardware size — how the paper emulates the limited-memory case
        of Figs. 7/8.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`;
        by default each runtime owns one, exposed as ``runtime.metrics``.
    faults:
        Optional :class:`~repro.faults.FaultPlan` consulted at every
        injectable call site (copies, launches, allocations, syncs);
        also settable later via :meth:`set_fault_plan`.
    check:
        Happens-before hazard checking mode: ``"observe"`` records
        hazards (``check.*`` metrics + ``hazard`` trace marks),
        ``"strict"`` additionally raises
        :class:`~repro.errors.HazardError` on racy pairs, ``False`` is
        off.  The default ``None`` defers to
        :func:`repro.check.set_default_mode` / ``REPRO_CHECK``.
    checker:
        An existing :class:`~repro.check.hazards.HazardChecker` to share
        (the multi-GPU group gives all devices one checker so peer
        copies are checked across devices); overrides ``check``.
    telemetry:
        Optional :class:`~repro.obs.live.TelemetryBus` to attach — the
        bus samples this runtime's registry on a virtual-clock cadence
        and receives fault/hazard incident notifications; the runtime
        then answers :meth:`health` from it.
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        *,
        functional: bool = True,
        mode: str | None = None,
        device_memory_limit: int | None = None,
        clock: HostClock | None = None,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        lane_prefix: str = "",
        faults: FaultPlan | None = None,
        check: str | bool | None = None,
        checker: "HazardChecker | None" = None,
        telemetry: "TelemetryBus | None" = None,
    ) -> None:
        self.machine = machine if machine is not None else DEFAULT_MACHINE
        self.functional = _resolve_mode(functional, mode)
        capacity = self.machine.gpu.allocatable_bytes
        if device_memory_limit is not None:
            if device_memory_limit <= 0:
                raise CudaInvalidValueError("device_memory_limit must be positive")
            capacity = min(capacity, device_memory_limit)
        self.pool = DeviceMemoryPool(capacity)
        # clock and trace may be shared across several runtimes — the
        # multi-GPU setup has one host thread driving N devices
        self.clock = clock if clock is not None else HostClock()
        self.trace = trace if trace is not None else Trace()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.lane_prefix = lane_prefix
        # hot-path instruments, resolved once (no dict lookup per call)
        m = self.metrics
        self._m_api_calls = m.counter("cuda.api_calls")
        self._m_h2d_bytes = m.counter("cuda.h2d_bytes")
        self._m_d2h_bytes = m.counter("cuda.d2h_bytes")
        self._m_h2d_copies = m.counter("cuda.h2d_copies")
        self._m_d2h_copies = m.counter("cuda.d2h_copies")
        self._m_pageable_sync = m.counter("cuda.pageable_sync_copies")
        self._m_stall_s = m.counter("cuda.stall_seconds")
        self._m_launches = m.counter("cuda.kernel_launches")
        self._m_copy_nbytes = m.histogram("cuda.copy_nbytes")
        self._m_kernel_cells = m.histogram("cuda.kernel_cells")
        # outstanding-work backlog: one calendar covering every engine
        # (drives the Perfetto queue-depth counter tracks) and stream
        # (drives gauges) — O(log n) per op instead of per-key scans
        self._pending = EventCalendar()
        self.compute_engine = FifoEngine(f"{lane_prefix}compute")
        self.h2d_engine = FifoEngine(f"{lane_prefix}h2d")
        if self.machine.gpu.copy_engines == 2:
            self.d2h_engine = FifoEngine(f"{lane_prefix}d2h")
        else:
            self.d2h_engine = self.h2d_engine
        self._runtime_id = next(_runtime_ids)
        self.default_stream = Stream(0, self._runtime_id)
        self._streams: dict[int, Stream] = {0: self.default_stream}
        self._next_stream_id = 1
        self._managed_reservations: dict[int, DeviceBuffer] = {}
        self.faults: FaultPlan | None = None
        if faults is not None:
            self.set_fault_plan(faults)
        if checker is not None:
            self.checker = checker
        else:
            # imported lazily: most runtimes never enable checking
            from ..check.hazards import resolve_checker

            self.checker = resolve_checker(check, trace=self.trace, metrics=self.metrics)
        self.telemetry = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # -- live telemetry -----------------------------------------------------

    def attach_telemetry(self, bus) -> None:
        """Attach a :class:`~repro.obs.live.TelemetryBus` to this runtime.

        The bus starts sampling from the current clock position; the
        hazard checker (if any) is given the bus so strict-mode raises
        trigger flight-recorder dumps.
        """
        bus.attach(self)
        self.telemetry = bus
        if self.checker is not None:
            self.checker.telemetry = bus

    def health(self) -> dict:
        """A poll-friendly health snapshot (see ``TelemetryBus.health``).

        Without an attached bus this still answers — with
        ``monitored: False`` and the clock position — so a service layer
        can poll every runtime uniformly.
        """
        if self.telemetry is not None:
            return self.telemetry.health()
        return {
            "status": "unmonitored",
            "monitored": False,
            "now": self.clock.now,
            "samples": 0,
            "alerts": {"info": 0, "warning": 0, "critical": 0},
            "incidents": 0,
        }

    def notify_incident(self, kind: str, error: Exception | None = None, **info) -> None:
        """Report a hard failure to the telemetry bus (no-op unmonitored)."""
        if self.telemetry is not None:
            self.telemetry.notify_incident(
                kind, error=error, now=self.clock.now, **info
            )

    # -- fault injection ----------------------------------------------------

    def set_fault_plan(self, plan: FaultPlan | None) -> None:
        """Arm (or disarm, with ``None``) a fault plan on this runtime."""
        self.faults = plan

    def _inject(self, op: str, label: str) -> float:
        """Consult the fault plan for operation ``op``.

        Returns extra *hang* seconds to charge (0.0 normally); raises the
        rule's typed :class:`~repro.errors.CudaError` for error faults —
        before any engine/stream state was mutated, so a retry can simply
        re-issue the call.  Every injection is counted and trace-marked.
        """
        plan = self.faults
        if plan is None:
            return 0.0
        inj = plan.draw(op, label, self.clock.now)
        if inj is None:
            return 0.0
        self.metrics.inc("faults.injected")
        self.metrics.inc(f"faults.injected.{op}")
        self.trace.mark(
            "fault-inject", self.clock.now,
            op=op, label=label, kind=inj.kind, rule=inj.rule_index,
        )
        if inj.kind == "hang":
            self.metrics.inc("faults.hang_seconds", inj.hang_seconds)
            return inj.hang_seconds
        raise inj.make_error()

    # -- host clock -------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"functional"`` or ``"timing"`` (see the constructor)."""
        return "functional" if self.functional else "timing"

    @property
    def now(self) -> float:
        """Current host virtual time, seconds."""
        return self.clock.now

    def _api(self) -> None:
        """Charge one runtime API call on the host."""
        self._m_api_calls.inc()
        self.clock.advance(self.machine.cpu.api_call_overhead)

    def _host_stall(self, target: float, *, stream: Stream | None = None) -> float:
        """Block the host until ``target``, accounting the stall time
        (total and, when known, per stream)."""
        stall = target - self.clock.now
        if stall > 0:
            self._m_stall_s.inc(stall)
            if stream is not None:
                self.metrics.inc(
                    f"cuda.{self.lane_prefix}stream.{stream.stream_id}.stall_seconds",
                    stall,
                )
        return self.clock.advance_to(target)

    def _note_queue_op(self, stream: Stream, engine: FifoEngine, end: float) -> None:
        """Track issued-but-incomplete work per engine and per stream.

        The engine backlog is sampled into a Perfetto counter track; the
        per-stream depth feeds a gauge with a high-water mark.  One
        :class:`~repro.sim.engine.EventCalendar` holds both kinds of
        completion event: a single heap prune retires everything done by
        ``now``, and the per-key depths it maintains equal what the old
        per-engine/per-stream deque scans reported (completion times are
        monotone within one FIFO engine/stream), so the recorded samples
        are unchanged.
        """
        now = self.clock.now
        pending = self._pending
        pending.prune(now)
        depth = pending.push(("e", engine.name), end)
        self.trace.record_counter(f"queue_depth:{engine.name}", now, depth)
        sdepth = pending.push(("s", stream.stream_id), end)
        self.metrics.gauge(
            f"cuda.{self.lane_prefix}stream.{stream.stream_id}.queue_depth"
        ).set(sdepth)

    @staticmethod
    def _after_deps(after: "float | Sequence[float]") -> tuple[tuple[float, ...], float]:
        """Normalize an ``after=`` argument to (components, effective max).

        Call sites may pass the individual completion times an operation
        depends on instead of collapsing them with ``max`` themselves —
        scheduling uses the max, while the hazard checker resolves each
        component to the operation that produced it.
        """
        if isinstance(after, (int, float)):
            a = float(after)
            return (a,), a
        deps = tuple(float(a) for a in after)
        return deps, (max(deps) if deps else 0.0)

    def host_compute(self, name: str, duration: float, **meta: Any) -> float:
        """Account for host-side work (e.g. ghost-index computation, §IV-B.6)."""
        if duration < 0:
            raise CudaInvalidValueError("host work duration must be >= 0")
        start = self.clock.now
        end = self.clock.advance(duration)
        self.trace.record(name, "host", "host", start, end, **meta)
        return end

    # -- memory management --------------------------------------------------

    def malloc(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        label: str = "",
    ) -> DeviceBuffer:
        """``cudaMalloc``: allocate device memory."""
        self._api()
        hang = self._inject("malloc", label)
        if hang:
            self.clock.advance(hang)
        if self.faults is not None:
            # OOM-spike rules shrink the apparently free memory
            pressure = self.faults.memory_pressure(self.clock.now)
            if pressure > 0:
                nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
                free = self.pool.free_bytes
                if nbytes > free - pressure:
                    raise CudaMemoryAllocationError(
                        f"out of device memory allocating {nbytes} bytes "
                        f"({free} free, {pressure} under injected pressure)"
                    )
        return self.pool.allocate(shape, dtype, functional=self.functional, label=label)

    def free(self, buf: DeviceBuffer) -> None:
        """``cudaFree``."""
        self._api()
        self.pool.free(buf)
        if self.checker is not None:
            self.checker.forget(buf)

    def malloc_pinned(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        fill: float | None = None,
        label: str = "",
    ) -> HostBuffer:
        """``cudaMallocHost``: pinned (page-locked) host memory."""
        self._api()
        return HostBuffer(
            shape, dtype, pinned=True, functional=self.functional, fill=fill, label=label
        )

    def malloc_pageable(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        fill: float | None = None,
        label: str = "",
    ) -> HostBuffer:
        """Ordinary pageable host allocation (plain ``malloc``/``new``)."""
        return HostBuffer(
            shape, dtype, pinned=False, functional=self.functional, fill=fill, label=label
        )

    def malloc_host(self, *args: Any, **kwargs: Any) -> HostBuffer:
        """Deprecated alias for :meth:`malloc_pinned`."""
        warnings.warn(
            "CudaRuntime.malloc_host is deprecated; use malloc_pinned",
            DeprecationWarning, stacklevel=2,
        )
        return self.malloc_pinned(*args, **kwargs)

    def host_malloc(self, *args: Any, **kwargs: Any) -> HostBuffer:
        """Deprecated alias for :meth:`malloc_pageable`."""
        warnings.warn(
            "CudaRuntime.host_malloc is deprecated; use malloc_pageable",
            DeprecationWarning, stacklevel=2,
        )
        return self.malloc_pageable(*args, **kwargs)

    def free_host(self, buf: HostBuffer) -> None:
        """``cudaFreeHost`` / ``free``."""
        self._api()
        buf.free()
        if self.checker is not None:
            self.checker.forget(buf)

    def malloc_managed(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        fill: float | None = None,
        label: str = "",
    ) -> ManagedBuffer:
        """``cudaMallocManaged``: unified memory.

        On Kepler, managed allocations reserve device memory up front (no
        oversubscription), so the allocation is accounted against the pool.
        """
        self._api()
        buf = ManagedBuffer(shape, dtype, functional=self.functional, fill=fill, label=label)
        reservation = self.pool.allocate(
            buf.shape, buf.dtype, functional=False, label=f"managed:{label}"
        )
        self._managed_reservations[id(buf)] = reservation
        return buf

    def free_managed(self, buf: ManagedBuffer) -> None:
        self._api()
        reservation = self._managed_reservations.pop(id(buf), None)
        if reservation is None:
            raise CudaInvalidValueError("managed buffer not owned by this runtime (or already freed)")
        self.pool.free(reservation)
        buf._mark_freed()
        if self.checker is not None:
            self.checker.forget(buf)

    def mem_get_info(self) -> tuple[int, int]:
        """``cudaMemGetInfo``: (free, total) allocatable device bytes."""
        self._api()
        return self.pool.mem_get_info()

    # -- streams ------------------------------------------------------------

    def create_stream(self) -> Stream:
        """``cudaStreamCreate`` (also backs OpenACC activity queues)."""
        self._api()
        stream = Stream(self._next_stream_id, self._runtime_id)
        self._streams[self._next_stream_id] = stream
        self._next_stream_id += 1
        return stream

    def destroy_stream(self, stream: Stream) -> None:
        """``cudaStreamDestroy`` (blocks until the stream drains, as CUDA does)."""
        self._check_stream(stream)
        if stream.is_default:
            raise CudaInvalidValueError("the default stream cannot be destroyed")
        self._api()
        self._host_stall(stream.tail, stream=stream)
        if self.checker is not None:
            self.checker.host_sync_stream(self._runtime_id, stream)
        stream._destroy()
        del self._streams[stream.stream_id]

    def _check_stream(self, stream: Stream) -> None:
        if not isinstance(stream, Stream):
            raise CudaInvalidResourceHandleError(f"not a stream: {stream!r}")
        stream._check_usable(self._runtime_id)

    @property
    def streams(self) -> tuple[Stream, ...]:
        return tuple(self._streams.values())

    def reset_schedule(self, *, drop_dag: bool = False) -> None:
        """Rewind all scheduling state between harness repetitions.

        Repetition drivers used to reset only the engines
        (:meth:`~repro.sim.engine.FifoEngine.reset`), which left stream
        tails and the pending-work calendar stale: the next repetition's
        operations were scheduled after completion times of the previous
        run, corrupting per-repetition ``busy_time`` and queue-depth
        accounting.  This clears engines, stream tails, the backlog
        calendar, and the hazard checker's per-run state together.
        Allocations, metrics, and the trace are kept (repetitions
        accumulate there by design); the host clock keeps advancing.

        ``drop_dag=True`` also discards the hazard checker's recorded DAG
        and hazard list — required between back-to-back *independent*
        jobs on one runtime (the service's serialized path), where one
        job's record must not leak into the next job's report.
        """
        # d2h may alias h2d (single-copy-engine parts): reset each once
        for engine in {id(e): e for e in (
            self.compute_engine, self.h2d_engine, self.d2h_engine
        )}.values():
            engine.reset()
        for stream in self._streams.values():
            stream._reset()
        self._pending.clear()
        if self.checker is not None:
            self.checker.reset_schedule(drop_dag=drop_dag)

    # -- copies ---------------------------------------------------------------

    @staticmethod
    def _classify_copy(dst: Any, src: Any) -> tuple[str, HostBuffer]:
        """Return (direction, host-side buffer) for a host<->device copy."""
        if isinstance(dst, DeviceBuffer) and isinstance(src, HostBuffer):
            return "h2d", src
        if isinstance(dst, HostBuffer) and isinstance(src, DeviceBuffer):
            return "d2h", dst
        raise CudaInvalidValueError(
            f"unsupported copy {type(src).__name__} -> {type(dst).__name__}; "
            "expected one host buffer and one device buffer"
        )

    def _do_functional_copy(self, dst: Any, src: Any) -> None:
        if not self.functional:
            return
        dst_arr, src_arr = dst.array, src.array
        if dst_arr.size != src_arr.size:
            raise CudaInvalidValueError(
                f"copy size mismatch: {src_arr.shape} -> {dst_arr.shape}"
            )
        dst_arr.reshape(-1)[:] = src_arr.reshape(-1)

    def _validate_copy_operands(self, dst: Any, src: Any) -> None:
        for buf in (dst, src):
            if getattr(buf, "freed", False):
                raise CudaInvalidValueError(f"copy involves freed buffer {buf!r}")
        if dst.nbytes != src.nbytes:
            raise CudaInvalidValueError(
                f"copy byte-count mismatch: src {src.nbytes} != dst {dst.nbytes}"
            )

    def memcpy(self, dst: Any, src: Any, *, label: str = "") -> float:
        """``cudaMemcpy``: synchronous host<->device copy."""
        return self.memcpy_async(dst, src, self.default_stream, label=label, _force_sync=True)

    def memcpy_async(
        self,
        dst: Any,
        src: Any,
        stream: Stream | None = None,
        *,
        after: float | Sequence[float] = 0.0,
        label: str = "",
        _force_sync: bool = False,
    ) -> float:
        """``cudaMemcpyAsync``: queue a copy on ``stream``.

        Returns the virtual completion time of the copy.  ``after`` adds
        extra readiness dependencies — a single completion time or a
        sequence of them (the copy waits for their max; used by TileAcc
        when an upload must wait for the eviction download sharing the
        same device pointer).

        Pageable host memory makes the call synchronous with respect to the
        host (the documented CUDA behaviour that breaks overlap, §II-B).
        """
        stream = stream if stream is not None else self.default_stream
        self._check_stream(stream)
        self._validate_copy_operands(dst, src)
        direction, host_buf = self._classify_copy(dst, src)
        self._api()
        op_label = (
            label or f"{direction}:{getattr(src, 'label', '') or getattr(dst, 'label', '')}"
        )
        hang = self._inject(direction, op_label)
        link = self.machine.link
        duration = link.transfer_time(src.nbytes, direction=direction, pinned=host_buf.pinned)
        duration += hang
        engine = self.h2d_engine if direction == "h2d" else self.d2h_engine
        after_deps, after_max = self._after_deps(after)
        ready = max(self.now, stream.tail, after_max)
        start, end = engine.submit(ready, duration)
        stream._push(end)
        self._note_queue_op(stream, engine, end)
        if direction == "h2d":
            self._m_h2d_bytes.inc(src.nbytes)
            self._m_h2d_copies.inc()
        else:
            self._m_d2h_bytes.inc(src.nbytes)
            self._m_d2h_copies.inc()
        self._m_copy_nbytes.observe(src.nbytes)
        self.trace.record(
            op_label,
            direction,
            engine.name,
            start,
            end,
            stream=stream.stream_id,
            nbytes=src.nbytes,
        )
        self._do_functional_copy(dst, src)
        if self.checker is not None:
            self.checker.record_op(
                kind=direction, label=op_label,
                streams=((self._runtime_id, stream),), engines=(engine,),
                start=start, end=end, after=after_deps,
                reads=(src,), writes=(dst,), now=self.now,
                nbytes=src.nbytes,
            )
        if not host_buf.pinned and link.pageable_async_is_sync and not _force_sync:
            # async call degraded to synchronous by pageable memory (§II-B)
            self._m_pageable_sync.inc()
        synchronous = _force_sync or (
            not host_buf.pinned and link.pageable_async_is_sync
        )
        if synchronous:
            self._host_stall(end, stream=stream)
            if self.checker is not None:
                self.checker.host_sync_stream(self._runtime_id, stream)
        return end

    # -- managed-memory migration ---------------------------------------------

    def _managed_transfer_time(self, nbytes: int, direction: str) -> float:
        link = self.machine.link
        base = link.transfer_time(nbytes, direction=direction, pinned=True)
        # migration runs at a fraction of pinned bandwidth; keep latency as is
        bw_time = base - link.latency
        return link.latency + bw_time / self.machine.gpu.managed_bandwidth_factor

    def _migrate_managed_to_device(self, buf: ManagedBuffer, stream: Stream) -> float:
        if buf.location == DEVICE:
            return stream.tail
        duration = self._managed_transfer_time(buf.nbytes, "h2d")
        ready = max(self.now, stream.tail)
        start, end = self.h2d_engine.submit(ready, duration)
        stream._push(end)
        self._note_queue_op(stream, self.h2d_engine, end)
        self._m_h2d_bytes.inc(buf.nbytes)
        self.metrics.inc("cuda.managed_migrations")
        buf.location = DEVICE
        self.trace.record(
            f"uvm-migrate-h2d:{buf.label}",
            "h2d",
            self.h2d_engine.name,
            start,
            end,
            stream=stream.stream_id,
            nbytes=buf.nbytes,
            managed=True,
        )
        return end

    def managed_host_access(self, buf: ManagedBuffer) -> np.ndarray | None:
        """Host touches a managed allocation: migrate back if needed, block.

        Returns the backing array in functional mode (None otherwise).
        """
        if buf.freed:
            raise CudaInvalidValueError("managed buffer used after free")
        if id(buf) not in self._managed_reservations:
            raise CudaInvalidValueError("managed buffer not owned by this runtime")
        if buf.location == DEVICE:
            # the host page fault stalls until every kernel that may touch
            # managed data completes (Kepler semantics: full sync)
            self.device_synchronize()
            duration = self._managed_transfer_time(buf.nbytes, "d2h")
            start, end = self.d2h_engine.submit(self.now, duration)
            self._m_d2h_bytes.inc(buf.nbytes)
            self.metrics.inc("cuda.managed_migrations")
            self.trace.record(
                f"uvm-migrate-d2h:{buf.label}",
                "d2h",
                self.d2h_engine.name,
                start,
                end,
                nbytes=buf.nbytes,
                managed=True,
            )
            self._host_stall(end)
            buf.location = HOST
        return buf.array if self.functional else None

    # -- kernels ---------------------------------------------------------------

    def launch(
        self,
        kernel: KernelSpec,
        *,
        buffers: Sequence[DeviceBuffer | ManagedBuffer] = (),
        n_cells: int | None = None,
        params: dict[str, Any] | None = None,
        stream: Stream | None = None,
        config: LaunchConfig | None = None,
        tuned_geometry: bool | None = None,
        math: MathModel | None = None,
        after: float | Sequence[float] = 0.0,
        label: str = "",
        reads: Sequence[DeviceBuffer | ManagedBuffer] | None = None,
        writes: Sequence[DeviceBuffer | ManagedBuffer] | None = None,
    ) -> float:
        """Launch ``kernel`` over ``n_cells`` iteration points on ``stream``.

        Returns the virtual completion time.  In functional mode the kernel
        body executes immediately against the buffers' arrays (in-stream
        issue order equals execution order, so eager execution is sound).

        ``reads``/``writes`` declare the kernel's per-buffer access sets
        for the hazard checker; when omitted they are derived from
        ``kernel.arg_access`` (positionally, over ``buffers``), falling
        back to the conservative every-buffer-read-and-written.
        """
        stream = stream if stream is not None else self.default_stream
        self._check_stream(stream)
        params = dict(params or {})
        if tuned_geometry is None:
            tuned_geometry = config.tuned if config is not None else True
        if n_cells is None:
            if not buffers:
                raise CudaInvalidValueError(
                    "launch needs n_cells or at least one buffer to infer it from"
                )
            first = buffers[0]
            n_cells = 1
            for s in first.shape:
                n_cells *= s
        if n_cells < 0:
            raise CudaInvalidValueError(f"n_cells must be >= 0, got {n_cells}")

        if (reads is not None or writes is not None) and kernel.arg_access is not None:
            decl_r, decl_w = self._derive_access(kernel, buffers, None, None)
            if (
                {id(b) for b in (reads or ())} != {id(b) for b in decl_r}
                or {id(b) for b in (writes or ())} != {id(b) for b in decl_w}
            ):
                warnings.warn(
                    f"launch({kernel.name!r}): explicit reads=/writes= "
                    "contradict the kernel's declared arg_access "
                    f"{kernel.arg_access!r}; the override wins, but one of "
                    "the two declarations is wrong",
                    AccessOverrideWarning, stacklevel=2,
                )

        managed = [b for b in buffers if isinstance(b, ManagedBuffer)]
        for buf in buffers:
            if getattr(buf, "freed", False):
                raise CudaInvalidValueError(
                    f"kernel {kernel.name!r} references freed buffer {buf!r}"
                )
            if isinstance(buf, DeviceBuffer) and buf.pool is not self.pool:
                raise CudaInvalidValueError(
                    f"kernel {kernel.name!r} references a buffer from another device"
                )
            if isinstance(buf, ManagedBuffer) and id(buf) not in self._managed_reservations:
                raise CudaInvalidValueError(
                    f"kernel {kernel.name!r} references a foreign managed buffer"
                )

        self._api()
        op_label = label or f"kernel:{kernel.name}"
        hang = self._inject("launch", op_label)
        after_deps, after_max = self._after_deps(after)
        ready = max(self.now, stream.tail, after_max)
        if managed:
            # Kepler: the driver migrates touched managed allocations before
            # the kernel runs and charges a per-launch management cost.
            self.clock.advance(self.machine.gpu.managed_launch_overhead)
            for buf in managed:
                ready = max(ready, self._migrate_managed_to_device(buf, stream))
            ready = max(ready, self.now)

        cost = kernel.cost_components(
            self.machine, n_cells, tuned_geometry=tuned_geometry, math=math
        )
        body = max(cost)  # == kernel.duration_on_gpu(...)
        duration = self.machine.gpu.kernel_launch_overhead + body + hang
        start, end = self.compute_engine.submit(ready, duration)
        stream._push(end)
        self._note_queue_op(stream, self.compute_engine, end)
        self._m_launches.inc()
        self._m_kernel_cells.observe(n_cells)
        self.trace.record(
            op_label,
            "kernel",
            self.compute_engine.name,
            start,
            end,
            stream=stream.stream_id,
            n_cells=n_cells,
        )
        if self.checker is not None:
            k_reads, k_writes = self._derive_access(kernel, buffers, reads, writes)
            self.checker.record_op(
                kind="kernel", label=op_label,
                streams=((self._runtime_id, stream),),
                engines=(self.compute_engine,),
                start=start, end=end, after=after_deps,
                reads=k_reads, writes=k_writes, now=self.now,
                cost=cost,
            )
        if self.functional and kernel.body is not None:
            arrays = [b.array for b in buffers]
            kernel.body(*arrays, **params)
        return end

    @staticmethod
    def _derive_access(
        kernel: KernelSpec,
        buffers: Sequence[DeviceBuffer | ManagedBuffer],
        reads: Sequence[DeviceBuffer | ManagedBuffer] | None,
        writes: Sequence[DeviceBuffer | ManagedBuffer] | None,
    ) -> tuple[tuple[Any, ...], tuple[Any, ...]]:
        """The read/write buffer sets a launch declares to the checker."""
        if reads is not None or writes is not None:
            return tuple(reads or ()), tuple(writes or ())
        access = kernel.arg_access
        if access is None:
            bufs = tuple(buffers)
            return bufs, bufs  # conservative: every buffer read and written
        r: list[Any] = []
        w: list[Any] = []
        for i, buf in enumerate(buffers):
            a = access[i] if i < len(access) else "rw"
            if a in ("r", "rw"):
                r.append(buf)
            if a in ("w", "rw"):
                w.append(buf)
        return tuple(r), tuple(w)

    # -- synchronization ----------------------------------------------------

    def stream_synchronize(self, stream: Stream) -> float:
        """``cudaStreamSynchronize``: block the host until the stream drains."""
        self._check_stream(stream)
        self._api()
        hang = self._inject("sync", f"sync:stream{stream.stream_id}")
        start = self.now
        target = stream.tail if hang == 0.0 else max(stream.tail, self.now) + hang
        end = self._host_stall(target, stream=stream)
        if end > start:
            self.trace.record(
                f"sync:stream{stream.stream_id}", "sync", "host", start, end,
                stream=stream.stream_id,
            )
        if self.checker is not None:
            self.checker.host_sync_stream(self._runtime_id, stream)
        return end

    def device_synchronize(self) -> float:
        """``cudaDeviceSynchronize``: block until all device work drains."""
        self._api()
        hang = self._inject("sync", "sync:device")
        start = self.now
        target = max(
            [self.compute_engine.tail, self.h2d_engine.tail, self.d2h_engine.tail]
            + [s.tail for s in self._streams.values()]
        )
        if hang:
            target = max(target, self.now) + hang
        end = self._host_stall(target)
        if end > start:
            self.trace.record("sync:device", "sync", "host", start, end)
        if self.checker is not None:
            self.checker.host_sync_streams(self._runtime_id, self._streams.values())
        return end

    # -- events ------------------------------------------------------------

    def create_event(self) -> Event:
        self._api()
        return Event(self._runtime_id)

    def event_record(self, event: Event, stream: Stream | None = None) -> None:
        """``cudaEventRecord``: the event completes when the stream drains."""
        stream = stream if stream is not None else self.default_stream
        self._check_stream(stream)
        event._check_usable(self._runtime_id)
        self._api()
        event._record(max(self.now, stream.tail))
        if self.checker is not None:
            self.checker.on_event_record(event, self._runtime_id, stream)

    def event_synchronize(self, event: Event) -> float:
        event._check_usable(self._runtime_id)
        self._api()
        end = self._host_stall(event.time)
        if self.checker is not None:
            self.checker.host_sync_event(event)
        return end

    def stream_wait_event(self, stream: Stream, event: Event) -> None:
        """``cudaStreamWaitEvent``: later work on ``stream`` waits for ``event``."""
        self._check_stream(stream)
        event._check_usable(self._runtime_id)
        self._api()
        stream._push(event.time)
        if self.checker is not None:
            self.checker.on_stream_wait_event(self._runtime_id, stream, event)
