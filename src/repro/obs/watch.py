"""Live session viewer: ``python -m repro.obs.watch <session.jsonl>``.

Tails a telemetry session file (the ``repro-telemetry/1`` JSONL stream
written by :class:`~repro.obs.live.bus.TelemetryBus`) and renders it as
refreshing text panels:

* a status line — monitored virtual time, sample cadence, health;
* the most recent samples (rates, stall/compute/transfer fractions,
  overlap efficiency, cache hit rate, queue depth);
* watchdog alerts and incident marks, newest last.

Service sessions (the ``repro-service-session/1`` JSONL written by
:class:`~repro.service.session.ServiceSession`) are rendered too: a
per-tenant table — jobs submitted/admitted/finished, backlog, quanta,
degradations, shed slots, and active SLO burns — replaces or joins the
samples panel, so one viewer covers single-run telemetry, multi-tenant
service logs, and combined streams.  ``repro-slo/1`` burn marks in the
same file light up the ``burning`` column.

One-shot by default: render the current file contents and exit.
``--follow`` keeps polling the file (``--poll`` wall-clock seconds
between reads, default 0.5) and redraws whenever it grows — watching a
run writing its session live, Ctrl-C to stop.  ``--last N`` bounds the
samples panel (default 12 rows).

Exit codes: 0 on success, 2 when the session file is missing, empty, or
not a telemetry stream.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO

from ..bench.report import Table

#: ANSI: clear screen + home — used between --follow redraws.
_CLEAR = "\x1b[2J\x1b[H"


def parse_session(lines: list[str]) -> dict[str, list[dict[str, Any]]]:
    """Bucket raw JSONL lines by record kind.

    Unparseable or kind-less lines are counted under ``"invalid"`` but
    never abort — a live file may end mid-write.
    """
    records: dict[str, list[dict[str, Any]]] = {
        "session": [], "sample": [], "alert": [], "incident": [], "invalid": [],
    }
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
            kind = rec["kind"]
        except (json.JSONDecodeError, TypeError, KeyError):
            records["invalid"].append({"raw": line[:80]})
            continue
        records.setdefault(kind, []).append(rec)
    return records


def _fmt_opt(value: Any, spec: str = ".3f") -> str:
    return "-" if value is None else format(value, spec)


#: Record kinds that mark a ``repro-service-session/1`` stream.
_SERVICE_KINDS = ("tenant", "submit", "admit", "finish", "degrade", "shed")


def has_service_records(records: dict[str, list[dict[str, Any]]]) -> bool:
    """True when the parsed stream carries service-session events."""
    return any(records.get(kind) for kind in _SERVICE_KINDS)


def tenants_table(records: dict[str, list[dict[str, Any]]]) -> Table:
    """Per-tenant rollup of a ``repro-service-session/1`` stream.

    ``backlog`` counts jobs submitted but not yet finished — on a live
    file that is exactly the work still in the system.  ``burning``
    reflects ``repro-slo/1`` burn marks co-written to the stream (a
    ``start`` without a later ``stop``/``release``).
    """
    table = Table(
        title="service tenants",
        columns=["tenant", "submitted", "admitted", "finished", "backlog",
                 "quanta", "degraded", "shed_slots", "burning"],
    )
    names: list[str] = []
    for rec in records.get("tenant", []):
        if rec.get("tenant") not in names:
            names.append(rec["tenant"])

    def count(kind: str) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in records.get(kind, []):
            t = rec.get("tenant", "?")
            out[t] = out.get(t, 0) + 1
            if t not in names:
                names.append(t)
        return out

    submitted = count("submit")
    admitted = count("admit")
    finished = count("finish")
    degraded = count("degrade")
    quanta: dict[str, int] = {}
    for rec in records.get("finish", []):
        t = rec.get("tenant", "?")
        quanta[t] = quanta.get(t, 0) + int(rec.get("quanta", 0))
    shed: dict[str, int] = {}
    for rec in records.get("shed", []):
        t = rec.get("tenant", "?")
        shed[t] = shed.get(t, 0) + int(rec.get("slots", 0))
    burning: dict[str, bool] = {}
    for rec in records.get("burn", []):
        burning[rec.get("tenant", "?")] = rec.get("state") == "start"
    for t in names:
        table.add_row(
            t, submitted.get(t, 0), admitted.get(t, 0), finished.get(t, 0),
            submitted.get(t, 0) - finished.get(t, 0), quanta.get(t, 0),
            degraded.get(t, 0), shed.get(t, 0),
            "BURNING" if burning.get(t) else "-",
        )
    active = [t for t in sorted(burning) if burning[t]]
    if active:
        table.add_note("SLO budgets burning: " + ", ".join(active))
    return table


def samples_table(samples: list[dict[str, Any]], *, last: int = 12) -> Table:
    table = Table(
        title=f"recent samples (last {min(last, len(samples))} of {len(samples)})",
        columns=["t_s", "h2d_MB/s", "d2h_MB/s", "stall", "compute",
                 "transfer", "overlap_eff", "hit_rate", "queue"],
    )
    for s in samples[-last:]:
        table.add_row(
            f"{s.get('t', 0.0):.6g}",
            f"{s.get('h2d_bytes_per_s', 0.0) / 1e6:.1f}",
            f"{s.get('d2h_bytes_per_s', 0.0) / 1e6:.1f}",
            f"{s.get('stall_fraction', 0.0):.3f}",
            f"{s.get('compute_fraction', 0.0):.3f}",
            f"{s.get('transfer_fraction', 0.0):.3f}",
            _fmt_opt(s.get("overlap_efficiency")),
            _fmt_opt(s.get("cache_hit_rate")),
            f"{s.get('queue_depth', 0.0):g}",
        )
    return table


def alerts_panel(alerts: list[dict[str, Any]], *, last: int = 8) -> Table:
    table = Table(
        title=f"alerts ({len(alerts)})",
        columns=["t_s", "severity", "detector", "message"],
    )
    for a in alerts[-last:]:
        table.add_row(f"{a.get('t', 0.0):.6g}", a.get("severity", "?"),
                      a.get("detector", "?"), a.get("message", ""))
    if not alerts:
        table.add_note("none")
    return table


def status_line(records: dict[str, list[dict[str, Any]]]) -> str:
    session = records["session"][-1] if records["session"] else {}
    samples = records["sample"]
    alerts = records["alert"]
    incidents = records["incident"]
    now = samples[-1]["t"] if samples else session.get("t0", 0.0)
    service_events = [r for kind in _SERVICE_KINDS
                      for r in records.get(kind, [])]
    if service_events:
        now = max([now] + [r.get("t", 0.0) for r in service_events])
    criticals = sum(1 for a in alerts if a.get("severity") == "critical")
    if incidents or criticals:
        health = "CRITICAL"
    elif alerts:
        health = "degraded"
    elif samples:
        health = "ok"
    else:
        health = "idle"
    parts = [
        f"health={health}",
        f"t={now:.6g}s",
        f"interval={session.get('sample_interval', 0.0):g}s",
        f"samples={len(samples)}",
        f"alerts={len(alerts)}",
        f"incidents={len(incidents)}",
    ]
    if records["invalid"]:
        parts.append(f"invalid_lines={len(records['invalid'])}")
    return "  ".join(parts)


def render(records: dict[str, list[dict[str, Any]]], *, last: int = 12) -> str:
    panels = [status_line(records)]
    if has_service_records(records):
        panels.append(tenants_table(records).format())
    if records["sample"] or not has_service_records(records):
        panels.append(samples_table(records["sample"], last=last).format())
    panels.append(alerts_panel(records["alert"]).format())
    for inc in records["incident"][-4:]:
        trigger = inc.get("trigger", inc)
        panels.append(
            f"incident: kind={trigger.get('kind', '?')} "
            f"t={trigger.get('t', 0.0):.6g} {trigger.get('message', '')}"
        )
    return "\n\n".join(panels)


def watch(
    path: str | Path,
    *,
    follow: bool = False,
    poll: float = 0.5,
    last: int = 12,
    stream: TextIO | None = None,
    max_redraws: int | None = None,
) -> int:
    """Render ``path`` once, or keep redrawing while it grows.

    ``max_redraws`` bounds the number of --follow poll rounds (tests use
    it; the CLI leaves it unbounded and stops on Ctrl-C).
    """
    stream = stream if stream is not None else sys.stdout
    path = Path(path)
    seen_size = -1
    polls = 0
    while True:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if len(text) != seen_size:
            seen_size = len(text)
            records = parse_session(text.splitlines())
            if (not records["session"] and not records["sample"]
                    and not has_service_records(records)):
                if not follow:
                    print(f"error: {path} is not a telemetry session or "
                          "service session (no session/sample/service "
                          "records)", file=sys.stderr)
                    return 2
            else:
                if follow:
                    stream.write(_CLEAR)
                stream.write(render(records, last=last) + "\n")
                stream.flush()
        if not follow:
            return 0
        polls += 1
        if max_redraws is not None and polls >= max_redraws:
            return 0
        try:
            time.sleep(poll)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("session", help="telemetry session JSONL file "
                        "(TelemetryBus(jsonl=...) output)")
    parser.add_argument("--follow", action="store_true",
                        help="keep polling and redraw as the file grows")
    parser.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="wall-clock polling period for --follow (default 0.5)")
    parser.add_argument("--last", type=int, default=12, metavar="N",
                        help="show the last N samples (default 12)")
    args = parser.parse_args(argv)
    try:
        return watch(args.session, follow=args.follow, poll=args.poll,
                     last=args.last)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
