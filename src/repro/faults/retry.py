"""Retry policies: virtual-clock exponential backoff with seeded jitter.

The resilience layer re-issues a failed operation after waiting
``backoff * multiplier**(attempt-1)`` seconds of *virtual* time (capped
at ``max_backoff``), stretched by deterministic jitter.  Jitter is
derived statelessly from ``(jitter_seed, key, attempt)`` — not from a
shared RNG — so two runs with the same seed produce identical backoff
sequences regardless of how retries from different fields interleave.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Sequence

from ..errors import FaultPlanError


def _unit_fraction(parts: Sequence[Hashable]) -> float:
    """A deterministic value in [0, 1) derived from ``parts``."""
    digest = hashlib.blake2b(
        repr(tuple(parts)).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class RetryPolicy:
    """How many times to retry, and how long to back off in between.

    Parameters
    ----------
    max_attempts:
        Total attempts per operation (1 = no retry).
    backoff:
        Virtual seconds before the first retry.
    multiplier:
        Exponential growth factor per further retry.
    max_backoff:
        Cap on a single backoff wait.
    jitter:
        Fractional spread: each wait is stretched by up to ``jitter``
        (0 disables jitter entirely).
    jitter_seed:
        Seed for the deterministic jitter derivation.
    """

    __slots__ = ("max_attempts", "backoff", "multiplier", "max_backoff",
                 "jitter", "jitter_seed")

    def __init__(
        self,
        max_attempts: int = 4,
        *,
        backoff: float = 1e-3,
        multiplier: float = 2.0,
        max_backoff: float = 0.5,
        jitter: float = 0.25,
        jitter_seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise FaultPlanError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff < 0 or max_backoff < 0:
            raise FaultPlanError("backoff times must be >= 0")
        if multiplier < 1.0:
            raise FaultPlanError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise FaultPlanError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = int(max_attempts)
        self.backoff = float(backoff)
        self.multiplier = float(multiplier)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.jitter_seed = int(jitter_seed)

    def delay(self, attempt: int, *, key: Sequence[Hashable] = ()) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``key`` identifies the retrying operation (field, op, region) so
        concurrent retry chains get independent — but reproducible —
        jitter.
        """
        if attempt < 1:
            raise FaultPlanError(f"attempt is 1-based, got {attempt}")
        base = min(self.backoff * self.multiplier ** (attempt - 1), self.max_backoff)
        if self.jitter == 0.0 or base == 0.0:
            return base
        u = _unit_fraction((self.jitter_seed, *key, attempt))
        return base * (1.0 + self.jitter * u)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, backoff={self.backoff}, "
            f"multiplier={self.multiplier}, jitter_seed={self.jitter_seed})"
        )
