"""Hybrid CPU/GPU ghost-cell update (§IV-B.6, Fig. 4).

Protocol, following the paper:

1. ``acc wait`` — synchronize all streams before touching ghosts;
2. for each region whose data (and whose sources' data) is device-
   resident: the **host** computes the ghost source/destination index
   sets for one face while the **GPU** runs the copy kernel of the
   previous face — the two overlap naturally because index computation
   advances the host clock while kernels are queued asynchronously on
   each region's slot stream (no sync needed afterwards: per-region
   streams preserve order);
3. regions that are not device-resident (or whose sources are not) fall
   back to the host update, after downloading whatever is stale.

Branch divergence is avoided exactly as in the paper: the device kernel
receives precomputed index sets (here: numpy slices) instead of
computing boundary indices itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..kernels.exchange import bc_faces_kernel, ghost_copy_kernel
from ..sim.trace import Trace
from ..tida.boundary import BoundaryCondition, Dirichlet, Neumann, domain_faces

if TYPE_CHECKING:  # pragma: no cover
    from .library import TidaAcc

#: Fixed host cost of setting up one face's index sets (loop bounds,
#: correspondence computation) on top of the per-cell rate.
_FACE_SETUP_TIME = 2e-6


def _index_time(machine, n_cells: int) -> float:
    return _FACE_SETUP_TIME + n_cells / machine.cpu.ghost_index_rate


def fill_boundary_hybrid(
    lib: "TidaAcc",
    name: str,
    bc: BoundaryCondition | None = None,
    *,
    safe: bool = False,
) -> None:
    """Update all ghost cells of field ``name``, on GPU where resident.

    ``safe=True`` additionally orders each source region's stream behind
    the ghost-copy kernel that reads it (``cudaStreamWaitEvent``).  The
    paper's design relies on per-region stream FIFO alone (§IV-B.6: "we
    do not need a synchronization point"), which leaves a cross-stream
    write-after-read hazard: a later kernel on the *source* region's
    stream could, on real hardware, overwrite the interior while the
    ghost copy still reads it.  The default reproduces the paper; the
    safe mode quantifies what closing the hazard costs (ablation-grade
    knob, exercised by the test suite).
    """
    ta = lib.field(name)
    mgr = lib.manager(name)
    if all(g == 0 for g in ta.ghost):
        return
    runtime = lib.runtime
    machine = runtime.machine
    periodic = bc is not None and bc.is_periodic

    # §IV-B.6: synchronize all executions in all streams first.  The
    # paper's program owns the whole device, so "all streams" means the
    # library's own; the job-scoped wait keeps that exact semantics while
    # not barriering co-tenant work on a shared runtime.
    lib.wait_own()

    copy_k = ghost_copy_kernel()
    faces_k = bc_faces_kernel()

    # observability: host index-set time vs device copy-kernel time, and
    # how much of the former the pipeline actually hid (Fig. 4's claim)
    metrics = runtime.metrics
    m_index_s = metrics.counter("ghost.index_seconds")
    m_kernel_s = metrics.counter("ghost.kernel_seconds")
    m_launches = metrics.counter("ghost.kernel_launches")
    m_overlap_s = metrics.counter("ghost.hybrid_overlap_seconds")
    kernel_intervals: list[tuple[float, float]] = []

    def _host_index(label: str, n_cells: int) -> None:
        duration = _index_time(machine, n_cells)
        h0 = runtime.now
        runtime.host_compute(label, duration)
        m_index_s.inc(duration)
        # overlap achieved = host interval ∩ already-queued ghost kernels
        for lo, hi in Trace._merge_intervals(kernel_intervals):
            m_overlap_s.inc(max(0.0, min(hi, h0 + duration) - max(lo, h0)))

    def _note_kernel(end: float) -> None:
        ev = runtime.trace.last_event
        m_launches.inc()
        if ev is not None and ev.category == "kernel":
            m_kernel_s.inc(ev.duration)
            kernel_intervals.append((ev.start, ev.end))
        else:  # pragma: no cover - launch always records the kernel event
            kernel_intervals.append((end, end))

    host_bytes = 0
    for region in ta.regions:
        pairs = ta.exchange_pairs(region, periodic=periodic)
        device_path = mgr.is_on_device(region.rid) and all(
            mgr.is_on_device(src.rid) for src, _s, _d in pairs
        )
        if not device_path:
            # host fallback: bring the region and its sources home first
            mgr.request_host(region.rid)
            for src, _s, _d in pairs:
                mgr.request_host(src.rid)
            nb = ta.fill_region_ghosts(region, bc)
            host_bytes += nb
            metrics.inc("ghost.host_fallback_regions")
            metrics.inc("ghost.host_fallback_bytes", nb)
            continue

        dst_buf, _dst_ready = mgr.request_device(region.rid)
        qid = mgr.queue_id_for(region.rid)
        for src, src_box, dst_box in pairs:
            src_buf, _src_ready = mgr.request_device(src.rid)
            # host computes this face's index sets (Fig. 4's CPU lane) ...
            _host_index(f"ghost-idx:{region.label}", dst_box.size)
            dst_slices = region.local_slices(dst_box)
            src_slices = src.local_slices(src_box)
            # both regions' individual dep times (not their max): the
            # hazard checker resolves each component to an ordering edge
            after = (
                mgr.device_ready_deps(region.rid) + mgr.device_ready_deps(src.rid)
            )
            # ... and queues the copy kernel; the next face's index
            # computation overlaps with it
            end = lib._launch_with_retry(
                copy_k.name, region.rid,
                lambda: lib.acc.parallel_loop(
                    copy_k,
                    deviceptr=[dst_buf, src_buf],
                    n_cells=dst_box.size,
                    collapse=ta.domain.ndim,
                    loop_dims=ta.domain.ndim,
                    async_=qid,
                    vector_length=lib.vector_length,
                    after=after,
                    params={"dst_slices": dst_slices, "src_slices": src_slices},
                    label=f"ghost:{region.label}<-{src.label}",
                ),
            )
            _note_kernel(end)
            mgr.note_device_op(region.rid, end, covers=True)
            mgr.note_device_op(src.rid, end, covers=True)
            if safe and src.rid != region.rid:
                src_stream = mgr.slot_for(src.rid).stream
                dst_stream = mgr.slot_for(region.rid).stream
                if src_stream is not dst_stream:
                    ev = runtime.create_event()
                    runtime.event_record(ev, dst_stream)
                    runtime.stream_wait_event(src_stream, ev)

        if bc is not None and not periodic:
            # batch every domain face of this region into one launch; the
            # host computes all the index sets first (still overlapping
            # with the previously queued copy kernels)
            ops: list[tuple[str, tuple[slice, ...], object]] = []
            total_cells = 0
            for _axis, _side, ghost_box, src_box in domain_faces(region, ta.domain):
                _host_index(f"bc-idx:{region.label}", ghost_box.size)
                dst_slices = region.local_slices(ghost_box)
                total_cells += ghost_box.size
                if isinstance(bc, Dirichlet):
                    ops.append(("fill", dst_slices, bc.value))
                elif isinstance(bc, Neumann):
                    ops.append(("copy", dst_slices, region.local_slices(src_box)))
                else:  # pragma: no cover - new BC types must be handled here
                    raise NotImplementedError(f"unsupported device BC {type(bc).__name__}")
            if ops:
                end = lib._launch_with_retry(
                    faces_k.name, region.rid,
                    lambda: lib.acc.parallel_loop(
                        faces_k,
                        deviceptr=[dst_buf],
                        n_cells=total_cells,
                        async_=qid,
                        vector_length=lib.vector_length,
                        after=mgr.device_ready_deps(region.rid),
                        params={"ops": tuple(ops)},
                        label=f"bc-faces:{region.label}",
                    ),
                )
                _note_kernel(end)
                mgr.note_device_op(region.rid, end, covers=True)

    if host_bytes:
        duration = 2 * host_bytes / machine.cpu.mem_bandwidth
        runtime.host_compute(f"fill_boundary-host:{name}", duration, nbytes=host_bytes)
