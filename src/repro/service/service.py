"""The multi-tenant GPU service: one device, one clock, many jobs.

Tenants submit declarative :class:`~repro.plan.Program`\\ s (or named
workloads); the service plans each job, gates it through
:class:`~repro.service.admission.AdmissionController`, and runs every
admitted job as a *cooperative generator*
(:func:`~repro.plan.executor.program_stepper`) on one shared
:class:`~repro.cuda.runtime.CudaRuntime`.  Scheduling is deterministic
weighted fair queueing (:class:`~repro.sim.engine.WeightedFairQueue`):
each quantum — one region's compute, one reduction, one halo fill — is
charged to its tenant at ``device busy-time / weight``, and the runnable
tenant furthest behind its fair share goes next.  Priority tenants
preempt best-effort tenants at every quantum boundary and may trigger
slot shedding (:meth:`~repro.core.tile_acc.TileAcc.shed_slots`) on
best-effort jobs when they need device memory.

Isolation is structural: every job gets a private
:class:`~repro.core.library.TidaAcc` with private fields, so interleaved
schedules never share a mutable device buffer.  The one deliberate
exception is cross-job *read-only* dedup: coefficient tables proven
``access="ro"`` by the planner and byte-identical across jobs (keyed by
content digest + geometry) are attached into later jobs instead of
re-allocated and re-uploaded — concurrent readers cannot conflict, so
byte-identity and hazard-freedom survive the sharing.

The asyncio flavor of the API is *virtual-clock-driven*: there is no
wall-clock event loop, because the simulator's
:class:`~repro.sim.engine.HostClock` already provides the single timeline
every engine, stream, and telemetry sample lives on.  ``submit(at=...)``
schedules future arrivals; ``run()`` is the deterministic event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

import numpy as np

from ..config import MachineSpec
from ..core.library import TidaAcc
from ..core.slots import SlotPartitioner
from ..cuda.runtime import CudaRuntime
from ..errors import PlanError, ServiceError
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs.slo import LATENCY_BUCKETS, JobSli, SloPolicy, SloTracker
from ..openacc.runtime import AccRuntime
from ..plan.executor import program_stepper
from ..plan.planner import plan_program
from ..sim.engine import WeightedFairQueue
from .admission import (
    ADMIT,
    DEFER,
    DEGRADE,
    REJECT,
    AdmissionController,
    plan_footprint_bytes,
    plan_slot_bytes,
    plan_total_slots,
)
from .session import ServiceSession
from .workloads import build_workload

#: Default total device-slot budget the partitioner apportions.
DEFAULT_TOTAL_SLOTS = 32

#: Job lifecycle states.
QUEUED, RUNNING, DONE = "queued", "running", "done"


@dataclass
class Tenant:
    name: str
    weight: float = 1.0
    priority: bool = False


@dataclass
class JobResult:
    """Externally visible outcome of one finished job."""

    job: str
    tenant: str
    workload: str | None
    arrival: float                 # virtual submission time
    admitted: float
    finished: float
    latency: float                 # finished - arrival (queueing included)
    elapsed: float                 # the program's own active span
    iterations: int
    degraded: bool
    shed: int                      # slots this job gave up to priority tenants
    shared_fields: tuple[str, ...]
    digests: dict[str, str] | None  # per-field content digests (functional)
    env: dict[str, float]
    n_regions: int
    n_slots: int | None
    #: Virtual-clock lifecycle stamps: submitted/admitted/started/
    #: last_quantum_end/drained, own_seconds (clock time inside the job's
    #: own quanta), quanta (count), and wait (reason -> seconds tiling
    #: submit->admit).  The input of the contention blame profiler
    #: (:func:`repro.obs.critpath.blame_decomposition`).
    timeline: dict[str, Any] | None = None


@dataclass
class ServiceReport:
    """Aggregate outcome of one :meth:`Service.run` drain."""

    jobs: dict[str, JobResult]
    makespan: float                # first admission -> last finish
    busy_seconds: float            # summed over distinct engines
    n_engines: int
    utilization: float             # busy / (n_engines * makespan)
    racy_hazards: int
    session: ServiceSession
    tenants: dict[str, dict[str, Any]]

    def latencies(self, tenant: str | None = None) -> list[float]:
        return [
            r.latency for r in self.jobs.values()
            if tenant is None or r.tenant == tenant
        ]


class _Job:
    """Internal job record."""

    __slots__ = (
        "id", "tenant", "prog", "inputs", "env", "workload", "arrival",
        "seq", "state", "plan", "lib", "stepper", "plan_kwargs", "order",
        "order_seed", "tile_shape", "admit_t", "finish_t", "slots_held",
        "degraded", "shed", "shared_fields", "registered", "footprint",
        "result", "start_t", "last_q_end", "own_seconds", "n_quanta",
        "wait_mark", "wait_reason", "wait",
    )

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw.get(name))


class Service:
    """A virtual-clock multi-tenant job service over one simulated GPU."""

    def __init__(
        self,
        machine: MachineSpec | None = None,
        *,
        functional: bool = True,
        mode: str | None = None,
        device_memory_limit: int | None = None,
        check: str | bool | None = "strict",
        telemetry=None,
        watchdog: bool = True,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        headroom_bytes: int = 0,
        admission_policy: str = "degrade",
        total_slots: int = DEFAULT_TOTAL_SLOTS,
        scheduler: str = "fair",
        max_engine_lag: float | None = None,
        dedup: bool = True,
        per_tenant_concurrency: int | None = 1,
        session_meta: dict[str, Any] | None = None,
        slo: list[SloPolicy] | dict[str, Any] | None = None,
        backpressure: bool = False,
    ) -> None:
        if scheduler not in ("fair", "serial"):
            raise ServiceError(
                f"unknown scheduler {scheduler!r}; have 'fair', 'serial'",
                reason="bad-scheduler",
            )
        self.runtime = CudaRuntime(
            machine, functional=functional, mode=mode,
            device_memory_limit=device_memory_limit, check=check,
            telemetry=telemetry,
        )
        if faults is not None:
            self.runtime.set_fault_plan(faults)
        self.acc = AccRuntime(self.runtime)
        self.clock = self.runtime.clock
        self.retry = retry
        self.scheduler = scheduler
        self.max_engine_lag = max_engine_lag
        self.dedup = bool(dedup)
        # one running job per tenant by default: a tenant's jobs share its
        # slot quota, so concurrent siblings would split it into thrashing
        # single-slot pools; queueing them behind each other keeps every
        # admitted pool at full quota (None = unlimited)
        self.per_tenant_concurrency = per_tenant_concurrency
        self.admission = AdmissionController(
            self.runtime, headroom_bytes=headroom_bytes, policy=admission_policy,
        )
        self.partitioner = SlotPartitioner(total_slots)
        self.wfq = WeightedFairQueue()
        self.session = ServiceSession(meta=dict(
            scheduler=scheduler, policy=admission_policy,
            total_slots=total_slots, **(session_meta or {}),
        ))
        # SLO tracking is pure observation (it never touches the clock or
        # the schedule), so a monitored run stays byte-identical to an
        # unmonitored one; backpressure is the opt-in that changes admission
        self.slo: SloTracker | None = (
            SloTracker(slo, metrics=self.runtime.metrics)
            if slo is not None else None
        )
        if backpressure:
            if self.slo is None:
                raise ServiceError(
                    "backpressure=True needs slo= policies to protect",
                    reason="bad-slo",
                )
            self.admission.set_backpressure_hook(self._slo_backpressured)
        if telemetry is not None and watchdog:
            from ..obs.live.watchdog import Watchdog, default_detectors
            telemetry.add_subscriber(
                Watchdog(default_detectors(
                    metrics=self.runtime.metrics, slo=self.slo,
                ))
            )
        self.on_finish: Callable[[JobResult, "Service"], None] | None = None
        self.tenants: dict[str, Tenant] = {}
        self._queued: list[_Job] = []
        self._running: list[_Job] = []
        self._draining: list[tuple[_Job, float]] = []
        self._results: dict[str, JobResult] = {}
        self._jobs_ever = 0
        self._admit_seq = 0
        self._busy_accum = 0.0     # busy time folded in before serial resets
        self._t_first_admit: float | None = None
        self._t_last_finish = 0.0
        # cross-job read-only dedup: content+geometry key -> dataset record
        self._datasets: dict[tuple, dict[str, Any]] = {}
        # distinct engines (d2h may alias h2d on single-copy-engine parts)
        self._engines = list({id(e): e for e in (
            self.runtime.compute_engine,
            self.runtime.h2d_engine,
            self.runtime.d2h_engine,
        )}.values())

    # -- tenancy ------------------------------------------------------------

    def add_tenant(self, name: str, weight: float = 1.0, *,
                   priority: bool = False) -> Tenant:
        tenant = Tenant(name, float(weight), bool(priority))
        self.tenants[name] = tenant
        self.partitioner.add_tenant(name, weight, priority=priority)
        self.wfq.register(name, weight, priority=priority)
        self.session.emit("tenant", self.now, tenant=name, weight=weight,
                          priority=priority)
        return tenant

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def metrics(self):
        return self.runtime.metrics

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        tenant: str,
        program=None,
        *,
        workload: str | None = None,
        workload_kwargs: dict[str, Any] | None = None,
        inputs: dict[str, np.ndarray] | None = None,
        env: dict[str, float] | None = None,
        at: float | None = None,
        name: str | None = None,
        order: str = "sequential",
        order_seed: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        **plan_kwargs: Any,
    ) -> str:
        """Queue a job; returns its id.  Raises ``ServiceError`` when the
        tenant is unknown, both/neither of program and workload are
        given, or the job could never fit the device (a *reject* — jobs
        that fit an empty device but not the current one *queue*)."""
        if tenant not in self.tenants:
            raise ServiceError(
                f"unknown tenant {tenant!r}; add_tenant() first",
                tenant=tenant, reason="unknown-tenant",
            )
        if (program is None) == (workload is None):
            raise ServiceError(
                "submit exactly one of a Program or a workload name",
                tenant=tenant, reason="bad-submission",
            )
        if workload is not None:
            ws = build_workload(workload, **(workload_kwargs or {}))
            program, inputs = ws.prog, dict(ws.inputs)
        job_id = name if name is not None else f"{tenant}.j{self._jobs_ever}"
        if job_id in self._results or any(
            j.id == job_id for j in self._queued + self._running
        ):
            raise ServiceError(f"duplicate job id {job_id!r}",
                               tenant=tenant, job=job_id, reason="duplicate-job")
        self._jobs_ever += 1
        arrival = self.now if at is None else max(float(at), self.now)

        # reject-at-submit: a job whose minimum footprint exceeds an
        # *empty* device can never be admitted, no matter how long it waits
        try:
            min_plan = plan_program(
                program, machine=self.runtime.machine,
                free_memory=self.admission.capacity(),
                n_slots=1,
                **{k: v for k, v in plan_kwargs.items() if k != "n_slots"},
            )
        except PlanError as exc:
            raise ServiceError(
                f"job {job_id!r} of tenant {tenant!r} is unplannable "
                f"within device capacity: {exc}",
                tenant=tenant, job=job_id, reason="reject",
            ) from exc
        min_footprint = plan_footprint_bytes(min_plan)
        if min_footprint > self.admission.capacity():
            raise ServiceError(
                f"job {job_id!r} of tenant {tenant!r} needs at least "
                f"{min_footprint} device bytes; capacity is "
                f"{self.admission.capacity()} — rejected",
                tenant=tenant, job=job_id, reason="reject",
            )

        job = _Job(
            id=job_id, tenant=tenant, prog=program,
            inputs=dict(inputs or {}), env=dict(env or {}),
            workload=workload, arrival=arrival, seq=self._jobs_ever,
            state=QUEUED, plan=None, lib=None, stepper=None,
            plan_kwargs=dict(plan_kwargs), order=order,
            order_seed=order_seed, tile_shape=tile_shape,
            admit_t=None, finish_t=None, slots_held=0, degraded=False,
            shed=0, shared_fields=(), registered=False, footprint=0,
            result=None, start_t=None, last_q_end=None, own_seconds=0.0,
            n_quanta=0, wait_mark=arrival, wait_reason=None, wait={},
        )
        self._queued.append(job)
        self.session.emit("submit", arrival, tenant=tenant, job=job_id,
                          workload=workload or "program")
        self._update_backlog(tenant)
        return job_id

    # -- per-tenant observability -------------------------------------------

    def _update_backlog(self, tenant: str) -> None:
        backlog = sum(1 for j in self._queued if j.tenant == tenant)
        self.metrics.set_gauge(f"service.tenant.{tenant}.backlog", backlog)

    def _note_wait(self, job: _Job, reason: str | None) -> None:
        """Close the job's open wait segment and start a new one.

        Wait segments tile [submit, admit] by reason: the span since the
        last mark is charged to the *standing* reason (``"queued"`` until
        an admission attempt says otherwise), then ``reason`` becomes the
        standing classification.  ``None`` closes the final segment at
        admission.  Pure bookkeeping — never touches the clock.
        """
        now = self.now
        if now > job.wait_mark:
            prev = job.wait_reason or "queued"
            job.wait[prev] = job.wait.get(prev, 0.0) + (now - job.wait_mark)
            job.wait_mark = now
        job.wait_reason = reason

    def _slo_backpressured(self, tenant: str) -> bool:
        """Admission hook: defer best-effort tenants while a budget burns.

        Protected = any tenant currently burning its error budget; held
        back = everyone else without the priority bit.  Burning tenants
        and priority tenants are never deferred by their own protection.
        """
        if self.slo is None:
            return False
        burning = self.slo.burning()
        return (bool(burning) and tenant not in burning
                and not self.tenants[tenant].priority)

    # -- admission ----------------------------------------------------------

    def _reserved(self) -> int:
        """Device bytes promised to running jobs (their pools fill lazily)."""
        return sum(j.footprint for j in self._running)

    def _plan_job(self, job: _Job, *, n_slots: int | None = None):
        kwargs = dict(job.plan_kwargs)
        if n_slots is not None:
            kwargs["n_slots"] = n_slots
        budget = max(self.admission.budget(self._reserved()), 1)
        return plan_program(
            job.prog, machine=self.runtime.machine,
            free_memory=budget, **kwargs,
        )

    def _dataset_key(self, plan, fname: str, arr: np.ndarray) -> tuple:
        from ..check.explore import digest
        fplan = plan.fields[fname]
        halo = fplan.halo
        if isinstance(halo, int):
            halo = (halo,) * len(tuple(plan.domain))
        return (
            digest(np.ascontiguousarray(arr)),
            tuple(plan.domain), plan.n_regions, tuple(halo),
            str(np.dtype(plan.dtype)),
        )

    def _shareable_fields(self, job: _Job, plan) -> dict[str, tuple]:
        """Read-only planned fields whose input content is dedup-keyable."""
        if not self.dedup or not self.runtime.functional:
            return {}
        out = {}
        for fname in plan.ro_fields:
            if fname in job.inputs:
                out[fname] = self._dataset_key(plan, fname, job.inputs[fname])
        return out

    def _try_admit(self, job: _Job) -> bool:
        tenant = self.tenants[job.tenant]
        plan = self._plan_job(job)

        # QoS slot cap: the job's pool must fit the tenant's remaining
        # fair-share quota (floor of one slot per field keeps it runnable)
        allowed = max(self.partitioner.headroom(job.tenant), 1)
        if plan_total_slots(plan) > allowed:
            capped = max(1, allowed // max(len(plan.fields), 1))
            plan = self._plan_job(job, n_slots=capped)

        shareable = self._shareable_fields(job, plan)
        borrowed = {
            f: key for f, key in shareable.items() if key in self._datasets
        }
        own_fields = [f for f in plan.fields if f not in borrowed]
        n_slots_eff = plan.n_slots if plan.n_slots is not None else plan.n_regions
        footprint = sum(
            n_slots_eff * plan_slot_bytes(plan, f) for f in own_fields
        )
        degraded_footprint = sum(plan_slot_bytes(plan, f) for f in own_fields)

        decision = self.admission.decide(
            footprint, degraded_footprint, reserved=self._reserved(),
        )
        if decision == DEFER and tenant.priority:
            if self._shed_for(job, footprint):
                decision = ADMIT
        if decision == DEFER:
            self._note_wait(job, "deferred")
            return False
        if decision == REJECT:
            raise ServiceError(
                f"job {job.id!r} of tenant {job.tenant!r} exceeds device "
                f"capacity even degraded — rejected",
                tenant=job.tenant, job=job.id, reason="reject",
            )
        if decision == DEGRADE:
            plan = self._plan_job(job, n_slots=1)
            job.degraded = True
            self.metrics.inc("service.degraded")
            self.session.emit("degrade", self.now, tenant=job.tenant,
                              job=job.id, footprint=footprint,
                              budget=self.admission.budget(self._reserved()))
            n_slots_eff = plan.n_slots if plan.n_slots is not None else plan.n_regions
            own_fields = [f for f in plan.fields if f not in borrowed]
            footprint = sum(
                n_slots_eff * plan_slot_bytes(plan, f) for f in own_fields
            )

        lib = TidaAcc(
            runtime=self.runtime, acc=self.acc,
            prefetch_depth=plan.prefetch_depth, eviction=plan.eviction,
            retry=self.retry, label_prefix=f"{job.id}:",
        )
        for fname, key in borrowed.items():
            ds = self._datasets[key]
            lib.attach_shared_field(fname, ds["array"], ds["manager"])
            ds["borrowers"].add(job.id)
            self.metrics.inc("service.dedup_hits")
            self.metrics.inc(
                "service.dedup_bytes_avoided",
                n_slots_eff * plan_slot_bytes(plan, fname),
            )
        job.shared_fields = tuple(sorted(borrowed))
        job.plan = plan
        job.lib = lib
        job.stepper = program_stepper(
            lib, job.prog, plan, inputs=job.inputs, env=job.env,
            order=job.order, order_seed=job.order_seed,
            tile_shape=job.tile_shape,
        )
        job.slots_held = n_slots_eff * len(own_fields)
        job.footprint = footprint
        self.partitioner.acquire(job.tenant, job.slots_held)
        job.state = RUNNING
        self._note_wait(job, None)   # close the final wait segment
        job.admit_t = self.now
        self._admit_seq += 1
        job.seq = self._admit_seq
        if self._t_first_admit is None:
            self._t_first_admit = self.now
        self._queued.remove(job)
        self._running.append(job)
        self.session.emit(
            "admit", self.now, tenant=job.tenant, job=job.id,
            slots=job.slots_held, footprint=footprint,
            degraded=job.degraded, shared=list(job.shared_fields),
        )
        self._update_backlog(job.tenant)
        return True

    def _shed_for(self, job: _Job, footprint: int) -> bool:
        """Free device memory for a priority job by shrinking best-effort pools."""
        if footprint <= self.admission.budget(self._reserved()):
            return True
        victims = self.partitioner.shed_candidates(
            self.partitioner.total_slots, protect=(job.tenant,)
        )
        for victim_tenant in victims:
            victim_job = next(
                (j for j in self._running if j.tenant == victim_tenant
                 and j.lib is not None), None,
            )
            if victim_job is None:
                continue
            pairs = [
                (f, victim_job.lib.manager(f))
                for f in victim_job.lib.field_names()
                if f not in victim_job.lib._shared
            ]
            pairs = [(f, m) for f, m in pairs if len(m.slots) > 1]
            if not pairs:
                continue
            fname, target = max(pairs, key=lambda fm: len(fm[1].slots))
            if target.shed_slots(1):
                victim_job.shed += 1
                victim_job.slots_held -= 1
                victim_job.footprint -= plan_slot_bytes(victim_job.plan, fname)
                self.partitioner.release(victim_tenant, 1)
                self.metrics.inc("service.evictions.priority")
                self.session.emit(
                    "shed", self.now, tenant=victim_tenant,
                    job=victim_job.id, beneficiary=job.id, slots=1,
                )
            if footprint <= self.admission.budget(self._reserved()):
                return True
        return footprint <= self.admission.budget(self._reserved())

    def _evict_dataset_cache(self) -> bool:
        """Drop cached read-only datasets nobody is borrowing (memory relief)."""
        running = {j.id for j in self._running}
        freed = False
        for key in list(self._datasets):
            ds = self._datasets[key]
            ds["borrowers"] &= running
            if ds["owner"] in running or ds["borrowers"]:
                continue
            ds["manager"].release_device_memory()
            del self._datasets[key]
            self.metrics.inc("service.dedup_evicted")
            freed = True
        return freed

    def _register_datasets(self, job: _Job) -> None:
        """Publish the job's read-only inputs for later jobs to borrow."""
        if job.plan is None or job.lib is None:
            return
        for fname, key in self._shareable_fields(job, job.plan).items():
            if key in self._datasets or fname in job.lib._shared:
                continue
            self._datasets[key] = {
                "array": job.lib.field(fname),
                "manager": job.lib.manager(fname),
                "owner": job.id,
                "borrowers": set(),
            }
            job.lib.mark_field_shared(fname)

    # -- the scheduling loop ------------------------------------------------

    def _busy_total(self) -> float:
        return self._busy_accum + sum(e.busy_time for e in self._engines)

    def _admit_ready(self) -> None:
        if self.scheduler == "serial" and self._running:
            return
        now = self.now
        ready = sorted(
            (j for j in self._queued if j.arrival <= now),
            key=lambda j: (not self.tenants[j.tenant].priority, j.arrival, j.seq),
        )
        cap = self.per_tenant_concurrency
        for job in ready:
            if cap is not None:
                in_flight = sum(1 for j in self._running if j.tenant == job.tenant)
                if in_flight >= cap:
                    self._note_wait(job, "queued")
                    continue
            if self.admission.backpressured(job.tenant):
                self._note_wait(job, "backpressure")
                self.metrics.inc("service.slo.backpressure_deferrals")
                continue
            self._try_admit(job)
            if self.scheduler == "serial" and self._running:
                return

    def _pick(self) -> _Job:
        if self.scheduler == "serial":
            return self._running[0]
        tenant = self.wfq.pick({j.tenant for j in self._running})
        return min(
            (j for j in self._running if j.tenant == tenant),
            key=lambda j: j.seq,
        )

    def _step(self, job: _Job) -> None:
        busy0 = self._busy_total()
        t0 = self.now
        done = False
        run = None
        try:
            next(job.stepper)
        except StopIteration as stop:
            done = True
            run = stop.value
        t1 = self.now
        if job.start_t is None:
            job.start_t = t0
        job.own_seconds += t1 - t0
        job.last_q_end = t1
        job.n_quanta += 1
        cost = (self._busy_total() - busy0) + (t1 - t0)
        self.wfq.charge(job.tenant, cost)
        if not job.registered and not done:
            # fields exist after the stepper's lazy setup ran: publish the
            # job's read-only inputs so co-running jobs can borrow them
            self._register_datasets(job)
            job.registered = True
        m = self.metrics
        m.inc(f"service.tenant.{job.tenant}.quanta")
        m.inc(f"service.tenant.{job.tenant}.busy_seconds",
              max(self._busy_total() - busy0, 0.0))
        if done:
            self._finish(job, run)
        elif self.max_engine_lag is not None:
            tail = max(e.tail for e in self._engines)
            if tail - self.now > self.max_engine_lag:
                self.clock.advance_to(tail - self.max_engine_lag)

    def _finish(self, job: _Job, run) -> None:
        lib = job.lib
        self._register_datasets(job)
        # Queue the final writebacks WITHOUT a host sync: lib.close() (or a
        # synchronous flush) would floor the shared clock at this job's
        # drain point, and every co-running job's next issue with it — the
        # single biggest serializer between multiplexed jobs.  Functional
        # copies move bytes eagerly at issue, so digests are already exact;
        # the copies' virtual completion defines the job's finish time, and
        # slot release is deferred until the clock actually passes it.
        drain_end = self.now
        for fname in sorted(job.plan.fields):
            if fname in lib._shared:
                continue
            mgr = lib.manager(fname)
            if not mgr.read_only:
                drain_end = max(drain_end, mgr.flush_to_host(sync=False))
        digests = None
        if self.runtime.functional:
            from ..check.explore import digest
            digests = {
                fname: digest(lib.field(fname).to_global())
                for fname in sorted(job.plan.fields)
            }
        self._draining.append((job, drain_end))
        job.state = DONE
        job.finish_t = drain_end
        self._t_last_finish = max(self._t_last_finish, drain_end)
        latency = job.finish_t - job.arrival
        started = job.start_t if job.start_t is not None else job.admit_t
        last_end = job.last_q_end if job.last_q_end is not None else self.now
        queue_wait = job.admit_t - job.arrival
        start_delay = started - job.admit_t
        execute = last_end - started
        drain = job.finish_t - last_end
        timeline = {
            "submitted": job.arrival, "admitted": job.admit_t,
            "started": started, "last_quantum_end": last_end,
            "drained": job.finish_t, "own_seconds": job.own_seconds,
            "quanta": job.n_quanta,
            "wait": {k: v for k, v in sorted(job.wait.items())},
        }
        result = JobResult(
            job=job.id, tenant=job.tenant, workload=job.workload,
            arrival=job.arrival, admitted=job.admit_t,
            finished=job.finish_t, latency=latency, elapsed=run.elapsed,
            iterations=run.iterations, degraded=job.degraded,
            shed=job.shed, shared_fields=job.shared_fields,
            digests=digests, env=dict(run.env),
            n_regions=job.plan.n_regions, n_slots=job.plan.n_slots,
            timeline=timeline,
        )
        self._results[job.id] = result
        self._running.remove(job)
        m = self.metrics
        m.inc(f"service.tenant.{job.tenant}.jobs_completed")
        for phase, value in (("latency", latency), ("queue_wait", queue_wait),
                             ("start_delay", start_delay),
                             ("execute", execute), ("drain", drain)):
            m.histogram(f"service.tenant.{job.tenant}.{phase}",
                        LATENCY_BUCKETS).observe(value)
        if self.slo is not None:
            self.slo.observe(JobSli(
                job=job.id, tenant=job.tenant, t=job.finish_t,
                latency=latency, queue_wait=queue_wait,
                start_delay=start_delay, execute=execute, drain=drain,
            ))
        self.session.emit(
            "finish", self.now, tenant=job.tenant, job=job.id,
            latency=latency, elapsed=run.elapsed, degraded=job.degraded,
            shed=job.shed, quanta=job.n_quanta,
        )
        self._update_backlog(job.tenant)
        if self.scheduler == "serial":
            # the serialized baseline drains each job fully: advance to its
            # writeback completion, release its slots, fold its engine time
            # into the ledger, then hand the next job a clean schedule *and*
            # a clean per-job DAG/hazard record (the reset_schedule
            # lifecycle fix this service relies on)
            if drain_end > self.now:
                self.clock.advance_to(drain_end)
            self._reap_drained()
            self._busy_accum += sum(e.busy_time for e in self._engines)
            self.runtime.reset_schedule(drop_dag=True)
        if self.on_finish is not None:
            self.on_finish(result, self)

    def _reap_drained(self) -> None:
        """Release slots of finished jobs whose writebacks have completed."""
        now = self.now
        still = []
        for job, end in self._draining:
            if end > now:
                still.append((job, end))
                continue
            for fname in sorted(job.plan.fields):
                if fname not in job.lib._shared:
                    job.lib.manager(fname).release_device_memory()
            self.partitioner.release(job.tenant, job.slots_held)
        self._draining = still

    def run(self) -> ServiceReport:
        """Drain the queue deterministically; returns the aggregate report."""
        while self._queued or self._running:
            self._reap_drained()
            self._admit_ready()
            if self._running:
                self._step(self._pick())
                continue
            now = self.now
            future = [j for j in self._queued if j.arrival > now]
            blocked = [j for j in self._queued if j.arrival <= now]
            if blocked:
                relief = self.admission.pressure_relief_time()
                if relief is not None and relief > now:
                    self.session.emit("wait-pressure", now, until=relief)
                    self.clock.advance_to(relief)
                    continue
                if self._draining:
                    # finished jobs still hold slots until their writebacks
                    # land; the earliest drain point is the next admit chance
                    self.clock.advance_to(min(end for _, end in self._draining))
                    continue
                if self._evict_dataset_cache():
                    continue
                if (self.slo is not None
                        and self.slo.backpressure_active()
                        and all(self.admission.backpressured(j.tenant)
                                for j in blocked)):
                    if future:
                        # protected tenants still have arrivals coming:
                        # hold the deferral and wait for them rather
                        # than releasing the flood between two arrivals
                        self.clock.advance_to(min(j.arrival for j in future))
                        continue
                    if self.slo.release_backpressure():
                        # only backpressured jobs remain and every
                        # protected tenant is drained: releasing the burn
                        # state (with a "release" mark in the SLO stream)
                        # beats deadlock
                        continue
                job = blocked[0]
                raise ServiceError(
                    f"job {job.id!r} of tenant {job.tenant!r} cannot be "
                    f"admitted: footprint exceeds the device budget with "
                    f"nothing left to wait for",
                    tenant=job.tenant, job=job.id, reason="stuck",
                )
            if future:
                self.clock.advance_to(min(j.arrival for j in future))
        if self._draining:
            self.clock.advance_to(max(end for _, end in self._draining))
            self._reap_drained()
        return self.report()

    # -- reporting ----------------------------------------------------------

    def report(self) -> ServiceReport:
        t0 = self._t_first_admit if self._t_first_admit is not None else 0.0
        t1 = max(self._t_last_finish, t0)
        makespan = t1 - t0
        busy = self._busy_total()
        n_engines = len(self._engines)
        util = busy / (n_engines * makespan) if makespan > 0 else 0.0
        checker = self.runtime.checker
        racy = len(checker.racy()) if checker is not None else 0
        per_tenant: dict[str, dict[str, Any]] = {}
        for name in self.tenants:
            hist = self.metrics.find_histogram(
                f"service.tenant.{name}.latency")
            per_tenant[name] = {
                "weight": self.tenants[name].weight,
                "priority": self.tenants[name].priority,
                "quanta": self.metrics.value(f"service.tenant.{name}.quanta"),
                "busy_seconds": self.metrics.value(
                    f"service.tenant.{name}.busy_seconds"),
                "jobs_completed": self.metrics.value(
                    f"service.tenant.{name}.jobs_completed"),
                "latencies": sorted(
                    r.latency for r in self._results.values()
                    if r.tenant == name
                ),
                # streaming (bucket-interpolated) percentiles — what the
                # metrics surface exposes to compare gates and dashboards
                "latency_p50": hist.percentile(0.50) if hist else None,
                "latency_p95": hist.percentile(0.95) if hist else None,
                "latency_p99": hist.percentile(0.99) if hist else None,
            }
        return ServiceReport(
            jobs=dict(self._results), makespan=makespan,
            busy_seconds=busy, n_engines=n_engines, utilization=util,
            racy_hazards=racy, session=self.session, tenants=per_tenant,
        )

    # -- lifetime -----------------------------------------------------------

    def close(self) -> None:
        """Release cached shared datasets and drain the device."""
        for ds in self._datasets.values():
            ds["manager"].release_device_memory()
        self._datasets.clear()
        self.runtime.device_synchronize()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_solo(
    tenant: str,
    *,
    machine: MachineSpec | None = None,
    functional: bool = True,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    check: str | bool | None = "strict",
    workload: str | None = None,
    workload_kwargs: dict[str, Any] | None = None,
    program=None,
    inputs: dict[str, np.ndarray] | None = None,
    env: dict[str, float] | None = None,
    total_slots: int = DEFAULT_TOTAL_SLOTS,
    **submit_kwargs: Any,
) -> JobResult:
    """Run one job alone on a dedicated runtime (the differential baseline).

    Builds a single-tenant service around a fresh
    :class:`~repro.cuda.runtime.CudaRuntime`, submits the job, drains
    it, and returns its :class:`JobResult` — the digests the isolation
    suite compares every multiplexed run against.
    """
    svc = Service(
        machine, functional=functional, mode=mode,
        device_memory_limit=device_memory_limit, check=check,
        total_slots=total_slots, dedup=False,
    )
    svc.add_tenant(tenant)
    job_id = svc.submit(
        tenant, program, workload=workload,
        workload_kwargs=workload_kwargs, inputs=inputs, env=env,
        **submit_kwargs,
    )
    report = svc.run()
    svc.close()
    return report.jobs[job_id]
