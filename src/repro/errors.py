"""Exception hierarchy for the TiDA-acc reproduction.

Every layer of the stack (simulated CUDA runtime, OpenACC layer, TiDA
tiling library, TiDA-acc core) raises exceptions rooted at
:class:`ReproError` so callers can catch at the granularity they need.
The CUDA-facing errors mirror the ``cudaError_t`` values the paper's
library would encounter (allocation failure, invalid value, invalid
resource handle), which lets the failure-injection tests assert on the
same conditions a real CUDA program would see.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid hardware specification or calibration constant."""


class SimulationError(ReproError):
    """Internal inconsistency in the virtual-time engine (a bug, not user error)."""


# ---------------------------------------------------------------------------
# CUDA runtime errors (mirroring cudaError_t)
# ---------------------------------------------------------------------------

class CudaError(ReproError):
    """Base class for simulated CUDA runtime errors."""


class CudaMemoryAllocationError(CudaError):
    """cudaErrorMemoryAllocation: device memory exhausted."""


class CudaInvalidValueError(CudaError):
    """cudaErrorInvalidValue: bad argument to a runtime call."""


class CudaInvalidResourceHandleError(CudaError):
    """cudaErrorInvalidResourceHandle: stream/event/buffer not owned or destroyed."""


class TimingModeError(CudaInvalidValueError):
    """Numeric payload requested from a timing-only (``mode="timing"``) run.

    Timing-only buffers carry no backing arrays: every schedule decision,
    trace event, and hazard edge is produced, but reading values back
    (``gather``/``scatter``, ``buffer.array``) is meaningless.  Re-run
    with ``mode="functional"`` (or ``functional=True``) for numerics.
    """


class CudaIllegalAddressError(CudaError):
    """cudaErrorIllegalAddress: kernel touched freed or foreign memory."""


class CudaTransferError(CudaError):
    """A DMA transfer failed in flight (engine fault, link error).

    Real runtimes surface this as ``cudaErrorUnknown``/xid reports on the
    next synchronizing call; the simulator raises it at the issuing call
    so fault-injection tests can pin the failure to one transfer.  It is
    *transient*: re-issuing the same copy may succeed.
    """


class CudaEccUncorrectableError(CudaError):
    """cudaErrorECCUncorrectable: an uncorrectable ECC error hit a launch.

    Transient from the scheduler's point of view: the kernel did not run
    (no partial writes), so a re-launch is safe.
    """


# ---------------------------------------------------------------------------
# OpenACC layer errors
# ---------------------------------------------------------------------------

class AccError(ReproError):
    """Base class for OpenACC layer errors."""


class AccPresentError(AccError):
    """Data referenced by ``present`` clause is not in the present table."""


class AccCompileError(AccError):
    """The directive 'compiler' rejected the construct (bad collapse, etc.)."""


# ---------------------------------------------------------------------------
# Tiling library errors
# ---------------------------------------------------------------------------

class TidaError(ReproError):
    """Base class for TiDA tiling-library errors."""


class DecompositionError(TidaError):
    """Domain cannot be decomposed as requested."""


class TileAccError(ReproError):
    """Base class for TiDA-acc core errors (slot/cache management, compute)."""


class PlanError(TidaError):
    """Invalid declarative program or an unplannable workload description.

    Raised by :mod:`repro.plan` when a :class:`~repro.plan.Program` is
    internally inconsistent (a swap of undeclared fields, a step whose
    field count contradicts its kernel's declared accesses) or when the
    planner cannot derive a decomposition from the declarations.
    """


class AccessOverrideWarning(UserWarning):
    """``launch(reads=/writes=)`` contradicts the kernel's ``arg_access``.

    The explicit override still wins (callers sometimes narrow a
    conservative declaration deliberately), but a *contradiction* —
    claiming reads/writes the declaration excludes, or dropping ones it
    requires — usually means one of the two is wrong, and silent
    disagreement would desynchronize the hazard checker from the planner.
    """


# ---------------------------------------------------------------------------
# Fault-injection / resilience layer errors
# ---------------------------------------------------------------------------

class FaultPlanError(ReproError):
    """Invalid fault plan: bad rule fields or an unparsable spec string."""


class FaultError(ReproError):
    """Retry exhaustion in the resilience layer.

    Raised after a :class:`~repro.faults.RetryPolicy` has spent every
    attempt on a failing operation.  Before raising, the resilience layer
    flushes all surviving device-resident regions back to the host (with
    injection suspended), so no data is silently lost.  ``__cause__``
    carries the last underlying :class:`CudaError`.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str | None = None,
        field: str | None = None,
        region: int | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.field = field
        self.region = region
        self.attempts = attempts


# ---------------------------------------------------------------------------
# Multi-tenant service layer (repro.service)
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """A job was rejected or mishandled by the multi-tenant service.

    Raised by :mod:`repro.service` when admission control rejects a job
    (its minimum footprint exceeds device capacity even after degrading
    the plan), when a submission references an unknown tenant or
    workload, or when the service is driven through an invalid
    lifecycle.  ``tenant`` and ``job`` carry the offending identifiers
    so multi-tenant harnesses can attribute the failure.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        job: str | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.job = job
        self.reason = reason


# ---------------------------------------------------------------------------
# Happens-before checking (repro.check)
# ---------------------------------------------------------------------------

class HazardError(ReproError):
    """A racy conflicting access pair detected in strict checking mode.

    Raised by :class:`~repro.check.hazards.HazardChecker` when two
    operations touch the same device buffer (RAW/WAR/WAW) with no
    happens-before edge between them — not even the engine-FIFO ordering
    the simulator happens to provide.  ``hazard`` carries the full
    :class:`~repro.check.hazards.Hazard` record.
    """

    def __init__(self, message: str, *, hazard=None) -> None:
        super().__init__(message)
        self.hazard = hazard
