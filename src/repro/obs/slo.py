"""Per-tenant SLO tracking: SLIs, error budgets, and burn-rate alerts.

The multi-tenant service (:mod:`repro.service`) stamps every job's
virtual-clock lifecycle — submit, admit, first quantum, last quantum,
drain — and reports the decomposition as a *service level indicator*
(:class:`JobSli`).  This module turns those SLIs into operability:

* **Declarative SLOs** (:class:`SloPolicy`): a latency target plus an
  objective fraction per tenant ("95% of t0's jobs finish within
  2 ms").  The *error budget* is the complement — the fraction of jobs
  allowed to miss the target.
* **Error-budget accounting** (:class:`SloTracker`): every finished job
  is classified good/bad against its tenant's target; the tracker keeps
  exact per-tenant counts, rolling good/bad windows, and an append-only
  deterministic ``repro-slo/1`` JSONL stream mirroring the service
  session log.
* **Multi-window burn-rate detection**: the burn rate is the observed
  bad fraction divided by the allowed bad fraction (``1 - objective``);
  a tenant enters the *burning* state when both a fast (recent jobs)
  and a slow (longer history) window exceed their thresholds — the
  standard fast-burn/slow-burn pairing that ignores one-off misses but
  catches sustained overload — and leaves it with hysteresis only once
  *both* windows recover below ``exit_burn``, so a handful of lucky
  jobs cannot flap the state off while the miss history is still hot.
* **SLO-aware backpressure**: while any tenant burns, the service can
  consult :meth:`SloTracker.burning` from an
  :class:`~repro.service.admission.AdmissionController` hook and defer
  best-effort admissions until the protected tenant's budget recovers
  (``Service(slo=..., backpressure=True)``).
* **Live-watchdog integration** (:class:`SloBurnDetector`): mirrors the
  tracker's burning state into the telemetry alert stream so ``obs
  .watch`` and the flight recorder see SLO burns next to overlap
  collapses and retry storms.

Everything is driven by the virtual clock and job-completion order, so
for a given seed the SLI stream, budget ledger, and alert sequence are
byte-reproducible — and *tracking* never touches the clock, so a
monitored run stays byte-identical to an unmonitored one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from .live.watchdog import Alert, Detector
from .metrics import ObsError

#: Schema tag of the SLO JSONL stream header line.
SCHEMA = "repro-slo/1"

#: Histogram buckets for sub-second latency phases: quarter-decade log
#: spacing from 1 microsecond to 100 seconds, so streaming p50/p95/p99
#: interpolation stays tight at simulated-latency scales (the default
#: power-of-4 buckets lump every job into one bucket).
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * (10.0 ** (k / 4.0)) for k in range(33)
)


def _round(t: float) -> float:
    """12-decimal rounding, matching the service session log."""
    return round(float(t), 12)


@dataclass(frozen=True)
class SloPolicy:
    """A declarative per-tenant latency SLO.

    ``objective`` is the fraction of jobs that must finish within
    ``target`` (virtual seconds); the error budget is ``1 - objective``.
    The window sizes are *job counts* (not wall time): virtual-clock
    load is bursty and job-indexed windows keep the detector
    deterministic under replay.  Burn thresholds are multiples of the
    allowed bad rate — ``fast_burn=8`` means the recent window misses
    eight times faster than the budget allows.  A burn starts when both
    windows exceed their thresholds and stops only when both drop below
    ``exit_burn`` (hysteresis on the slow window prevents flapping).
    """

    tenant: str
    target: float
    objective: float = 0.95
    fast_window: int = 4
    slow_window: int = 16
    fast_burn: float = 8.0
    slow_burn: float = 2.0
    exit_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.target <= 0.0:
            raise ObsError(f"SLO target must be > 0, got {self.target!r}")
        if not 0.0 < self.objective < 1.0:
            raise ObsError(
                f"SLO objective must be in (0, 1), got {self.objective!r}")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ObsError(
                "SLO windows need 1 <= fast_window <= slow_window, got "
                f"{self.fast_window}/{self.slow_window}")
        if self.fast_burn <= 0 or self.slow_burn <= 0 or self.exit_burn <= 0:
            raise ObsError("SLO burn thresholds must be > 0")

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant, "target": self.target,
            "objective": self.objective,
            "fast_window": self.fast_window, "slow_window": self.slow_window,
            "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
            "exit_burn": self.exit_burn,
        }


@dataclass(frozen=True)
class JobSli:
    """One finished job's latency decomposition (the SLI record).

    The four phases tile the latency: ``queue_wait`` (submit→admit,
    including deferral), ``start_delay`` (admit→first quantum),
    ``execute`` (first→last quantum), ``drain`` (last quantum→final
    write-back completion).
    """

    job: str
    tenant: str
    t: float                    # finish (drain-end) virtual time
    latency: float
    queue_wait: float
    start_delay: float
    execute: float
    drain: float

    def to_record(self) -> dict[str, Any]:
        return {
            "kind": "sli", "job": self.job, "tenant": self.tenant,
            "t": _round(self.t), "latency": _round(self.latency),
            "queue_wait": _round(self.queue_wait),
            "start_delay": _round(self.start_delay),
            "execute": _round(self.execute), "drain": _round(self.drain),
        }


def _pct(sorted_values: list[float], q: float) -> float | None:
    """Exact linear-interpolation quantile of an ascending list."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


class SloTracker:
    """Error-budget accounting and burn-rate detection over job SLIs.

    ``policies`` is an iterable of :class:`SloPolicy` (or a mapping of
    tenant name to policy / bare latency target).  Tenants without a
    policy still get their SLIs recorded in the JSONL stream; only
    policy tenants participate in budgets and burn alerts.
    """

    def __init__(self, policies: Iterable[SloPolicy] | Mapping[str, Any],
                 *, metrics=None) -> None:
        norm: dict[str, SloPolicy] = {}
        if isinstance(policies, Mapping):
            for tenant, pol in policies.items():
                if not isinstance(pol, SloPolicy):
                    pol = SloPolicy(tenant=tenant, target=float(pol))
                norm[tenant] = pol
        else:
            for pol in policies:
                norm[pol.tenant] = pol
        self.policies = norm
        self.metrics = metrics
        self.alerts: list[Alert] = []
        self._jobs: dict[str, int] = {}
        self._bad: dict[str, int] = {}
        self._window: dict[str, list[bool]] = {}   # True = violated target
        self._times: dict[str, list[float]] = {}   # finish times, same ring
        self._latencies: dict[str, list[float]] = {}
        self._burning: set[str] = set()
        header: dict[str, Any] = {"kind": "header", "schema": SCHEMA}
        header["policies"] = {
            t: norm[t].to_dict() for t in sorted(norm)
        }
        self._lines: list[str] = [json.dumps(header, sort_keys=True)]

    # -- observation --------------------------------------------------------

    def observe(self, sli: JobSli) -> list[Alert]:
        """Account one finished job; returns any newly fired burn alerts."""
        self._lines.append(json.dumps(sli.to_record(), sort_keys=True))
        self._latencies.setdefault(sli.tenant, []).append(sli.latency)
        pol = self.policies.get(sli.tenant)
        if pol is None:
            return []
        bad = sli.latency > pol.target
        self._jobs[sli.tenant] = self._jobs.get(sli.tenant, 0) + 1
        if bad:
            self._bad[sli.tenant] = self._bad.get(sli.tenant, 0) + 1
            if self.metrics is not None:
                self.metrics.inc("service.slo.violations")
                self.metrics.inc(f"service.slo.{sli.tenant}.violations")
        ring = self._window.setdefault(sli.tenant, [])
        times = self._times.setdefault(sli.tenant, [])
        ring.append(bad)
        times.append(sli.t)
        if len(ring) > pol.slow_window:
            del ring[0]
            del times[0]
        fast, slow = self.burn_rates(sli.tenant)
        budget = self.error_budget(sli.tenant)
        if self.metrics is not None:
            self.metrics.set_gauge(f"service.slo.{sli.tenant}.burn_fast", fast)
            self.metrics.set_gauge(f"service.slo.{sli.tenant}.burn_slow", slow)
            self.metrics.set_gauge(
                f"service.slo.{sli.tenant}.budget_remaining",
                budget["remaining_fraction"],
            )
        fired: list[Alert] = []
        if sli.tenant not in self._burning:
            armed = self._jobs[sli.tenant] >= pol.fast_window
            if armed and fast >= pol.fast_burn and slow >= pol.slow_burn:
                self._burning.add(sli.tenant)
                alert = self._burn_alert(sli.tenant, pol, fast, slow, sli.t)
                self.alerts.append(alert)
                fired.append(alert)
                self._emit_burn(sli.tenant, "start", fast, slow, sli.t)
                if self.metrics is not None:
                    self.metrics.inc("service.slo.alerts")
        elif fast < pol.exit_burn and slow < pol.exit_burn:
            # hysteresis on BOTH windows: a clean fast window alone would
            # re-admit the overload the moment a few jobs squeak by, and
            # the resulting flap costs the protected tenant a slow job
            # per cycle — the slow window keeps the state latched until
            # the miss history actually ages out
            self._burning.discard(sli.tenant)
            self._emit_burn(sli.tenant, "stop", fast, slow, sli.t)
        return fired

    def _burn_alert(self, tenant: str, pol: SloPolicy, fast: float,
                    slow: float, t: float) -> Alert:
        times = self._times.get(tenant, [t])
        window = (times[max(len(times) - pol.fast_window, 0)], t)
        return Alert(
            detector="slo_burn",
            severity="critical",
            t=t,
            window=window,
            message=(
                f"tenant {tenant!r} burning its error budget: fast "
                f"{fast:.1f}x / slow {slow:.1f}x the allowed miss rate "
                f"(target {pol.target:g}s at {pol.objective:.0%})"
            ),
            evidence={
                "tenant": tenant, "burn_fast": fast, "burn_slow": slow,
                "target": pol.target, "objective": pol.objective,
                "jobs": self._jobs.get(tenant, 0),
                "violations": self._bad.get(tenant, 0),
            },
        )

    def _emit_burn(self, tenant: str, state: str, fast: float, slow: float,
                   t: float) -> None:
        self._lines.append(json.dumps({
            "kind": "burn", "tenant": tenant, "state": state,
            "t": _round(t), "burn_fast": _round(fast),
            "burn_slow": _round(slow),
        }, sort_keys=True))

    # -- queries ------------------------------------------------------------

    def burn_rates(self, tenant: str) -> tuple[float, float]:
        """(fast, slow) burn rates: window bad fraction / allowed fraction."""
        pol = self.policies.get(tenant)
        ring = self._window.get(tenant, [])
        if pol is None or not ring:
            return (0.0, 0.0)
        allowed = 1.0 - pol.objective

        def rate(window: int) -> float:
            tail = ring[-window:]
            return (sum(tail) / len(tail)) / allowed

        return (rate(pol.fast_window), rate(pol.slow_window))

    def error_budget(self, tenant: str) -> dict[str, float]:
        """The tenant's budget ledger over every observed job.

        ``allowed`` is how many misses the objective permits so far,
        ``burned`` how many happened; ``remaining_fraction`` is 1 with
        no misses and can go negative when overdrawn.
        """
        pol = self.policies.get(tenant)
        jobs = self._jobs.get(tenant, 0)
        burned = float(self._bad.get(tenant, 0))
        allowed = (1.0 - pol.objective) * jobs if pol is not None else 0.0
        if allowed > 0.0:
            remaining = 1.0 - burned / allowed
        else:
            remaining = 1.0 if burned == 0.0 else 0.0
        return {"jobs": float(jobs), "allowed": allowed, "burned": burned,
                "remaining_fraction": remaining}

    def burning(self) -> frozenset[str]:
        """Tenants currently in the burning state."""
        return frozenset(self._burning)

    def backpressure_active(self) -> bool:
        return bool(self._burning)

    def release_backpressure(self) -> bool:
        """Force-exit every burning state (service idle-escape hatch).

        The service calls this when nothing is running, nothing is
        draining, and only backpressured jobs remain: with the protected
        tenants idle there is no one left to protect, so holding
        best-effort jobs any longer would deadlock the queue.  Returns
        True when any state was cleared.
        """
        if not self._burning:
            return False
        for tenant in sorted(self._burning):
            fast, slow = self.burn_rates(tenant)
            times = self._times.get(tenant) or [0.0]
            self._emit_burn(tenant, "release", fast, slow, times[-1])
        self._burning.clear()
        if self.metrics is not None:
            self.metrics.inc("service.slo.backpressure_released")
        return True

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe per-tenant rollup (policies, budget, burn, percentiles)."""
        tenants: dict[str, Any] = {}
        names = sorted(set(self.policies) | set(self._latencies))
        for tenant in names:
            pol = self.policies.get(tenant)
            lats = sorted(self._latencies.get(tenant, []))
            fast, slow = self.burn_rates(tenant)
            tenants[tenant] = {
                "policy": pol.to_dict() if pol is not None else None,
                "budget": self.error_budget(tenant),
                "burn_fast": fast,
                "burn_slow": slow,
                "burning": tenant in self._burning,
                "latency": {
                    "count": len(lats),
                    "p50": _pct(lats, 0.50),
                    "p95": _pct(lats, 0.95),
                    "p99": _pct(lats, 0.99),
                },
            }
        return {
            "schema": SCHEMA,
            "tenants": tenants,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    # -- the JSONL stream ---------------------------------------------------

    def to_text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def to_bytes(self) -> bytes:
        """Canonical byte form (what determinism tests compare)."""
        return self.to_text().encode("utf-8")

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path


def read_slo(path: str | Path) -> list[dict[str, Any]]:
    """Parse a ``repro-slo/1`` JSONL file back into record dicts."""
    out = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out


class SloBurnDetector(Detector):
    """Mirror :class:`SloTracker` burning state into the live watchdog.

    The tracker itself fires exact, job-indexed alerts at the moment a
    budget starts burning; this detector re-surfaces the *state* on the
    telemetry sample stream so burns appear in ``obs.watch``, the flight
    recorder, and ``TelemetryBus.health()`` alongside the engine-level
    detectors.  It fires once per transition (new tenants joining the
    burning set re-fire it) and resets when every budget recovers.
    """

    name = "slo_burn"

    def __init__(self, tracker: SloTracker, *, window: int = 2,
                 warmup: int | None = 1, cooldown: float = 0.0) -> None:
        super().__init__(window=window, warmup=warmup, cooldown=cooldown)
        self.tracker = tracker
        self._announced: frozenset[str] = frozenset()

    def _evaluate(self, sample) -> Alert | None:
        burning = self.tracker.burning()
        if not burning:
            self._announced = frozenset()
            return None
        if burning <= self._announced:
            return None
        self._announced = burning
        tenants = sorted(burning)
        rates = {t: self.tracker.burn_rates(t) for t in tenants}
        return self._alert(
            "critical",
            "SLO error budget burning for tenant(s) "
            + ", ".join(f"{t!r}" for t in tenants),
            sample.t,
            tenants=tenants,
            burn_fast={t: r[0] for t, r in rates.items()},
            burn_slow={t: r[1] for t, r in rates.items()},
        )
