"""Shared baseline helpers: init determinism, global BC, boundary plans."""

import numpy as np
import pytest

from repro.baselines.common import (
    apply_bc_global,
    bc_kernel_launches,
    default_init,
    face_slab_slices,
    interior,
    reference_compute_intensive,
    reference_heat,
)
from repro.errors import ReproError
from repro.tida.boundary import Dirichlet, Neumann, Periodic


class TestDefaultInit:
    def test_deterministic(self):
        a = default_init((8, 8), 1)
        b = default_init((8, 8), 1)
        np.testing.assert_array_equal(a, b)

    def test_ghosted_shape(self):
        assert default_init((8, 6), 2).shape == (12, 10)

    def test_values_in_unit_interval(self):
        a = default_init((16,), 0)
        assert a.min() >= 0.0 and a.max() < 1.0

    def test_not_constant(self):
        assert default_init((64,), 0).std() > 0.1


class TestInteriorAndSlices:
    def test_interior(self):
        arr = np.arange(36.0).reshape(6, 6)
        inner = interior(arr, 1)
        assert inner.shape == (4, 4)
        assert inner[0, 0] == arr[1, 1]

    def test_interior_zero_ghost(self):
        arr = np.ones((4, 4))
        assert interior(arr, 0) is arr

    def test_face_slab_slices_low(self):
        dst, src = face_slab_slices((8, 8), 1, axis=0, side=-1)
        assert dst[0] == slice(0, 1)
        assert src[0] == slice(1, 2)
        assert dst[1] == slice(None)

    def test_face_slab_slices_high(self):
        dst, src = face_slab_slices((8, 8), 2, axis=1, side=+1)
        assert dst[1] == slice(6, 8)
        assert src[1] == slice(5, 6)


class TestApplyBcGlobal:
    def test_neumann(self):
        arr = np.arange(6.0)
        apply_bc_global(arr, 1, Neumann())
        assert arr[0] == arr[1] and arr[-1] == arr[-2]

    def test_dirichlet(self):
        arr = np.arange(6.0)
        apply_bc_global(arr, 1, Dirichlet(9.0))
        assert arr[0] == 9.0 and arr[-1] == 9.0

    def test_periodic(self):
        arr = np.arange(6.0)
        apply_bc_global(arr, 1, Periodic())
        assert arr[0] == 4.0 and arr[-1] == 1.0

    def test_zero_ghost_noop(self):
        arr = np.arange(6.0)
        before = arr.copy()
        apply_bc_global(arr, 0, Neumann())
        np.testing.assert_array_equal(arr, before)

    def test_unknown_bc_rejected(self):
        class Weird(Neumann.__mro__[1]):  # BoundaryCondition subclass
            pass
        with pytest.raises(ReproError):
            apply_bc_global(np.zeros(4), 1, Weird())


class TestBcKernelPlans:
    def test_neumann_one_kernel_per_face(self):
        plan = bc_kernel_launches((10, 10, 10), 1, Neumann())
        assert len(plan) == 6
        assert all(kind == "copy" for kind, _, _ in plan)

    def test_dirichlet_fill_kernels(self):
        plan = bc_kernel_launches((10, 10), 1, Dirichlet(0.5))
        assert len(plan) == 4
        assert all(kind == "fill" for kind, _, _ in plan)
        assert all(p["value"] == 0.5 for _, p, _ in plan)

    def test_periodic_two_copies_per_axis(self):
        plan = bc_kernel_launches((10, 10), 1, Periodic())
        assert len(plan) == 4
        assert all(kind == "copy" for kind, _, _ in plan)

    def test_cell_counts(self):
        plan = bc_kernel_launches((10, 12), 1, Neumann())
        counts = sorted(n for _, _, n in plan)
        assert counts == [10, 10, 12, 12]

    def test_zero_ghost_empty_plan(self):
        assert bc_kernel_launches((10, 10), 0, Neumann()) == []

    def test_plan_matches_apply_bc_functionally(self):
        """Applying the plan's slice operations reproduces apply_bc_global."""
        rng = np.random.default_rng(0)
        for bc in (Neumann(), Dirichlet(1.5), Periodic()):
            base = rng.random((7, 8))
            via_plan = base.copy()
            for kind, params, _ in bc_kernel_launches(base.shape, 1, bc):
                if kind == "fill":
                    via_plan[params["dst_slices"]] = params["value"]
                else:
                    via_plan[params["dst_slices"]] = via_plan[params["src_slices"]]
            via_global = base.copy()
            apply_bc_global(via_global, 1, bc)
            np.testing.assert_array_equal(via_plan, via_global)


class TestReferences:
    def test_reference_heat_dissipates_variance(self):
        init = default_init((12, 12), 1)
        out = reference_heat(init, 20, coef=0.1, bc=Neumann(), ghost=1)
        assert out.std() < interior(init, 1).std()

    def test_reference_compute_intensive_additive(self):
        init = np.zeros((4, 4))
        out = reference_compute_intensive(init, 3, kernel_iteration=2)
        np.testing.assert_allclose(out, 6.0)
