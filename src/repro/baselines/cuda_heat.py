"""Hand-written CUDA heat solver (the Fig. 1 / Fig. 5 CUDA baselines).

Characteristics reproduced from the paper's implementation (§II-C, §VI-A):

* one **fused kernel per time step** that both updates the data
  boundaries and applies the stencil (versus OpenACC's one-kernel-per-
  face codegen);
* **hand-tuned grid/block geometry** (full kernel efficiency);
* explicit memory management in the chosen flavour: pageable host
  memory, pinned (``cudaMallocHost``), or managed (``cudaMallocManaged``
  with no explicit copies at all);
* both arrays uploaded before the loop, one result array downloaded
  after it — all on the default stream, no overlap (that is TiDA-acc's
  contribution, not the baseline's).
"""

from __future__ import annotations

import numpy as np

from ..config import CUDA_LIBM, DEFAULT_MACHINE, MachineSpec
from ..cuda.kernel import KernelSpec
from ..cuda.runtime import CudaRuntime
from ..errors import ReproError
from ..kernels.heat import HEAT_BYTES_PER_CELL, _heat_body
from ..tida.boundary import BoundaryCondition, Neumann
from .common import BaselineResult, apply_bc_global, default_init, interior

MEMORY_KINDS = ("pageable", "pinned", "managed")


def _fused_body(dst: np.ndarray, src: np.ndarray, lo, hi, coef, ghost, bc) -> None:
    """Boundary update + stencil, as the single hand-written CUDA kernel."""
    apply_bc_global(src, ghost, bc)
    _heat_body(dst, src, lo, hi, coef=coef)


def fused_heat_kernel(ndim: int) -> KernelSpec:
    """The tuned CUDA kernel: stencil plus in-kernel boundary handling.

    Boundary cells are a vanishing fraction of the volume, so the cost
    metadata matches the plain stencil; the fusion's benefit is the
    launch count, which the runtime charges per launch.
    """
    return KernelSpec(
        name=f"cuda-heat{ndim}d-fused",
        body=_fused_body,
        bytes_per_cell=HEAT_BYTES_PER_CELL,
        flops_per_cell=2.0 * ndim + 2.0,
        meta={"ndim": ndim, "fused_boundary": True},
    )


def run_cuda_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (384, 384, 384),
    steps: int = 100,
    memory: str = "pageable",
    functional: bool = False,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    initial: np.ndarray | None = None,
) -> BaselineResult:
    """Run the CUDA heat baseline; timing covers transfers + compute only."""
    if memory not in MEMORY_KINDS:
        raise ReproError(f"memory must be one of {MEMORY_KINDS}, got {memory!r}")
    machine = machine if machine is not None else DEFAULT_MACHINE
    bc = bc if bc is not None else Neumann()
    runtime = CudaRuntime(machine, functional=functional)
    ghost = 1
    full = tuple(s + 2 * ghost for s in shape)
    ndim = len(shape)
    n_interior = 1
    for s in shape:
        n_interior *= s
    kernel = fused_heat_kernel(ndim)
    lo = (ghost,) * ndim
    hi = tuple(s - ghost for s in full)
    params = {"lo": lo, "hi": hi, "coef": coef, "ghost": ghost, "bc": bc}

    if memory == "managed":
        m_src = runtime.malloc_managed(full, label="u0")
        m_dst = runtime.malloc_managed(full, label="u1")
        if functional:
            init = initial if initial is not None else default_init(shape, ghost)
            m_src.array[...] = init
            m_dst.array[...] = init
        t0 = runtime.now
        for _ in range(steps):
            runtime.launch(
                kernel,
                buffers=[m_dst, m_src],
                n_cells=n_interior,
                params=params,
                math=CUDA_LIBM,
            )
            m_src, m_dst = m_dst, m_src
        final = runtime.managed_host_access(m_src)
        elapsed = runtime.now - t0
        result = interior(final, ghost).copy() if functional else None
        return BaselineResult(
            name=f"cuda-{memory}", elapsed=elapsed, shape=shape, steps=steps,
            trace=runtime.trace, result=result, meta={"memory": memory},
        )

    pinned = memory == "pinned"
    alloc = runtime.malloc_pinned if pinned else runtime.malloc_pageable
    h_src = alloc(full, label="u0")
    h_dst = alloc(full, label="u1")
    if functional:
        init = initial if initial is not None else default_init(shape, ghost)
        h_src.array[...] = init
        h_dst.array[...] = init
    d_src = runtime.malloc(full, label="d_u0")
    d_dst = runtime.malloc(full, label="d_u1")

    t0 = runtime.now
    runtime.memcpy(d_src, h_src, label="h2d:u0")
    runtime.memcpy(d_dst, h_dst, label="h2d:u1")
    for _ in range(steps):
        runtime.launch(
            kernel,
            buffers=[d_dst, d_src],
            n_cells=n_interior,
            params=params,
            math=CUDA_LIBM,
        )
        d_src, d_dst = d_dst, d_src
    runtime.memcpy(h_src, d_src, label="d2h:result")
    elapsed = runtime.now - t0
    result = interior(h_src.array, ghost).copy() if functional else None
    return BaselineResult(
        name=f"cuda-{memory}", elapsed=elapsed, shape=shape, steps=steps,
        trace=runtime.trace, result=result, meta={"memory": memory},
    )
