"""The happens-before hazard detector, driven through the real runtime.

Each test builds a tiny schedule by hand — copies and kernel launches on
explicit streams — and asserts what the checker flags: properly
synchronized schedules are clean, cross-stream conflicts without an edge
are racy, conflicts ordered only by a shared engine FIFO are warnings.
"""

import pytest

from repro.check import (
    HazardChecker,
    default_mode,
    resolve_checker,
    resolve_mode,
    set_default_mode,
)
from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.errors import HazardError


@pytest.fixture
def rt(machine):
    return CudaRuntime(machine, check="observe")


@pytest.fixture
def strict_rt(machine):
    return CudaRuntime(machine, check="strict")


def touch_kernel(arg_access=None):
    """A pure-timing kernel for launch-ordering tests."""
    return KernelSpec(
        name="touch", body=None, bytes_per_cell=8.0, flops_per_cell=1.0,
        arg_access=arg_access,
    )


class TestModeResolution:
    def test_bool_and_string_forms(self):
        assert resolve_mode(True) == "strict"
        assert resolve_mode(False) == "off"
        assert resolve_mode("observe") == "observe"
        assert resolve_mode("strict") == "strict"
        assert resolve_mode("off") == "off"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="check must be"):
            resolve_mode("paranoid")
        with pytest.raises(ValueError, match="observe.*strict"):
            HazardChecker("off")

    def test_none_consults_process_default(self):
        assert resolve_mode(None) == default_mode()

    def test_set_default_mode_round_trip(self):
        try:
            set_default_mode("strict")
            assert resolve_mode(None) == "strict"
            set_default_mode(None)
            assert default_mode() == "off"
        finally:
            set_default_mode(None)

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "observe")
        assert default_mode() == "observe"
        monkeypatch.setenv("REPRO_CHECK", "bogus")
        assert default_mode() == "off"

    def test_resolve_checker_off_is_none(self):
        assert resolve_checker(False) is None
        assert isinstance(resolve_checker("strict"), HazardChecker)

    def test_runtime_check_off_has_no_checker(self, machine):
        assert CudaRuntime(machine, check=False).checker is None
        assert CudaRuntime(machine, check="observe").checker is not None


class TestCleanSchedules:
    """Synchronized programs produce zero hazards."""

    def test_same_stream_fifo(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s = rt.create_stream()
        rt.memcpy_async(a, h, s)
        rt.memcpy_async(h, a, s)  # RAW + WAR, but program-ordered
        assert rt.checker.hazards == []
        assert rt.checker.op_count == 2

    def test_after_edge_orders_cross_stream(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        end = rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2, after=end)
        assert rt.checker.hazards == []

    def test_event_record_wait_orders_cross_stream(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        ev = rt.create_event()
        rt.memcpy_async(a, h, s1)
        rt.event_record(ev, s1)
        rt.stream_wait_event(s2, ev)
        rt.memcpy_async(h, a, s2)
        assert rt.checker.hazards == []

    def test_host_stream_sync_orders_everything_after(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.stream_synchronize(s1)
        rt.memcpy_async(h, a, s2)  # issued after the host observed s1 drain
        assert rt.checker.hazards == []

    def test_device_synchronize_orders_everything_after(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.device_synchronize()
        rt.memcpy_async(h, a, s2)
        assert rt.checker.hazards == []

    def test_event_synchronize_orders_host(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        ev = rt.create_event()
        rt.memcpy_async(a, h, s1)
        rt.event_record(ev, s1)
        rt.event_synchronize(ev)
        rt.memcpy_async(h, a, s2)
        assert rt.checker.hazards == []

    def test_synchronous_memcpy_is_a_host_sync(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s2 = rt.create_stream()
        rt.memcpy(a, h)  # blocking: drains the default stream
        rt.memcpy_async(h, a, s2)
        assert rt.checker.hazards == []

    def test_disjoint_buffers_never_conflict(self, rt):
        a, b = rt.malloc(1024, label="a"), rt.malloc(1024, label="b")
        ha, hb = rt.malloc_pinned(1024, label="ha"), rt.malloc_pinned(1024, label="hb")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, ha, s1)
        rt.memcpy_async(b, hb, s2)
        assert rt.checker.hazards == []


class TestRacySchedules:
    def test_cross_stream_copy_pair_is_racy(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)     # writes a, reads h  (H2D engine)
        rt.memcpy_async(h, a, s2)     # reads a, writes h  (D2H engine)
        kinds = sorted((hz.severity, hz.kind) for hz in rt.checker.hazards)
        assert kinds == [("error", "RAW"), ("error", "WAR")]

    def test_hazard_names_buffer_and_ops(self, rt):
        a = rt.malloc(1024, label="weights")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1, label="up")
        rt.memcpy_async(h, a, s2, label="down")
        raw = next(hz for hz in rt.checker.hazards if hz.kind == "RAW")
        assert raw.buffer == "weights"
        assert raw.earlier.label == "up"
        assert raw.later.label == "down"
        assert "racy" in raw.describe()
        assert raw.earlier.op_id < raw.later.op_id

    def test_kernel_raw_against_unordered_upload(self, rt):
        a = rt.malloc(1024, label="a")
        b = rt.malloc(1024, label="b")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(b, h, s1)
        # writes a, reads b — no edge to the upload of b
        rt.launch(touch_kernel(("w", "r")), buffers=[a, b], n_cells=128, stream=s2)
        assert [hz.kind for hz in rt.checker.hazards] == ["RAW"]
        assert rt.checker.hazards[0].severity == "error"
        assert rt.checker.hazards[0].buffer == "b"

    def test_counts_and_racy_accessors(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2)
        assert rt.checker.counts() == {"warning": 0, "error": 2}
        assert len(rt.checker.racy()) == 2

    def test_metrics_counters(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2)
        counters = rt.metrics.snapshot()["counters"]
        assert counters["check.ops"] == 2
        assert counters["check.hazards"] == 2
        assert counters["check.hazards.racy"] == 2
        assert counters["check.raw"] == 1
        assert counters["check.war"] == 1

    def test_trace_marks(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2)
        marks = [m for m in rt.trace.marks if m["name"] == "hazard"]
        assert len(marks) == 2
        assert {m["args"]["severity"] for m in marks} == {"error"}
        assert {m["args"]["kind"] for m in marks} == {"RAW", "WAR"}


class TestFifoLuck:
    """Conflicts ordered only by a shared engine FIFO are warnings."""

    def test_same_engine_waw_is_warning(self, rt):
        a = rt.malloc(1024, label="a")
        h1 = rt.malloc_pinned(1024, label="h1")
        h2 = rt.malloc_pinned(1024, label="h2")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h1, s1)   # both on the H2D engine: FIFO orders
        rt.memcpy_async(a, h2, s2)   # them — but no program edge does
        assert [hz.kind for hz in rt.checker.hazards] == ["WAW"]
        assert rt.checker.hazards[0].severity == "warning"
        counters = rt.metrics.snapshot()["counters"]
        assert counters["check.hazards.fifo_luck"] == 1
        assert counters.get("check.hazards.racy", 0) == 0

    def test_warning_does_not_raise_in_strict(self, strict_rt):
        rt = strict_rt
        a = rt.malloc(1024, label="a")
        h1 = rt.malloc_pinned(1024, label="h1")
        h2 = rt.malloc_pinned(1024, label="h2")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h1, s1)
        rt.memcpy_async(a, h2, s2)  # fifo-luck: tolerated, only flagged
        assert rt.checker.counts() == {"warning": 1, "error": 0}


class TestStrictMode:
    def test_racy_pair_raises(self, strict_rt):
        rt = strict_rt
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        with pytest.raises(HazardError) as exc:
            rt.memcpy_async(h, a, s2)
        assert exc.value.hazard.severity == "error"
        assert exc.value.hazard.kind in ("RAW", "WAR")

    def test_state_folded_before_raising(self, strict_rt):
        # the op that raises is still recorded: the trace/counters stay
        # consistent for post-mortem reporting
        rt = strict_rt
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        with pytest.raises(HazardError):
            rt.memcpy_async(h, a, s2)
        assert rt.checker.op_count == 2
        assert len(rt.checker.hazards) == 2


class TestAfterResolution:
    def test_unresolvable_after_counted_not_trusted(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        # 123.456 matches no recorded completion: the edge is dropped
        # (counted) and the conflict is still reported as racy
        rt.memcpy_async(h, a, s2, after=123.456)
        counters = rt.metrics.snapshot()["counters"]
        assert counters["check.after_unresolved"] == 1
        assert counters["check.hazards.racy"] == 2

    def test_zero_and_negative_components_skipped(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s = rt.create_stream()
        rt.memcpy_async(a, h, s, after=(0.0, -1.0))
        counters = rt.metrics.snapshot()["counters"]
        assert counters.get("check.after_unresolved", 0) == 0

    def test_tuple_after_resolves_every_component(self, rt):
        a, b = rt.malloc(1024, label="a"), rt.malloc(1024, label="b")
        ha, hb = rt.malloc_pinned(1024, label="ha"), rt.malloc_pinned(1024, label="hb")
        s1, s2, s3 = rt.create_stream(), rt.create_stream(), rt.create_stream()
        e1 = rt.memcpy_async(a, ha, s1)
        e2 = rt.memcpy_async(b, hb, s2)
        # reads both uploads; passing the individual components (not
        # max(e1, e2)) proves the edge to *each* producer
        rt.launch(touch_kernel(("r", "r")), buffers=[a, b], n_cells=128,
                  stream=s3, after=(e1, e2))
        assert rt.checker.hazards == []


class TestAccessDerivation:
    def test_arg_access_limits_conflicts(self, rt):
        a, b = rt.malloc(1024, label="a"), rt.malloc(1024, label="b")
        s1, s2 = rt.create_stream(), rt.create_stream()
        # two read-only launches of the same buffers never conflict
        k = touch_kernel(("r", "r"))
        rt.launch(k, buffers=[a, b], n_cells=128, stream=s1)
        rt.launch(k, buffers=[a, b], n_cells=128, stream=s2)
        assert rt.checker.hazards == []

    def test_missing_arg_access_is_conservative_rw(self, rt):
        a = rt.malloc(1024, label="a")
        s1, s2 = rt.create_stream(), rt.create_stream()
        k = touch_kernel(None)
        rt.launch(k, buffers=[a], n_cells=128, stream=s1)
        rt.launch(k, buffers=[a], n_cells=128, stream=s2)
        # rw vs rw on a shared compute engine: flagged (as fifo-luck)
        assert rt.checker.hazards != []
        assert all(hz.severity == "warning" for hz in rt.checker.hazards)

    def test_explicit_reads_writes_override(self, rt):
        a, b = rt.malloc(1024, label="a"), rt.malloc(1024, label="b")
        s1, s2 = rt.create_stream(), rt.create_stream()
        k = touch_kernel(None)  # conservative rw…
        rt.launch(k, buffers=[a, b], n_cells=128, stream=s1, reads=[a, b])
        rt.launch(k, buffers=[a, b], n_cells=128, stream=s2, reads=[a, b])
        # …but the launch declared read-only access: no conflict
        assert rt.checker.hazards == []


class TestLifecycle:
    def test_free_forgets_buffer_state(self, rt):
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        a = rt.malloc(1024, label="a")
        rt.memcpy_async(a, h, s1)
        rt.free(a)  # id(a) may be recycled: its history must not leak
        b = rt.malloc(1024, label="b")
        rt.memcpy_async(b, h, s2)
        kinds = {hz.kind for hz in rt.checker.hazards}
        assert "WAW" not in kinds  # no phantom conflict with the freed buffer

    def test_reset_schedule_drops_per_run_state(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.reset_schedule()
        # a fresh repetition re-touches the same buffers: no cross-run
        # conflicts may be reported
        rt.memcpy_async(a, h, s2)
        assert rt.checker.hazards == []
        assert rt.checker.op_count == 2  # ops keep counting across runs

    def test_hazards_survive_reset(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2)
        found = len(rt.checker.hazards)
        rt.reset_schedule()
        assert len(rt.checker.hazards) == found

    def test_wait_on_unknown_event_is_no_edge(self, rt):
        # an event recorded before the checker was armed (or reset away)
        # resolves to no snapshot: the wait adds no edge, and must not blow up
        ev = rt.create_event()
        s = rt.create_stream()
        rt.checker.on_stream_wait_event(rt._runtime_id, s, ev)
        assert rt.checker.hazards == []
