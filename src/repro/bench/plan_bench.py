"""Planner gate: ``python -m repro.bench.plan_bench``.

The acceptance spine of the access-set-driven planner (see
:mod:`repro.plan`): for every workload the conformance matrix covers —
heat, wave, compute-intensive, variable-coefficient heat — the
planner-derived run must be **byte-identical** to the hand-built TiDA-acc
driver on every eviction × prefetch × visit-order leg, with zero racy
hazards, and the CG solver's ``halo="auto"`` decomposition must solve to
the same bits as the hand-pinned ghost width.  Timing-only planned runs
must reproduce the functional trace/DAG/counters bit-for-bit (the same
contract :mod:`repro.bench.simspeed` enforces for the hand-built path).

On top of conformance, the planner has to *pay for itself*: the
variable-coefficient workload runs under memory pressure, where the
read-only proof on the coefficient field skips eviction write-backs and
the loop-invariant-halo proof elides refills.  The savings land as gated
counters:

* ``bench.plan.writebacks_skipped`` — device evictions of proven
  read-only regions that skipped the write-back copy;
* ``bench.plan.halo_bytes_saved`` — ghost-exchange bytes elided on
  proven-clean halos;
* ``bench.plan.fills_elided`` — whole boundary fills skipped.

Exit codes: 1 when any conformance leg diverges (digest mismatch, racy
hazard, CG divergence, or timing drift), 2 when a savings counter is not
strictly positive.

Gated counters are *clamped* — ``min(measured, ceiling)`` with ceilings
below what a healthy run measures — so the committed baseline sits at
the ceiling and never moves on faster machines, while a real regression
(a proof lost, an elision dropped) pulls the counter below its ceiling
and trips both the ``--compare`` gate and the hard floor.  Raw values
live under the manifest's ungated ``"plan"`` key.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

import numpy as np

from ..baselines.plan_runners import (
    run_planned_coeff_heat,
    run_planned_heat,
    run_tida_coeff_heat,
)
from ..check.explore import conformance_matrix
from ..obs.metrics import MetricsRegistry

#: Clamp ceilings for the gated savings counters — below the values the
#: committed configuration measures (46 skips, ~1.1 MB, 5 elisions), so
#: the baseline sits exactly at the ceiling.  Do not change without
#: regenerating BENCH_plan.json.
WRITEBACKS_SKIPPED_CEILING = 40.0
HALO_BYTES_SAVED_CEILING = 1_000_000.0
FILLS_ELIDED_CEILING = 4.0

#: The conformance matrix legs swept on both sides of the differential.
MATRIX_AXES = dict(
    evictions=("lru", "lookahead"),
    prefetch_depths=(0, 2),
    order_seeds=(None, 1),
    timing_seeds=(0,),
)

#: Paired workloads: hand-built matrix vs planner-derived matrix, same
#: knobs.  The coeff-heat pair runs under a device-memory limit so every
#: leg crosses the eviction/write-back paths the read-only proof elides.
CONFORMANCE_WORKLOADS: tuple[tuple[str, dict[str, Any]], ...] = (
    ("heat", dict(shape=(32, 16, 16), steps=2, n_regions=8)),
    ("wave", dict(shape=(48, 48), steps=3, n_regions=8)),
    ("compute", dict(shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
                     device_memory_limit=70_000)),
    ("coeff-heat", dict(shape=(32, 16, 16), steps=3, n_regions=8, n_slots=2,
                        device_memory_limit=98_304)),
)

#: The savings measurement: variable-coefficient heat with room on the
#: device for only half the three-field footprint.
SAVINGS_CONFIG = dict(
    shape=(64, 32, 32), steps=6, n_regions=8, n_slots=2,
    device_memory_limit=(64 * 32 * 32 * 8) * 3 // 2,
    eviction="lru", functional=True, check="observe",
)


def conformance_check() -> tuple[list[str], dict[str, Any]]:
    """Hand-built vs planner-derived digests across the matrix."""
    failures: list[str] = []
    detail: dict[str, Any] = {}
    for name, kwargs in CONFORMANCE_WORKLOADS:
        hand = conformance_matrix(name, **MATRIX_AXES, **kwargs)
        planned = conformance_matrix(f"{name}-planned", **MATRIX_AXES, **kwargs)
        for side, report in (("hand", hand), ("planned", planned)):
            if not report.ok:
                failures.extend(f"{name}/{side}: {f}" for f in report.failures())
        if hand.digests != planned.digests:
            failures.append(
                f"{name}: planner-derived digest {sorted(planned.digests)} != "
                f"hand-built {sorted(hand.digests)}"
            )
        detail[name] = {
            "legs": len(hand.runs) + len(planned.runs),
            "matched": hand.digests == planned.digests,
            "racy": hand.racy + planned.racy,
        }
    return failures, detail


def cg_check(shape: tuple[int, ...] = (7, 6)) -> tuple[list[str], dict[str, Any]]:
    """``halo="auto"`` CG must solve to the same bits as a pinned halo."""
    from ..apps.cg import TiledCG

    rng = np.random.default_rng(11)
    b = rng.standard_normal(shape)
    results = {}
    for label, halo in (("auto", "auto"), ("pinned", 1)):
        solver = TiledCG(shape, n_regions=2, functional=True, halo=halo)
        results[label] = solver.solve(b, tol=1e-10, max_iterations=200)
    failures: list[str] = []
    auto, pinned = results["auto"], results["pinned"]
    if not (auto.converged and pinned.converged):
        failures.append("cg: solve did not converge")
    if auto.x.tobytes() != pinned.x.tobytes():
        failures.append('cg: halo="auto" solution differs from pinned halo=1')
    if auto.iterations != pinned.iterations:
        failures.append(
            f"cg: iteration counts differ (auto {auto.iterations}, "
            f"pinned {pinned.iterations})"
        )
    return failures, {
        "iterations": auto.iterations,
        "matched": not failures,
    }


def timing_drift_check() -> list[str]:
    """Planned functional vs timing runs must be byte-identical."""
    from .simspeed import _fingerprint

    workloads = (
        ("heat-planned", run_planned_heat,
         dict(shape=(32, 16, 16), steps=2, n_regions=8)),
        ("coeff-heat-planned", run_planned_coeff_heat,
         dict(shape=(32, 16, 16), steps=3, n_regions=8, n_slots=2,
              device_memory_limit=98_304)),
    )
    failures: list[str] = []
    for name, fn, kw in workloads:
        fp = {}
        for mode in ("functional", "timing"):
            res = fn(functional=(mode == "functional"), mode=mode,
                     check="observe", **kw)
            fp[mode] = _fingerprint(res)
        for part, a, b in zip(
            ("trace", "dag", "counters", "elapsed"),
            fp["functional"], fp["timing"],
        ):
            if a != b:
                failures.append(f"{name}: {part} differs between modes")
    return failures


def measure_savings(config: dict[str, Any] | None = None) -> dict[str, Any]:
    """Planned vs naive variable-coefficient heat under memory pressure."""
    kw = dict(SAVINGS_CONFIG if config is None else config)
    naive = run_tida_coeff_heat(**kw)
    planned = run_planned_coeff_heat(**kw)
    identical = naive.result.tobytes() == planned.result.tobytes()
    meta = planned.meta
    return {
        "byte_identical": identical,
        "writebacks_skipped": float(meta["writebacks_skipped"]),
        "halo_bytes_saved": float(meta["halo_bytes_saved"]),
        "fills_elided": float(meta["fills_elided"]),
        "fills": float(meta["fills"]),
        "naive_elapsed": float(naive.elapsed),
        "planned_elapsed": float(planned.elapsed),
        "ro_fields": list(meta["ro_fields"]),
        "loop_invariant_halos": list(meta["loop_invariant_halos"]),
    }


def run(out: Path) -> int:
    failures, conf = conformance_check()
    cg_failures, cg = cg_check()
    failures.extend(cg_failures)
    failures.extend(timing_drift_check())
    if failures:
        for f in failures:
            print(f"FAIL conformance: {f}", file=sys.stderr)
        return 1
    legs = sum(w["legs"] for w in conf.values())
    print(f"conformance: planner-derived byte-identical to hand-built on "
          f"{legs} legs across {len(conf)} workloads, zero racy hazards")
    print(f"cg: halo=\"auto\" matches pinned halo bit-for-bit "
          f"({cg['iterations']} iterations)")
    print("timing drift: planned functional and timing runs byte-identical")

    savings = measure_savings()
    if not savings["byte_identical"]:
        print("FAIL savings: planned coeff-heat diverged from naive baseline",
              file=sys.stderr)
        return 1
    print(f"savings: writebacks_skipped={savings['writebacks_skipped']:.0f}  "
          f"halo_bytes_saved={savings['halo_bytes_saved']:.0f}  "
          f"fills_elided={savings['fills_elided']:.0f}/"
          f"{savings['fills_elided'] + savings['fills']:.0f} fills  "
          f"(ro: {', '.join(savings['ro_fields'])})")
    print(f"elapsed: naive {savings['naive_elapsed']*1e3:.3f} ms vs planned "
          f"{savings['planned_elapsed']*1e3:.3f} ms")

    bench = MetricsRegistry()
    gated = {
        "bench.plan.writebacks_skipped":
            min(savings["writebacks_skipped"], WRITEBACKS_SKIPPED_CEILING),
        "bench.plan.halo_bytes_saved":
            min(savings["halo_bytes_saved"], HALO_BYTES_SAVED_CEILING),
        "bench.plan.fills_elided":
            min(savings["fills_elided"], FILLS_ELIDED_CEILING),
    }
    for name, value in gated.items():
        bench.counter(name).inc(value)

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "schema": "repro-run-manifest/1",
        "metrics": bench.snapshot(),
        "plan": {"conformance": conf, "cg": cg, "savings": savings},
    }, indent=2) + "\n")
    print(f"wrote {len(gated)} gated counters to {out}")

    floor_misses = [
        name for name in
        ("writebacks_skipped", "halo_bytes_saved", "fills_elided")
        if savings[name] <= 0
    ]
    if floor_misses:
        for miss in floor_misses:
            print(f"FAIL floor: {miss} not strictly positive", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_plan.json",
                        help="run-manifest output path (default BENCH_plan.json)")
    args = parser.parse_args(argv)
    return run(Path(args.out))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
