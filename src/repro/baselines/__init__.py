"""The comparison programs of the paper's evaluation.

Every execution model the figures compare against is implemented here as
a runnable program against the simulated runtimes:

* :mod:`~repro.baselines.cuda_heat` — hand-written CUDA heat solver
  (pageable / pinned / managed memory; fused per-step kernel, tuned
  geometry);
* :mod:`~repro.baselines.acc_heat` — pure OpenACC heat solver (data
  region, compiler geometry, separate per-face boundary kernels);
* :mod:`~repro.baselines.hybrid_heat` — CUDA memory management +
  OpenACC kernels (the §II-C combination the paper's library adopts);
* :mod:`~repro.baselines.cuda_compute` / :mod:`~repro.baselines.acc_compute`
  — the same three-way split for the compute-intensive kernel (with the
  ``--use_fast_math`` CUDA variant of Fig. 6);
* :mod:`~repro.baselines.tida_runners` — canonical TiDA-acc drivers for
  both workloads (used by Figs. 5-8 and the ablations).

All runners share the :class:`~repro.baselines.common.BaselineResult`
shape: virtual elapsed seconds, the trace, and (functional mode) the
final global array for correctness comparison.
"""

from .common import (
    BaselineResult,
    apply_bc_global,
    default_init,
    reference_compute_intensive,
    reference_heat,
)
from .cuda_heat import run_cuda_heat
from .acc_heat import run_acc_heat
from .hybrid_heat import run_hybrid_heat
from .cuda_compute import run_cuda_compute
from .acc_compute import run_acc_compute
from .tida_runners import run_tida_heat, run_tida_compute, run_tida_wave
from .plan_runners import (
    run_planned_heat,
    run_planned_compute,
    run_planned_wave,
    run_planned_coeff_heat,
    run_tida_coeff_heat,
)

__all__ = [
    "BaselineResult",
    "default_init",
    "apply_bc_global",
    "reference_heat",
    "reference_compute_intensive",
    "run_cuda_heat",
    "run_acc_heat",
    "run_hybrid_heat",
    "run_cuda_compute",
    "run_acc_compute",
    "run_tida_heat",
    "run_tida_compute",
    "run_tida_wave",
    "run_planned_heat",
    "run_planned_compute",
    "run_planned_wave",
    "run_planned_coeff_heat",
    "run_tida_coeff_heat",
]
