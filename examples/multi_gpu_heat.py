#!/usr/bin/env python
"""Multi-GPU heat solver: TiDA-acc per device + peer-to-peer halos.

Extends the paper toward its §VII related work (XACC, dCUDA): the domain
is slab-decomposed across N simulated GPUs, each running the ordinary
TiDA-acc pipeline over its slab, with inter-device halos moving as
pack-kernel → cudaMemcpyPeerAsync → unpack-kernel chains.  Prints the
strong-scaling table and verifies numerics against the single-GPU run.

Run:  python examples/multi_gpu_heat.py [--size 512] [--steps 100]
"""

import argparse

import numpy as np

from repro.baselines import run_tida_heat
from repro.baselines.common import default_init, reference_heat
from repro.bench.report import Table
from repro.multi import run_multi_gpu_heat
from repro.tida.boundary import Neumann


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=512)
    parser.add_argument("--steps", type=int, default=100)
    args = parser.parse_args()

    # correctness first, at a small functional size
    shape_small = (16, 8, 8)
    init = default_init(shape_small, 1)
    ref = reference_heat(init, 4, coef=0.1, bc=Neumann(), ghost=1)
    r = run_multi_gpu_heat(shape=shape_small, steps=4, n_devices=4,
                           regions_per_device=2, functional=True,
                           initial=init[1:-1, 1:-1, 1:-1].copy())
    assert np.allclose(r.result, ref), "multi-GPU result diverged!"
    print("numerics: 4-GPU run matches the numpy reference\n")

    shape = (args.size,) * 3
    table = Table(
        title=f"strong scaling, heat {shape}, {args.steps} steps",
        columns=["gpus", "seconds", "speedup", "efficiency"],
    )
    base = None
    for nd in (1, 2, 4, 8):
        res = run_multi_gpu_heat(shape=shape, steps=args.steps, n_devices=nd,
                                 regions_per_device=8)
        base = base if base is not None else res.elapsed
        s = base / res.elapsed
        table.add_row(nd, res.elapsed, s, s / nd)
    print(table.format())
    print("\nefficiency decays with device count: per-step halos (pack/P2P/unpack)")
    print("and single-host issue overheads grow while per-device compute shrinks.")


if __name__ == "__main__":
    main()
