"""TileAcc: device-memory management, caching, and region transfers (§IV-B).

One ``TileAcc`` manages the device side of one tileArray:

1. **Slot sizing** — it asks ``cudaMemGetInfo`` how much device memory is
   free and creates ``min(n_regions, fits)`` device memory slots, each
   with its own CUDA stream (via OpenACC activity queues, so kernels and
   copies interoperate, §IV-B.1/2).
2. **Caching** — each slot's ``bound`` field is the paper's cache list:
   the id of the region whose data occupies the slot, or -1.  A second
   per-region record tracks the address space where the region was last
   accessed (§III), so repeated same-side accesses move no data.
3. **Transfers** — regions are the transfer unit.  Uploads are
   ``cudaMemcpyAsync`` on the region's slot stream and need no further
   synchronization (in-stream FIFO); downloads are followed by a
   ``cudaStreamSynchronize`` because the caller may read the host data
   immediately (§IV-B.3).
4. **Eviction** — when no slot is free for a requested region, an
   occupant chosen by the eviction policy is downloaded first and then
   the new region is uploaded — this is what lets applications larger
   than device memory run (§IV-B.4, Figs. 7/8).

Deviation from the paper: slot assignment is *associative* with a
pluggable eviction policy (see :mod:`repro.core.slots`) instead of the
fixed ``rid % n_slots`` map (available as ``eviction="modulo"``), and
eviction write-backs go through a dedicated D2H queue so the write-back
and the replacement upload use both copy engines instead of serializing
on one stream.  :meth:`prefetch` uploads a region speculatively ahead of
its compute — the :class:`~repro.core.prefetch.PrefetchScheduler` drives
it from the iterator's known traversal order.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Callable, Sequence

from ..cuda.runtime import CudaRuntime
from ..errors import CudaMemoryAllocationError, FaultError, ReproError, TileAccError
from ..faults import TRANSIENT_ERRORS
from ..faults.retry import RetryPolicy
from ..openacc.runtime import AccRuntime
from ..sim.device import DeviceBuffer
from ..tida.region import Region
from ..tida.tile_array import TileArray
from .slots import DEVICE, EMPTY, HOST, DeviceSlot, EvictionPolicy, SlotPool, make_policy


class TileAcc:
    """Device-side manager for one tileArray."""

    def __init__(
        self,
        runtime: CudaRuntime,
        acc: AccRuntime,
        tile_array: TileArray,
        *,
        n_slots: int | None = None,
        read_only: bool = False,
        eviction: str | EvictionPolicy | None = None,
        retry: RetryPolicy | None = None,
        policy: str | EvictionPolicy | None = None,
    ) -> None:
        if policy is not None:
            warnings.warn(
                "TileAcc(policy=...) is deprecated; use eviction=...",
                DeprecationWarning, stacklevel=2,
            )
            if eviction is None:
                eviction = policy
        if eviction is None:
            eviction = "lru"
        if acc.cuda is not runtime:
            raise TileAccError("AccRuntime must be bound to the same CudaRuntime")
        self.runtime = runtime
        self.acc = acc
        self.tile_array = tile_array
        # Extension beyond the paper's last-location model: a field declared
        # read-only (coefficients, lookup tables) never needs write-back.
        # Evictions drop the device copy for free, host requests are free,
        # and both copies stay valid simultaneously.  Host-side updates must
        # be followed by invalidate_device().
        self.read_only = bool(read_only)
        n_regions = tile_array.n_regions

        slot_bytes = max(r.nbytes for r in tile_array.regions)
        free, _total = runtime.mem_get_info()
        fits = free // slot_bytes if slot_bytes > 0 else n_regions
        if n_slots is None:
            n_slots = min(n_regions, int(fits))
        else:
            if n_slots < 1:
                raise TileAccError(f"n_slots must be >= 1, got {n_slots}")
            n_slots = min(n_slots, n_regions)
            if n_slots > fits:
                raise TileAccError(
                    f"{n_slots} slots of {slot_bytes} bytes exceed free device "
                    f"memory ({free} bytes)"
                )
        if n_slots < 1:
            raise TileAccError(
                f"not even one region ({slot_bytes} bytes) fits in free device "
                f"memory ({free} bytes)"
            )
        self.slots: list[DeviceSlot] = []
        for i in range(n_slots):
            qid = acc.new_auto_queue()
            self.slots.append(DeviceSlot(i, qid, acc.queue(qid)))
        self.policy = make_policy(eviction)
        self.pool = SlotPool(self.slots, self.policy, self._resident)
        #: resilience: transient faults on this field's transfers are
        #: retried per this policy; ``None`` means fail fast (the raw
        #: :class:`~repro.errors.CudaError` propagates, pre-PR-3 behaviour)
        self.retry = retry
        #: cleared when OOM degradation sacrifices a slot — in degraded
        #: mode every byte of device memory serves demand traffic
        self.prefetch_enabled = True
        # dedicated write-back queue: eviction D2H runs here while the
        # replacement H2D uses the slot stream — both copy engines busy
        self._wb_qid = acc.new_auto_queue()
        self._wb_stream = acc.queue(self._wb_qid)
        self._location: list[str] = [HOST] * n_regions
        self._ready: list[float] = [0.0] * n_regions
        # per-region completion times of the individual device ops still
        # "live" for ordering purposes (see device_ready_deps); _ready
        # keeps the max-collapsed view for cheap scalar queries
        self._ready_deps: list[tuple[float, ...]] = [()] * n_regions
        # slot index -> completion times the *next* upload into that slot
        # must wait for (eviction write-back, or — when the occupant was
        # dropped without write-back — its outstanding readers).  Never
        # cleared on consumption: a faulted upload re-issued by the retry
        # policy must see the same barrier, and stale entries are covered
        # by the later upload they already ordered.
        self._slot_after: dict[int, tuple[float, ...]] = {}
        # rid -> completion time of an unconsumed speculative upload
        self._inflight: dict[int, float] = {}
        self.h2d_count = 0
        self.d2h_count = 0
        self._last_flush_end = 0.0
        # -- observability: per-field cache accounting ---------------------
        self._obs_field = tile_array.label or f"field@{id(tile_array):x}"
        m = runtime.metrics
        self._m_hits = m.counter(f"cache.hits.{self._obs_field}")
        self._m_misses = m.counter(f"cache.misses.{self._obs_field}")
        self._m_evictions = m.counter(f"cache.evictions.{self._obs_field}")
        self._m_writebacks = m.counter(f"cache.writebacks.{self._obs_field}")
        self._m_writeback_bytes = m.counter(f"cache.writeback_bytes.{self._obs_field}")
        self._m_wb_skipped = m.counter(f"cache.writebacks_skipped.{self._obs_field}")
        self._m_upload_avoided = m.counter(
            f"cache.upload_bytes_avoided.{self._obs_field}"
        )
        self._m_pf_issued = m.counter(f"cache.prefetch_issued.{self._obs_field}")
        self._m_pf_useful = m.counter(f"cache.prefetch_useful.{self._obs_field}")
        self._m_pf_wasted = m.counter(f"cache.prefetch_wasted.{self._obs_field}")
        self._m_stall_avoided = m.counter(
            f"cache.stall_seconds_avoided.{self._obs_field}"
        )
        self._occupancy_track = f"cache_occupancy:{self._obs_field}"
        self._occupied = 0

    # -- observability helpers ------------------------------------------------

    def _set_bound(self, slot: DeviceSlot, rid: int) -> None:
        """Update a slot's cache-list entry and sample the occupancy track."""
        if (slot.bound == EMPTY) and rid != EMPTY:
            self._occupied += 1
        elif (slot.bound != EMPTY) and rid == EMPTY:
            self._occupied -= 1
        slot.bound = rid
        self.runtime.trace.record_counter(
            self._occupancy_track, self.runtime.now, self._occupied
        )

    def _mark(self, decision: str, rid: int, slot: DeviceSlot, **extra) -> None:
        self.runtime.trace.mark(
            decision, self.runtime.now,
            field=self._obs_field, region=rid, slot=slot.index, **extra,
        )

    # -- queries ------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    def _resident(self, rid: int) -> bool:
        """Slot occupants whose device data is current (pool callback)."""
        return rid != EMPTY and self._location[rid] == DEVICE

    def slot_for(self, rid: int) -> DeviceSlot:
        """The slot currently holding region ``rid``'s device binding.

        With associative placement there is no fixed mapping: a region
        has a slot only while bound (after ``request_device``/
        ``prefetch``, until eviction)."""
        self.tile_array.region(rid)  # range check
        slot = self.pool.slot_of(rid)
        if slot is None:
            raise TileAccError(
                f"region {rid} holds no device slot; request_device it first"
            )
        return slot

    def location(self, rid: int) -> str:
        self.tile_array.region(rid)
        return self._location[rid]

    def is_on_device(self, rid: int) -> bool:
        return self._location[rid] == DEVICE and self.pool.slot_of(rid) is not None

    def device_ready(self, rid: int) -> float:
        """Virtual time at which region ``rid``'s device data is valid."""
        return self._ready[rid]

    def device_ready_deps(self, rid: int) -> tuple[float, ...]:
        """The individual op completion times behind :meth:`device_ready`.

        Callers that queue a dependent operation should pass this tuple to
        ``after=`` instead of the max-collapsed :meth:`device_ready`: the
        effective wait is identical (the runtime takes the max), but the
        hazard checker can then resolve *every* component to the operation
        that produced it — a single collapsed float only proves an edge to
        the latest op, leaving the others "ordered by luck".
        """
        return self._ready_deps[rid]

    def _ready_after(self, rid: int) -> tuple[float, ...]:
        return self._ready_deps[rid]

    def note_device_op(self, rid: int, end: float, *, covers: bool = False) -> None:
        """Record that a device operation touching ``rid`` completes at ``end``
        (cross-stream consumers use this as a readiness dependency).

        ``covers=True`` asserts the recorded op was itself ordered after
        every dependency currently in :meth:`device_ready_deps` (its
        ``after=`` included them), so the dep list collapses to just
        ``end`` instead of growing — this is what keeps the list bounded
        across a long run.
        """
        if covers:
            self._ready_deps[rid] = (end,)
        elif end not in self._ready_deps[rid]:
            self._ready_deps[rid] = self._ready_deps[rid] + (end,)
        if end > self._ready[rid]:
            self._ready[rid] = end

    def queue_id_for(self, rid: int) -> int:
        return self.slot_for(rid).queue_id

    def set_schedule(self, rids: Sequence[int]) -> None:
        """Feed the upcoming traversal order to schedule-aware policies."""
        self.policy.set_schedule(rids)

    # -- the cache/transfer protocol (§IV-B.3/4) --------------------------------

    def _drop_inflight(self, rid: int) -> bool:
        """Forget an unconsumed prefetch of ``rid``; True when there was one."""
        if self._inflight.pop(rid, None) is not None:
            self._m_pf_wasted.inc()
            return True
        return False

    def _evict(self, slot: DeviceSlot) -> float:
        """Displace the slot's occupant; returns the write-back completion
        time (0.0 when no write-back was needed) so the replacement upload
        can order itself after it (same buffer)."""
        old = slot.bound
        if old == EMPTY:
            return 0.0
        self._m_evictions.inc()
        wb_end = 0.0
        prefetched = self._drop_inflight(old)
        if self._location[old] == DEVICE:
            if self.read_only or prefetched:
                # host copy authoritative (ro contract) or never written on
                # the device (unconsumed prefetch): drop for free.  The
                # buffer is still a read target of the occupant's queued
                # ops (kernels on *other* fields' streams may read a
                # read-only coefficient slot), so the replacement upload
                # must not overwrite it before they finish.
                self._slot_after[slot.index] = self._ready_after(old)
                self._m_wb_skipped.inc()
                self._mark("cache-evict", old, slot, writeback=False)
                self._location[old] = HOST
            else:
                region = self.tile_array.region(old)
                wb_end = self.runtime.memcpy_async(
                    region.data, slot.buffer, self._wb_stream,
                    after=self._ready_after(old), label=f"evict:{region.label}",
                )
                self._slot_after[slot.index] = (wb_end,)
                self.d2h_count += 1
                self._m_writebacks.inc()
                self._m_writeback_bytes.inc(region.nbytes)
                self._mark("cache-evict", old, slot, writeback=True)
                self._location[old] = HOST
                self.note_device_op(old, wb_end, covers=True)
        else:
            self._mark("cache-evict", old, slot, writeback=False)
            self._slot_after[slot.index] = self._ready_after(old)
        self._set_bound(slot, EMPTY)
        return wb_end

    # -- resilience (fault retry, degradation, emergency flush) ---------------

    def _with_retry(self, op: str, rid: int, issue: Callable[[], float]) -> float:
        """Run ``issue`` under the armed retry policy.

        Transient faults re-issue the operation on the same slot stream
        after a virtual-clock backoff.  Exhaustion flushes every surviving
        region to the host, then raises :class:`FaultError` carrying the
        last underlying error as ``__cause__``.
        """
        policy = self.retry
        if policy is None:
            return issue()
        m = self.runtime.metrics
        last: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = issue()
            except TRANSIENT_ERRORS as exc:
                last = exc
                if attempt == policy.max_attempts:
                    break
                m.inc("faults.retries")
                m.inc(f"faults.retries.{self._obs_field}")
                wait = policy.delay(attempt, key=(self._obs_field, op, rid))
                self.runtime.trace.mark(
                    "fault-retry", self.runtime.now,
                    field=self._obs_field, op=op, region=rid,
                    attempt=attempt, backoff=wait,
                )
                self.runtime.clock.advance(wait)
                continue
            if last is not None:
                m.inc("faults.recovered")
                m.inc(f"faults.recovered.{self._obs_field}")
                self.runtime.trace.mark(
                    "fault-recovered", self.runtime.now,
                    field=self._obs_field, op=op, region=rid, attempts=attempt,
                )
            return result
        self._flush_surviving()
        err = FaultError(
            f"{op} of region {rid} on field {self._obs_field!r} failed after "
            f"{policy.max_attempts} attempts",
            op=op, field=self._obs_field, region=rid,
            attempts=policy.max_attempts,
        )
        self.runtime.notify_incident("fault", err)
        raise err from last

    def _flush_surviving(self) -> None:
        """Emergency download of every device-resident region.

        Runs with injection suspended — the flush that rescues data must
        not itself be sabotaged — and best-effort: one broken region does
        not strand the others.
        """
        plan = self.runtime.faults
        ctx = plan.suspended() if plan is not None else contextlib.nullcontext()
        self.runtime.trace.mark("fault-flush", self.runtime.now, field=self._obs_field)
        with ctx:
            for rid in range(self.tile_array.n_regions):
                try:
                    self.request_host(rid)
                except ReproError:
                    continue

    def _shrink_pool(self, keep: DeviceSlot) -> bool:
        """Sacrifice one slot to relieve device-memory pressure.

        The victim's occupant is written back, its buffer freed, and the
        slot removed from the pool; prefetching is disabled for the rest
        of the run.  Returns False when no slot can be spared.
        """
        if len(self.slots) <= 1:
            return False
        victim = None
        for slot in reversed(self.slots):
            if slot is not keep and slot.buffer is not None:
                victim = slot
                break
        if victim is None:
            return False
        plan = self.runtime.faults
        ctx = plan.suspended() if plan is not None else contextlib.nullcontext()
        with ctx:
            if victim.bound != EMPTY:
                if self._evict(victim):
                    # the write-back D2H must land before the buffer is freed
                    self.runtime.stream_synchronize(self._wb_stream)
            self.runtime.free(victim.buffer)
        victim.buffer = None
        self.slots.remove(victim)
        self.pool.slots.remove(victim)
        self.prefetch_enabled = False
        m = self.runtime.metrics
        m.inc("faults.degraded")
        m.inc(f"faults.degraded.{self._obs_field}")
        self._mark("fault-degrade", EMPTY, victim, slots_left=len(self.slots))
        return True

    def shed_slots(self, n: int = 1) -> int:
        """Voluntarily give back up to ``n`` device slots (QoS shedding).

        The multi-tenant service calls this on a best-effort tenant's
        managers when a priority tenant needs device memory: occupants
        are written back (read-only occupants just dropped), buffers
        freed, and the pool shrinks — the same mechanics as the
        fault-driven :meth:`_shrink_pool`, but *without* the degradation
        framing: prefetch stays enabled (the pool is smaller, not
        broken), and the event lands under ``cache.shed.<field>`` /
        ``qos-shed`` marks rather than the fault counters.  At least one
        slot always survives.  Returns how many slots were shed.
        """
        shed = 0
        m = self.runtime.metrics
        for _ in range(max(0, n)):
            if len(self.slots) <= 1:
                break
            victim = None
            for slot in reversed(self.slots):
                if slot.buffer is not None:
                    victim = slot
                    break
            if victim is None:
                # no slot has a live allocation yet; drop an unbacked one
                victim = self.slots[-1]
            plan = self.runtime.faults
            ctx = plan.suspended() if plan is not None else contextlib.nullcontext()
            with ctx:
                if victim.bound != EMPTY:
                    if self._evict(victim):
                        # the write-back D2H must land before the buffer is freed
                        self.runtime.stream_synchronize(self._wb_stream)
                if victim.buffer is not None:
                    self.runtime.free(victim.buffer)
            victim.buffer = None
            self.slots.remove(victim)
            self.pool.slots.remove(victim)
            shed += 1
            m.inc("cache.shed")
            m.inc(f"cache.shed.{self._obs_field}")
            self._mark("qos-shed", EMPTY, victim, slots_left=len(self.slots))
        return shed

    def _ensure_buffer(self, slot: DeviceSlot, region: Region) -> None:
        shape = region.local_shape
        if slot.buffer is not None and slot.buffer.shape == shape:
            return
        if slot.buffer is not None:
            # realloc for a differently-shaped (edge) region; the eviction
            # download already executed, and the upload below lands in the
            # fresh buffer, so the swap is safe.  Clear the reference first:
            # if the new allocation fails (another allocation raced us for
            # device memory), the slot must not point at freed memory.
            self.runtime.free(slot.buffer)
            slot.buffer = None
        label = f"{self.tile_array.label}.slot{slot.index}"
        policy = self.retry
        if policy is None:
            slot.buffer = self.runtime.malloc(shape, self.tile_array.dtype, label=label)
            return
        m = self.runtime.metrics
        last: Exception | None = None
        failures = 0
        while True:
            try:
                slot.buffer = self.runtime.malloc(
                    shape, self.tile_array.dtype, label=label
                )
            except CudaMemoryAllocationError as exc:
                last = exc
                if self._shrink_pool(keep=slot):
                    # a slot was sacrificed; its memory may satisfy us now
                    continue
                failures += 1
                if failures >= policy.max_attempts:
                    break
                m.inc("faults.retries")
                m.inc(f"faults.retries.{self._obs_field}")
                self.runtime.clock.advance(
                    policy.delay(failures, key=(self._obs_field, "malloc", slot.index))
                )
                continue
            if last is not None:
                m.inc("faults.recovered")
                m.inc(f"faults.recovered.{self._obs_field}")
            return
        self._flush_surviving()
        err = FaultError(
            f"device allocation for field {self._obs_field!r} failed after "
            f"{policy.max_attempts} attempts (pool already shrunk to "
            f"{len(self.slots)} slots)",
            op="malloc", field=self._obs_field, region=region.rid,
            attempts=policy.max_attempts,
        )
        self.runtime.notify_incident("fault", err)
        raise err from last

    def _upload(self, slot: DeviceSlot, rid: int, region: Region, *, label: str) -> float:
        """Evict-if-needed + upload ``rid`` into ``slot`` (shared miss path)."""
        if slot.bound not in (EMPTY, rid):
            self._evict(slot)
        self._ensure_buffer(slot, region)
        # the upload reuses the evicted occupant's buffer: it must wait for
        # the write-back D2H (or the dropped occupant's readers) even
        # though those ran on different streams.  The barrier lives in
        # _slot_after — not a local — so a faulted upload re-issued by
        # _with_retry still waits for the very same write-back instead of
        # racing it.
        end = self.runtime.memcpy_async(
            slot.buffer, region.data, slot.stream,
            after=self._slot_after.get(slot.index, ()) + self._ready_after(rid),
            label=label,
        )
        self.h2d_count += 1
        self._set_bound(slot, rid)
        self._location[rid] = DEVICE
        self._ready[rid] = end
        self._ready_deps[rid] = (end,)
        return end

    def request_device(self, rid: int) -> tuple[DeviceBuffer, float]:
        """Make region ``rid`` resident on the device.

        Returns its device buffer and the virtual time at which the data
        is valid there.  Pure cache hit when the region was last accessed
        on the device (§III's caching).
        """
        region = self.tile_array.region(rid)
        self.policy.note_access(rid)
        slot = self.pool.slot_of(rid)
        if slot is not None and self._location[rid] == DEVICE:
            # §III cache hit: the upload the naive runtime would issue is
            # avoided entirely
            self._m_hits.inc()
            self._m_upload_avoided.inc(region.nbytes)
            self._mark("cache-hit", rid, slot)
            pf_end = self._inflight.pop(rid, None)
            if pf_end is not None:
                # first demand use of a prefetched region: credit the stall
                # a demand upload issued *now* would have cost
                self._m_pf_useful.inc()
                link = self.runtime.machine.link
                cf_end = max(self.runtime.now, self.runtime.h2d_engine.tail) + \
                    link.transfer_time(region.nbytes, direction="h2d", pinned=True)
                self._m_stall_avoided.inc(max(0.0, cf_end - pf_end))
            return slot.buffer, self._ready[rid]
        self._m_misses.inc()
        slot = self.pool.place(rid, protect=self._inflight)
        self._mark("cache-miss", rid, slot, occupant=slot.bound)
        end = self._with_retry(
            "h2d", rid,
            lambda: self._upload(slot, rid, region, label=f"h2d:{region.label}"),
        )
        return slot.buffer, end

    def prefetch(self, rid: int) -> bool:
        """Speculatively upload region ``rid`` ahead of its compute.

        Issued on the target slot's stream, so it overlaps with kernels
        and transfers on other slots.  Declines (returns ``False``) when
        the region is already resident or no slot can take it without
        displacing data the policy knows is needed sooner.
        """
        if not self.prefetch_enabled:
            return False
        region = self.tile_array.region(rid)
        if self._location[rid] == DEVICE and self.pool.slot_of(rid) is not None:
            return False
        protect = set(self._inflight)
        protect.add(rid)
        slot = self.pool.place_for_prefetch(rid, protect=protect)
        if slot is None:
            return False
        self._mark("cache-prefetch", rid, slot, occupant=slot.bound)
        end = self._with_retry(
            "h2d", rid,
            lambda: self._upload(slot, rid, region, label=f"prefetch:{region.label}"),
        )
        self._m_pf_issued.inc()
        self._inflight[rid] = end
        self.policy.note_access(rid)
        return True

    def request_host(self, rid: int, *, sync: bool = True) -> Region:
        """Make region ``rid``'s data current on the host.

        When the region lives on the device, a download is queued on its
        stream and the host *waits* for it — the caller may touch the data
        immediately after this returns (§IV-B.3).

        ``sync=False`` queues the download without blocking the host: the
        caller promises not to act on the data before the copy's virtual
        completion (read it back from :meth:`last_flush_end`).  The
        multi-tenant service uses this so one job's final writeback does
        not floor the shared clock — and thereby every co-running job's
        next issue — at this job's drain point.
        """
        region = self.tile_array.region(rid)
        if self._location[rid] == DEVICE:
            slot = self.pool.slot_of(rid)
            if slot is None:
                raise TileAccError(
                    f"cache inconsistency: region {rid} marked on-device but "
                    f"no slot holds it"
                )
            if self.read_only:
                # host copy never went stale; the device copy stays valid too
                self._m_wb_skipped.inc()
                self._mark("writeback-skip", rid, slot)
                return region
            if self._drop_inflight(rid):
                # unconsumed prefetch: the device copy was never written, so
                # the host copy is already current — no download needed
                self._m_wb_skipped.inc()
                self._mark("writeback-skip", rid, slot, prefetch=True)
                self._location[rid] = HOST
                return region
            def issue() -> float:
                # the after edge matters when a kernel on *another* field's
                # stream wrote this region (cross-manager compute): stream
                # FIFO alone would let the download race that write
                end = self.runtime.memcpy_async(
                    region.data, slot.buffer, slot.stream,
                    after=self._ready_after(rid), label=f"d2h:{region.label}",
                )
                self.d2h_count += 1
                if sync:
                    self.runtime.stream_synchronize(slot.stream)
                return end

            end = self._with_retry("d2h", rid, issue)
            self.note_device_op(rid, end, covers=True)
            self._last_flush_end = max(self._last_flush_end, end)
            self._location[rid] = HOST
        return region

    def last_flush_end(self) -> float:
        """Virtual completion time of the latest writeback issued."""
        return self._last_flush_end

    def flush_to_host(self, *, sync: bool = True) -> float:
        """Download every device-resident region (end-of-run gather).

        Returns the virtual completion time of the last writeback issued
        (0.0 if nothing needed downloading).  With ``sync=False`` the
        downloads are queued but the host does not wait; see
        :meth:`request_host`.
        """
        for rid in range(self.tile_array.n_regions):
            self.request_host(rid, sync=sync)
        return self._last_flush_end

    def invalidate_device(self) -> None:
        """Host data changed for a read-only field: drop all device copies."""
        for rid in list(self._inflight):
            self._drop_inflight(rid)
        for rid in range(self.tile_array.n_regions):
            self._location[rid] = HOST
        for slot in self.slots:
            if slot.bound != EMPTY:
                self._set_bound(slot, EMPTY)

    def release_device_memory(self) -> None:
        """Free all slot buffers (keeps host data; used on teardown)."""
        for slot in self.slots:
            if (
                not self.read_only
                and slot.bound != EMPTY
                and slot.bound not in self._inflight
                and self._location[slot.bound] == DEVICE
            ):
                raise TileAccError(
                    f"region {slot.bound} still dirty on device; flush_to_host first"
                )
        for rid in list(self._inflight):
            self._drop_inflight(rid)
        for slot in self.slots:
            if slot.buffer is not None:
                self.runtime.free(slot.buffer)
                slot.buffer = None
            if slot.bound != EMPTY:
                self._set_bound(slot, EMPTY)
        # no device copies remain anywhere
        for rid in range(self.tile_array.n_regions):
            self._location[rid] = HOST
