"""Ablation A6: CPU tile size vs cache reuse (TiDA's original §IV-A story)."""

from repro.bench import figures


def test_ablation_cpu_tile_size(run_once, results_dir):
    table = run_once(figures.ablation_cpu_tile_size)
    print()
    print(table.format())
    table.save_json(results_dir / "ablation_a6.json")

    seconds = table.column("seconds")
    ws = table.column("working_set_MiB")
    # the region-sized loop blows the LLC and pays the spill traffic
    assert ws[0] > 30 > ws[-1]
    assert seconds[0] > 1.5 * seconds[-1]
    # once tiles fit in cache, shrinking them further buys nothing on CPU
    assert abs(seconds[1] - seconds[2]) / seconds[2] < 0.05
