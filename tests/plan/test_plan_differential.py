"""Property-based planner conformance: planner-derived == hand-built.

Hypothesis draws a scheduling configuration (eviction × prefetch × slot
count × visit order — ``schedule_configs`` in ``tests/conftest.py``) and
the property is that the planner-derived run is byte-identical to the
hand-built TiDA-acc driver under the same knobs, with zero racy hazards
on either side.  A timing-mode leg additionally pins the planned
functional and timing traces to each other (the elision bookkeeping must
not depend on numerics).
"""

import conftest
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.plan_runners import (
    run_planned_coeff_heat,
    run_planned_heat,
    run_tida_coeff_heat,
)
from repro.baselines.tida_runners import run_tida_heat
from repro.bench.simspeed import _fingerprint
from repro.check.explore import digest

# two ghosted fields under a limit that holds 2 × n_slots(≤4) slots
HEAT = dict(shape=(48, 24, 24), steps=2, n_regions=8,
            device_memory_limit=400_000, functional=True)
# three ghosted fields, one a read-only coefficient, under pressure
# (the limit holds 3 × n_slots(≤4) slots of ~15.5 kB but not 24 regions)
COEFF = dict(shape=(32, 16, 16), steps=3, n_regions=8,
             device_memory_limit=200_000, functional=True)

slow_sim = settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_config(runner, base, cfg):
    return runner(
        check="observe",
        eviction=cfg["eviction"],
        prefetch_depth=cfg["prefetch_depth"],
        n_slots=cfg["n_slots"],
        order="sequential" if cfg["order_seed"] is None else "shuffled",
        order_seed=cfg["order_seed"],
        **base,
    )


def racy(res):
    return res.metrics["counters"].get("check.hazards.racy", 0)


@slow_sim
@given(cfg=conftest.schedule_configs())
def test_planned_heat_matches_hand_built(cfg):
    hand = run_config(run_tida_heat, HEAT, cfg)
    planned = run_config(run_planned_heat, HEAT, cfg)
    assert digest(planned.result) == digest(hand.result), cfg
    assert racy(hand) == 0 and racy(planned) == 0, cfg


@slow_sim
@given(cfg=conftest.schedule_configs())
def test_planned_coeff_heat_matches_naive_baseline(cfg):
    hand = run_config(run_tida_coeff_heat, COEFF, cfg)
    planned = run_config(run_planned_coeff_heat, COEFF, cfg)
    assert digest(planned.result) == digest(hand.result), cfg
    assert racy(hand) == 0 and racy(planned) == 0, cfg
    # the identity is not vacuous: the planned side really elided traffic
    assert planned.meta["fills_elided"] > 0, cfg
    assert planned.meta["halo_bytes_saved"] > 0, cfg


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cfg=conftest.schedule_configs(),
       init=conftest.initial_fields((48, 24, 24)))
def test_random_initial_data_agrees(cfg, init):
    base = dict(HEAT, initial=init)
    hand = run_config(run_tida_heat, base, cfg)
    planned = run_config(run_planned_heat, base, cfg)
    assert digest(planned.result) == digest(hand.result), cfg


@pytest.mark.parametrize("runner,kwargs", [
    (run_planned_heat, dict(shape=(32, 16, 16), steps=2, n_regions=8)),
    (run_planned_coeff_heat,
     dict(shape=(32, 16, 16), steps=3, n_regions=8, n_slots=2,
          device_memory_limit=98_304)),
])
def test_planned_timing_mode_is_byte_identical(runner, kwargs):
    fps = {}
    for mode in ("functional", "timing"):
        res = runner(functional=(mode == "functional"), mode=mode,
                     check="observe", **kwargs)
        fps[mode] = _fingerprint(res)
    for part, a, b in zip(("trace", "dag", "counters", "elapsed"),
                          fps["functional"], fps["timing"]):
        assert a == b, f"{part} differs between functional and timing"
