"""Hand-written CUDA runner for the compute-intensive kernel (Fig. 6).

Variants: pageable, pinned, pinned + ``--use_fast_math`` (the paper adds
the fast-math build for fairness because PGI's math codegen beats CUDA
libm), and managed.  One in-place kernel per time step, single array,
no boundary work — transfers happen once before and once after the loop.
"""

from __future__ import annotations

import numpy as np

from ..config import CUDA_FASTMATH, CUDA_LIBM, DEFAULT_MACHINE, MachineSpec, MathModel
from ..cuda.runtime import CudaRuntime
from ..errors import ReproError
from ..kernels.compute_intensive import DEFAULT_KERNEL_ITERATION, compute_intensive_kernel
from .common import BaselineResult, default_init

VARIANTS = ("pageable", "pinned", "pinned-fastmath", "managed")


def run_cuda_compute(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    variant: str = "pageable",
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
    functional: bool = False,
    initial: np.ndarray | None = None,
) -> BaselineResult:
    """Run the CUDA compute-intensive baseline."""
    if variant not in VARIANTS:
        raise ReproError(f"variant must be one of {VARIANTS}, got {variant!r}")
    machine = machine if machine is not None else DEFAULT_MACHINE
    runtime = CudaRuntime(machine, functional=functional)
    kernel = compute_intensive_kernel(kernel_iteration)
    math: MathModel = CUDA_FASTMATH if variant == "pinned-fastmath" else CUDA_LIBM
    ndim = len(shape)
    n_cells = 1
    for s in shape:
        n_cells *= s
    lo = (0,) * ndim
    params = {"lo": lo, "hi": shape, "kernel_iteration": kernel_iteration}
    init = None
    if functional:
        init = initial if initial is not None else default_init(shape, 0)

    if variant == "managed":
        m = runtime.malloc_managed(shape, label="data")
        if functional:
            m.array[...] = init
        t0 = runtime.now
        for _ in range(steps):
            runtime.launch(kernel, buffers=[m], n_cells=n_cells, params=params, math=math)
        final = runtime.managed_host_access(m)
        elapsed = runtime.now - t0
        return BaselineResult(
            name=f"cuda-{variant}", elapsed=elapsed, shape=shape, steps=steps,
            trace=runtime.trace, result=final.copy() if functional else None,
            meta={"variant": variant, "kernel_iteration": kernel_iteration},
        )

    pinned = variant.startswith("pinned")
    alloc = runtime.malloc_pinned if pinned else runtime.malloc_pageable
    h = alloc(shape, label="data")
    if functional:
        h.array[...] = init
    d = runtime.malloc(shape, label="d_data")
    t0 = runtime.now
    runtime.memcpy(d, h, label="h2d:data")
    for _ in range(steps):
        runtime.launch(kernel, buffers=[d], n_cells=n_cells, params=params, math=math)
    runtime.memcpy(h, d, label="d2h:data")
    elapsed = runtime.now - t0
    return BaselineResult(
        name=f"cuda-{variant}", elapsed=elapsed, shape=shape, steps=steps,
        trace=runtime.trace, result=h.array.copy() if functional else None,
        meta={"variant": variant, "kernel_iteration": kernel_iteration},
    )
