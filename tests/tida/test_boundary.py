"""Boundary-condition objects and domain-face computation."""

import numpy as np
import pytest

from repro.errors import TidaError
from repro.sim.hostmem import HostBuffer
from repro.tida.boundary import Dirichlet, Neumann, Periodic, domain_faces
from repro.tida.box import Box
from repro.tida.region import Region


def region_at(lo, hi, ghost=1):
    box = Box(lo, hi)
    return Region(0, box, ghost, data=HostBuffer(box.grow(ghost).shape))


class TestBcObjects:
    def test_dirichlet_fill(self):
        ghost = np.zeros((2, 3))
        Dirichlet(5.0).fill_face(ghost, np.zeros((1, 3)))
        assert np.all(ghost == 5.0)

    def test_neumann_copies_plane(self):
        ghost = np.zeros((2, 3))
        plane = np.arange(3.0).reshape(1, 3)
        Neumann().fill_face(ghost, plane)
        assert np.all(ghost == plane)

    def test_periodic_flag(self):
        assert Periodic().is_periodic
        assert not Neumann().is_periodic
        assert not Dirichlet().is_periodic

    def test_periodic_fill_face_rejected(self):
        with pytest.raises(TidaError):
            Periodic().fill_face(np.zeros(2), np.zeros(1))


class TestDomainFaces:
    def test_interior_region_has_no_faces(self):
        domain = Box((0,), (12,))
        r = Region(1, Box((4,), (8,)), 1, data=HostBuffer((6,)))
        assert domain_faces(r, domain) == []

    def test_edge_region_low_face(self):
        domain = Box((0,), (12,))
        r = region_at((0,), (4,))
        faces = domain_faces(r, domain)
        assert len(faces) == 1
        axis, side, ghost_box, src_box = faces[0]
        assert (axis, side) == (0, -1)
        assert ghost_box == Box((-1,), (0,))
        assert src_box == Box((0,), (1,))

    def test_corner_region_has_two_faces_per_axis_touching(self):
        domain = Box((0, 0), (4, 4))
        r = region_at((0, 0), (2, 2))
        faces = domain_faces(r, domain)
        assert {(a, s) for a, s, _, _ in faces} == {(0, -1), (1, -1)}

    def test_full_domain_region_has_all_faces(self):
        domain = Box((0, 0), (4, 4))
        r = region_at((0, 0), (4, 4))
        faces = domain_faces(r, domain)
        assert len(faces) == 4

    def test_zero_ghost_axis_skipped(self):
        domain = Box((0, 0), (4, 4))
        box = Box((0, 0), (4, 4))
        r = Region(0, box, (0, 1), data=HostBuffer(box.grow((0, 1)).shape))
        faces = domain_faces(r, domain)
        assert {a for a, _, _, _ in faces} == {1}

    def test_ghost_width_two_slab_thickness(self):
        domain = Box((0,), (8,))
        r = region_at((0,), (8,), ghost=2)
        faces = domain_faces(r, domain)
        low = next(f for f in faces if f[1] == -1)
        assert low[2] == Box((-2,), (0,))       # two ghost layers
        assert low[3] == Box((0,), (1,))        # one source plane

    def test_faces_ordered_by_axis(self):
        domain = Box((0, 0, 0), (4, 4, 4))
        r = region_at((0, 0, 0), (4, 4, 4))
        axes = [a for a, _, _, _ in domain_faces(r, domain)]
        assert axes == sorted(axes)
