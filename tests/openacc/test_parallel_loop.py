"""parallel_loop / kernels constructs: queues, data paths, geometry, costs."""

import numpy as np
import pytest

from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.errors import AccError
from repro.openacc.runtime import AccRuntime


def inc_kernel():
    def body(arr, inc=1.0):
        arr += inc
    return KernelSpec(name="inc", body=body, bytes_per_cell=16.0)


@pytest.fixture
def acc(machine):
    return AccRuntime(CudaRuntime(machine))


@pytest.fixture
def tiny_acc(tiny_runtime):
    return AccRuntime(tiny_runtime)


class TestQueues:
    def test_none_is_default_stream(self, acc):
        assert acc.queue(None) is acc.cuda.default_stream

    def test_queue_created_on_first_use(self, acc):
        s = acc.queue(3)
        assert s is acc.queue(3)
        assert not s.is_default

    def test_distinct_async_values_distinct_streams(self, acc):
        assert acc.queue(1) is not acc.queue(2)

    def test_negative_async_rejected(self, acc):
        with pytest.raises(AccError):
            acc.queue(-1)

    def test_non_int_async_rejected(self, acc):
        with pytest.raises(AccError):
            acc.queue(1.5)

    def test_new_auto_queue_unique_and_high(self, acc):
        q1 = acc.new_auto_queue()
        q2 = acc.new_auto_queue()
        assert q1 != q2
        assert q1 >= 10_000

    def test_wait_drains_all_queues(self, tiny_acc):
        acc = tiny_acc
        rt = acc.cuda
        dev = rt.malloc((100_000,))
        host = rt.malloc_pinned((100_000,))
        end = rt.memcpy_async(dev, host, acc.queue(1))
        acc.wait()
        assert rt.now >= end

    def test_wait_single_queue(self, tiny_acc):
        acc = tiny_acc
        rt = acc.cuda
        dev = rt.malloc((100_000,))
        host = rt.malloc_pinned((100_000,))
        end = rt.memcpy_async(dev, host, acc.queue(1))
        acc.wait(1)
        assert rt.now >= end


class TestParallelLoopDataPaths:
    def test_implicit_copy_when_not_present(self, acc):
        """No data region: the compiler wraps the kernel in copyin+copyout."""
        host = acc.cuda.malloc_pinned((8,), fill=1.0)
        acc.parallel_loop(inc_kernel(), arrays=[host], n_cells=8)
        assert np.all(host.array == 2.0)   # copied back
        assert len(acc.cuda.trace.by_category("h2d")) == 1
        assert len(acc.cuda.trace.by_category("d2h")) == 1
        assert not acc.present.is_present(host)

    def test_present_path_no_copies(self, acc):
        host = acc.cuda.malloc_pinned((8,), fill=1.0)
        with acc.data(copy=[host]):
            n_h2d = len(acc.cuda.trace.by_category("h2d"))
            acc.parallel_loop(inc_kernel(), arrays=[host], n_cells=8)
            acc.parallel_loop(inc_kernel(), arrays=[host], n_cells=8)
            assert len(acc.cuda.trace.by_category("h2d")) == n_h2d
        assert np.all(host.array == 3.0)

    def test_deviceptr_path(self, acc):
        dev = acc.cuda.malloc((8,))
        acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8)
        assert np.all(dev.array == 1.0)
        assert len(acc.cuda.trace.by_category("h2d", "d2h")) == 0

    def test_deviceptr_clause_requires_device_buffer(self, acc):
        host = acc.cuda.malloc_pinned((8,))
        with pytest.raises(AccError):
            acc.parallel_loop(inc_kernel(), deviceptr=[host], n_cells=8)

    def test_raw_device_buffer_in_arrays_rejected(self, acc):
        dev = acc.cuda.malloc((8,))
        with pytest.raises(AccError):
            acc.parallel_loop(inc_kernel(), arrays=[dev], n_cells=8)

    def test_managed_array_path(self, acc):
        managed = acc.cuda.malloc_managed((8,), fill=1.0)
        acc.parallel_loop(inc_kernel(), arrays=[managed], n_cells=8)
        assert np.all(acc.cuda.managed_host_access(managed) == 2.0)

    def test_params_forwarded(self, acc):
        dev = acc.cuda.malloc((8,))
        acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8, params={"inc": 5.0})
        assert np.all(dev.array == 5.0)


class TestGeometryAndCost:
    def test_compiler_geometry_slower_than_clauses(self, tiny_acc):
        acc = tiny_acc
        dev = acc.cuda.malloc((1_000_000,))
        t0 = acc.cuda.compute_engine.tail
        acc.parallel_loop(inc_kernel(), deviceptr=[dev])
        t_untuned = acc.cuda.compute_engine.tail - t0
        t0 = acc.cuda.compute_engine.tail
        acc.parallel_loop(inc_kernel(), deviceptr=[dev], vector_length=128)
        t_tuned = acc.cuda.compute_engine.tail - t0
        assert t_untuned > t_tuned

    def test_geometry_clause_validation(self, acc):
        dev = acc.cuda.malloc((8,))
        with pytest.raises(AccError):
            acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8, num_gangs=0)
        with pytest.raises(AccError):
            acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8, vector_length=-1)

    def test_collapse_validated(self, acc):
        from repro.errors import AccCompileError
        dev = acc.cuda.malloc((8,))
        with pytest.raises(AccCompileError):
            acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8,
                              collapse=3, loop_dims=2)

    def test_async_routes_to_queue_stream(self, acc):
        dev = acc.cuda.malloc((8,))
        acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8, async_=7)
        kernel_ev = acc.cuda.trace.by_category("kernel")[0]
        assert kernel_ev.stream == acc.queue(7).stream_id

    def test_after_dependency(self, tiny_acc):
        acc = tiny_acc
        dev = acc.cuda.malloc((8,))
        end = acc.parallel_loop(inc_kernel(), deviceptr=[dev], n_cells=8, after=0.25)
        assert end >= 0.25

    def test_kernels_construct_equivalent(self, acc):
        dev = acc.cuda.malloc((8,))
        acc.kernels_construct(inc_kernel(), deviceptr=[dev], n_cells=8)
        assert np.all(dev.array == 1.0)
