"""Benchmark harness: one entry point per paper figure + ablations.

``repro.bench.figures`` contains a function per experiment that runs the
relevant implementations on the virtual testbed (timing-only mode, paper
sizes) and returns a :class:`~repro.bench.report.Table` whose rows mirror
what the paper plots.  The ``benchmarks/`` pytest-benchmark files are thin
wrappers that execute these, print the tables, assert the qualitative
shape, and save JSON into ``results/``.
"""

from .report import Table
from . import figures

__all__ = ["Table", "figures"]
