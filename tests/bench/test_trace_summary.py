"""Table.from_trace: the performance-counter summary."""

import pytest

from repro.baselines import run_tida_compute
from repro.bench.report import Table
from repro.sim.trace import Trace


class TestTraceSummary:
    @pytest.fixture(scope="class")
    def summary(self, ):
        r = run_tida_compute(shape=(64, 64, 64), steps=3, n_regions=4,
                             kernel_iteration=8)
        return Table.from_trace(r.trace), r

    def test_has_all_metrics(self, summary):
        table, _ = summary
        metrics = set(table.column("metric"))
        assert {"span", "compute busy", "h2d busy", "d2h busy",
                "h2d bytes", "d2h bytes",
                "h2d achieved bandwidth",
                "transfer hidden behind compute"} <= metrics

    def test_utilization_bounded(self, summary):
        table, _ = summary
        for lane in ("compute", "h2d", "d2h"):
            util = table.row_by("metric", f"{lane} utilization")[1]
            assert 0.0 <= util <= 1.0

    def test_bytes_match_workload(self, summary):
        table, r = summary
        # resident run: whole array up once, down once
        expected = 64 ** 3 * 8
        assert table.row_by("metric", "h2d bytes")[1] == expected
        assert table.row_by("metric", "d2h bytes")[1] == expected

    def test_achieved_bandwidth_near_link_speed(self, summary, machine):
        table, _ = summary
        bw = table.row_by("metric", "h2d achieved bandwidth")[1]
        # achieved = payload / (latency + payload/bw): slightly below peak
        assert 0.8 * machine.link.h2d_bandwidth < bw <= machine.link.h2d_bandwidth

    def test_empty_trace(self):
        table = Table.from_trace(Trace())
        assert table.row_by("metric", "span")[1] == 0.0

    def test_formats(self, summary):
        table, _ = summary
        out = table.format()
        assert "achieved bandwidth" in out
