"""The profiler CLI on a real heat run: report tables, counter tracks in
the Chrome export, and the ``--compare`` regression gate."""

import copy
import json

import pytest

from repro.baselines.tida_runners import run_tida_heat
from repro.obs.compare import compare_snapshots, flatten_snapshot, higher_is_better
from repro.obs.report import build_report, load_run, main
from repro.sim.trace import Trace


@pytest.fixture(scope="module")
def heat_run():
    """A small Fig. 5-style heat solve (timing mode: fast)."""
    return run_tida_heat(shape=(32, 32, 32), steps=2, n_regions=4)


@pytest.fixture(scope="module")
def manifest(heat_run):
    return {
        "schema": "repro-run-manifest/1",
        "traceEvents": heat_run.trace.to_chrome_trace(),
        "metrics": heat_run.metrics,
    }


@pytest.fixture
def manifest_path(manifest, tmp_path):
    path = tmp_path / "run.json"
    path.write_text(json.dumps(manifest))
    return path


class TestChromeExportStructure:
    def test_at_least_two_counter_tracks(self, manifest):
        tracks = {e["name"] for e in manifest["traceEvents"] if e.get("ph") == "C"}
        assert len(tracks) >= 2
        assert any(t.startswith("queue_depth:") for t in tracks)
        assert any(t.startswith("cache_occupancy:") for t in tracks)

    def test_counter_events_carry_value_args(self, manifest):
        samples = [e for e in manifest["traceEvents"] if e.get("ph") == "C"]
        assert samples
        assert all("value" in e["args"] for e in samples)

    def test_decision_marks_are_structured_instants(self, manifest):
        marks = [e for e in manifest["traceEvents"] if e.get("ph") == "i"]
        assert marks
        assert all(e["cat"] == "decision" for e in marks)
        names = {e["name"] for e in marks}
        assert "cache-miss" in names
        # every cache-decision mark names the field, region, and slot it
        # decided about
        cache_marks = [e for e in marks if e["name"] != "iteration"]
        assert cache_marks
        assert all(
            {"field", "region", "slot"} <= set(e["args"]) for e in cache_marks
        )

    def test_iteration_marks_segment_the_run(self, heat_run, manifest):
        marks = [
            e for e in manifest["traceEvents"]
            if e.get("ph") == "i" and e["name"] == "iteration"
        ]
        # one swap per time step
        assert len(marks) == heat_run.steps
        assert all("fields" in e["args"] for e in marks)

    def test_round_trip_preserves_timing_and_sidechannels(self, heat_run, manifest):
        rebuilt = Trace.from_chrome_trace(manifest["traceEvents"])
        orig = heat_run.trace
        assert len(rebuilt) == len(orig)
        assert set(rebuilt.lanes()) == set(orig.lanes())
        for lane in orig.lanes():
            assert rebuilt.busy_time(lane) == pytest.approx(orig.busy_time(lane))
        assert set(rebuilt.counter_tracks) == set(orig.counter_tracks)
        assert len(rebuilt.marks) == len(orig.marks)


class TestLoadRun:
    def test_manifest(self, manifest_path):
        trace, metrics = load_run(manifest_path)
        assert trace is not None and len(trace) > 0
        assert metrics is not None and "counters" in metrics

    def test_bare_chrome_event_list(self, manifest, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(manifest["traceEvents"]))
        trace, metrics = load_run(path)
        assert trace is not None and len(trace) > 0
        assert metrics is None

    def test_metrics_only_manifest(self, manifest, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"metrics": manifest["metrics"]}))
        trace, metrics = load_run(path)
        assert trace is None
        assert metrics is not None


class TestReportCli:
    def test_prints_utilization_cache_and_stalls(self, manifest_path, capsys):
        assert main([str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "lane utilization" in out
        assert "widest pipeline stalls" in out
        assert "counter tracks" in out
        assert "slot-cache statistics" in out
        assert "hit rate" in out
        assert "transfer hidden behind compute" in out

    def test_build_report_tables_have_rows(self, heat_run):
        tables = build_report(
            heat_run.trace, heat_run.metrics  # straight from the run, no JSON
        )
        by_title = {t.title: t for t in tables}
        util = by_title["lane utilization"]
        assert "compute" in util.column("lane")
        cache = by_title["slot-cache statistics"]
        assert sorted(cache.column("field")) == ["u_new", "u_old"]
        for row_field in cache.column("field"):
            row = cache.row_by("field", row_field)
            hits, misses = row[1], row[2]
            assert hits + misses > 0

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_empty_manifest_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert main([str(path)]) == 2
        assert "neither" in capsys.readouterr().err


class TestCompareGate:
    def test_identical_runs_pass(self, manifest_path, capsys):
        rc = main([str(manifest_path), "--compare", str(manifest_path)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_fails(self, manifest, tmp_path, capsys):
        baseline = copy.deepcopy(manifest)
        # a baseline that moved half the bytes: the current run "regressed"
        # by +100%, far past the 10% threshold
        baseline["metrics"]["counters"]["cuda.h2d_bytes"] *= 0.5
        cur_path = tmp_path / "cur.json"
        base_path = tmp_path / "base.json"
        cur_path.write_text(json.dumps(manifest))
        base_path.write_text(json.dumps(baseline))
        rc = main([str(cur_path), "--compare", str(base_path)])
        # gate failures share exit code 2 with the other report gates
        assert rc == 2
        out = capsys.readouterr().out
        assert "cuda.h2d_bytes" in out
        assert "REGRESSED" in out

    def test_threshold_is_respected(self, manifest, tmp_path):
        baseline = copy.deepcopy(manifest)
        baseline["metrics"]["counters"]["cuda.h2d_bytes"] *= 0.5
        cur_path = tmp_path / "cur.json"
        base_path = tmp_path / "base.json"
        cur_path.write_text(json.dumps(manifest))
        base_path.write_text(json.dumps(baseline))
        # +100% growth is fine under a 300% threshold
        rc = main([str(cur_path), "--compare", str(base_path), "--threshold", "3.0"])
        assert rc == 0

    def test_compare_needs_metrics_on_both_sides(self, manifest, tmp_path, capsys):
        with_metrics = tmp_path / "m.json"
        with_metrics.write_text(json.dumps(manifest))
        without = tmp_path / "t.json"
        without.write_text(json.dumps(manifest["traceEvents"]))
        assert main([str(with_metrics), "--compare", str(without)]) == 2
        assert "metrics" in capsys.readouterr().err


class TestCompareSemantics:
    def test_direction_awareness(self):
        base = {"counters": {"cache.hits.f": 100.0, "cuda.stall_seconds": 1.0}}
        cur = {"counters": {"cache.hits.f": 50.0, "cuda.stall_seconds": 2.0}}
        _rows, regressions = compare_snapshots(cur, base, threshold=0.10)
        assert {r["metric"] for r in regressions} == {
            "cache.hits.f",        # hits fell: higher-is-better
            "cuda.stall_seconds",  # stalls grew: lower-is-better
        }

    def test_improvements_are_not_regressions(self):
        base = {"counters": {"cache.hits.f": 50.0, "cuda.stall_seconds": 2.0}}
        cur = {"counters": {"cache.hits.f": 100.0, "cuda.stall_seconds": 1.0}}
        rows, regressions = compare_snapshots(cur, base, threshold=0.10)
        assert regressions == []
        assert {r["verdict"] for r in rows} == {"improved"}

    def test_new_and_removed_metrics_never_gate(self):
        base = {"counters": {"removed_metric": 5.0}}
        cur = {"counters": {"new_metric": 5.0}}
        rows, regressions = compare_snapshots(cur, base)
        assert regressions == []
        assert {r["verdict"] for r in rows} == {"new", "removed"}

    def test_zero_baseline_reports_new_not_infinite_regression(self):
        base = {"counters": {"cuda.stall_seconds": 0.0}}
        cur = {"counters": {"cuda.stall_seconds": 3.0}}
        rows, regressions = compare_snapshots(cur, base)
        assert regressions == []
        (row,) = rows
        assert row["verdict"] == "new"
        assert row["rel_change"] is None
        assert row["baseline"] == 0.0 and row["current"] == 3.0

    def test_zero_baseline_zero_current_is_ok(self):
        base = {"counters": {"cuda.stall_seconds": 0.0}}
        cur = {"counters": {"cuda.stall_seconds": 0.0}}
        rows, regressions = compare_snapshots(cur, base)
        assert regressions == []
        assert rows[0]["verdict"] == "ok"

    def test_flatten_covers_all_instrument_kinds(self):
        from repro.obs import MetricsRegistry

        m = MetricsRegistry()
        m.inc("c", 2.0)
        m.set_gauge("g", 7.0)
        m.observe("h", 3.0)
        flat = flatten_snapshot(m.snapshot())
        assert flat == {"c": 2.0, "g.max": 7.0, "h.count": 1.0, "h.sum": 3.0,
                        "h.p50": 3.0, "h.p95": 3.0, "h.p99": 3.0}

    def test_higher_is_better_fragments(self):
        assert higher_is_better("cache.hits.f")
        assert higher_is_better("ghost.hybrid_overlap_seconds")
        assert not higher_is_better("cuda.h2d_bytes")
        assert not higher_is_better("cache.evictions.f")


class TestHazardTable:
    """The hazard checker's findings surface in the profiler report."""

    @pytest.fixture(scope="class")
    def racy_run(self):
        """A deliberately unsynchronized pair of copies, checker observing."""
        from repro.config import k40m_pcie3
        from repro.cuda.runtime import CudaRuntime

        rt = CudaRuntime(k40m_pcie3(), check="observe")
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2)
        return rt

    def test_hazard_rows_from_trace_marks(self, racy_run):
        from repro.obs.report import hazard_table

        table = hazard_table(racy_run.trace, racy_run.metrics.snapshot())
        assert len(table.rows) == 2
        kinds = {row[2] for row in table.rows}
        assert kinds == {"RAW", "WAR"}
        assert any("racy = 2" in n for n in table.notes)

    def test_clean_checked_run_reports_ops(self, racy_run):
        from repro.obs.report import hazard_table

        table = hazard_table(None, racy_run.metrics.snapshot())
        assert table.rows == []
        assert any("checked ops = 2" in n for n in table.notes)

    def test_build_report_appends_hazards(self, racy_run):
        tables = build_report(racy_run.trace, racy_run.metrics.snapshot())
        titles = [t.title for t in tables]
        assert "happens-before hazards" in titles

    def test_unchecked_run_has_no_hazard_table(self, heat_run):
        tables = build_report(heat_run.trace, heat_run.metrics)
        assert "happens-before hazards" not in [t.title for t in tables]

    def test_check_counters_off_generic_metrics_table(self, racy_run):
        from repro.obs.report import metrics_table

        table = metrics_table(racy_run.metrics.snapshot())
        assert not any(str(row[0]).startswith("check.") for row in table.rows)

    def test_hazard_marks_survive_chrome_round_trip(self, racy_run, tmp_path):
        path = tmp_path / "racy.json"
        path.write_text(json.dumps({
            "schema": "repro-run-manifest/1",
            "traceEvents": racy_run.trace.to_chrome_trace(),
            "metrics": racy_run.metrics.snapshot(),
        }))
        trace, metrics = load_run(path)
        from repro.obs.report import hazard_table

        assert len(hazard_table(trace, metrics).rows) == 2


class TestWildcardPatterns:
    """Baseline metric names may be glob patterns (satellite of the SLO
    gate: per-tenant keys collapse into one committed wildcard row)."""

    def test_pattern_expands_against_current_keys(self):
        base = {"counters": {"bench.slo.tenant.*.p95_ms": 5.0}}
        cur = {"counters": {"bench.slo.tenant.a.p95_ms": 5.0,
                            "bench.slo.tenant.b.p95_ms": 5.0}}
        rows, regressions = compare_snapshots(cur, base, threshold=0.10)
        assert regressions == []
        assert sorted(r["metric"] for r in rows) == [
            "bench.slo.tenant.a.p95_ms", "bench.slo.tenant.b.p95_ms"]
        assert all(r["pattern"] == "bench.slo.tenant.*.p95_ms" for r in rows)

    def test_expansion_is_deterministic(self):
        base = {"counters": {"x.*": 1.0}}
        cur = {"counters": {f"x.{i}": 1.0 for i in range(5)}}
        rows1, _ = compare_snapshots(cur, base)
        rows2, _ = compare_snapshots(cur, base)
        assert [r["metric"] for r in rows1] == [r["metric"] for r in rows2]
        assert [r["metric"] for r in rows1] == sorted(
            r["metric"] for r in rows1)

    def test_pattern_gates_each_expanded_key(self):
        base = {"counters": {"bench.slo.tenant.*.p95_ms": 5.0}}
        cur = {"counters": {"bench.slo.tenant.a.p95_ms": 5.0,
                            "bench.slo.tenant.b.p95_ms": 9.0}}  # worse
        _rows, regressions = compare_snapshots(cur, base, threshold=0.10)
        assert [r["metric"] for r in regressions] == [
            "bench.slo.tenant.b.p95_ms"]

    def test_explicit_key_beats_pattern(self):
        base = {"counters": {"bench.slo.tenant.*.p95_ms": 5.0,
                             "bench.slo.tenant.b.p95_ms": 20.0}}
        cur = {"counters": {"bench.slo.tenant.a.p95_ms": 5.0,
                            "bench.slo.tenant.b.p95_ms": 19.0}}
        _rows, regressions = compare_snapshots(cur, base, threshold=0.10)
        # b is judged against its explicit 20.0 baseline, not the wildcard
        assert regressions == []

    def test_unmatched_pattern_is_a_regression_with_teeth(self):
        base = {"counters": {"bench.slo.tenant.*.p95_ms": 5.0}}
        cur = {"counters": {"something.else": 1.0}}
        _rows, regressions = compare_snapshots(cur, base)
        assert len(regressions) == 1
        row = regressions[0]
        assert row["verdict"] == "REGRESSED"
        assert row["current"] is None
        assert row["pattern"] == "bench.slo.tenant.*.p95_ms"

    def test_literal_names_with_no_glob_chars_are_unchanged(self):
        base = {"counters": {"plain.metric": 1.0}}
        cur = {"counters": {"plain.metric": 1.0}}
        rows, regressions = compare_snapshots(cur, base)
        assert regressions == []
        assert "pattern" not in rows[0]


class TestSloBlameTables:
    @pytest.fixture(scope="class")
    def slo_manifest(self, tmp_path_factory):
        from repro.obs.critpath import blame_decomposition, blame_summary
        from repro.obs.slo import JobSli, SloPolicy, SloTracker

        tracker = SloTracker([SloPolicy(tenant="a", target=1.0,
                                        objective=0.9, fast_window=2,
                                        slow_window=4, fast_burn=2.0,
                                        slow_burn=2.0, exit_burn=0.5)])
        for n in range(4):
            tracker.observe(JobSli(
                job=f"a.j{n}", tenant="a", t=float(n + 1), latency=2.0,
                queue_wait=0.5, start_delay=0.5, execute=0.5, drain=0.5))
        solo = {"submitted": 0.0, "admitted": 0.0, "started": 0.0,
                "last_quantum_end": 1.0, "drained": 1.2,
                "own_seconds": 1.0, "quanta": 1, "wait": {}}
        mux = {"submitted": 0.0, "admitted": 0.5, "started": 0.5,
               "last_quantum_end": 2.0, "drained": 2.4,
               "own_seconds": 1.0, "quanta": 2, "wait": {"queued": 0.5}}
        row = blame_decomposition(mux, solo)
        row["job"] = "a.j0"
        path = tmp_path_factory.mktemp("slo") / "slo.json"
        path.write_text(json.dumps({
            "schema": "repro-run-manifest/1",
            "metrics": {"counters": {"bench.ok": 1.0}},
            "slo": tracker.snapshot(),
            "blame": {"jobs": [row], "summary": blame_summary([row])},
        }))
        return path

    def test_slo_table_renders(self, slo_manifest, capsys):
        assert main([str(slo_manifest), "--slo"]) == 0
        out = capsys.readouterr().out
        assert "per-tenant SLO status" in out
        assert "BURNING" in out          # 4 straight misses: burning
        assert "budget_left" in out

    def test_blame_table_renders(self, slo_manifest, capsys):
        assert main([str(slo_manifest), "--blame"]) == 0
        out = capsys.readouterr().out
        assert "contention blame" in out
        assert "queueing_wait" in out
        assert "components sum to delta" in out

    def test_manifest_without_slo_key_exits_2(self, manifest_path, capsys):
        assert main([str(manifest_path), "--slo"]) == 2
        assert "no 'slo' snapshot" in capsys.readouterr().err

    def test_manifest_without_blame_key_exits_2(self, manifest_path, capsys):
        assert main([str(manifest_path), "--blame"]) == 2
        assert "no 'blame'" in capsys.readouterr().err
