"""Device memory slots (§IV-B.1).

TileAcc keeps a list of device memory pointers, each with a CUDA stream
assigned to it.  When device memory cannot hold every region, several
regions share one slot (``region_id % n_slots``), and the cache list
(:attr:`DeviceSlot.bound`) records which region's data currently occupies
the slot (-1 when empty) — the §IV-B.4 caching structure.
"""

from __future__ import annotations

from ..cuda.stream import Stream
from ..sim.device import DeviceBuffer

#: Region-location markers for the last-accessed-address-space cache (§III).
HOST = "host"
DEVICE = "device"

#: The cache-list value meaning "no region's data is in this slot" (§IV-B.4).
EMPTY = -1


class DeviceSlot:
    """One device memory pointer + its assigned CUDA stream."""

    __slots__ = ("index", "queue_id", "stream", "buffer", "bound")

    def __init__(self, index: int, queue_id: int, stream: Stream) -> None:
        self.index = index
        self.queue_id = queue_id      # OpenACC async value backing `stream`
        self.stream = stream
        self.buffer: DeviceBuffer | None = None
        self.bound: int = EMPTY       # region id occupying the slot, or EMPTY

    @property
    def is_empty(self) -> bool:
        return self.bound == EMPTY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceSlot({self.index}, bound={self.bound}, queue={self.queue_id})"
