"""Regression: eviction write-back racing a retried upload on the same slot.

The bug: ``TileAcc._upload`` ordered the replacement H2D after the
eviction's D2H write-back via a *local* completion time.  When a
transient fault killed the first upload attempt, ``_with_retry``
re-issued it — and the re-issue recomputed the barrier from a
now-empty slot (0.0), so the retried upload could overwrite the device
buffer while the write-back was still reading it (the write-back runs on
the dedicated write-back stream, the upload on the slot stream: no
stream-FIFO order between them).

The fix stores the barrier in ``TileAcc._slot_after``, keyed by slot,
and never clears it on consumption — a re-issue sees the same edge.
These tests pin both halves: the scenario is genuinely exercised
(evictions *and* retried uploads occur) and stays hazard-free and
byte-identical to the fault-free run.
"""

import pytest

from repro.baselines.tida_runners import run_tida_compute
from repro.check.explore import digest
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy

WORKLOAD = dict(
    shape=(64, 16, 16), steps=3, n_regions=8, n_slots=3,
    device_memory_limit=70_000, functional=True,
)
# h2d faults make upload attempts fail *after* their slot's eviction
# already ran — exactly the re-issue-vs-write-back interleaving
FAULTS = "h2d:p=0.25; seed=3"


@pytest.fixture(scope="module")
def faulted_run():
    return run_tida_compute(
        check="observe",
        faults=FaultPlan.from_spec(FAULTS),
        retry=RetryPolicy(max_attempts=12),
        **WORKLOAD,
    )


class TestScenarioIsExercised:
    """Guard rails: if these fail the regression test tests nothing."""

    def test_evictions_happened(self, faulted_run):
        counters = faulted_run.metrics["counters"]
        assert sum(v for k, v in counters.items()
                   if k.startswith("cache.evictions.")) > 0
        assert sum(v for k, v in counters.items()
                   if k.startswith("cache.writebacks.")) > 0

    def test_uploads_were_retried(self, faulted_run):
        counters = faulted_run.metrics["counters"]
        assert counters.get("faults.retries", 0) > 0
        assert counters.get("faults.recovered", 0) > 0


class TestNoRace:
    def test_no_hazards_under_retry(self, faulted_run):
        counters = faulted_run.metrics["counters"]
        assert counters.get("check.hazards.racy", 0) == 0
        assert counters.get("check.hazards", 0) == 0
        assert counters.get("check.ops", 0) > 0  # the checker was armed

    def test_recovery_byte_identical_to_fault_free(self, faulted_run):
        clean = run_tida_compute(**WORKLOAD)
        assert digest(faulted_run.result) == digest(clean.result)

    def test_strict_mode_accepts_the_schedule(self):
        run_tida_compute(
            check="strict",
            faults=FaultPlan.from_spec(FAULTS),
            retry=RetryPolicy(max_attempts=12),
            **WORKLOAD,
        )  # would raise HazardError on a regression
