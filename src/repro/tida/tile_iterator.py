"""Tile iterator: out-of-order traversal over tiles, and the GPU switch (§V).

The paper's user interface::

    for (tlIter.reset(GPU=true); tlIter.isValid(); tlIter.next()) {
        compute(tlIter.tile(), lambda ...);
    }

maps to either the same explicit style or a Pythonic ``for`` loop.  The
``gpu`` flag set at :meth:`reset` is what TiDA-acc's compute method reads
to decide between host execution and device offload.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import TidaError
from .tile import Tile
from .tile_array import TileArray


class TileIterator:
    """Iterate over the tiles of one or more compatible tile arrays.

    With several arrays, iteration yields *tuples* of tiles (one per
    array, same box) — the multi-input compute signature of §V.
    """

    def __init__(
        self,
        *arrays: TileArray,
        tile_shape: tuple[int, ...] | None = None,
        order: str = "sequential",
        seed: int | None = None,
    ) -> None:
        if not arrays:
            raise TidaError("TileIterator needs at least one tile array")
        first = arrays[0]
        for other in arrays[1:]:
            if not first.compatible_with(other):
                raise TidaError(
                    "all tile arrays in one iterator must share domain, "
                    "decomposition and ghost width"
                )
        if order not in ("sequential", "shuffled"):
            raise TidaError(f"order must be 'sequential' or 'shuffled', got {order!r}")
        self.arrays = arrays
        self.tile_shape = tile_shape
        self.order = order
        per_array = [a.tiles(tile_shape) for a in arrays]
        counts = {len(t) for t in per_array}
        if len(counts) != 1:
            raise TidaError("tile arrays produced different tile counts")
        self._tuples: list[tuple[Tile, ...]] = list(zip(*per_array))
        if order == "shuffled":
            rng = random.Random(seed)
            rng.shuffle(self._tuples)
        self._pos = 0
        self._gpu = False

    # -- paper-style interface ------------------------------------------------

    def reset(self, gpu: bool = False) -> "TileIterator":
        """Restart traversal; ``gpu=True`` enables device execution for the
        loop (the ``tlIter.reset(GPU=true)`` of §V)."""
        self._pos = 0
        self._gpu = bool(gpu)
        return self

    def is_valid(self) -> bool:
        return self._pos < len(self._tuples)

    def next(self) -> None:
        if not self.is_valid():
            raise TidaError("iterator advanced past the end")
        self._pos += 1

    def tile(self) -> Tile:
        """The current tile (single-array iterators)."""
        if len(self.arrays) != 1:
            raise TidaError("tile() is for single-array iterators; use tiles()")
        return self.tiles()[0]

    def tiles(self) -> tuple[Tile, ...]:
        """The current tile tuple (one tile per array)."""
        if not self.is_valid():
            raise TidaError("iterator is exhausted")
        return self._tuples[self._pos]

    @property
    def gpu(self) -> bool:
        return self._gpu

    @property
    def n_tiles(self) -> int:
        return len(self._tuples)

    # -- traversal-order introspection (the prefetcher's input) ---------------

    @property
    def schedule_known(self) -> bool:
        """Whether the remaining traversal order may be relied upon.

        Only ``order="sequential"`` advertises its schedule; a shuffled
        traversal is treated as unknown, so schedule-aware eviction and
        prefetching degrade to demand paging."""
        return self.order == "sequential"

    def remaining_rids(self) -> list[int]:
        """Distinct region ids still to be visited, current tile first.

        Duplicates (several tiles per region) collapse to the first
        occurrence — exactly the next-use order an eviction policy needs.
        """
        out: list[int] = []
        seen: set[int] = set()
        for tup in self._tuples[self._pos:]:
            rid = tup[0].rid
            if rid not in seen:
                seen.add(rid)
                out.append(rid)
        return out

    def upcoming_rids(self, depth: int) -> list[int]:
        """The next ``depth`` distinct region ids *after* the current tile.

        The current tile's region is excluded — it is already resident by
        the time the prefetcher runs."""
        if depth <= 0 or not self.is_valid():
            return []
        seen = {self._tuples[self._pos][0].rid}
        out: list[int] = []
        for tup in self._tuples[self._pos + 1:]:
            rid = tup[0].rid
            if rid not in seen:
                seen.add(rid)
                out.append(rid)
                if len(out) >= depth:
                    break
        return out

    # -- Pythonic interface ---------------------------------------------------------

    def __iter__(self) -> Iterator[tuple[Tile, ...]]:
        """Yield tile tuples from the current position to the end."""
        while self.is_valid():
            yield self.tiles()
            self.next()

    def __len__(self) -> int:
        return len(self._tuples)
