"""Tests for the profiler CLI's live-telemetry surfaces: --alerts,
--health, --fail-on-alerts, --out safety, and the unified exit codes."""

import json

import pytest

from repro.obs.compare import failing_alerts
from repro.obs.report import check_out_path, main


def alert(detector, severity, t=1.0, leg="legA"):
    return {"detector": detector, "severity": severity, "t": t,
            "window": [0.0, t], "message": f"{detector} fired",
            "evidence": {}, "leg": leg}


@pytest.fixture
def live_manifest(tmp_path):
    manifest = {
        "schema": "repro-run-manifest/1",
        "alerts": [alert("overlap_collapse", "critical"),
                   alert("retry_storm", "warning"),
                   alert("stall_spike", "info")],
        "health": {
            "legA": {"status": "critical", "samples": 10,
                     "alerts": {"info": 1, "warning": 1, "critical": 1},
                     "incidents": 0, "now": 2.5},
        },
    }
    path = tmp_path / "live.json"
    path.write_text(json.dumps(manifest))
    return path


@pytest.fixture
def clean_manifest(tmp_path):
    path = tmp_path / "clean.json"
    path.write_text(json.dumps({
        "schema": "repro-run-manifest/1", "alerts": [],
        "health": {"legA": {"status": "ok", "samples": 5,
                            "alerts": {"info": 0, "warning": 0, "critical": 0},
                            "incidents": 0, "now": 1.0}},
    }))
    return path


class TestFailingAlerts:
    def test_severity_threshold(self):
        alerts = [alert("a", "info"), alert("b", "warning"),
                  alert("c", "critical")]
        assert len(failing_alerts(alerts, "info")) == 3
        assert len(failing_alerts(alerts, "warning")) == 2
        assert len(failing_alerts(alerts, "critical")) == 1

    def test_unknown_severity_fails_closed(self):
        assert failing_alerts([alert("x", "bogus")], "critical")


class TestAlertsAndHealthTables:
    def test_tables_render(self, live_manifest, capsys):
        assert main([str(live_manifest), "--alerts", "--health"]) == 0
        out = capsys.readouterr().out
        assert "watchdog alerts" in out
        assert "overlap_collapse" in out
        assert "telemetry health" in out
        assert "critical" in out

    def test_empty_alerts_note(self, clean_manifest, capsys):
        assert main([str(clean_manifest), "--alerts"]) == 0
        assert "no alerts recorded" in capsys.readouterr().out

    def test_json_format(self, live_manifest, capsys):
        assert main([str(live_manifest), "--alerts", "--health",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        titles = [t["title"] for t in payload["tables"]]
        assert "watchdog alerts" in titles and "telemetry health" in titles


class TestFailOnAlerts:
    def test_clean_manifest_passes(self, clean_manifest, capsys):
        assert main([str(clean_manifest), "--fail-on-alerts"]) == 0
        assert "no alerts at or above" in capsys.readouterr().out

    def test_warning_gate_fails(self, live_manifest, capsys):
        assert main([str(live_manifest), "--fail-on-alerts"]) == 2
        out = capsys.readouterr().out
        assert "2 alert(s) at or above 'warning'" in out

    def test_critical_gate_ignores_warnings(self, live_manifest):
        rc_crit = main([str(live_manifest), "--fail-on-alerts", "critical"])
        assert rc_crit == 2  # one critical alert present
        # info gate catches everything
        assert main([str(live_manifest), "--fail-on-alerts", "info"]) == 2


class TestOutSafety:
    def test_refuses_existing_non_report_file(self, live_manifest, tmp_path,
                                              capsys):
        target = tmp_path / "precious.py"
        target.write_text("print('do not clobber me')\n")
        rc = main([str(live_manifest), "--alerts", "--out", str(target)])
        assert rc == 2
        assert "refusing to overwrite" in capsys.readouterr().err
        assert target.read_text() == "print('do not clobber me')\n"

    def test_creates_missing_parents(self, live_manifest, tmp_path):
        target = tmp_path / "deep" / "nested" / "report.json"
        rc = main([str(live_manifest), "--alerts", "--format", "json",
                   "--out", str(target)])
        assert rc == 0
        assert json.loads(target.read_text())["tables"]

    def test_overwriting_previous_report_is_fine(self, live_manifest, tmp_path):
        target = tmp_path / "report.txt"
        target.write_text("old report\n")
        assert main([str(live_manifest), "--alerts", "--out", str(target)]) == 0
        assert "watchdog alerts" in target.read_text()

    def test_check_out_path_accepts_new_paths(self, tmp_path):
        assert check_out_path(None) is None
        assert check_out_path(str(tmp_path / "fresh.anything")) is None
