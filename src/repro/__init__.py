"""repro: a full reproduction of *Overlapping Data Transfers with
Computation on GPU with Tiles* (Bastem, Unat, Zhang, Almgren, Shalf —
ICPP 2017) on a simulated CUDA/OpenACC substrate.

Public API tour
---------------

>>> from repro import TidaAcc, heat_kernel, Neumann
>>> lib = TidaAcc()                                  # simulated K40m testbed
>>> lib.add_array("u_old", (32, 32, 32), n_regions=4, halo=1, fill=1.0)
>>> lib.add_array("u_new", (32, 32, 32), n_regions=4, halo=1)
>>> kernel = heat_kernel(ndim=3)
>>> for _step in range(10):
...     lib.fill_boundary("u_old", Neumann())
...     it = lib.iterator("u_new", "u_old").reset(gpu=True)
...     while it.is_valid():
...         lib.compute(it, kernel, params={"coef": 0.1})
...         it.next()
...     lib.swap("u_old", "u_new")
>>> result = lib.gather("u_old")                      # numpy array
>>> elapsed = lib.now                                 # virtual seconds

Or declaratively — describe the program, let the planner derive the
decomposition (ghost widths, region/slot counts, eviction, prefetch)
from the kernels' access/footprint declarations:

>>> from repro import Program, TidaAcc, heat_kernel
>>> prog = Program((32, 32, 32), bc=Neumann())
>>> with prog.sweep(10):
...     prog.step(heat_kernel(3), ("u_new", "u_old"), params={"coef": 0.1})
...     prog.swap("u_old", "u_new")
>>> lib = TidaAcc()
>>> run = lib.run_program(prog)
>>> result = lib.gather("u_old")

The layers underneath (each usable on its own):

* :mod:`repro.sim` — virtual-time engines, memory buffers, trace;
* :mod:`repro.cuda` — simulated CUDA runtime (streams, copies, kernels,
  events, managed memory);
* :mod:`repro.openacc` — simulated OpenACC (directives, data regions,
  activity queues);
* :mod:`repro.tida` — the TiDA tiling library (boxes, regions, tiles,
  tileArray, iterators, ghost exchange);
* :mod:`repro.core` — TiDA-acc itself;
* :mod:`repro.plan` — the declarative :class:`~repro.plan.Program`
  front-end and the access-set-driven planner
  (:func:`~repro.plan.plan_program`);
* :mod:`repro.kernels` — the paper's workloads;
* :mod:`repro.baselines` — the CUDA/OpenACC/hybrid programs the paper
  compares against;
* :mod:`repro.model` — analytic pipeline-time model and autotuner;
* :mod:`repro.bench` — the per-figure experiment harness;
* :mod:`repro.obs` — runtime observability: the metrics registry
  (``runtime.metrics``), snapshot diffing, and the profiler CLI
  (``python -m repro.obs.report``);
* :mod:`repro.faults` — deterministic fault injection
  (:class:`~repro.faults.FaultPlan`) and resilience policies
  (:class:`~repro.faults.RetryPolicy`).
"""

from .config import (
    CUDA_FASTMATH,
    CUDA_LIBM,
    DEFAULT_MACHINE,
    PGI_MATH,
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MachineSpec,
    MathModel,
    k40m_pcie3,
    p100_nvlink,
)
from .core import TidaAcc, TileAcc
from .cuda import CudaRuntime, KernelSpec, LaunchConfig
from .errors import FaultError, ReproError
from .faults import FaultPlan, FaultRule, RetryPolicy
from .kernels import (
    blur_kernel,
    coeff_heat_kernel,
    compute_intensive_kernel,
    heat_kernel,
    wave_kernel,
)
from .obs import MetricsRegistry
from .plan import PlanReport, Program, plan_program, ref
from .openacc import AccFlags, AccRuntime
from .tida import (
    Box,
    Decomposition,
    Dirichlet,
    Neumann,
    Periodic,
    Region,
    Tile,
    TileArray,
    TileIterator,
)

__version__ = "1.0.0"

__all__ = [
    "TidaAcc",
    "TileAcc",
    "CudaRuntime",
    "AccRuntime",
    "AccFlags",
    "KernelSpec",
    "LaunchConfig",
    "Box",
    "Decomposition",
    "Region",
    "Tile",
    "TileArray",
    "TileIterator",
    "Dirichlet",
    "Neumann",
    "Periodic",
    "heat_kernel",
    "compute_intensive_kernel",
    "blur_kernel",
    "wave_kernel",
    "coeff_heat_kernel",
    "Program",
    "plan_program",
    "PlanReport",
    "ref",
    "MachineSpec",
    "GpuSpec",
    "CpuSpec",
    "LinkSpec",
    "MathModel",
    "CUDA_LIBM",
    "CUDA_FASTMATH",
    "PGI_MATH",
    "DEFAULT_MACHINE",
    "k40m_pcie3",
    "p100_nvlink",
    "MetricsRegistry",
    "ReproError",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "FaultError",
]
