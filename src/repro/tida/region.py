"""Regions: physically separated partitions of the data (§IV-A).

Each region owns its own allocation covering its interior box grown by
the ghost width.  Views into the allocation are addressed in *global*
index space, so ghost exchange and tile execution never do index
arithmetic by hand.
"""

from __future__ import annotations

import numpy as np

from ..errors import TidaError
from ..sim.hostmem import HostBuffer
from .box import Box


class Region:
    """One region: interior box + ghost zone + backing host allocation."""

    __slots__ = ("rid", "box", "ghost", "grown", "data", "label")

    def __init__(
        self,
        rid: int,
        box: Box,
        ghost: int | tuple[int, ...],
        data: HostBuffer | None = None,
        label: str = "",
    ) -> None:
        if box.is_empty:
            raise TidaError(f"region {rid} has an empty interior box")
        self.rid = rid
        self.box = box
        self.grown = box.grow(ghost)
        if isinstance(ghost, int):
            ghost = (ghost,) * box.ndim
        self.ghost = tuple(int(g) for g in ghost)
        if any(g < 0 for g in self.ghost):
            raise TidaError(f"ghost width must be >= 0, got {self.ghost}")
        self.label = label or f"region{rid}"
        self.data = data
        if data is not None and tuple(data.shape) != self.local_shape:
            raise TidaError(
                f"region {rid} data shape {data.shape} != local shape {self.local_shape}"
            )

    @property
    def ndim(self) -> int:
        return self.box.ndim

    @property
    def local_shape(self) -> tuple[int, ...]:
        """Shape of the backing allocation (interior + ghosts)."""
        return self.grown.shape

    @property
    def nbytes(self) -> int:
        if self.data is None:
            raise TidaError(f"region {self.rid} has no allocation")
        return self.data.nbytes

    # -- coordinate mapping ----------------------------------------------------

    def local_slices(self, global_box: Box) -> tuple[slice, ...]:
        """Numpy slices selecting ``global_box`` from this region's array."""
        if not self.grown.contains(global_box):
            raise TidaError(
                f"box {global_box} is not inside region {self.rid}'s "
                f"allocation {self.grown}"
            )
        return global_box.slices(origin=self.grown.lo)

    def local_bounds(self, global_box: Box) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(lo, hi) local index bounds of ``global_box`` (for kernel params)."""
        slices = self.local_slices(global_box)
        return tuple(s.start for s in slices), tuple(s.stop for s in slices)

    @property
    def interior_slices(self) -> tuple[slice, ...]:
        return self.local_slices(self.box)

    # -- functional views ---------------------------------------------------------

    def view(self, global_box: Box) -> np.ndarray:
        """Array view of ``global_box`` (functional mode only)."""
        if self.data is None:
            raise TidaError(f"region {self.rid} has no allocation")
        return self.data.array[self.local_slices(global_box)]

    @property
    def interior(self) -> np.ndarray:
        return self.view(self.box)

    @property
    def array(self) -> np.ndarray:
        """The whole local array, ghosts included."""
        if self.data is None:
            raise TidaError(f"region {self.rid} has no allocation")
        return self.data.array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.rid}, box={self.box}, ghost={self.ghost})"
