"""Unit tests for the flight recorder (repro.obs.live.recorder)."""

import json

import pytest

from repro.baselines.tida_runners import run_tida_heat
from repro.cuda.runtime import CudaRuntime
from repro.errors import FaultError, HazardError
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.obs.live import Alert, FlightRecorder, TelemetryBus
from repro.obs.live.bus import TelemetrySample
from repro.obs.live.recorder import INCIDENT_SCHEMA

SHAPE = (64, 64, 64)


def mk_sample(seq, *, dt=1e-3):
    return TelemetrySample(
        seq=seq, t=(seq + 1) * dt, dt=dt, totals={}, deltas={},
        h2d_bytes_per_s=0.0, d2h_bytes_per_s=0.0, stall_fraction=0.0,
        compute_fraction=0.5, transfer_fraction=0.5, cache_hit_rate=None,
        overlap_efficiency=None, queue_depth=0.0,
    )


def mk_alert(severity, t=1.0):
    return Alert(detector="stub", severity=severity, t=t,
                 window=(0.0, t), message="stub alert")


class TestRing:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.on_sample(mk_sample(i))
        assert len(rec.ring) == 4
        assert [s.seq for s in rec.ring] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=1)


class TestAlertTriggeredDumps:
    def test_dump_on_severity_at_or_above_threshold(self, tmp_path):
        rec = FlightRecorder(incident_dir=tmp_path, min_severity="warning")
        bus = TelemetryBus(sample_interval=1e-3)
        bus.add_subscriber(rec)
        rec.on_alert(mk_alert("info"))
        assert rec.incident_paths == []
        rec.on_alert(mk_alert("warning"))
        rec.on_alert(mk_alert("critical"))
        assert [p.name for p in rec.incident_paths] == [
            "incident.json", "incident-2.json"]

    def test_min_severity_none_disables_alert_dumps(self, tmp_path):
        rec = FlightRecorder(incident_dir=tmp_path, min_severity=None)
        bus = TelemetryBus(sample_interval=1e-3)
        bus.add_subscriber(rec)
        rec.on_alert(mk_alert("critical"))
        assert rec.incident_paths == []
        # ...but hard incidents still dump
        bus.notify_incident("fault", error=RuntimeError("boom"))
        assert len(rec.incident_paths) == 1


class TestIncidentContents:
    @pytest.fixture
    def incident(self, tmp_path):
        rec = FlightRecorder(incident_dir=tmp_path, capacity=8)
        bus = TelemetryBus(sample_interval=1e-4)
        bus.add_subscriber(rec)
        plan = FaultPlan([FaultRule(op="h2d")])
        with pytest.raises(FaultError):
            run_tida_heat(shape=SHAPE, steps=2, n_regions=4, functional=False,
                          faults=plan, retry=RetryPolicy(max_attempts=2),
                          telemetry=bus)
        bus.close()
        assert len(rec.incident_paths) == 1
        return json.loads(rec.incident_paths[0].read_text())

    def test_schema_and_trigger(self, incident):
        assert incident["schema"] == INCIDENT_SCHEMA
        assert incident["trigger"]["kind"] == "fault"
        assert incident["trigger"]["error"] == "FaultError"

    def test_window_and_tails_are_self_contained(self, incident):
        assert incident["health"]["status"] == "critical"
        assert incident["trace_tail"], "trace tail missing"
        assert {"name", "category", "lane", "start", "end"} <= set(
            incident["trace_tail"][0])
        assert incident["metrics"]["counters"]["faults.injected"] > 0
        assert incident["active_ops"], "engine state missing"

    def test_dump_is_sorted_json(self, tmp_path):
        rec = FlightRecorder(incident_dir=tmp_path)
        bus = TelemetryBus(sample_interval=1e-3)
        bus.add_subscriber(rec)
        bus.notify_incident("fault", error=RuntimeError("x"))
        text = rec.incident_paths[0].read_text()
        assert text == json.dumps(json.loads(text), indent=2,
                                  sort_keys=True) + "\n"


class TestHazardIncident:
    def test_strict_hazard_dumps(self, tmp_path, tiny_machine):
        rec = FlightRecorder(incident_dir=tmp_path)
        bus = TelemetryBus(sample_interval=1e-3)
        bus.add_subscriber(rec)
        rt = CudaRuntime(tiny_machine, check="strict", telemetry=bus)
        host = rt.malloc_pinned((64, 64))
        dev = rt.malloc((64, 64))
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(dev, host, s1)
        with pytest.raises(HazardError):
            # unsynchronized read-back of an in-flight upload: racy RAW
            rt.memcpy_async(host, dev, s2)
        assert len(rec.incident_paths) == 1
        incident = json.loads(rec.incident_paths[0].read_text())
        assert incident["trigger"]["kind"] == "hazard"
        assert incident["trigger"]["error"] == "HazardError"
