"""Fault-injection stress leg: the CI chaos knob.

The ``REPRO_FAULTS`` environment variable carries a
:meth:`repro.faults.FaultPlan.from_spec` string (the same format as the
harness's ``--faults`` flag).  CI runs this module with a hostile spec;
locally it defaults to a mild plan so the test always exercises the
recovery machinery.
"""

from __future__ import annotations

import os

import numpy as np

from repro.baselines.tida_runners import run_tida_heat
from repro.faults import FaultPlan, RetryPolicy

DEFAULT_SPEC = "h2d:p=0.05; d2h:p=0.05; launch:p=0.03; seed=7"


def test_heat_survives_fault_plan(machine):
    spec = os.environ.get("REPRO_FAULTS", DEFAULT_SPEC)
    kwargs = dict(shape=(48, 48), steps=6, n_regions=4, functional=True)
    clean = run_tida_heat(machine, **kwargs)
    faulted = run_tida_heat(
        machine, **kwargs,
        faults=FaultPlan.from_spec(spec), retry=RetryPolicy(max_attempts=6),
    )
    counters = faulted.metrics["counters"]
    assert counters.get("faults.injected", 0) > 0, (
        f"spec {spec!r} injected nothing; make it meaner"
    )
    assert counters.get("faults.recovered", 0) > 0
    assert np.array_equal(clean.result, faulted.result), (
        f"recovery under {spec!r} was not byte-identical"
    )
