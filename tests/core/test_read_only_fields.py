"""Read-only field hint: write-back elimination without losing coherence."""

import numpy as np
import pytest

from repro.core.library import TidaAcc
from repro.cuda.kernel import KernelSpec
from repro.errors import TidaError


def axpy_kernel():
    def body(dst, coef, lo, hi, a=1.0):
        sl = tuple(slice(l, h) for l, h in zip(lo, hi))
        dst[sl] += a * coef[sl]
    return KernelSpec(name="axpy-coef", body=body, bytes_per_cell=24.0, flops_per_cell=2.0)


@pytest.fixture
def lib(machine):
    lib = TidaAcc(machine)
    lib.add_array("u", (16,), n_regions=4, fill=0.0)
    lib.add_array("coef", (16,), n_regions=4, access="ro")
    lib.field("coef").from_global(np.arange(16, dtype=float))
    return lib


class TestReadOnlySemantics:
    def test_invalid_access_value(self, machine):
        lib = TidaAcc(machine)
        with pytest.raises(TidaError):
            lib.add_array("x", (8,), n_regions=2, access="wo")

    def test_compute_with_ro_coefficient(self, lib):
        for u_t, c_t in lib.iterator("u", "coef").reset(gpu=True):
            lib.compute((u_t, c_t), axpy_kernel(), gpu=True, params={"a": 2.0})
        np.testing.assert_allclose(lib.gather("u"), 2.0 * np.arange(16.0))

    def test_host_read_of_ro_field_free(self, lib):
        mgr = lib.manager("coef")
        for rid in range(4):
            mgr.request_device(rid)
        d2h_before = mgr.d2h_count
        for rid in range(4):
            mgr.request_host(rid)
        assert mgr.d2h_count == d2h_before

    def test_ro_host_read_keeps_device_copy_valid(self, lib):
        mgr = lib.manager("coef")
        mgr.request_device(0)
        mgr.request_host(0)
        h2d_before = mgr.h2d_count
        mgr.request_device(0)       # still a cache hit
        assert mgr.h2d_count == h2d_before

    def test_eviction_of_ro_field_is_free(self, machine):
        lib = TidaAcc(machine)
        lib.add_array("coef", (16,), n_regions=4, n_slots=2, access="ro")
        lib.field("coef").from_global(np.arange(16.0))
        mgr = lib.manager("coef")
        for rid in range(4):
            mgr.request_device(rid)     # wraps around the 2 slots
        assert mgr.d2h_count == 0       # rw field would have written back
        assert mgr.h2d_count == 4

    def test_rw_field_still_writes_back(self, machine):
        lib = TidaAcc(machine)
        lib.add_array("u", (16,), n_regions=4, n_slots=2)
        mgr = lib.manager("u")
        for rid in range(4):
            mgr.request_device(rid)
        assert mgr.d2h_count == 2       # two evictions wrote back

    def test_invalidate_device_forces_reupload(self, lib):
        mgr = lib.manager("coef")
        mgr.request_device(0)
        lib.field("coef").from_global(np.ones(16))
        mgr.invalidate_device()
        buf, _ = mgr.request_device(0)
        assert np.all(buf.array[:4] == 1.0)

    def test_streaming_transfer_savings(self, machine):
        """In a 2-slot streaming loop, the ro coefficient halves total D2H
        traffic versus making it rw — the extension's point."""
        def run(access):
            lib = TidaAcc(machine, functional=False)
            lib.add_array("u", (64, 64, 64), n_regions=8, n_slots=2)
            lib.add_array("coef", (64, 64, 64), n_regions=8, n_slots=2, access=access)
            k = KernelSpec(name="k", body=None, bytes_per_cell=24.0, flops_per_cell=2.0)
            for _ in range(3):
                for u_t, c_t in lib.iterator("u", "coef").reset(gpu=True):
                    lib.compute((u_t, c_t), k, gpu=True)
            return lib.manager("u").d2h_count + lib.manager("coef").d2h_count, lib.now

        rw_transfers, rw_time = run("rw")
        ro_transfers, ro_time = run("ro")
        assert ro_transfers < rw_transfers
        assert ro_time < rw_time

    def test_release_device_memory_allowed_when_ro(self, lib):
        mgr = lib.manager("coef")
        mgr.request_device(0)
        mgr.release_device_memory()     # no flush needed for ro fields
        assert all(slot.buffer is None for slot in mgr.slots)
