"""Pure-OpenACC heat solver (the Fig. 1 / Fig. 5 OpenACC baselines).

Characteristics reproduced from §II-C:

* a structured ``data`` region around the time loop (the sane OpenACC
  program — implicit per-kernel copies would be "extremely low
  performance");
* **compiler-chosen launch geometry** (the untuned-efficiency penalty);
* one generated kernel for the stencil plus **one kernel per boundary
  face** each step — the extra-launch overhead the paper calls out;
* memory flavour via compile flags: plain (pageable), ``-ta=tesla:pinned``
  or ``-ta=tesla:managed``.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_MACHINE, MachineSpec
from ..cuda.runtime import CudaRuntime
from ..kernels.exchange import face_copy_kernel, face_fill_kernel
from ..kernels.heat import heat_kernel
from ..openacc.compiler import AccFlags
from ..openacc.runtime import AccRuntime
from ..tida.boundary import BoundaryCondition, Neumann
from .common import BaselineResult, bc_kernel_launches, default_init, interior


def _flags_for(memory: str) -> AccFlags:
    return AccFlags(pinned=(memory == "pinned"), managed=(memory == "managed"))


def run_acc_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (384, 384, 384),
    steps: int = 100,
    memory: str = "pageable",
    functional: bool = False,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    initial: np.ndarray | None = None,
) -> BaselineResult:
    """Run the OpenACC heat baseline; timing covers transfers + compute."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    bc = bc if bc is not None else Neumann()
    runtime = CudaRuntime(machine, functional=functional)
    acc = AccRuntime(runtime, _flags_for(memory))
    ghost = 1
    full = tuple(s + 2 * ghost for s in shape)
    ndim = len(shape)
    n_interior = 1
    for s in shape:
        n_interior *= s
    stencil = heat_kernel(ndim)
    fill_k = face_fill_kernel()
    copy_k = face_copy_kernel()
    lo = (ghost,) * ndim
    hi = tuple(s - ghost for s in full)
    bc_plan = bc_kernel_launches(full, ghost, bc)

    u = [acc.alloc_data(full, label="u0"), acc.alloc_data(full, label="u1")]
    if functional:
        init = initial if initial is not None else default_init(shape, ghost)
        for buf in u:
            arr = buf.array if memory != "managed" else buf.array
            arr[...] = init

    t0 = runtime.now
    with acc.data(copy=u):
        src, dst = 0, 1
        for _ in range(steps):
            # compiler-generated boundary kernels, one per face (§II-C)
            for kind, params, n_cells in bc_plan:
                acc.parallel_loop(
                    fill_k if kind == "fill" else copy_k,
                    arrays=[u[src]],
                    n_cells=n_cells,
                    collapse=ndim,
                    loop_dims=ndim,
                    params=params,
                    label=f"acc-bc:{kind}",
                )
            acc.parallel_loop(
                stencil,
                arrays=[u[dst], u[src]],
                n_cells=n_interior,
                collapse=ndim,
                loop_dims=ndim,
                params={"lo": lo, "hi": hi, "coef": coef},
                label="acc-heat",
            )
            src, dst = dst, src
        # structured data region ends: copyout both arrays
        acc.wait()
    if memory == "managed":
        final = runtime.managed_host_access(u[src])
    else:
        final = u[src].array if functional else None
    elapsed = runtime.now - t0
    result = interior(final, ghost).copy() if functional else None
    return BaselineResult(
        name=f"openacc-{memory}", elapsed=elapsed, shape=shape, steps=steps,
        trace=runtime.trace, result=result, meta={"memory": memory},
    )
