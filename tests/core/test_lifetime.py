"""Library lifetime: context-manager close flushes and frees device memory."""

import numpy as np

from repro.core.library import TidaAcc
from repro.cuda.kernel import KernelSpec


def scale2():
    def body(arr, lo, hi):
        arr[tuple(slice(l, h) for l, h in zip(lo, hi))] *= 2.0
    return KernelSpec(name="scale2", body=body, bytes_per_cell=16.0)


def test_close_flushes_and_frees(machine):
    lib = TidaAcc(machine)
    lib.add_array("u", (16,), n_regions=4, fill=1.0)
    for (tile,) in lib.iterator("u").reset(gpu=True):
        lib.compute(tile, scale2(), gpu=True)
    free_mid = lib.runtime.mem_get_info()[0]
    lib.close()
    assert lib.runtime.mem_get_info()[0] > free_mid          # slots freed
    assert np.all(lib.field("u").to_global() == 2.0)          # results flushed


def test_context_manager(machine):
    with TidaAcc(machine) as lib:
        lib.add_array("u", (16,), n_regions=2, fill=3.0)
        lib.manager("u").request_device(0)
    free, total = lib.runtime.mem_get_info()
    assert free == total  # everything released
    assert np.all(lib.field("u").to_global() == 3.0)


def test_close_with_read_only_field(machine):
    with TidaAcc(machine) as lib:
        lib.add_array("coef", (16,), n_regions=2, access="ro", fill=1.0)
        lib.manager("coef").request_device(0)
    assert lib.runtime.mem_get_info()[0] == lib.runtime.mem_get_info()[1]


def test_close_idempotent(machine):
    lib = TidaAcc(machine)
    lib.add_array("u", (16,), n_regions=2)
    lib.close()
    lib.close()  # second close is a no-op, not an error
