"""The OpenACC runtime: activity queues, data regions, parallel loops.

This is the layer TiDA-acc leans on for kernel code generation (§IV):
``parallel_loop(collapse=..., deviceptr=..., async_=...)`` turns into a
CUDA kernel launch with *compiler-chosen* geometry and PGI math codegen,
issued to the CUDA stream backing the requested activity queue
(``acc_get_cuda_stream`` interoperability, §IV-B.2).

It is also a complete enough OpenACC runtime to write the paper's
OpenACC-only baselines against: structured/unstructured data regions,
implicit per-construct ``copy`` movement when an array is not present
(the behaviour that makes naive OpenACC "extremely low performance",
§II-B), and the ``-ta=tesla:pinned/managed`` flag variants.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Sequence

from ..cuda.kernel import KernelSpec
from ..cuda.runtime import CudaRuntime
from ..cuda.stream import Stream
from ..cuda.uvm import ManagedBuffer
from ..errors import AccError
from ..sim.device import DeviceBuffer
from ..sim.hostmem import HostBuffer
from .compiler import AccFlags, validate_collapse
from .data import PresentTable

#: Any buffer an OpenACC construct can reference.
AccArray = HostBuffer | DeviceBuffer | ManagedBuffer


class AccRuntime:
    """One OpenACC device context bound to a simulated CUDA runtime."""

    def __init__(self, cuda: CudaRuntime, flags: AccFlags | None = None) -> None:
        self.cuda = cuda
        self.flags = flags if flags is not None else AccFlags()
        self.present = PresentTable()
        self._queues: dict[int, Stream] = {}
        # async values handed out to library code (TileAcc slots) live in a
        # high range so they never collide with user-chosen small values
        self._next_auto_queue = 10_000

    # -- allocation respecting -ta flags -----------------------------------

    def alloc_data(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = "float64",
        *,
        fill: float | None = None,
        label: str = "",
    ) -> AccArray:
        """Allocate application data the way this 'build' of the program would.

        Plain build: pageable host memory.  ``-ta=tesla:pinned``: pinned
        host memory.  ``-ta=tesla:managed``: CUDA managed memory.
        """
        if self.flags.managed:
            return self.cuda.malloc_managed(shape, dtype, fill=fill, label=label)
        if self.flags.pinned:
            return self.cuda.malloc_pinned(shape, dtype, fill=fill, label=label)
        return self.cuda.malloc_pageable(shape, dtype, fill=fill, label=label)

    # -- activity queues -----------------------------------------------------

    def queue(self, async_value: int | None) -> Stream:
        """``acc_get_cuda_stream``: the CUDA stream behind an activity queue.

        ``async_value=None`` is the synchronous queue (CUDA default stream).
        Queues are created on first use, exactly like OpenACC async values.
        """
        if async_value is None:
            return self.cuda.default_stream
        if not isinstance(async_value, int) or async_value < 0:
            raise AccError(f"async value must be a non-negative int, got {async_value!r}")
        stream = self._queues.get(async_value)
        if stream is None:
            stream = self.cuda.create_stream()
            self._queues[async_value] = stream
        return stream

    def new_auto_queue(self) -> int:
        """Reserve a fresh async value (TileAcc's one-queue-per-slot setup)."""
        qid = self._next_auto_queue
        self._next_auto_queue += 1
        self.queue(qid)  # materialize the stream now
        return qid

    @property
    def queues(self) -> dict[int, Stream]:
        return dict(self._queues)

    def wait(self, async_value: int | None = None) -> float:
        """``#pragma acc wait [(queue)]``: block the host until work drains."""
        if async_value is not None:
            return self.cuda.stream_synchronize(self.queue(async_value))
        end = self.cuda.now
        for stream in self._queues.values():
            end = self.cuda.stream_synchronize(stream)
        end = max(end, self.cuda.stream_synchronize(self.cuda.default_stream))
        return end

    # -- data regions ----------------------------------------------------------

    def _copyin_one(self, host: HostBuffer, *, copyout: bool) -> None:
        if self.present.is_present(host):
            self.present.retain(host)
            return
        device = self.cuda.malloc(host.shape, host.dtype, label=f"acc:{host.label}")
        self.cuda.memcpy(device, host, label=f"acc-copyin:{host.label}")
        self.present.insert(host, device, copyout_on_delete=copyout)

    def _create_one(self, host: HostBuffer) -> None:
        if self.present.is_present(host):
            self.present.retain(host)
            return
        device = self.cuda.malloc(host.shape, host.dtype, label=f"acc:{host.label}")
        self.present.insert(host, device, copyout_on_delete=False)

    def _release_one(self, host: HostBuffer, *, force_copyout: bool | None = None) -> None:
        entry = self.present.release(host)
        if entry is None:
            return
        copyout = entry.copyout_on_delete if force_copyout is None else force_copyout
        if copyout:
            self.cuda.memcpy(host, entry.device, label=f"acc-copyout:{host.label}")
        self.cuda.free(entry.device)
        self.present.drop(host)

    @staticmethod
    def _only_host(arrays: Sequence[AccArray], clause: str) -> list[HostBuffer]:
        out: list[HostBuffer] = []
        for a in arrays:
            if isinstance(a, ManagedBuffer):
                # managed data needs no data clauses; accept and ignore,
                # like the PGI managed-memory mode does.
                continue
            if not isinstance(a, HostBuffer):
                raise AccError(f"{clause} clause expects host arrays, got {type(a).__name__}")
            out.append(a)
        return out

    @contextlib.contextmanager
    def data(
        self,
        *,
        copy: Sequence[AccArray] = (),
        copyin: Sequence[AccArray] = (),
        copyout: Sequence[AccArray] = (),
        create: Sequence[AccArray] = (),
        present: Sequence[AccArray] = (),
    ) -> Iterator[None]:
        """Structured ``#pragma acc data`` region (§II-B)."""
        for host in self._only_host(copy, "copy"):
            self._copyin_one(host, copyout=True)
        for host in self._only_host(copyin, "copyin"):
            self._copyin_one(host, copyout=False)
        for host in self._only_host(copyout, "copyout"):
            self._create_one(host)
            self.present.lookup(host).copyout_on_delete = True
        for host in self._only_host(create, "create"):
            self._create_one(host)
        for host in self._only_host(present, "present"):
            self.present.device_of(host)  # raises AccPresentError when absent
        try:
            yield
        finally:
            for host in self._only_host(copy, "copy"):
                self._release_one(host)
            for host in self._only_host(copyin, "copyin"):
                self._release_one(host)
            for host in self._only_host(copyout, "copyout"):
                self._release_one(host)
            for host in self._only_host(create, "create"):
                self._release_one(host)

    def enter_data(
        self,
        *,
        copyin: Sequence[AccArray] = (),
        create: Sequence[AccArray] = (),
    ) -> None:
        """Unstructured ``#pragma acc enter data``."""
        for host in self._only_host(copyin, "copyin"):
            self._copyin_one(host, copyout=False)
        for host in self._only_host(create, "create"):
            self._create_one(host)

    def exit_data(
        self,
        *,
        copyout: Sequence[AccArray] = (),
        delete: Sequence[AccArray] = (),
    ) -> None:
        """Unstructured ``#pragma acc exit data``."""
        for host in self._only_host(copyout, "copyout"):
            self._release_one(host, force_copyout=True)
        for host in self._only_host(delete, "delete"):
            self._release_one(host, force_copyout=False)

    def update_host(self, *arrays: AccArray) -> None:
        """``#pragma acc update self(...)``: refresh host copies."""
        for host in self._only_host(arrays, "update self"):
            entry = self.present.lookup(host)
            if entry is None:
                raise AccError(f"update self on non-present array {host.label or id(host)}")
            self.cuda.memcpy(host, entry.device, label=f"acc-update-host:{host.label}")

    def update_device(self, *arrays: AccArray) -> None:
        """``#pragma acc update device(...)``: refresh device copies."""
        for host in self._only_host(arrays, "update device"):
            entry = self.present.lookup(host)
            if entry is None:
                raise AccError(f"update device on non-present array {host.label or id(host)}")
            self.cuda.memcpy(entry.device, host, label=f"acc-update-device:{host.label}")

    # -- compute constructs -----------------------------------------------------

    def parallel_loop(
        self,
        kernel: KernelSpec,
        *,
        arrays: Sequence[AccArray] = (),
        deviceptr: Sequence[DeviceBuffer] = (),
        n_cells: int | None = None,
        collapse: int | None = None,
        loop_dims: int = 1,
        async_: int | None = None,
        num_gangs: int | None = None,
        num_workers: int | None = None,
        vector_length: int | None = None,
        after: float | Sequence[float] = 0.0,
        params: dict[str, Any] | None = None,
        label: str = "",
    ) -> float:
        """``#pragma acc parallel loop collapse(n) deviceptr(...) async(q)``.

        ``arrays`` are data the loop reads/writes by host reference: if an
        array is present (or managed) its device copy is used; otherwise
        the compiler inserts an implicit ``copy`` around this construct —
        the §II-B behaviour responsible for the slow naive-OpenACC bars.
        ``deviceptr`` arrays are raw device pointers (TiDA-acc's path).

        Geometry clauses (``num_gangs``/``num_workers``/``vector_length``,
        §II-A) let the caller tune the generated kernel; when none is
        given the compiler picks, at the §II-C efficiency penalty.  This
        is how TiDA-acc's compute method recovers hand-tuned-CUDA kernel
        performance while still using OpenACC codegen.

        ``after`` adds a readiness dependency on another queue's operation
        (TileAcc uses it when a kernel consumes a transfer issued on a
        different array's stream).

        Returns the virtual completion time of the generated kernel.
        """
        validate_collapse(collapse, loop_dims)
        for clause, value in (
            ("num_gangs", num_gangs),
            ("num_workers", num_workers),
            ("vector_length", vector_length),
        ):
            if value is not None and (not isinstance(value, int) or value < 1):
                raise AccError(f"{clause} takes a positive integer, got {value!r}")
        tuned = any(v is not None for v in (num_gangs, num_workers, vector_length))
        stream = self.queue(async_)
        # per-vector-length launch accounting: which codegen geometries a
        # run actually exercised (auto = compiler-chosen, §II-C)
        self.cuda.metrics.inc(
            f"acc.kernel_launches.vl_{vector_length if vector_length is not None else 'auto'}"
        )

        launch_buffers: list[DeviceBuffer | ManagedBuffer] = []
        implicit: list[HostBuffer] = []
        for dev in deviceptr:
            if not isinstance(dev, DeviceBuffer):
                raise AccError(
                    f"deviceptr clause expects device pointers, got {type(dev).__name__}"
                )
            launch_buffers.append(dev)
        for arr in arrays:
            if isinstance(arr, ManagedBuffer):
                launch_buffers.append(arr)
            elif isinstance(arr, DeviceBuffer):
                raise AccError(
                    "raw device pointers must be passed via the deviceptr clause"
                )
            else:
                entry = self.present.lookup(arr)
                if entry is not None:
                    launch_buffers.append(entry.device)
                else:
                    # implicit copy: in before the kernel, out after it
                    self._copyin_one(arr, copyout=True)
                    implicit.append(arr)
                    launch_buffers.append(self.present.device_of(arr))
        if implicit:
            self.cuda.metrics.inc("acc.implicit_copies", len(implicit))

        end = self.cuda.launch(
            kernel,
            buffers=launch_buffers,
            n_cells=n_cells,
            params=params,
            stream=stream,
            tuned_geometry=tuned,  # compiler-chosen unless geometry clauses given
            math=self.cuda.machine.math,
            after=after,
            label=label or f"acc:{kernel.name}",
        )
        for host in implicit:
            self._release_one(host)
        return end

    def kernels_construct(self, kernel: KernelSpec, **kwargs: Any) -> float:
        """``#pragma acc kernels``: same generated code, compiler-analyzed
        parallelism.  PGI maps simple tightly nested loops identically to
        ``parallel loop``, so the cost model is shared."""
        return self.parallel_loop(kernel, **kwargs)
