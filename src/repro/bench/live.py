"""Live-telemetry harness leg (``python -m repro.bench.live``).

Runs a fixed set of workload legs, each monitored end-to-end by the
:mod:`repro.obs.live` stack — a :class:`TelemetryBus` sampling on the
virtual clock, the default :class:`Watchdog` detector set, and a
:class:`FlightRecorder` ready to dump an incident — and checks the
telemetry behaves as specified:

* the four **nominal** legs (the paper's Fig. 5/6 configurations, a
  limited-slot streaming run, and the multi-GPU heat solver) must finish
  with **zero** watchdog alerts;
* each **degraded** leg (prefetch-disabled single-slot overlap collapse,
  single-slot cache thrash, a seeded launch-fault retry storm) must
  raise at least its expected alert class;
* the **incident** leg arms an always-fire h2d fault with a tiny retry
  budget, so the run dies with :class:`~repro.errors.FaultError` — and
  must leave a flight-recorder ``incident.json`` behind.

Outputs under ``--out DIR`` (default ``results/``):

* ``telemetry_<leg>.jsonl`` — each leg's full session stream (the input
  of ``python -m repro.obs.watch``);
* ``incidents_<leg>/incident*.json`` — flight-recorder dumps;
* ``live.json`` — a run manifest with per-leg ``health``, all ``alerts``
  (each annotated with its leg), and expectation verdicts;
* ``live_nominal.json`` — the same manifest restricted to the nominal
  legs, the file CI gates with ``obs.report --fail-on-alerts``.

Exit code 0 when every expectation holds, 2 otherwise.  Everything runs
on the virtual clock with fixed seeds, so the whole output set is
byte-reproducible.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..errors import FaultError
from ..faults import FaultPlan, FaultRule, RetryPolicy
from ..obs.live import FlightRecorder, TelemetryBus, Watchdog, default_detectors
from .report import Table

#: Shared grid for every leg: small enough for CI, large enough that the
#: per-window statistics clear every detector's warmup.
SHAPE = (128, 128, 128)


@dataclass(frozen=True)
class Leg:
    """One monitored workload: runner + telemetry expectations."""

    name: str
    interval: float
    run: Callable[[TelemetryBus], Any]
    #: alert classes that must appear (subset semantics); empty for
    #: nominal legs, where *any* alert is a failure
    expect_alerts: frozenset[str] = frozenset()
    nominal: bool = True
    #: error type the leg must die with (None = must finish cleanly)
    expect_error: type[BaseException] | None = None
    #: leg must leave at least one flight-recorder incident dump behind
    expect_incident: bool = False


def _legs() -> list[Leg]:
    from ..baselines.tida_runners import run_tida_compute, run_tida_heat
    from ..multi.heat import run_multi_gpu_heat

    return [
        Leg("nominal_heat", 1e-4,
            lambda t: run_tida_heat(shape=SHAPE, steps=6, n_regions=8,
                                    functional=False, telemetry=t)),
        Leg("nominal_compute", 2e-4,
            lambda t: run_tida_compute(shape=SHAPE, steps=3, n_regions=8,
                                       functional=False, telemetry=t)),
        Leg("nominal_streaming", 2e-4,
            lambda t: run_tida_compute(shape=SHAPE, steps=3, n_regions=16,
                                       n_slots=4, prefetch_depth=2,
                                       functional=False, telemetry=t)),
        Leg("nominal_multi", 1e-4,
            lambda t: run_multi_gpu_heat(shape=SHAPE, steps=4, n_devices=2,
                                         regions_per_device=4,
                                         functional=False, telemetry=t)),
        Leg("overlap_collapse", 2e-4,
            lambda t: run_tida_compute(shape=SHAPE, steps=3, n_regions=16,
                                       n_slots=1, prefetch_depth=0,
                                       functional=False, telemetry=t),
            expect_alerts=frozenset({"overlap_collapse"}), nominal=False),
        Leg("cache_thrash", 2e-4,
            lambda t: run_tida_heat(shape=SHAPE, steps=6, n_regions=8,
                                    n_slots=1, prefetch_depth=0,
                                    functional=False, telemetry=t),
            expect_alerts=frozenset({"cache_thrash"}), nominal=False),
        Leg("retry_storm", 1e-3,
            lambda t: run_tida_compute(
                shape=SHAPE, steps=3, n_regions=8,
                faults=FaultPlan.from_spec("launch:p=0.3; seed=11"),
                retry=RetryPolicy(max_attempts=6),
                functional=False, telemetry=t),
            expect_alerts=frozenset({"retry_storm"}), nominal=False),
        Leg("incident_fault", 1e-3,
            lambda t: run_tida_heat(
                shape=SHAPE, steps=2, n_regions=4,
                faults=FaultPlan([FaultRule(op="h2d")]),
                retry=RetryPolicy(max_attempts=2),
                functional=False, telemetry=t),
            nominal=False, expect_error=FaultError, expect_incident=True),
    ]


def run_leg(leg: Leg, out_dir: Path) -> dict[str, Any]:
    """Run one leg under full telemetry; returns its manifest entry."""
    jsonl = out_dir / f"telemetry_{leg.name}.jsonl"
    incident_dir = out_dir / f"incidents_{leg.name}"
    bus = TelemetryBus(sample_interval=leg.interval, jsonl=jsonl)
    bus.add_subscriber(Watchdog(default_detectors(cooldown=10 * leg.interval)))
    recorder = bus.add_subscriber(
        FlightRecorder(incident_dir=incident_dir, min_severity=None)
    )
    error: BaseException | None = None
    try:
        leg.run(bus)
    except Exception as exc:  # the incident leg dies on purpose
        error = exc
    finally:
        bus.close()

    observed = sorted({a.detector for a in bus.alerts})
    problems: list[str] = []
    if leg.nominal and bus.alerts:
        problems.append(f"nominal leg raised alerts: {observed}")
    missing = leg.expect_alerts - set(observed)
    if missing:
        problems.append(f"expected alert class(es) never fired: {sorted(missing)}")
    if leg.expect_error is None:
        if error is not None:
            problems.append(f"leg died with {type(error).__name__}: {error}")
    elif not isinstance(error, leg.expect_error):
        problems.append(
            f"expected {leg.expect_error.__name__}, got "
            f"{type(error).__name__ if error else 'no error'}"
        )
    if leg.expect_incident and not recorder.incident_paths:
        problems.append("no incident.json was dumped")

    return {
        "leg": leg.name,
        "nominal": leg.nominal,
        "sample_interval": leg.interval,
        "samples": len(bus.samples),
        "alerts": [dict(a.to_dict(), leg=leg.name) for a in bus.alerts],
        "observed_detectors": observed,
        "expected_detectors": sorted(leg.expect_alerts),
        "health": bus.health(),
        "telemetry": str(jsonl),
        "incidents": [str(p) for p in recorder.incident_paths],
        "error": type(error).__name__ if error is not None else None,
        "problems": problems,
    }


def _manifest(entries: list[dict[str, Any]]) -> dict[str, Any]:
    return {
        "schema": "repro-run-manifest/1",
        "legs": {e["leg"]: e for e in entries},
        "alerts": [a for e in entries for a in e["alerts"]],
        "health": {e["leg"]: e["health"] for e in entries},
    }


def run_live(out_dir: Path, *, echo: bool = True) -> int:
    """Run every live leg; writes manifests, returns the exit code."""
    out_dir.mkdir(parents=True, exist_ok=True)
    entries = [run_leg(leg, out_dir) for leg in _legs()]

    table = Table(
        title="live telemetry legs",
        columns=["leg", "samples", "alerts", "observed", "expected",
                 "incidents", "verdict"],
    )
    failures = 0
    for e in entries:
        ok = not e["problems"]
        failures += 0 if ok else 1
        table.add_row(
            e["leg"], e["samples"], len(e["alerts"]),
            ",".join(e["observed_detectors"]) or "-",
            ",".join(e["expected_detectors"]) or
            ("(none)" if e["nominal"] else "-"),
            len(e["incidents"]), "ok" if ok else "FAIL",
        )
    for e in entries:
        for problem in e["problems"]:
            table.add_note(f"{e['leg']}: {problem}")

    (out_dir / "live.json").write_text(
        json.dumps(_manifest(entries), indent=2, sort_keys=True) + "\n"
    )
    (out_dir / "live_nominal.json").write_text(
        json.dumps(_manifest([e for e in entries if e["nominal"]]),
                   indent=2, sort_keys=True) + "\n"
    )
    if echo:
        print(table.format())
        print(f"\nwrote live telemetry manifests to {out_dir / 'live.json'}")
    return 2 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)
    return run_live(Path(args.out))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
