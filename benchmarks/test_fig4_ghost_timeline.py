"""Figure 4: hybrid CPU/GPU ghost-cell update overlap (§IV-B.6)."""

from repro.bench import figures


def test_fig4_ghost_timeline(run_once, results_dir):
    result = run_once(figures.figure4)
    print()
    print(result.table.format())
    print(result.gantt)
    result.table.save_json(results_dir / "fig4.json")
    (results_dir / "fig4.txt").write_text(result.gantt)

    host = result.table.row_by("quantity", "host index computation")[1]
    gpu = result.table.row_by("quantity", "gpu ghost kernels")[1]
    span = result.table.row_by("quantity", "exchange span")[1]
    assert host > 0 and gpu > 0
    # Fig. 4's point: the exchange takes less time than host work + GPU
    # work back-to-back, because index computation overlaps the kernels
    assert span < host + gpu
