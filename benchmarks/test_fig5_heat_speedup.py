"""Figure 5: heat 512^3, speedup over CUDA-pageable vs iteration count (§VI-A)."""

from repro.bench import figures


def test_fig5_heat_speedup(run_once, results_dir):
    table = run_once(figures.figure5)
    print()
    print(table.format())
    table.save_json(results_dir / "fig5.json")

    by_iters = {r[0]: {"pinned": r[1], "acc": r[2], "tida": r[3]} for r in table.rows}

    # TiDA-acc wins big when transfer-dominated (1 iteration)...
    assert by_iters[1]["tida"] > by_iters[1]["pinned"] > 1.0
    assert by_iters[1]["tida"] > 2.0
    # ...and its advantage monotonically decays toward the CUDA versions
    tida_series = [by_iters[s]["tida"] for s in (1, 10, 100, 1000)]
    assert all(a >= b for a, b in zip(tida_series, tida_series[1:]))
    assert 0.7 < tida_series[-1] < 1.3  # comparable at 1000 iterations
    # OpenACC has the lowest performance of all, at every point
    for steps, row in by_iters.items():
        assert row["acc"] < row["pinned"]
        assert row["acc"] < row["tida"]
        assert row["acc"] < 1.0
