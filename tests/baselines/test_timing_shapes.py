"""Qualitative timing properties the paper's figures rest on.

These run at reduced sizes (timing-only mode) and assert orderings, not
absolute values — the same assertions the full-scale benches make.
"""

import pytest

from repro.baselines import (
    run_acc_compute,
    run_acc_heat,
    run_cuda_compute,
    run_cuda_heat,
    run_hybrid_heat,
    run_tida_compute,
    run_tida_heat,
)

SHAPE = (96, 96, 96)


class TestFig1Orderings:
    @pytest.fixture(scope="class")
    def times(self):
        out = {}
        for model, runner in (
            ("cuda", run_cuda_heat),
            ("openacc", run_acc_heat),
            ("hybrid", run_hybrid_heat),
        ):
            for memory in ("pageable", "pinned", "managed"):
                out[(model, memory)] = runner(shape=SHAPE, steps=20, memory=memory).elapsed
        return out

    @pytest.mark.parametrize("model", ["cuda", "openacc", "hybrid"])
    def test_pinned_fastest_memory(self, times, model):
        assert times[(model, "pinned")] < times[(model, "pageable")]
        assert times[(model, "pageable")] < times[(model, "managed")]

    @pytest.mark.parametrize("memory", ["pageable", "pinned", "managed"])
    def test_cuda_beats_openacc(self, times, memory):
        assert times[("cuda", memory)] < times[("openacc", memory)]

    def test_hybrid_between_cuda_and_openacc(self, times):
        assert times[("cuda", "pinned")] <= times[("hybrid", "pinned")]
        assert times[("hybrid", "pinned")] <= times[("openacc", "pinned")]


class TestFig5Shape:
    """These orderings only emerge at paper scale, where per-step compute
    dwarfs kernel-launch and ghost overhead — so they run at 512^3 with 16
    regions (timing-only mode makes that cheap)."""

    PAPER_SHAPE = (512, 512, 512)

    def test_tida_wins_at_one_iteration(self):
        base = run_cuda_heat(shape=self.PAPER_SHAPE, steps=1, memory="pageable").elapsed
        pinned = run_cuda_heat(shape=self.PAPER_SHAPE, steps=1, memory="pinned").elapsed
        tida = run_tida_heat(shape=self.PAPER_SHAPE, steps=1, n_regions=16).elapsed
        assert tida < pinned < base

    def test_speedups_converge_with_iterations(self):
        s1 = []
        for steps in (1, 300):
            base = run_cuda_heat(shape=self.PAPER_SHAPE, steps=steps, memory="pageable").elapsed
            tida = run_tida_heat(shape=self.PAPER_SHAPE, steps=steps, n_regions=16).elapsed
            s1.append(base / tida)
        assert s1[0] > 1.5          # clear win when transfer-dominated
        assert s1[1] < s1[0]        # advantage shrinks as compute amortizes
        assert 0.7 < s1[1] < 1.3    # comparable at many iterations

    def test_openacc_lowest(self):
        base = run_cuda_heat(shape=self.PAPER_SHAPE, steps=100, memory="pageable").elapsed
        acc = run_acc_heat(shape=self.PAPER_SHAPE, steps=100, memory="pageable").elapsed
        tida = run_tida_heat(shape=self.PAPER_SHAPE, steps=100, n_regions=16).elapsed
        assert acc > base
        assert acc > tida


class TestFig6Shape:
    def test_math_codegen_ordering(self):
        kw = dict(shape=SHAPE, steps=10, kernel_iteration=16)
        cuda = run_cuda_compute(variant="pageable", **kw).elapsed
        fast = run_cuda_compute(variant="pinned-fastmath", **kw).elapsed
        acc = run_acc_compute(memory="pageable", **kw).elapsed
        tida = run_tida_compute(n_regions=8, **kw).elapsed
        assert fast < cuda
        assert acc < cuda
        assert tida < cuda

    def test_tida_adds_no_overhead_vs_acc(self):
        kw = dict(shape=SHAPE, steps=10, kernel_iteration=16)
        acc = run_acc_compute(memory="pageable", **kw).elapsed
        tida = run_tida_compute(n_regions=8, **kw).elapsed
        assert tida <= acc * 1.05


class TestFig7Fig8Shape:
    N_REGIONS = 8

    def _limit(self):
        region_bytes = (SHAPE[0] * SHAPE[1] * SHAPE[2] // self.N_REGIONS) * 8
        return 2 * region_bytes + region_bytes // 2

    def test_limited_memory_no_performance_loss(self):
        kw = dict(shape=SHAPE, steps=30, n_regions=self.N_REGIONS, kernel_iteration=48)
        full = run_tida_compute(**kw).elapsed
        limited = run_tida_compute(device_memory_limit=self._limit(), **kw).elapsed
        assert limited <= full * 1.05

    def test_limited_memory_uses_two_slots(self):
        r = run_tida_compute(shape=SHAPE, steps=2, n_regions=self.N_REGIONS,
                             device_memory_limit=self._limit())
        assert r.meta["n_slots"] == 2

    def test_full_transfer_overlap(self):
        r = run_tida_compute(shape=SHAPE, steps=5, n_regions=self.N_REGIONS,
                             kernel_iteration=48, device_memory_limit=self._limit())
        assert r.trace.overlap_fraction(["h2d", "d2h"], ["compute"]) > 0.9

    def test_one_region_no_overhead(self):
        kw = dict(shape=SHAPE, steps=30, kernel_iteration=48)
        one = run_tida_compute(n_regions=1, **kw).elapsed
        many = run_tida_compute(n_regions=self.N_REGIONS, **kw).elapsed
        assert abs(one - many) / many < 0.05

    def test_cuda_cannot_run_limited_case(self):
        """The paper's point: plain CUDA OOMs where TiDA-acc streams."""
        from repro.config import k40m_pcie3
        from repro.errors import CudaMemoryAllocationError
        machine = k40m_pcie3()
        with pytest.raises(CudaMemoryAllocationError):
            run_cuda_compute(machine.with_gpu_memory(self._limit(), reserved_bytes=0),
                             shape=SHAPE, steps=1, variant="pinned")


class TestTransferCounts:
    def test_resident_run_transfers_once(self):
        """1000-step resident run must not re-transfer regions each step."""
        r = run_tida_compute(shape=(32, 32, 32), steps=50, n_regions=4)
        h2d = len(r.trace.by_category("h2d"))
        d2h = len(r.trace.by_category("d2h"))
        assert h2d == 4      # one upload per region
        assert d2h == 4      # one download per region at the end

    def test_streaming_run_transfers_each_step(self):
        r = run_tida_compute(shape=(32, 32, 32), steps=10, n_regions=4, n_slots=1)
        h2d = len(r.trace.by_category("h2d"))
        assert h2d == 4 * 10
