"""Operation trace: the raw material for timeline figures and overlap metrics.

Every operation the runtime schedules (transfers, kernels, host-side index
computation, synchronization waits) is recorded as a :class:`TraceEvent`.
From the trace we derive:

* the end-to-end span of an experiment (what the paper's timing loops
  measure);
* per-lane busy time and the **overlap fraction** between copy engines and
  the compute engine — the quantity Figs. 3 and 7 illustrate;
* an ASCII Gantt chart that regenerates the shape of Figs. 3, 4 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..errors import SimulationError

#: Event categories used by the runtime.
CATEGORIES = ("h2d", "d2h", "kernel", "host", "sync")


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled operation.

    ``lane`` is the resource the operation occupied (engine name, or
    ``"host"``); ``stream`` is the CUDA stream id it was issued to (or
    ``None`` for host work); ``nbytes`` is the payload for transfers.
    """

    name: str
    category: str
    lane: str
    start: float
    end: float
    stream: int | None = None
    nbytes: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(f"event {self.name!r} ends before it starts")
        if self.category not in CATEGORIES:
            raise SimulationError(
                f"unknown category {self.category!r}; expected one of {CATEGORIES}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Append-only record of scheduled operations.

    Besides the span events, a trace can carry two observability
    side-channels that never affect the timing metrics:

    * **counter samples** (:meth:`record_counter`) — time series such as
      per-engine queue depth or slot-cache occupancy, exported to
      Perfetto as counter tracks (``ph: "C"``);
    * **decision marks** (:meth:`mark`) — instant events recording a
      scheduling decision (cache hit, eviction, skipped write-back) with
      structured args, exported as instant events (``ph: "i"``).
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._counters: dict[str, list[tuple[float, float]]] = {}
        self._marks: list[dict[str, Any]] = []

    def add(self, event: TraceEvent) -> TraceEvent:
        self._events.append(event)
        return event

    def record(
        self,
        name: str,
        category: str,
        lane: str,
        start: float,
        end: float,
        *,
        stream: int | None = None,
        nbytes: int = 0,
        **meta: Any,
    ) -> TraceEvent:
        return self.add(
            TraceEvent(
                name=name,
                category=category,
                lane=lane,
                start=start,
                end=end,
                stream=stream,
                nbytes=nbytes,
                meta=meta,
            )
        )

    def record_counter(self, track: str, ts: float, value: float) -> None:
        """Append one sample to counter track ``track`` at time ``ts``."""
        if ts < 0:
            raise SimulationError(f"counter sample time must be >= 0, got {ts!r}")
        self._counters.setdefault(track, []).append((ts, value))

    def mark(self, name: str, ts: float, **args: Any) -> None:
        """Record an instant decision event (evict/hit/skip) at ``ts``."""
        if ts < 0:
            raise SimulationError(f"mark time must be >= 0, got {ts!r}")
        self._marks.append({"name": name, "ts": ts, "args": args})

    @property
    def counter_tracks(self) -> dict[str, list[tuple[float, float]]]:
        return {track: list(samples) for track, samples in self._counters.items()}

    @property
    def marks(self) -> tuple[dict[str, Any], ...]:
        return tuple(self._marks)

    @property
    def n_marks(self) -> int:
        return len(self._marks)

    def marks_since(self, start: int) -> list[dict[str, Any]]:
        """Marks recorded at index ``start`` or later (incremental reads).

        Lets a periodic sampler consume new marks in O(new) instead of
        copying the whole mark list via :attr:`marks` every sample.
        """
        if start < 0:
            start = 0
        return self._marks[start:]

    @property
    def last_event(self) -> TraceEvent | None:
        """The most recently recorded span event (None for an empty trace)."""
        return self._events[-1] if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self._events if predicate(e)]

    def by_category(self, *categories: str) -> list[TraceEvent]:
        wanted = set(categories)
        return [e for e in self._events if e.category in wanted]

    def by_lane(self, lane: str) -> list[TraceEvent]:
        return [e for e in self._events if e.lane == lane]

    def lanes(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self._events:
            seen.setdefault(e.lane, None)
        return list(seen)

    # -- metrics ----------------------------------------------------------

    def span(self) -> float:
        """End-to-end duration covered by the trace."""
        if not self._events:
            return 0.0
        start = min(e.start for e in self._events)
        end = max(e.end for e in self._events)
        return end - start

    def busy_time(self, lane: str) -> float:
        """Total time ``lane`` had at least one event in flight.

        Intervals are merged before summing: FIFO engine lanes never
        overlap so this equals the plain sum there, but the ``"host"``
        lane is not an engine — host work recorded from different layers
        may overlap, and summing durations would double-count it (and
        skew :meth:`overlap_fraction` denominators).
        """
        merged = self._merge_intervals(
            [(e.start, e.end) for e in self._events if e.lane == lane]
        )
        return sum(hi - lo for lo, hi in merged)

    @staticmethod
    def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
        if not intervals:
            return []
        intervals = sorted(intervals)
        merged = [intervals[0]]
        for lo, hi in intervals[1:]:
            last_lo, last_hi = merged[-1]
            if lo <= last_hi:
                merged[-1] = (last_lo, max(last_hi, hi))
            else:
                merged.append((lo, hi))
        return merged

    def overlap_time(self, lanes_a: Iterable[str], lanes_b: Iterable[str]) -> float:
        """Total time during which some lane in ``lanes_a`` AND some lane in
        ``lanes_b`` were simultaneously busy.

        ``overlap_time({"compute"}, {"h2d", "d2h"})`` is the transfer time
        the pipeline successfully hid behind computation.
        """
        set_a, set_b = set(lanes_a), set(lanes_b)
        ivs_a = self._merge_intervals(
            [(e.start, e.end) for e in self._events if e.lane in set_a and e.duration > 0]
        )
        ivs_b = self._merge_intervals(
            [(e.start, e.end) for e in self._events if e.lane in set_b and e.duration > 0]
        )
        total = 0.0
        i = j = 0
        while i < len(ivs_a) and j < len(ivs_b):
            lo = max(ivs_a[i][0], ivs_b[j][0])
            hi = min(ivs_a[i][1], ivs_b[j][1])
            if hi > lo:
                total += hi - lo
            if ivs_a[i][1] <= ivs_b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def overlap_fraction(self, transfer_lanes: Iterable[str], compute_lanes: Iterable[str]) -> float:
        """Fraction of transfer time hidden behind compute (0 when no transfers)."""
        transfer_lanes = list(transfer_lanes)
        transfer = sum(self.busy_time(lane) for lane in transfer_lanes)
        if transfer == 0.0:
            return 0.0
        return self.overlap_time(transfer_lanes, compute_lanes) / transfer

    # -- rendering --------------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """Plain-dict rows, convenient for JSON dumps and table printing."""
        return [
            {
                "name": e.name,
                "category": e.category,
                "lane": e.lane,
                "stream": e.stream,
                "start": e.start,
                "end": e.end,
                "duration": e.duration,
                "nbytes": e.nbytes,
                **({"meta": e.meta} if e.meta else {}),
            }
            for e in self._events
        ]

    @staticmethod
    def _us(seconds: float) -> float:
        """Microseconds quantized to a picosecond grid.

        ``round(·, 6)`` pins emitted timestamps to exact multiples of
        1e-6 µs, so ``from_chrome_trace``'s ÷1e6 followed by a re-save's
        ×1e6 lands back on the same grid point: save → load → save is
        byte-stable instead of drifting by an ulp per cycle.
        """
        return round(seconds * 1e6, 6)

    def to_chrome_trace(self) -> list[dict[str, Any]]:
        """Chrome/Perfetto trace-event format (``chrome://tracing``).

        Lanes map to thread ids within one process; times are emitted in
        microseconds as complete ('X') events, so a timing-only simulation
        can be inspected with standard profiling UIs.
        """
        lane_tids = {lane: tid for tid, lane in enumerate(self.lanes())}
        events = []
        for e in self._events:
            events.append(
                {
                    "name": e.name,
                    "cat": e.category,
                    "ph": "X",
                    "ts": self._us(e.start),
                    "dur": self._us(e.duration),
                    "pid": 0,
                    "tid": lane_tids[e.lane],
                    "args": {
                        **({"stream": e.stream} if e.stream is not None else {}),
                        **({"nbytes": e.nbytes} if e.nbytes else {}),
                        **e.meta,
                    },
                }
            )
        # thread-name metadata so the UI labels lanes
        for lane, tid in lane_tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        # counter tracks (queue depth, cache occupancy) render as
        # Perfetto counters alongside the lanes
        for track in sorted(self._counters):
            for ts, value in self._counters[track]:
                events.append(
                    {
                        "name": track,
                        "ph": "C",
                        "ts": self._us(ts),
                        "pid": 0,
                        "args": {"value": value},
                    }
                )
        # decision marks land on a dedicated pseudo-thread
        if self._marks:
            mark_tid = len(lane_tids)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": mark_tid,
                    "args": {"name": "decisions"},
                }
            )
            for m in self._marks:
                events.append(
                    {
                        "name": m["name"],
                        "cat": "decision",
                        "ph": "i",
                        "s": "t",
                        "ts": self._us(m["ts"]),
                        "pid": 0,
                        "tid": mark_tid,
                        "args": dict(m["args"]),
                    }
                )
        return events

    @classmethod
    def from_chrome_trace(cls, events: list[dict[str, Any]]) -> "Trace":
        """Rebuild a trace from :meth:`to_chrome_trace` output.

        Accepts any Chrome trace-event list: lanes come from the
        ``thread_name`` metadata, span events from ``ph: "X"`` entries,
        counter samples from ``ph: "C"``, and decision marks from
        ``ph: "i"`` on the ``decisions`` pseudo-thread.  Events with a
        category this runtime never emits are kept under ``"host"`` so
        foreign traces still load.
        """
        trace = cls()
        tid_lanes: dict[Any, str] = {}
        for e in events:
            if e.get("ph") == "M" and e.get("name") == "thread_name":
                tid_lanes[e.get("tid")] = e.get("args", {}).get("name", f"tid{e.get('tid')}")
        for e in events:
            ph = e.get("ph")
            if ph == "X":
                args = dict(e.get("args", {}))
                stream = args.pop("stream", None)
                nbytes = args.pop("nbytes", 0)
                category = e.get("cat", "host")
                start = e.get("ts", 0.0) / 1e6
                trace.record(
                    e.get("name", "?"),
                    category if category in CATEGORIES else "host",
                    tid_lanes.get(e.get("tid"), f"tid{e.get('tid')}"),
                    start,
                    start + e.get("dur", 0.0) / 1e6,
                    stream=stream,
                    nbytes=nbytes,
                    **args,
                )
            elif ph == "C":
                trace.record_counter(
                    e.get("name", "?"),
                    e.get("ts", 0.0) / 1e6,
                    e.get("args", {}).get("value", 0.0),
                )
            elif ph == "i":
                trace.mark(
                    e.get("name", "?"), e.get("ts", 0.0) / 1e6, **e.get("args", {})
                )
        return trace

    def save_chrome_trace(self, path: str) -> str:
        """Write :meth:`to_chrome_trace` JSON to ``path``; returns the path."""
        import json
        from pathlib import Path

        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps({"traceEvents": self.to_chrome_trace()}))
        return str(p)

    def gantt(self, *, width: int = 100, lanes: list[str] | None = None) -> str:
        """Render an ASCII Gantt chart (one row per lane).

        The symbols distinguish categories: ``#`` kernels, ``<`` H2D, ``>``
        D2H, ``:`` host work, ``.`` sync waits.  This is how the benches
        regenerate Figs. 3 and 7.
        """
        if width < 10:
            raise SimulationError("gantt width must be >= 10")
        if not self._events:
            return "(empty trace)"
        t0 = min(e.start for e in self._events)
        t1 = max(e.end for e in self._events)
        span = max(t1 - t0, 1e-30)
        symbols = {"kernel": "#", "h2d": "<", "d2h": ">", "host": ":", "sync": "."}
        lane_names = lanes if lanes is not None else self.lanes()
        label_w = max((len(name) for name in lane_names), default=4) + 1
        # pad the ruler from the rendered span label so long labels
        # (e.g. "0.0001234s") keep the header box exactly `width` wide
        span_label = f"{span:.4g}s"
        pad = max(width - len("0.0s") - len(span_label), 1)
        lines = [
            f"{'':<{label_w}}|0.0s{' ' * pad}{span_label}|"
        ]
        for lane in lane_names:
            row = [" "] * width
            for e in self._events:
                if e.lane != lane or e.duration <= 0:
                    continue
                lo = int((e.start - t0) / span * (width - 1))
                hi = int((e.end - t0) / span * (width - 1))
                sym = symbols.get(e.category, "?")
                for k in range(lo, max(hi, lo + 1)):
                    if 0 <= k < width:
                        row[k] = sym
            lines.append(f"{lane:<{label_w}}|{''.join(row)}|")
        lines.append(
            f"{'':<{label_w}} legend: # kernel   < H2D   > D2H   : host   . sync"
        )
        return "\n".join(lines)
