"""Tests for the live session viewer CLI (repro.obs.watch)."""

import io
import json

from repro.cuda.runtime import CudaRuntime
from repro.obs.live import TelemetryBus
from repro.obs.watch import main, parse_session, render, watch


def make_session(tmp_path, tiny_machine, *, alerts=False):
    path = tmp_path / "session.jsonl"
    bus = TelemetryBus(sample_interval=1e-3, jsonl=path)
    rt = CudaRuntime(tiny_machine, telemetry=bus)
    host = rt.malloc_pinned((256, 256))
    dev = rt.malloc((256, 256))
    for _ in range(4):
        rt.memcpy_async(dev, host, rt.default_stream)
        rt.device_synchronize()
    if alerts:
        from repro.obs.live.watchdog import Alert

        bus.publish_alert(Alert(detector="stub", severity="warning", t=rt.now,
                                window=(0.0, rt.now), message="stub"))
        bus.notify_incident("fault", error=RuntimeError("boom"))
    bus.close()
    return path


class TestOneShot:
    def test_renders_panels(self, tmp_path, tiny_machine, capsys):
        path = make_session(tmp_path, tiny_machine)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "health=ok" in out
        assert "recent samples" in out
        assert "alerts (0)" in out

    def test_alerts_and_incidents_shown(self, tmp_path, tiny_machine, capsys):
        path = make_session(tmp_path, tiny_machine, alerts=True)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "health=CRITICAL" in out
        assert "stub" in out
        assert "incident: kind=fault" in out

    def test_last_bounds_sample_rows(self, tmp_path, tiny_machine, capsys):
        path = make_session(tmp_path, tiny_machine)
        assert main([str(path), "--last", "2"]) == 0
        assert "last 2 of" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_telemetry_file_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\nnot json\n")
        assert main([str(path)]) == 2
        assert "not a telemetry session" in capsys.readouterr().err


class TestFollow:
    def test_redraws_as_file_grows(self, tmp_path, tiny_machine):
        path = make_session(tmp_path, tiny_machine)
        stream = io.StringIO()
        rc = watch(path, follow=True, poll=0.0, last=4, stream=stream,
                   max_redraws=2)
        assert rc == 0
        # ANSI clear between redraws marks the follow mode
        assert "\x1b[2J" in stream.getvalue()


class TestParseSession:
    def test_tolerates_torn_writes(self):
        records = parse_session([
            json.dumps({"kind": "session", "sample_interval": 1e-3, "t0": 0.0}),
            '{"kind": "sample", "t": 0.001',  # torn mid-write
            "",
        ])
        assert len(records["session"]) == 1
        assert len(records["invalid"]) == 1
        assert "invalid_lines=1" in render(records)


def make_service_session(tmp_path, *, burning=False):
    """A hand-built repro-service-session/1 stream (+ optional SLO marks)."""
    path = tmp_path / "service.jsonl"
    lines = [
        {"kind": "header", "schema": "repro-service-session/1", "t": 0.0},
        {"kind": "tenant", "t": 0.0, "tenant": "a", "weight": 2.0},
        {"kind": "tenant", "t": 0.0, "tenant": "b", "weight": 1.0},
        {"kind": "submit", "t": 0.0, "tenant": "a", "job": "a.j0"},
        {"kind": "submit", "t": 0.0, "tenant": "b", "job": "b.j0"},
        {"kind": "admit", "t": 1e-5, "tenant": "a", "job": "a.j0"},
        {"kind": "admit", "t": 2e-5, "tenant": "b", "job": "b.j0"},
        {"kind": "finish", "t": 1e-3, "tenant": "a", "job": "a.j0",
         "latency": 1e-3, "quanta": 3, "degraded": False, "shed": 0},
    ]
    if burning:
        lines.append({"kind": "burn", "t": 2e-3, "tenant": "b",
                      "state": "start", "fast": 10.0, "slow": 5.0})
    path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
    return path


class TestServiceSession:
    def test_renders_tenant_table(self, tmp_path, capsys):
        path = make_service_session(tmp_path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "service tenants" in out
        assert "backlog" in out
        # tenant a finished its job; tenant b still has backlog 1
        rows = [l for l in out.splitlines() if l.startswith(("a ", "b "))]
        assert any(l.split()[0] == "a" and " 0 " in l for l in rows)

    def test_burn_marks_light_the_burning_column(self, tmp_path, capsys):
        path = make_service_session(tmp_path, burning=True)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "BURNING" in out
        assert "SLO budgets burning: b" in out

    def test_status_line_tracks_service_time(self, tmp_path, capsys):
        path = make_service_session(tmp_path, burning=False)
        assert main([str(path)]) == 0
        # latest event is the finish at t=1e-3
        assert "t=0.001s" in capsys.readouterr().out

    def test_pure_service_stream_skips_samples_panel(self, tmp_path, capsys):
        path = make_service_session(tmp_path)
        assert main([str(path)]) == 0
        assert "recent samples" not in capsys.readouterr().out

    def test_combined_stream_shows_both_panels(self, tmp_path, tiny_machine,
                                               capsys):
        telem = make_session(tmp_path, tiny_machine)
        service = make_service_session(tmp_path)
        combined = tmp_path / "combined.jsonl"
        combined.write_text(telem.read_text() + service.read_text())
        assert main([str(combined)]) == 0
        out = capsys.readouterr().out
        assert "service tenants" in out
        assert "recent samples" in out
