"""Hardware specifications and calibration constants for the simulated testbed.

The paper's evaluation ran on an Intel Xeon E5-2695 v2 host with an NVIDIA
Tesla K40m over PCIe Gen3 x16, compiled with PGI 17.1 (OpenACC) and NVCC
7.5.  None of that hardware is available here, so every performance-relevant
property of that testbed is captured as an explicit constant in this module
and consumed by the virtual-time runtime.  Each constant is
order-of-magnitude faithful and sourced either from vendor datasheets or
from well-known measured behaviour of that hardware generation; the goal is
to reproduce the *shape* of the paper's figures (orderings, crossovers,
rough factors), not absolute milliseconds.

All times are seconds, sizes are bytes, rates are per-second.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

GiB = 1024 ** 3
MiB = 1024 ** 2
KiB = 1024


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def _require_fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ConfigError(f"{name} must be in (0, 1], got {value!r}")


@dataclass(frozen=True)
class LinkSpec:
    """Host↔device interconnect model (PCIe or NVLink).

    ``pageable_bandwidth_factor`` models the extra staging copy CUDA makes
    through an internal pinned buffer when the user buffer is pageable
    (paper §II-B): the achievable bandwidth roughly halves.
    ``pageable_async_is_sync`` captures the documented CUDA behaviour that
    ``cudaMemcpyAsync`` on pageable memory is synchronous with respect to
    the host and cannot overlap with kernels.
    """

    name: str
    h2d_bandwidth: float      # bytes/s, pinned host memory
    d2h_bandwidth: float      # bytes/s, pinned host memory
    latency: float            # per-transfer fixed cost, seconds
    pageable_bandwidth_factor: float = 0.52
    pageable_async_is_sync: bool = True

    def __post_init__(self) -> None:
        _require_positive("h2d_bandwidth", self.h2d_bandwidth)
        _require_positive("d2h_bandwidth", self.d2h_bandwidth)
        if self.latency < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency!r}")
        _require_fraction("pageable_bandwidth_factor", self.pageable_bandwidth_factor)

    def transfer_time(self, nbytes: int, *, direction: str, pinned: bool) -> float:
        """Duration of a single transfer of ``nbytes`` in ``direction``.

        ``direction`` is ``"h2d"`` or ``"d2h"``. Zero-byte transfers still
        pay the latency (a real ``cudaMemcpy`` of 0 bytes is not free).
        """
        if nbytes < 0:
            raise ConfigError(f"nbytes must be >= 0, got {nbytes}")
        if direction == "h2d":
            bandwidth = self.h2d_bandwidth
        elif direction == "d2h":
            bandwidth = self.d2h_bandwidth
        else:
            raise ConfigError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        if not pinned:
            bandwidth *= self.pageable_bandwidth_factor
        return self.latency + nbytes / bandwidth


@dataclass(frozen=True)
class MathModel:
    """Cost of double-precision special functions, in FMA-flop equivalents.

    The paper's compute-intensive kernel (Fig. 6) is dominated by
    ``sin``/``cos``/``sqrt``.  Three code-generation paths appear in the
    evaluation: NVCC + CUDA libm (slowest), PGI's math code generation
    (used by both the OpenACC and TiDA-acc builds; noticeably faster), and
    NVCC with ``--use_fast_math`` (comparable to PGI).  We express each as
    a flop-equivalent cost per call so the kernel duration model can fold
    them into the compute-throughput term.
    """

    name: str
    sin_cost: float
    cos_cost: float
    sqrt_cost: float

    def __post_init__(self) -> None:
        for attr in ("sin_cost", "cos_cost", "sqrt_cost"):
            _require_positive(attr, getattr(self, attr))


#: NVCC 7.5 + CUDA libm double-precision special functions (polynomial +
#: range reduction in software; slow on Kepler).
CUDA_LIBM = MathModel(name="cuda-libm", sin_cost=34.0, cos_cost=34.0, sqrt_cost=16.0)
#: PGI 17.1 generated math (paper observed it faster than CUDA libm).
PGI_MATH = MathModel(name="pgi-math", sin_cost=19.0, cos_cost=19.0, sqrt_cost=9.0)
#: NVCC ``--use_fast_math`` (lower precision, comparable to PGI path).
CUDA_FASTMATH = MathModel(name="cuda-fastmath", sin_cost=17.0, cos_cost=17.0, sqrt_cost=8.0)


@dataclass(frozen=True)
class GpuSpec:
    """Simulated discrete GPU (default: Tesla K40m, GK110B).

    ``untuned_geometry_efficiency`` models the paper's §II-C observation
    that letting the OpenACC compiler pick grid/block geometry loses some
    performance versus hand-tuned CUDA launches.

    The managed-memory constants model Kepler-era unified memory (CUDA
    6-8): on kernel launch the driver migrates every touched managed
    allocation wholesale at a fraction of pinned bandwidth and adds a
    per-launch bookkeeping cost; host access after a kernel migrates data
    back the same way.
    """

    name: str
    memory_bytes: int                  # total device memory
    reserved_bytes: int                # runtime/context reservation (not allocatable)
    dp_flops: float                    # achievable double-precision flop/s
    mem_bandwidth: float               # achievable device-memory bytes/s
    kernel_launch_overhead: float      # host-side cost + device launch latency, s
    copy_engines: int = 2              # K40m has dual copy engines (H2D + D2H)
    concurrent_kernels: bool = False   # one grid at a time (each launch saturates)
    untuned_geometry_efficiency: float = 0.85
    managed_bandwidth_factor: float = 0.30
    managed_launch_overhead: float = 100e-6

    def __post_init__(self) -> None:
        _require_positive("memory_bytes", self.memory_bytes)
        if self.reserved_bytes < 0 or self.reserved_bytes >= self.memory_bytes:
            raise ConfigError(
                f"reserved_bytes must be in [0, memory_bytes), got {self.reserved_bytes!r}"
            )
        _require_positive("dp_flops", self.dp_flops)
        _require_positive("mem_bandwidth", self.mem_bandwidth)
        _require_positive("kernel_launch_overhead", self.kernel_launch_overhead)
        if self.copy_engines not in (1, 2):
            raise ConfigError(f"copy_engines must be 1 or 2, got {self.copy_engines!r}")
        _require_fraction("untuned_geometry_efficiency", self.untuned_geometry_efficiency)
        _require_fraction("managed_bandwidth_factor", self.managed_bandwidth_factor)

    @property
    def allocatable_bytes(self) -> int:
        """Device memory available to the application (total minus reserved)."""
        return self.memory_bytes - self.reserved_bytes

    def kernel_time(
        self,
        *,
        bytes_moved: float,
        flops: float,
        tuned_geometry: bool = True,
    ) -> float:
        """Roofline duration of one kernel body (excluding launch overhead).

        A kernel is limited by whichever of device-memory traffic or
        arithmetic dominates; untuned (compiler-chosen) geometry scales the
        whole body down by ``untuned_geometry_efficiency``.
        """
        mem_time, flop_time = self.kernel_time_components(
            bytes_moved=bytes_moved, flops=flops, tuned_geometry=tuned_geometry,
        )
        return max(mem_time, flop_time)

    def kernel_time_components(
        self,
        *,
        bytes_moved: float,
        flops: float,
        tuned_geometry: bool = True,
    ) -> tuple[float, float]:
        """The two roofline legs ``(mem_time, flop_time)`` of one kernel body.

        ``kernel_time`` is their max.  Exposing the legs separately lets
        the DAG replayer (:mod:`repro.obs.critpath`) rescale each leg by
        the perturbed machine's bandwidth/flops ratio and re-take the max
        — reproducing the exact duration a re-simulation would compute,
        including roofline crossovers.  Geometry efficiency is folded
        into *both* legs so the max still equals the body duration.
        """
        if bytes_moved < 0 or flops < 0:
            raise ConfigError("bytes_moved and flops must be >= 0")
        mem_time = bytes_moved / self.mem_bandwidth
        flop_time = flops / self.dp_flops
        if not tuned_geometry:
            mem_time /= self.untuned_geometry_efficiency
            flop_time /= self.untuned_geometry_efficiency
        return mem_time, flop_time


@dataclass(frozen=True)
class CpuSpec:
    """Simulated host CPU (default: Xeon E5-2695 v2, 12C Ivy Bridge-EP).

    ``ghost_index_rate`` is the rate at which the host computes ghost-cell
    source/destination index sets in the hybrid update of §IV-B.6 — the
    work the CPU performs while the GPU runs copy kernels (Fig. 4).
    """

    name: str
    dp_flops: float
    mem_bandwidth: float
    api_call_overhead: float       # cost of one runtime API call on the host, s
    ghost_index_rate: float        # ghost indices computed per second
    llc_bytes: int = 30 * 1024 * 1024   # last-level cache (E5-2695v2: 30 MB L3)

    def __post_init__(self) -> None:
        _require_positive("dp_flops", self.dp_flops)
        _require_positive("mem_bandwidth", self.mem_bandwidth)
        _require_positive("api_call_overhead", self.api_call_overhead)
        _require_positive("ghost_index_rate", self.ghost_index_rate)
        _require_positive("llc_bytes", self.llc_bytes)

    def kernel_time(
        self,
        *,
        bytes_moved: float,
        flops: float,
        spill_bytes: float = 0.0,
        working_set_bytes: float | None = None,
    ) -> float:
        """Roofline duration of a loop nest executed on the host.

        TiDA's original multicore rationale (§IV-A: "pick a tile size to
        enable cache reuse"): when the loop's working set exceeds the
        last-level cache, stencil neighbours fall out between row sweeps
        and ``spill_bytes`` of extra DRAM traffic per iteration apply.
        Tiles sized to fit keep the reuse in cache and pay only the
        compulsory ``bytes_moved``.
        """
        if bytes_moved < 0 or flops < 0 or spill_bytes < 0:
            raise ConfigError("bytes_moved, flops and spill_bytes must be >= 0")
        traffic = bytes_moved
        if working_set_bytes is not None and working_set_bytes > self.llc_bytes:
            traffic += spill_bytes
        return max(traffic / self.mem_bandwidth, flops / self.dp_flops)


@dataclass(frozen=True)
class MachineSpec:
    """A complete simulated testbed: host CPU + GPU + interconnect."""

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    link: LinkSpec
    math: MathModel = field(default=PGI_MATH)

    def with_gpu_memory(self, memory_bytes: int, *, reserved_bytes: int | None = None) -> "MachineSpec":
        """A copy of this machine with a different device-memory size.

        Used by the limited-memory experiments (Fig. 7/8): the paper limits
        the GPU memory so only two regions fit.
        """
        gpu = replace(
            self.gpu,
            memory_bytes=memory_bytes,
            reserved_bytes=self.gpu.reserved_bytes if reserved_bytes is None else reserved_bytes,
        )
        return replace(self, gpu=gpu)

    def with_math(self, math: MathModel) -> "MachineSpec":
        return replace(self, math=math)

    def with_link(self, link: LinkSpec) -> "MachineSpec":
        return replace(self, link=link)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

PCIE_GEN3_X16 = LinkSpec(
    name="pcie-gen3-x16",
    # Measured pinned bandwidths on Gen3 x16 are ~10-11 GB/s H2D and
    # slightly lower D2H; pageable staging roughly halves both.
    h2d_bandwidth=10.5e9,
    d2h_bandwidth=10.0e9,
    latency=10e-6,
    pageable_bandwidth_factor=0.52,
    pageable_async_is_sync=True,
)

NVLINK_1 = LinkSpec(
    name="nvlink-1.0",
    # Paper intro: NVLink allows "at least 5 times faster transfer speed
    # than the current PCIe Gen3".
    h2d_bandwidth=5 * 10.5e9,
    d2h_bandwidth=5 * 10.0e9,
    latency=5e-6,
    pageable_bandwidth_factor=0.52,
    pageable_async_is_sync=True,
)

XEON_E5_2695_V2 = CpuSpec(
    name="xeon-e5-2695v2",
    # 12 cores x 2.4 GHz x 8 DP flops/cycle peak ~= 230 GF; stencils are
    # memory bound so the bandwidth term dominates in practice.
    dp_flops=230e9,
    mem_bandwidth=45e9,
    api_call_overhead=2e-6,
    # Index-set computation builds face correspondence descriptors (bounds
    # and strides), touching only O(perimeter) metadata per face; expressed
    # as an effective per-ghost-cell rate it is far above the copy rate.
    ghost_index_rate=2e10,
)

TESLA_K40M = GpuSpec(
    name="tesla-k40m",
    memory_bytes=12 * GiB,
    reserved_bytes=512 * MiB,
    # Datasheet: 1.43 DP TFlop/s, 288 GB/s GDDR5 peak; ~80% achievable.
    dp_flops=1.43e12,
    mem_bandwidth=235e9,
    kernel_launch_overhead=8e-6,
    copy_engines=2,
    untuned_geometry_efficiency=0.85,
    managed_bandwidth_factor=0.30,
    managed_launch_overhead=100e-6,
)

TESLA_P100 = GpuSpec(
    name="tesla-p100",
    memory_bytes=16 * GiB,
    reserved_bytes=512 * MiB,
    # Pascal: 5.3 DP TFlop/s (paper intro cites ~5 TF), 732 GB/s HBM2 peak.
    dp_flops=4.7e12,
    mem_bandwidth=550e9,
    kernel_launch_overhead=6e-6,
    copy_engines=2,
    untuned_geometry_efficiency=0.85,
    # Pascal has hardware page faulting; still far below pinned copies.
    managed_bandwidth_factor=0.45,
    managed_launch_overhead=60e-6,
)


def k40m_pcie3(math: MathModel = PGI_MATH) -> MachineSpec:
    """The paper's testbed: Xeon E5-2695 v2 + Tesla K40m over PCIe Gen3."""
    return MachineSpec(name="k40m-pcie3", cpu=XEON_E5_2695_V2, gpu=TESLA_K40M, link=PCIE_GEN3_X16, math=math)


def p100_nvlink(math: MathModel = PGI_MATH) -> MachineSpec:
    """A Pascal-generation variant with NVLink (ablation A2)."""
    return MachineSpec(name="p100-nvlink", cpu=XEON_E5_2695_V2, gpu=TESLA_P100, link=NVLINK_1, math=math)


DEFAULT_MACHINE = k40m_pcie3()
