"""Ablation A5: multi-GPU strong scaling (the §VII direction, XACC/dCUDA)."""

from repro.bench.report import Table
from repro.multi import run_multi_gpu_heat


def run_scaling(shape=(512, 512, 512), steps=100, devices=(1, 2, 4, 8)) -> Table:
    table = Table(
        title=f"Ablation A5: multi-GPU strong scaling, heat {shape}, {steps} steps",
        columns=["n_devices", "seconds", "speedup", "efficiency"],
    )
    base = None
    for nd in devices:
        r = run_multi_gpu_heat(shape=shape, steps=steps, n_devices=nd,
                               regions_per_device=8)
        if base is None:
            base = r.elapsed
        speedup = base / r.elapsed
        table.add_row(nd, r.elapsed, speedup, speedup / nd)
    table.add_note("halos move as pack -> cudaMemcpyPeerAsync -> unpack chains")
    return table


def test_ablation_multi_gpu(run_once, results_dir):
    table = run_once(run_scaling)
    print()
    print(table.format())
    table.save_json(results_dir / "ablation_a5.json")

    seconds = table.column("seconds")
    speedups = table.column("speedup")
    # monotone gains up to 4 devices, and 2 devices buy a real improvement
    assert seconds[1] < seconds[0] and seconds[2] < seconds[1]
    assert speedups[1] > 1.4
    # efficiency decays with device count (halo + host-issue overheads);
    # at 8 devices those overheads can even reverse the gain — an honest
    # scaling wall this harness surfaces rather than hides
    eff = table.column("efficiency")
    assert all(a >= b - 1e-9 for a, b in zip(eff, eff[1:]))
