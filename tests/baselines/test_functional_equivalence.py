"""Every implementation must produce identical numerics (functional mode).

This is the strongest integration property the reproduction offers: the
hand-written CUDA baseline, the OpenACC baseline, the hybrid, and the
full TiDA-acc pipeline (tiling + ghost exchange + streams + eviction)
all solve the same problem and must agree with the pure-numpy reference
to machine precision.
"""

import numpy as np
import pytest

from repro.baselines import (
    default_init,
    reference_compute_intensive,
    reference_heat,
    run_acc_compute,
    run_acc_heat,
    run_cuda_compute,
    run_cuda_heat,
    run_hybrid_heat,
    run_tida_compute,
    run_tida_heat,
)
from repro.tida.boundary import Dirichlet, Neumann, Periodic

SHAPE = (12, 10, 8)
STEPS = 4


@pytest.fixture(scope="module")
def heat_setup():
    init = default_init(SHAPE, 1)
    ref = reference_heat(init, STEPS, coef=0.1, bc=Neumann(), ghost=1)
    return init, ref


class TestHeatEquivalence:
    @pytest.mark.parametrize("memory", ["pageable", "pinned", "managed"])
    def test_cuda(self, heat_setup, memory):
        init, ref = heat_setup
        r = run_cuda_heat(shape=SHAPE, steps=STEPS, memory=memory,
                          functional=True, initial=init)
        np.testing.assert_allclose(r.result, ref)

    @pytest.mark.parametrize("memory", ["pageable", "pinned", "managed"])
    def test_openacc(self, heat_setup, memory):
        init, ref = heat_setup
        r = run_acc_heat(shape=SHAPE, steps=STEPS, memory=memory,
                         functional=True, initial=init)
        np.testing.assert_allclose(r.result, ref)

    @pytest.mark.parametrize("memory", ["pageable", "pinned", "managed"])
    def test_hybrid(self, heat_setup, memory):
        init, ref = heat_setup
        r = run_hybrid_heat(shape=SHAPE, steps=STEPS, memory=memory,
                            functional=True, initial=init)
        np.testing.assert_allclose(r.result, ref)

    @pytest.mark.parametrize("n_regions", [1, 2, 4])
    def test_tida(self, heat_setup, n_regions):
        init, ref = heat_setup
        r = run_tida_heat(shape=SHAPE, steps=STEPS, n_regions=n_regions,
                          functional=True, initial=init[1:-1, 1:-1, 1:-1].copy())
        np.testing.assert_allclose(r.result, ref)

    def test_tida_limited_memory(self, heat_setup):
        init, ref = heat_setup
        region_bytes = 6 * 12 * 10 * 8  # grown slab of the 4-region split
        r = run_tida_heat(shape=SHAPE, steps=STEPS, n_regions=4, n_slots=2,
                          functional=True, initial=init[1:-1, 1:-1, 1:-1].copy())
        assert r.meta["n_slots"] == 2
        np.testing.assert_allclose(r.result, ref)

    def test_tida_cpu_execution(self, heat_setup):
        init, ref = heat_setup
        r = run_tida_heat(shape=SHAPE, steps=STEPS, n_regions=4, gpu=False,
                          functional=True, initial=init[1:-1, 1:-1, 1:-1].copy())
        np.testing.assert_allclose(r.result, ref)

    @pytest.mark.parametrize("bc", [Dirichlet(0.7), Periodic()])
    def test_tida_other_bcs(self, bc):
        init = default_init(SHAPE, 1)
        ref = reference_heat(init, STEPS, coef=0.1, bc=bc, ghost=1)
        r = run_tida_heat(shape=SHAPE, steps=STEPS, n_regions=4, bc=bc,
                          functional=True, initial=init[1:-1, 1:-1, 1:-1].copy())
        np.testing.assert_allclose(r.result, ref)

    def test_tida_with_sub_region_tiles(self, heat_setup):
        init, ref = heat_setup
        r = run_tida_heat(shape=SHAPE, steps=STEPS, n_regions=2,
                          tile_shape=(3, 10, 8), functional=True,
                          initial=init[1:-1, 1:-1, 1:-1].copy())
        np.testing.assert_allclose(r.result, ref)


class TestComputeIntensiveEquivalence:
    IT = 3

    @pytest.fixture(scope="class")
    def ci_setup(self):
        init = default_init(SHAPE, 0)
        ref = reference_compute_intensive(init, STEPS, kernel_iteration=self.IT)
        return init, ref

    @pytest.mark.parametrize("variant", ["pageable", "pinned", "pinned-fastmath", "managed"])
    def test_cuda(self, ci_setup, variant):
        init, ref = ci_setup
        r = run_cuda_compute(shape=SHAPE, steps=STEPS, variant=variant,
                             kernel_iteration=self.IT, functional=True, initial=init)
        np.testing.assert_allclose(r.result, ref)

    @pytest.mark.parametrize("memory", ["pageable", "pinned", "managed"])
    def test_openacc(self, ci_setup, memory):
        init, ref = ci_setup
        r = run_acc_compute(shape=SHAPE, steps=STEPS, memory=memory,
                            kernel_iteration=self.IT, functional=True, initial=init)
        np.testing.assert_allclose(r.result, ref)

    @pytest.mark.parametrize("kw", [
        {"n_regions": 1},
        {"n_regions": 4},
        {"n_regions": 4, "n_slots": 2},
        {"n_regions": 4, "gpu": False},
    ])
    def test_tida(self, ci_setup, kw):
        init, ref = ci_setup
        r = run_tida_compute(shape=SHAPE, steps=STEPS, kernel_iteration=self.IT,
                             functional=True, initial=init, **kw)
        np.testing.assert_allclose(r.result, ref)


class TestInvalidArguments:
    def test_bad_memory_kind(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            run_cuda_heat(shape=(8, 8, 8), steps=1, memory="quantum")

    def test_bad_variant(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            run_cuda_compute(shape=(8, 8, 8), steps=1, variant="hyper")
