"""Virtual clock and FIFO hardware engines.

The runtime models time the way CUDA hardware schedules work:

* the **host clock** advances as the host thread executes API calls
  (every runtime call costs :attr:`CpuSpec.api_call_overhead`) and jumps
  forward when the host blocks in a synchronize call;
* each hardware **engine** (the compute engine and the two DMA copy
  engines on a K40m) is a FIFO queue: operations start no earlier than
  both their *ready time* (all dependencies satisfied) and the completion
  of the previously queued operation on the same engine.

This matches real CUDA behaviour: commands are pushed to hardware queues
in issue order, an engine executes one command at a time, and a command
that is issued early but not yet ready blocks later commands on the same
engine (the classic false-serialization pitfall the paper's one-stream-
per-slot design avoids).

The model is deterministic: because engines are FIFO in issue order,
each operation's start/end can be computed greedily at submission time.
What *does* need a calendar is the backlog accounting (how many issued
operations are still in flight per engine and per stream, sampled into
Perfetto counter tracks on every issue): the :class:`EventCalendar` is a
single binary heap of pending completion events with stable sequence
tie-breaks, giving O(log n) per operation instead of per-key scans.
"""

from __future__ import annotations

import heapq

from ..errors import SimulationError


class HostClock:
    """The host thread's position in virtual time.

    Observers (the telemetry bus) may subscribe to time movement; the
    listener list is usually empty, so the hot path pays one truthiness
    check per advancement and nothing else.
    """

    __slots__ = ("_now", "_listeners")

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._listeners: list = []

    @property
    def now(self) -> float:
        return self._now

    def subscribe(self, listener) -> None:
        """Register ``listener(now)`` to be called after time moves forward."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def advance(self, dt: float) -> float:
        """Spend ``dt`` seconds of host time (API call, host compute)."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt {dt!r}")
        self._now += dt
        if self._listeners and dt > 0:
            # snapshot: a listener may subscribe/unsubscribe during fan-out
            # (a telemetry subscriber detaching itself on an alert) and must
            # not mutate the list we are iterating
            for listener in tuple(self._listeners):
                listener(self._now)
        return self._now

    def advance_to(self, t: float) -> float:
        """Block the host until virtual time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
            if self._listeners:
                for listener in tuple(self._listeners):
                    listener(self._now)
        return self._now


class FifoEngine:
    """One hardware execution engine (compute, H2D copy, or D2H copy).

    Operations submitted to the engine run back-to-back in submission
    order.  :meth:`submit` returns the scheduled ``(start, end)`` pair.
    """

    __slots__ = ("name", "_tail", "_busy_time", "_op_count")

    def __init__(self, name: str) -> None:
        self.name = name
        self._tail = 0.0
        self._busy_time = 0.0
        self._op_count = 0

    @property
    def tail(self) -> float:
        """Completion time of the last submitted operation."""
        return self._tail

    @property
    def busy_time(self) -> float:
        """Total time this engine has spent executing operations."""
        return self._busy_time

    @property
    def op_count(self) -> int:
        return self._op_count

    def submit(self, ready: float, duration: float) -> tuple[float, float]:
        """Queue an operation that becomes ready at ``ready`` and takes ``duration``.

        Returns the ``(start, end)`` the FIFO discipline assigns to it.
        """
        if ready < 0:
            raise SimulationError(f"ready time must be >= 0, got {ready!r}")
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration!r}")
        start = max(ready, self._tail)
        end = start + duration
        self._tail = end
        self._busy_time += duration
        self._op_count += 1
        return start, end

    def reset(self) -> None:
        """Forget all queued work and zero the busy/op accounting.

        Resetting an engine in isolation is almost never what a harness
        repetition wants: stream tails and the runtime's pending-work
        calendar would still reference the previous run's completion times.
        Use :meth:`repro.cuda.runtime.CudaRuntime.reset_schedule`, which
        resets engines, streams, and backlog accounting together.
        """
        self._tail = 0.0
        self._busy_time = 0.0
        self._op_count = 0


class EventCalendar:
    """Heap-driven calendar of pending completion events.

    One heap serves every key (engine name, stream id, ...): entries are
    ``(time, seq, key)`` tuples where ``seq`` is a monotone issue counter,
    so ties at equal times pop in issue order — deterministic, and keys
    themselves are never compared (they may be of mixed types).

    :meth:`push` registers a completion event and returns the key's new
    in-flight depth; :meth:`prune` retires every event due at or before
    ``now``.  Because completion times are monotone within one FIFO
    engine/stream, the per-key depth after a global prune equals what a
    per-key scan of that key's own pending list would report — which is
    how this replaces the runtime's per-op deque bookkeeping without
    changing a single recorded queue-depth sample.
    """

    __slots__ = ("_heap", "_depths", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._depths: dict = {}
        self._seq = 0

    def __len__(self) -> int:
        """Number of pending (not yet pruned) events."""
        return len(self._heap)

    def depth(self, key) -> int:
        """In-flight events for ``key`` as of the last :meth:`prune`."""
        return self._depths.get(key, 0)

    def next_time(self) -> float | None:
        """Earliest pending completion time (None when idle)."""
        return self._heap[0][0] if self._heap else None

    def prune(self, now: float) -> int:
        """Retire every event with ``time <= now``; returns how many."""
        heap = self._heap
        depths = self._depths
        retired = 0
        while heap and heap[0][0] <= now:
            _, _, key = heapq.heappop(heap)
            depths[key] -= 1
            retired += 1
        return retired

    def push(self, key, time: float) -> int:
        """Register a completion event; returns ``key``'s new depth.

        Call :meth:`prune` first when the depth must reflect ``now``.
        """
        if time < 0:
            raise SimulationError(f"completion time must be >= 0, got {time!r}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, key))
        depth = self._depths.get(key, 0) + 1
        self._depths[key] = depth
        return depth

    def clear(self) -> None:
        """Forget all pending events (schedule reset between repetitions).

        The sequence counter is *not* rewound: tie-breaks stay globally
        monotone across resets, matching engine/stream reset semantics.
        """
        self._heap.clear()
        self._depths.clear()


class WeightedFairQueue:
    """Deterministic weighted-fair scheduler over opaque keys.

    The multi-tenant service (:mod:`repro.service`) charges each tenant's
    virtual runtime with the device busy-time its quanta consume, scaled
    by the inverse of the tenant's fair-share weight::

        vruntime[key] += cost / weight[key]

    :meth:`pick` selects, among the currently runnable keys, the one that
    is furthest behind its fair share.  Two tiers exist: any runnable
    *priority* key always preempts every best-effort key; within a tier
    the winner is the minimum ``(vruntime, seq)`` pair, where ``seq`` is
    the key's registration order — a stable, deterministic tie-break that
    never compares the keys themselves (they may be of mixed types).

    A key registered while others have already accumulated runtime starts
    at the *minimum live vruntime of its tier*, not at zero — otherwise a
    late joiner would monopolise the device until it caught up.
    """

    __slots__ = ("_weights", "_vruntime", "_seq", "_priority", "_next_seq")

    def __init__(self) -> None:
        self._weights: dict = {}
        self._vruntime: dict = {}
        self._seq: dict = {}
        self._priority: dict = {}
        self._next_seq = 0

    def register(self, key, weight: float = 1.0, *, priority: bool = False) -> None:
        """Add ``key`` with fair-share ``weight`` (idempotent re-register keeps state)."""
        if weight <= 0:
            raise SimulationError(f"fair-share weight must be > 0, got {weight!r}")
        if key in self._weights:
            self._weights[key] = float(weight)
            self._priority[key] = bool(priority)
            return
        tier = [
            v for k, v in self._vruntime.items()
            if self._priority[k] == bool(priority)
        ]
        self._weights[key] = float(weight)
        self._vruntime[key] = min(tier) if tier else 0.0
        self._priority[key] = bool(priority)
        self._seq[key] = self._next_seq
        self._next_seq += 1

    def is_registered(self, key) -> bool:
        return key in self._weights

    def weight(self, key) -> float:
        return self._weights[key]

    def is_priority(self, key) -> bool:
        return self._priority[key]

    def vruntime(self, key) -> float:
        return self._vruntime[key]

    def charge(self, key, cost: float) -> float:
        """Account ``cost`` seconds of service against ``key``; returns new vruntime."""
        if cost < 0:
            raise SimulationError(f"cannot charge negative cost {cost!r}")
        if key not in self._weights:
            raise SimulationError(f"cannot charge unregistered key {key!r}")
        self._vruntime[key] += cost / self._weights[key]
        return self._vruntime[key]

    def pick(self, runnable):
        """The runnable key furthest behind its fair share (None when empty).

        Priority-tier keys preempt best-effort ones; ties break on
        registration order, so the same runnable set always yields the
        same choice.
        """
        best = None
        best_rank = None
        for key in runnable:
            if key not in self._weights:
                raise SimulationError(f"runnable key {key!r} is not registered")
            rank = (
                0 if self._priority[key] else 1,
                self._vruntime[key],
                self._seq[key],
            )
            if best_rank is None or rank < best_rank:
                best, best_rank = key, rank
        return best
