"""Shared pieces of the baseline programs and reference solutions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ReproError
from ..kernels.compute_intensive import _ci_body
from ..kernels.heat import heat_reference_step
from ..sim.trace import Trace
from ..tida.boundary import BoundaryCondition, Dirichlet, Neumann, Periodic


@dataclass
class BaselineResult:
    """Outcome of one baseline (or TiDA-acc) run."""

    name: str
    elapsed: float                      # virtual seconds, transfers + compute
    shape: tuple[int, ...]
    steps: int
    trace: Trace
    result: np.ndarray | None = None    # final interior array (functional mode)
    meta: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] | None = None  # runtime.metrics snapshot, if taken
    dag: list[Any] | None = None        # causal DAG (DagNode list) when checked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BaselineResult({self.name}, elapsed={self.elapsed:.6f}s)"


def default_init(shape: tuple[int, ...], ghost: int = 0, dtype: Any = np.float64) -> np.ndarray:
    """Deterministic pseudo-random initial condition on a ghosted array.

    A Weyl sequence keeps values in [0, 1) without RNG state, so every
    implementation (baseline, TiDA-acc, reference) can regenerate the
    same input independently.
    """
    full = tuple(s + 2 * ghost for s in shape)
    n = 1
    for s in full:
        n *= s
    seq = (np.arange(n, dtype=np.uint64) * np.uint64(2654435761)) % np.uint64(2**32)
    return (seq.astype(np.float64) / 2.0**32).reshape(full).astype(dtype)


def interior(arr: np.ndarray, ghost: int) -> np.ndarray:
    if ghost == 0:
        return arr
    return arr[tuple(slice(ghost, s - ghost) for s in arr.shape)]


def face_slab_slices(
    shape: tuple[int, ...], ghost: int, axis: int, side: int
) -> tuple[tuple[slice, ...], tuple[slice, ...]]:
    """(ghost slab, adjacent interior plane) slices on a global ghosted array.

    Mirrors :func:`repro.tida.boundary.domain_faces`, so per-region and
    global BC application produce identical values.
    """
    ndim = len(shape)
    dst = [slice(None)] * ndim
    src = [slice(None)] * ndim
    if side < 0:
        dst[axis] = slice(0, ghost)
        src[axis] = slice(ghost, ghost + 1)
    else:
        dst[axis] = slice(shape[axis] - ghost, shape[axis])
        src[axis] = slice(shape[axis] - ghost - 1, shape[axis] - ghost)
    return tuple(dst), tuple(src)


def apply_bc_global(arr: np.ndarray, ghost: int, bc: BoundaryCondition) -> None:
    """Apply a boundary condition to all ghost slabs of a global array."""
    if ghost == 0:
        return
    shape = arr.shape
    if isinstance(bc, Periodic):
        for axis in range(arr.ndim):
            n = shape[axis] - 2 * ghost
            lo_dst = [slice(None)] * arr.ndim
            lo_src = [slice(None)] * arr.ndim
            hi_dst = [slice(None)] * arr.ndim
            hi_src = [slice(None)] * arr.ndim
            lo_dst[axis] = slice(0, ghost)
            lo_src[axis] = slice(n, n + ghost)
            hi_dst[axis] = slice(n + ghost, n + 2 * ghost)
            hi_src[axis] = slice(ghost, 2 * ghost)
            arr[tuple(lo_dst)] = arr[tuple(lo_src)]
            arr[tuple(hi_dst)] = arr[tuple(hi_src)]
        return
    for axis in range(arr.ndim):
        for side in (-1, +1):
            dst, src = face_slab_slices(shape, ghost, axis, side)
            if isinstance(bc, Dirichlet):
                arr[dst] = bc.value
            elif isinstance(bc, Neumann):
                arr[dst] = arr[src]
            else:
                raise ReproError(f"unsupported boundary condition {type(bc).__name__}")


def bc_kernel_launches(
    full_shape: tuple[int, ...], ghost: int, bc: BoundaryCondition
) -> list[tuple[str, dict[str, Any], int]]:
    """The per-step boundary-update kernel launches an OpenACC build emits.

    The paper's §II-C: OpenACC generates *multiple* kernels to update
    data boundaries (one per face), unlike the fused hand-written CUDA
    kernel.  Returns ``(kind, params, n_cells)`` triples where ``kind``
    is ``"fill"`` (Dirichlet) or ``"copy"`` (Neumann/Periodic wrap).
    """
    ndim = len(full_shape)
    shape = full_shape
    launches: list[tuple[str, dict[str, Any], int]] = []
    if ghost == 0:
        return launches

    def slab_cells(axis: int) -> int:
        n = ghost
        for a, s in enumerate(shape):
            if a != axis:
                n *= s
        return n

    if isinstance(bc, Periodic):
        for axis in range(ndim):
            n = shape[axis] - 2 * ghost
            lo_dst = [slice(None)] * ndim
            lo_src = [slice(None)] * ndim
            hi_dst = [slice(None)] * ndim
            hi_src = [slice(None)] * ndim
            lo_dst[axis] = slice(0, ghost)
            lo_src[axis] = slice(n, n + ghost)
            hi_dst[axis] = slice(n + ghost, n + 2 * ghost)
            hi_src[axis] = slice(ghost, 2 * ghost)
            launches.append(
                ("copy", {"dst_slices": tuple(lo_dst), "src_slices": tuple(lo_src)}, slab_cells(axis))
            )
            launches.append(
                ("copy", {"dst_slices": tuple(hi_dst), "src_slices": tuple(hi_src)}, slab_cells(axis))
            )
        return launches

    for axis in range(ndim):
        for side in (-1, +1):
            dst, src = face_slab_slices(shape, ghost, axis, side)
            if isinstance(bc, Dirichlet):
                launches.append(("fill", {"dst_slices": dst, "value": bc.value}, slab_cells(axis)))
            elif isinstance(bc, Neumann):
                launches.append(("copy", {"dst_slices": dst, "src_slices": src}, slab_cells(axis)))
            else:
                raise ReproError(f"unsupported boundary condition {type(bc).__name__}")
    return launches


def reference_heat(
    initial: np.ndarray,
    steps: int,
    *,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    ghost: int = 1,
) -> np.ndarray:
    """Pure-numpy heat solve on a global ghosted array; returns the interior."""
    bc = bc if bc is not None else Neumann()
    src = initial.copy()
    for _ in range(steps):
        apply_bc_global(src, ghost, bc)
        src = heat_reference_step(src, coef=coef, ghost=ghost)
    return interior(src, ghost).copy()


def reference_compute_intensive(
    initial: np.ndarray, steps: int, *, kernel_iteration: int
) -> np.ndarray:
    """Pure-numpy compute-intensive solve (pointwise, no ghosts)."""
    data = initial.copy()
    for _ in range(steps):
        _ci_body(data, (0,) * data.ndim, data.shape, kernel_iteration=kernel_iteration)
    return data
