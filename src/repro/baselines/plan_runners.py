"""Planner-derived drivers for the paper's workloads.

Each ``run_planned_*`` runner builds the workload as a declarative
:class:`~repro.plan.Program`, lets :func:`~repro.plan.plan_program`
derive the whole decomposition from the kernels' access/footprint
declarations, and executes it with ``run_program`` — the counterpart of
the hand-built drivers in :mod:`repro.baselines.tida_runners`, with the
same knobs (so the conformance matrix can run both sides of the
differential on identical eviction × prefetch × order legs).

``run_tida_coeff_heat`` is the *naive hand-built* variable-coefficient
heat driver: it declares every field read-write and re-fills the
coefficient halo every step — exactly the redundant traffic the planner
proves away.  Its results are byte-identical to the planned run (the
elided copies would have rewritten identical bytes), which is what makes
the ``plan.halo_bytes_saved`` / ``plan.writebacks_skipped`` counters
wins rather than approximations.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..config import DEFAULT_MACHINE, MachineSpec
from ..core.library import TidaAcc
from ..kernels.compute_intensive import DEFAULT_KERNEL_ITERATION, compute_intensive_kernel
from ..kernels.heat import coeff_heat_kernel, heat_kernel
from ..kernels.wave import wave_kernel
from ..plan import Program, plan_program, writebacks_skipped
from ..tida.boundary import BoundaryCondition, Dirichlet, Neumann
from .common import BaselineResult, default_init


def default_kappa(shape: tuple[int, ...], seed: int = 7) -> np.ndarray:
    """A deterministic positive conductivity field."""
    rng = np.random.default_rng(seed)
    return 1.0 + 0.5 * rng.random(shape)


def _free_memory(machine: MachineSpec, device_memory_limit: int | None) -> int:
    if device_memory_limit is not None:
        return int(device_memory_limit)
    return machine.gpu.memory_bytes - machine.gpu.reserved_bytes


def _run_planned(
    prog: Program,
    gather_field: str,
    name: str,
    machine: MachineSpec | None,
    *,
    shape: tuple[int, ...],
    steps: int,
    functional: bool,
    mode: str | None,
    device_memory_limit: int | None,
    n_regions: int | None,
    n_slots: int | None,
    prefetch_depth: int | None,
    eviction: str | None,
    check: str | bool | None,
    telemetry: Any,
    order: str,
    order_seed: int | None,
    tile_shape: tuple[int, ...] | None,
    inputs: dict[str, np.ndarray],
) -> BaselineResult:
    machine = machine if machine is not None else DEFAULT_MACHINE
    plan = plan_program(
        prog, machine=machine,
        free_memory=_free_memory(machine, device_memory_limit),
        n_regions=n_regions, n_slots=n_slots,
        eviction=eviction, prefetch_depth=prefetch_depth,
    )
    lib = TidaAcc(
        machine, functional=functional, mode=mode,
        device_memory_limit=device_memory_limit,
        prefetch_depth=plan.prefetch_depth, eviction=plan.eviction,
        check=check, telemetry=telemetry,
    )
    functional = lib.runtime.functional
    run = lib.run_program(
        prog, plan=plan,
        inputs=inputs if functional else None,
        order=order, order_seed=order_seed, tile_shape=tile_shape,
    )
    t_after = lib.now
    result = lib.gather(gather_field) if functional else None
    if not functional:
        lib.manager(gather_field).flush_to_host()
    lib.synchronize()
    # Hand-built runners include the final flush/synchronize in elapsed.
    elapsed = run.elapsed + (lib.now - t_after)
    metrics = lib.metrics.snapshot()
    return BaselineResult(
        name=name, elapsed=elapsed, shape=shape, steps=steps,
        trace=lib.trace, result=result,
        meta={
            "planned": True,
            "n_regions": plan.n_regions,
            "n_slots": plan.n_slots,
            "resident": plan.resident,
            "eviction": plan.eviction,
            "prefetch_depth": plan.prefetch_depth,
            "ro_fields": list(plan.ro_fields),
            "halos": {n: list(f.halo) for n, f in plan.fields.items()},
            "loop_invariant_halos": list(plan.loop_invariant_halos),
            "fills": run.fills,
            "fills_elided": run.fills_elided,
            "halo_bytes_saved": run.halo_bytes_saved,
            "writebacks_skipped": writebacks_skipped(metrics, plan),
            "decisions": list(plan.decisions),
            "mode": lib.mode,
        },
        metrics=metrics,
        dag=(list(lib.checker.dag) if lib.checker is not None else None),
    )


def run_planned_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    n_regions: int | None = None,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    tile_shape: tuple[int, ...] | None = None,
    initial: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """Heat via the planner: the declarative twin of ``run_tida_heat``."""
    bc = bc if bc is not None else Neumann()
    prog = Program(shape, bc=bc)
    with prog.sweep(steps):
        prog.step(heat_kernel(len(shape)), ("u_new", "u_old"),
                  params={"coef": coef})
        prog.swap("u_old", "u_new")
    init = initial if initial is not None else default_init(shape, 0)
    return _run_planned(
        prog, "u_old", "tida-acc-planned", machine,
        shape=shape, steps=steps, functional=functional, mode=mode,
        device_memory_limit=device_memory_limit, n_regions=n_regions,
        n_slots=n_slots, prefetch_depth=prefetch_depth, eviction=eviction,
        check=check, telemetry=telemetry, order=order, order_seed=order_seed,
        tile_shape=tile_shape, inputs={"u_old": init, "u_new": init},
    )


def run_planned_compute(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    n_regions: int | None = None,
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    initial: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """Compute-intensive via the planner (pointwise: zero ghost derived)."""
    prog = Program(shape)
    with prog.sweep(steps):
        prog.step(compute_intensive_kernel(kernel_iteration), ("data",),
                  params={"kernel_iteration": kernel_iteration})
    init = initial if initial is not None else default_init(shape, 0)
    return _run_planned(
        prog, "data", "tida-acc-planned", machine,
        shape=shape, steps=steps, functional=functional, mode=mode,
        device_memory_limit=device_memory_limit, n_regions=n_regions,
        n_slots=n_slots, prefetch_depth=prefetch_depth, eviction=eviction,
        check=check, telemetry=telemetry, order=order, order_seed=order_seed,
        tile_shape=None, inputs={"data": init},
    )


def run_planned_wave(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512),
    steps: int = 100,
    n_regions: int | None = None,
    c2: float = 0.25,
    bc: BoundaryCondition | None = None,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    tile_shape: tuple[int, ...] | None = None,
    initial: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """Wave via the planner: three fields, three-way rotation per step."""
    bc = bc if bc is not None else Dirichlet(0.0)
    prog = Program(shape, bc=bc)
    with prog.sweep(steps):
        prog.step(wave_kernel(len(shape)), ("u_next", "u", "u_prev"),
                  params={"c2": c2})
        prog.swap("u_prev", "u")
        prog.swap("u", "u_next")
    init = initial if initial is not None else default_init(shape, 0)
    return _run_planned(
        prog, "u", "tida-acc-wave-planned", machine,
        shape=shape, steps=steps, functional=functional, mode=mode,
        device_memory_limit=device_memory_limit, n_regions=n_regions,
        n_slots=n_slots, prefetch_depth=prefetch_depth, eviction=eviction,
        check=check, telemetry=telemetry, order=order, order_seed=order_seed,
        tile_shape=tile_shape,
        inputs={"u": init, "u_prev": init},
    )


def coeff_heat_program(
    shape: tuple[int, ...], steps: int, *, coef: float = 0.1,
    bc: BoundaryCondition | None = None,
) -> Program:
    """Variable-coefficient heat as a Program (kappa is only ever read)."""
    prog = Program(shape, bc=bc if bc is not None else Neumann())
    with prog.sweep(steps):
        prog.step(coeff_heat_kernel(len(shape)), ("u_new", "u_old", "kappa"),
                  params={"coef": coef})
        prog.swap("u_old", "u_new")
    return prog


def run_planned_coeff_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (128, 64, 64),
    steps: int = 10,
    n_regions: int | None = None,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    initial: np.ndarray | None = None,
    kappa: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """Variable-coefficient heat via the planner.

    The planner proves ``kappa`` read-only (no write-backs on eviction)
    and its halo loop-invariant (one fill, ``steps - 1`` elisions) —
    the workload that puts real numbers behind ``plan.halo_bytes_saved``
    and ``plan.writebacks_skipped``.
    """
    prog = coeff_heat_program(shape, steps, coef=coef, bc=bc)
    init = initial if initial is not None else default_init(shape, 0)
    kap = kappa if kappa is not None else default_kappa(shape)
    return _run_planned(
        prog, "u_old", "tida-acc-coeff-planned", machine,
        shape=shape, steps=steps, functional=functional, mode=mode,
        device_memory_limit=device_memory_limit, n_regions=n_regions,
        n_slots=n_slots, prefetch_depth=prefetch_depth, eviction=eviction,
        check=check, telemetry=telemetry, order=order, order_seed=order_seed,
        tile_shape=None,
        inputs={"u_old": init, "u_new": init, "kappa": kap},
    )


def run_tida_coeff_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (128, 64, 64),
    steps: int = 10,
    n_regions: int = 8,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    initial: np.ndarray | None = None,
    kappa: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str = "lru",
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """Naive hand-built variable-coefficient heat (no elision).

    Declares every field ``rw`` and re-fills the coefficient halo each
    step — the redundant-traffic baseline the planner differential
    compares against.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    bc = bc if bc is not None else Neumann()
    lib = TidaAcc(machine, functional=functional, mode=mode,
                  device_memory_limit=device_memory_limit,
                  prefetch_depth=prefetch_depth, eviction=eviction,
                  check=check, telemetry=telemetry)
    functional = lib.runtime.functional
    kernel = coeff_heat_kernel(len(shape))
    for name in ("u_new", "u_old", "kappa"):
        lib.add_array(name, shape, n_regions=n_regions, halo=1, n_slots=n_slots)
    if functional:
        init = initial if initial is not None else default_init(shape, 0)
        kap = kappa if kappa is not None else default_kappa(shape)
        lib.field("u_old").from_global(init)
        lib.field("u_new").from_global(init)
        lib.field("kappa").from_global(kap)

    t0 = lib.now
    for _ in range(steps):
        lib.fill_boundary("u_old", bc)
        lib.fill_boundary("kappa", bc)
        it = lib.iterator("u_new", "u_old", "kappa", order=order,
                          seed=order_seed).reset(gpu=True)
        while it.is_valid():
            lib.compute(it, kernel, params={"coef": coef})
            it.next()
        lib.swap("u_old", "u_new")
    result = lib.gather("u_old") if functional else None
    if not functional:
        lib.manager("u_old").flush_to_host()
    lib.synchronize()
    elapsed = lib.now - t0
    return BaselineResult(
        name="tida-acc-coeff", elapsed=elapsed, shape=shape, steps=steps,
        trace=lib.trace, result=result,
        meta={
            "n_regions": n_regions,
            "n_slots": lib.manager("u_old").n_slots,
            "device_memory_limit": device_memory_limit,
            "prefetch_depth": prefetch_depth,
            "eviction": eviction,
            "mode": lib.mode,
        },
        metrics=lib.metrics.snapshot(),
        dag=(list(lib.checker.dag) if lib.checker is not None else None),
    )
