"""CUDA memory management + OpenACC kernels (§II-C's combined model).

This is the execution model the paper selected for its library: explicit
CUDA allocation/transfers (pageable, pinned, or managed) while kernels
are OpenACC-generated and receive raw device pointers via the
``deviceptr`` clause.  Kernel geometry is still compiler-chosen and the
boundary update still costs one kernel per face — the two reasons the
paper gives for pure CUDA remaining slightly faster (§II-C).
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_MACHINE, MachineSpec
from ..cuda.runtime import CudaRuntime
from ..errors import ReproError
from ..kernels.exchange import face_copy_kernel, face_fill_kernel
from ..kernels.heat import heat_kernel
from ..openacc.runtime import AccRuntime
from ..tida.boundary import BoundaryCondition, Neumann
from .common import BaselineResult, bc_kernel_launches, default_init, interior
from .cuda_heat import MEMORY_KINDS


def run_hybrid_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (384, 384, 384),
    steps: int = 100,
    memory: str = "pinned",
    functional: bool = False,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    initial: np.ndarray | None = None,
) -> BaselineResult:
    """Run the CUDA-memory + OpenACC-kernels heat program."""
    if memory not in MEMORY_KINDS:
        raise ReproError(f"memory must be one of {MEMORY_KINDS}, got {memory!r}")
    machine = machine if machine is not None else DEFAULT_MACHINE
    bc = bc if bc is not None else Neumann()
    runtime = CudaRuntime(machine, functional=functional)
    acc = AccRuntime(runtime)
    ghost = 1
    full = tuple(s + 2 * ghost for s in shape)
    ndim = len(shape)
    n_interior = 1
    for s in shape:
        n_interior *= s
    stencil = heat_kernel(ndim)
    fill_k = face_fill_kernel()
    copy_k = face_copy_kernel()
    lo = (ghost,) * ndim
    hi = tuple(s - ghost for s in full)
    bc_plan = bc_kernel_launches(full, ghost, bc)
    init = None
    if functional:
        init = initial if initial is not None else default_init(shape, ghost)

    if memory == "managed":
        bufs = [runtime.malloc_managed(full, label="u0"), runtime.malloc_managed(full, label="u1")]
        if functional:
            for b in bufs:
                b.array[...] = init
        t0 = runtime.now
        src, dst = 0, 1
        for _ in range(steps):
            for kind, params, n_cells in bc_plan:
                acc.parallel_loop(
                    fill_k if kind == "fill" else copy_k,
                    arrays=[bufs[src]],
                    n_cells=n_cells,
                    collapse=ndim,
                    loop_dims=ndim,
                    params=params,
                    label=f"hybrid-bc:{kind}",
                )
            acc.parallel_loop(
                stencil,
                arrays=[bufs[dst], bufs[src]],
                n_cells=n_interior,
                collapse=ndim,
                loop_dims=ndim,
                params={"lo": lo, "hi": hi, "coef": coef},
                label="hybrid-heat",
            )
            src, dst = dst, src
        final = runtime.managed_host_access(bufs[src])
        elapsed = runtime.now - t0
        result = interior(final, ghost).copy() if functional else None
        return BaselineResult(
            name=f"hybrid-{memory}", elapsed=elapsed, shape=shape, steps=steps,
            trace=runtime.trace, result=result, meta={"memory": memory},
        )

    pinned = memory == "pinned"
    alloc = runtime.malloc_pinned if pinned else runtime.malloc_pageable
    h_src = alloc(full, label="u0")
    h_dst = alloc(full, label="u1")
    if functional:
        h_src.array[...] = init
        h_dst.array[...] = init
    d = [runtime.malloc(full, label="d_u0"), runtime.malloc(full, label="d_u1")]

    t0 = runtime.now
    runtime.memcpy(d[0], h_src, label="h2d:u0")
    runtime.memcpy(d[1], h_dst, label="h2d:u1")
    src, dst = 0, 1
    for _ in range(steps):
        for kind, params, n_cells in bc_plan:
            acc.parallel_loop(
                fill_k if kind == "fill" else copy_k,
                deviceptr=[d[src]],
                n_cells=n_cells,
                collapse=ndim,
                loop_dims=ndim,
                params=params,
                label=f"hybrid-bc:{kind}",
            )
        acc.parallel_loop(
            stencil,
            deviceptr=[d[dst], d[src]],
            n_cells=n_interior,
            collapse=ndim,
            loop_dims=ndim,
            params={"lo": lo, "hi": hi, "coef": coef},
            label="hybrid-heat",
        )
        src, dst = dst, src
    runtime.memcpy(h_src, d[src], label="d2h:result")
    elapsed = runtime.now - t0
    result = interior(h_src.array, ghost).copy() if functional else None
    return BaselineResult(
        name=f"hybrid-{memory}", elapsed=elapsed, shape=shape, steps=steps,
        trace=runtime.trace, result=result, meta={"memory": memory},
    )
