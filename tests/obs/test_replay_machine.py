"""Machine-replay surrogate: reschedule a recorded DAG on another machine.

:func:`repro.obs.critpath.replay_machine` is what lets the conformance
matrix and the machine autotuner sweep candidate machines without
re-simulating.  Its contract, tested here:

* identity — replaying on the recording machine reproduces every
  recorded start/end/issue exactly (modulo the recording's t0 offset);
* fidelity — replaying on a perturbed machine predicts the re-simulated
  makespan to well under a percent, including roofline crossovers
  (transfers recomputed from ``nbytes``, kernel legs rescaled from
  :attr:`DagNode.cost`);
* residuals — duration components the machine formulas do not explain
  (fault hang time) survive the replay instead of being silently
  dropped.
"""

import pytest

from repro.baselines.tida_runners import run_tida_compute, run_tida_heat
from repro.check.dag import DagNode
from repro.check.explore import perturb_machine
from repro.config import k40m_pcie3
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs.critpath import replay_machine

HEAT = dict(shape=(48, 24, 24), steps=2, n_regions=8)
COMPUTE = dict(shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
               device_memory_limit=70_000)


@pytest.fixture(scope="module")
def machine():
    return k40m_pcie3()


@pytest.fixture(scope="module")
def heat_recording(machine):
    return run_tida_heat(machine, check="observe", **HEAT)


def spans(nodes):
    return [(n.start, n.end, n.issue) for n in sorted(nodes, key=lambda n: n.op_id)]


class TestIdentity:
    def test_identity_replay_is_exact(self, machine, heat_recording):
        recorded = sorted(heat_recording.dag, key=lambda n: n.op_id)
        replayed, _ = replay_machine(
            recorded, machine=machine, perturbed=machine)
        offset = recorded[0].issue - replayed[0].issue
        for rec, rep in zip(spans(recorded), spans(replayed)):
            assert rec[0] == pytest.approx(rep[0] + offset, abs=1e-15)
            assert rec[1] == pytest.approx(rep[1] + offset, abs=1e-15)

    def test_empty_dag(self, machine):
        nodes, makespan = replay_machine([], machine=machine, perturbed=machine)
        assert nodes == [] and makespan == 0.0


class TestFidelity:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    @pytest.mark.parametrize("config", [HEAT, COMPUTE],
                             ids=["heat", "limited-memory"])
    def test_perturbed_replay_matches_resimulation(self, machine, seed, config):
        runner = run_tida_heat if config is HEAT else run_tida_compute
        base = runner(machine, check="observe", **config)
        perturbed = perturb_machine(machine, seed)
        resim = runner(perturbed, check="observe", **config)
        _, predicted = replay_machine(
            base.dag, machine=machine, perturbed=perturbed)
        actual = (max(n.end for n in resim.dag)
                  - min(n.start for n in resim.dag))
        assert predicted == pytest.approx(actual, rel=0.05)

    def test_link_speedup_shrinks_transfers_only(self, machine, heat_recording):
        fast_link = machine.with_link(
            type(machine.link)(
                name="x4", h2d_bandwidth=4 * machine.link.h2d_bandwidth,
                d2h_bandwidth=4 * machine.link.d2h_bandwidth,
                latency=machine.link.latency,
            )
        )
        replayed, fast = replay_machine(
            heat_recording.dag, machine=machine, perturbed=fast_link)
        _, base = replay_machine(
            heat_recording.dag, machine=machine, perturbed=machine)
        assert fast < base
        by_id = {n.op_id: n for n in heat_recording.dag}
        for n in replayed:
            if n.kind == "kernel":     # kernel durations must not move
                assert n.duration == pytest.approx(by_id[n.op_id].duration)


class TestResiduals:
    def test_fault_hang_time_survives_link_perturbation(self, machine):
        kw = dict(COMPUTE, faults=FaultPlan.from_spec("h2d:p=0.3; seed=11"),
                  retry=RetryPolicy(max_attempts=8))
        faulty = run_tida_compute(machine, check="observe", **kw)
        clean = run_tida_compute(machine, check="observe", **COMPUTE)
        perturbed = perturb_machine(machine, 1)
        _, faulty_pred = replay_machine(
            faulty.dag, machine=machine, perturbed=perturbed)
        _, clean_pred = replay_machine(
            clean.dag, machine=machine, perturbed=perturbed)
        # the faulty recording carries retries and hang time the clean one
        # does not; a replay that recomputed transfers from nbytes alone
        # would collapse the two predictions together
        assert faulty_pred > clean_pred

    def test_costless_kernel_keeps_body_and_swaps_overhead(self, machine):
        node = DagNode(
            op_id=0, kind="kernel", label="k", start=0.0, end=100e-6,
            issue=0.0, nbytes=0, streams=((1, 1),), engines=("compute",),
            deps=(), cost=None,
        )
        from dataclasses import replace

        slow_launch = replace(
            machine,
            gpu=replace(machine.gpu, kernel_launch_overhead=
                        machine.gpu.kernel_launch_overhead + 50e-6),
        )
        _, makespan = replay_machine(
            [node], machine=machine, perturbed=slow_launch)
        assert makespan == pytest.approx(100e-6 + 50e-6)
