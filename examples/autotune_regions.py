#!/usr/bin/env python
"""Region-count autotuning with the ExaSAT-style analytic model (§III).

The paper reports "we used 16 regions which gave the best performance"
after manual tuning.  This example derives that choice automatically: the
closed-form pipeline model sweeps candidate counts in microseconds, the
simulator confirms, and both sweeps are printed side by side.

Run:  python examples/autotune_regions.py [--size 512] [--steps 1]
"""

import argparse

from repro.baselines import run_tida_heat
from repro.bench.report import Table
from repro.kernels.heat import heat_kernel
from repro.model.autotune import autotune_region_count, sweep_region_counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=512)
    parser.add_argument("--steps", type=int, default=1)
    args = parser.parse_args()

    shape = (args.size,) * 3
    cells = args.size ** 3
    candidates = (1, 2, 4, 8, 16, 32, 64)
    kernel = heat_kernel(3)

    modelled = sweep_region_counts(
        kernel=kernel, domain_cells=cells, steps=args.steps,
        candidates=candidates, strategy="model",
        fields=2, result_fields=1, ghost_width=1,
    )
    measured = sweep_region_counts(
        kernel=kernel, domain_cells=cells, steps=args.steps,
        candidates=candidates, strategy="measure",
        measure_fn=lambda n: run_tida_heat(shape=shape, steps=args.steps,
                                           n_regions=n).elapsed,
    )

    table = Table(
        title=f"region-count sweep, heat {shape}, {args.steps} step(s)",
        columns=["n_regions", "model_s", "simulated_s"],
    )
    for m, s in zip(modelled, measured):
        table.add_row(m.n_regions, m.seconds, s.seconds)
    print(table.format())

    best_model = autotune_region_count(
        kernel=kernel, domain_cells=cells, steps=args.steps,
        candidates=candidates, fields=2, result_fields=1, ghost_width=1,
    )
    best_sim = min(measured, key=lambda p: p.seconds).n_regions
    print(f"\nmodel picks {best_model} regions; simulator picks {best_sim}.")
    print("(the paper hand-tuned the same knob and settled on 16)")


if __name__ == "__main__":
    main()
