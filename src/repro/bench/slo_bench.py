"""SLO gate: ``python -m repro.bench.slo_bench``.

The operability spine of the multi-tenant service (see
:mod:`repro.obs.slo`): three legs over seeded deterministic load.

* **nominal** — the :mod:`repro.bench.service_bench` 8-tenant
  contention mix with generous per-tenant SLOs.  Conformance: the
  monitored session log is **byte-identical** to the unmonitored one
  (tracking never touches the clock), re-running produces a
  byte-identical ``repro-slo/1`` stream, and no tenant burns any error
  budget (``nominal_slo_hit_rate == 1``).
* **blame** — every solo-checked job of the nominal leg is decomposed
  with :func:`~repro.obs.critpath.blame_decomposition` against its solo
  replay; the six components must sum to the observed mux-vs-solo delta
  within ``BLAME_TOLERANCE`` on every job (``blame_exact_hit_rate``).
* **overload** — a priority tenant with a tight SLO shares the device
  with a best-effort flood.  Without backpressure its p95 blows through
  the target and the tracker fires a burn-rate alert; with
  ``Service(backpressure=True)`` the alert defers best-effort
  admissions and the priority jobs admitted under backpressure run
  back under the target (p95), while the deferral counter proves
  best-effort actually waited.

Exit codes: 1 on conformance failure (session/SLI drift, racy hazards,
inexact blame), 2 on a floor miss (no burn alert, no recovery, no
deferrals, speedup below floor).

Gated counters are *clamped* like the other bench gates so the
committed baseline never moves on faster machines; raw values live
under the manifest's ungated ``"slo_bench"`` key, and the full SLO
snapshots and blame rows land under ``"slo"`` / ``"blame"`` for
``obs.report --slo/--blame``.  The per-tenant nominal p95s are emitted
as ``bench.slo.tenant.<t>.p95_ms`` counters and gated by the committed
baseline through one wildcard pattern (``bench.slo.tenant.*.p95_ms``),
exercising the compare gate's dynamic-key expansion.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from ..obs.critpath import blame_decomposition, blame_summary
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SloPolicy
from ..service import Service, run_solo
from .service_bench import (
    N_JOBS,
    PRIORITY_TENANT,
    QUICK_SOLO_BEST_EFFORT,
    TENANTS,
    TOTAL_SLOTS,
    _p95,
    _run_leg,
    _submit_all,
    arrivals,
)

#: Nominal-leg SLO: far above any healthy latency in the committed mix,
#: so a burned budget means latencies moved by orders of magnitude.
NOMINAL_TARGET = 0.05
NOMINAL_OBJECTIVE = 0.95

#: |components sum - delta| bound for the blame exactness check.
BLAME_TOLERANCE = 1e-9

#: Clamp bounds for the gated counters — chosen past what the committed
#: configuration measures, so the baseline sits exactly at the clamp.
#: Do not change without regenerating BENCH_slo.json.
TENANT_P95_FLOOR_MS = 6.5
BACKPRESSURE_SPEEDUP_CEILING = 2.0

#: Hard floors (exit 2).
BACKPRESSURE_SPEEDUP_FLOOR = 1.1

#: The overload mix: one tight-SLO priority tenant submitting a steady
#: stream of small jobs while four best-effort tenants flood the device
#: with compute-heavy jobs.  Tuned so the priority tenant violates its
#: target under the flood but comfortably meets it once backpressure
#: defers the flood.
OVERLOAD_PRIO = "prio"
OVERLOAD_BG = ("bg0", "bg1", "bg2", "bg3")
OVERLOAD_PRIO_KW: dict[str, Any] = {"shape": (16, 8, 8), "steps": 1}
OVERLOAD_BG_KW: dict[str, Any] = {
    "shape": (16, 8, 8), "steps": 2, "kernel_iteration": 1024,
}
OVERLOAD_N_PRIO = 16
OVERLOAD_PRIO_GAP = 3e-4
OVERLOAD_N_BG = 24
OVERLOAD_BG_GAP = 1.5e-4
#: ``slow_window == OVERLOAD_N_PRIO``: the early misses that trip the
#: detector never age out of the slow window within the run, so (with
#: the both-windows exit rule) the burn state stays latched and the
#: flood stays deferred instead of flapping back in every few jobs.
OVERLOAD_POLICY = SloPolicy(
    tenant=OVERLOAD_PRIO, target=3e-4, objective=0.90,
    fast_window=3, slow_window=16,
    fast_burn=3.0, slow_burn=2.0, exit_burn=0.5,
)


def _run_nominal_leg(policies: dict[str, float]):
    """The service_bench contention mix with SLO tracking armed."""
    svc = Service(total_slots=TOTAL_SLOTS, scheduler="fair", slo=policies)
    svc.add_tenant(PRIORITY_TENANT, 2.0, priority=True)
    for t in TENANTS[1:]:
        svc.add_tenant(t, 1.0)
    jobs = _submit_all(svc, arrivals())
    report = svc.run()
    session = svc.session.to_bytes()
    slo_bytes = svc.slo.to_bytes()
    snapshot = svc.slo.snapshot()
    tenant_p95 = {
        t: info["latency_p95"] for t, info in report.tenants.items()
    }
    svc.close()
    return report, jobs, session, slo_bytes, snapshot, tenant_p95


def _run_overload_leg(*, backpressure: bool):
    svc = Service(total_slots=TOTAL_SLOTS, scheduler="fair",
                  slo=[OVERLOAD_POLICY], backpressure=backpressure)
    svc.add_tenant(OVERLOAD_PRIO, 2.0, priority=True)
    for t in OVERLOAD_BG:
        svc.add_tenant(t, 1.0)
    for k in range(OVERLOAD_N_PRIO):
        svc.submit(OVERLOAD_PRIO, workload="heat", at=k * OVERLOAD_PRIO_GAP,
                   workload_kwargs=dict(OVERLOAD_PRIO_KW, seed=k))
    for i, t in enumerate(OVERLOAD_BG):
        for k in range(OVERLOAD_N_BG):
            svc.submit(t, workload="compute",
                       at=1e-5 * (i + 1) + k * OVERLOAD_BG_GAP,
                       workload_kwargs=dict(OVERLOAD_BG_KW, seed=100 + k))
    report = svc.run()
    tracker = svc.slo
    deferrals = svc.metrics.value("service.slo.backpressure_deferrals")
    svc.close()
    return report, tracker, deferrals


def _blame_rows(report, jobs, *, quick: bool) -> tuple[list[dict[str, Any]], list[str]]:
    """Blame every selected nominal-leg job against its solo replay."""
    failures: list[str] = []
    rows: list[dict[str, Any]] = []
    be_taken = 0
    for jid, a in jobs.items():
        if quick and a.tenant != PRIORITY_TENANT:
            if be_taken >= QUICK_SOLO_BEST_EFFORT:
                continue
            be_taken += 1
        solo = run_solo(a.tenant, workload=a.workload,
                        workload_kwargs=dict(a.kwargs, seed=a.seed),
                        total_slots=TOTAL_SLOTS)
        if report.jobs[jid].digests != solo.digests:
            failures.append(f"blame/{jid}: digests diverge from solo run")
            continue
        row = blame_decomposition(report.jobs[jid].timeline, solo.timeline)
        row["job"] = jid
        row["tenant"] = a.tenant
        rows.append(row)
        if abs(row["residual"]) > BLAME_TOLERANCE:
            failures.append(
                f"blame/{jid}: residual {row['residual']:.3e} exceeds "
                f"{BLAME_TOLERANCE:.0e} (components do not sum to delta)")
    return rows, failures


def run(out: Path, *, quick: bool = False) -> int:
    failures: list[str] = []

    # -- nominal: monitored == unmonitored, zero burn --------------------
    arr = arrivals()
    _plain_rep, _plain_jobs, plain_session = _run_leg("fair", arr)
    policies = {t: NOMINAL_TARGET for t in TENANTS}
    (nom_rep, nom_jobs, nom_session, nom_slo_bytes, nom_snapshot,
     tenant_p95) = _run_nominal_leg(policies)
    if nom_session != plain_session:
        failures.append("nominal: monitored session differs from unmonitored")
    if nom_rep.racy_hazards:
        failures.append(f"nominal: {nom_rep.racy_hazards} racy hazards")
    (_rep2, _jobs2, session2, slo_bytes2, _snap2, _p2) = _run_nominal_leg(
        policies)
    if session2 != nom_session or slo_bytes2 != nom_slo_bytes:
        failures.append("nominal: same-seed rerun session/SLI streams differ")

    burned = sum(
        info["budget"]["burned"] for info in nom_snapshot["tenants"].values()
    )
    total_jobs = sum(
        info["budget"]["jobs"] for info in nom_snapshot["tenants"].values()
    )
    hit_rate = 1.0 - (burned / total_jobs if total_jobs else 0.0)

    # -- blame: exact decomposition against solo replays -----------------
    blame_jobs, blame_failures = _blame_rows(nom_rep, nom_jobs, quick=quick)
    failures.extend(blame_failures)
    summary = blame_summary(blame_jobs)
    blame_hit_rate = (
        sum(1 for r in blame_jobs if abs(r["residual"]) <= BLAME_TOLERANCE)
        / len(blame_jobs) if blame_jobs else 0.0
    )

    # -- overload: burn alert fires, backpressure recovers p95 -----------
    over_rep, over_tracker, _ = _run_overload_leg(backpressure=False)
    bp_rep, bp_tracker, bp_deferrals = _run_overload_leg(backpressure=True)
    for leg, rep in (("overload", over_rep), ("backpressure", bp_rep)):
        if rep.racy_hazards:
            failures.append(f"{leg}: {rep.racy_hazards} racy hazards")

    p95_over = _p95(over_rep.latencies(OVERLOAD_PRIO))
    p95_bp = _p95(bp_rep.latencies(OVERLOAD_PRIO))
    speedup = p95_over / p95_bp if p95_bp else 0.0
    alerts_nobp = len(over_tracker.alerts)
    alerts_bp = len(bp_tracker.alerts)
    # recovery: priority jobs ADMITTED after the first burn alert must
    # be back under target — admission is what the backpressure hook
    # governs; jobs already in flight when the alert fires (and the
    # flood they contend with) are the detection cost
    recovered_p95 = None
    if bp_tracker.alerts:
        t_alert = bp_tracker.alerts[0].t
        post = [r.latency for r in bp_rep.jobs.values()
                if r.tenant == OVERLOAD_PRIO and r.admitted > t_alert]
        if post:
            recovered_p95 = _p95(post)
    recovered_under_target = (
        recovered_p95 is not None and recovered_p95 <= OVERLOAD_POLICY.target
    )

    if failures:
        for f in failures:
            print(f"FAIL conformance: {f}", file=sys.stderr)
        return 1

    print(f"nominal: {int(total_jobs)} jobs, {burned:.0f} budget burned "
          f"(hit rate {hit_rate:.3f}), monitored session byte-identical, "
          f"SLI stream deterministic")
    print(f"blame: {len(blame_jobs)} jobs decomposed, max residual "
          f"{summary['max_residual']:.3e}s (tolerance {BLAME_TOLERANCE:.0e}), "
          f"total delta {summary['delta']*1e3:.3f} ms")
    print(f"overload: priority p95 {p95_over*1e3:.3f} ms without "
          f"backpressure vs {p95_bp*1e3:.3f} ms with "
          f"(speedup {speedup:.3f}x, floor {BACKPRESSURE_SPEEDUP_FLOOR}x; "
          f"target {OVERLOAD_POLICY.target*1e3:.3f} ms)")
    print(f"overload: burn alerts {alerts_nobp} (no bp) / {alerts_bp} (bp), "
          f"{bp_deferrals:.0f} best-effort deferrals, recovered p95 "
          f"{'-' if recovered_p95 is None else format(recovered_p95*1e3, '.3f')}"
          f" ms")

    bench = MetricsRegistry()
    gated = {
        "bench.slo.nominal_slo_hit_rate": min(hit_rate, 1.0),
        "bench.slo.blame_exact_hit_rate": min(blame_hit_rate, 1.0),
        "bench.slo.overload_detection_hits": min(float(alerts_nobp), 1.0),
        "bench.slo.backpressure_p95_speedup":
            min(speedup, BACKPRESSURE_SPEEDUP_CEILING),
        "bench.slo.recovered_p95_under_target":
            1.0 if recovered_under_target else 0.0,
    }
    for t in sorted(tenant_p95):
        p95_ms = (tenant_p95[t] or 0.0) * 1e3
        gated[f"bench.slo.tenant.{t}.p95_ms"] = max(
            p95_ms, TENANT_P95_FLOOR_MS)
    for name, value in gated.items():
        bench.counter(name).inc(value)

    raw = {
        "nominal": {
            "jobs": total_jobs, "burned": burned, "hit_rate": hit_rate,
            "tenant_p95_ms": {t: (v or 0.0) * 1e3
                              for t, v in sorted(tenant_p95.items())},
        },
        "blame": {
            "jobs_checked": len(blame_jobs), "quick": quick,
            "max_residual": summary["max_residual"],
            "hit_rate": blame_hit_rate,
        },
        "overload": {
            "priority_p95_ms": p95_over * 1e3,
            "backpressure_p95_ms": p95_bp * 1e3,
            "speedup": speedup,
            "target_ms": OVERLOAD_POLICY.target * 1e3,
            "alerts_no_backpressure": alerts_nobp,
            "alerts_backpressure": alerts_bp,
            "deferrals": bp_deferrals,
            "recovered_p95_ms":
                None if recovered_p95 is None else recovered_p95 * 1e3,
            "policy": OVERLOAD_POLICY.to_dict(),
        },
    }

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "schema": "repro-run-manifest/1",
        "metrics": bench.snapshot(),
        "slo": {"nominal": nom_snapshot,
                "overload": over_tracker.snapshot(),
                "overload_backpressure": bp_tracker.snapshot()},
        "blame": {"jobs": blame_jobs, "summary": summary},
        "slo_bench": raw,
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(gated)} gated counters to {out}")

    floor_misses = []
    if hit_rate < 1.0:
        floor_misses.append(f"nominal leg burned budget (hit rate {hit_rate:.3f})")
    if blame_hit_rate < 1.0 or not blame_jobs:
        floor_misses.append("blame decomposition not exact on every job")
    if not alerts_nobp:
        floor_misses.append("overload leg fired no burn-rate alert")
    if not alerts_bp:
        floor_misses.append("backpressure leg fired no burn-rate alert")
    if bp_deferrals <= 0:
        floor_misses.append("backpressure deferred no best-effort admissions")
    if not recovered_under_target:
        floor_misses.append(
            "post-alert priority p95 "
            f"{'-' if recovered_p95 is None else format(recovered_p95*1e3, '.3f')}"
            f" ms not under target {OVERLOAD_POLICY.target*1e3:.3f} ms")
    if speedup < BACKPRESSURE_SPEEDUP_FLOOR:
        floor_misses.append(
            f"backpressure p95 speedup {speedup:.3f} < "
            f"{BACKPRESSURE_SPEEDUP_FLOOR}")
    if floor_misses:
        for miss in floor_misses:
            print(f"FAIL floor: {miss}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_slo.json",
                        help="run-manifest output path (default BENCH_slo.json)")
    parser.add_argument("--quick", action="store_true",
                        help="blame-check only the priority tenant's jobs plus "
                             "a couple of best-effort ones (CI mode); the "
                             "gated counters are identical either way")
    args = parser.parse_args(argv)
    return run(Path(args.out), quick=args.quick)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
