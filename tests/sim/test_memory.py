"""Unit tests for host buffers and the device memory pool."""

import numpy as np
import pytest

from repro.errors import CudaInvalidValueError, CudaMemoryAllocationError
from repro.sim.device import DeviceMemoryPool
from repro.sim.hostmem import HostBuffer


class TestHostBuffer:
    def test_scalar_shape_normalized(self):
        buf = HostBuffer(8)
        assert buf.shape == (8,)

    def test_nbytes_and_size(self):
        buf = HostBuffer((4, 4), dtype=np.float64)
        assert buf.size == 16
        assert buf.nbytes == 128

    def test_default_zero_filled(self):
        assert float(HostBuffer((3, 3)).array.sum()) == 0.0

    def test_fill(self):
        buf = HostBuffer((2, 2), fill=7.0)
        assert np.all(buf.array == 7.0)

    def test_pinned_flag(self):
        assert HostBuffer(4, pinned=True).pinned
        assert not HostBuffer(4).pinned

    def test_negative_shape_rejected(self):
        with pytest.raises(CudaInvalidValueError):
            HostBuffer((-1, 4))

    def test_zero_extent_allowed(self):
        assert HostBuffer((0, 4)).nbytes == 0

    def test_timing_only_has_no_array(self):
        buf = HostBuffer((1024, 1024, 1024), functional=False)  # 8 GiB logical
        assert buf.nbytes == 8 * 1024**3
        with pytest.raises(CudaInvalidValueError):
            _ = buf.array

    def test_free_then_use_raises(self):
        buf = HostBuffer(4)
        buf.free()
        with pytest.raises(CudaInvalidValueError):
            _ = buf.array

    def test_double_free_raises(self):
        buf = HostBuffer(4)
        buf.free()
        with pytest.raises(CudaInvalidValueError):
            buf.free()

    def test_dtype_respected(self):
        buf = HostBuffer(4, dtype=np.float32)
        assert buf.array.dtype == np.float32
        assert buf.nbytes == 16


class TestDeviceMemoryPool:
    def test_accounting(self):
        pool = DeviceMemoryPool(1000)
        buf = pool.allocate(10, dtype=np.float64)  # 80 bytes
        assert pool.used_bytes == 80
        assert pool.free_bytes == 920
        pool.free(buf)
        assert pool.used_bytes == 0

    def test_oom(self):
        pool = DeviceMemoryPool(100)
        with pytest.raises(CudaMemoryAllocationError):
            pool.allocate(100, dtype=np.float64)

    def test_exact_fit(self):
        pool = DeviceMemoryPool(80)
        buf = pool.allocate(10, dtype=np.float64)
        assert pool.free_bytes == 0
        pool.free(buf)

    def test_fragmentation_free_model(self):
        """The pool models capacity, not placement: free bytes are reusable."""
        pool = DeviceMemoryPool(160)
        a = pool.allocate(10)
        b = pool.allocate(10)
        pool.free(a)
        c = pool.allocate(10)
        assert pool.used_bytes == 160
        pool.free(b)
        pool.free(c)

    def test_double_free(self):
        pool = DeviceMemoryPool(1000)
        buf = pool.allocate(4)
        pool.free(buf)
        with pytest.raises(CudaInvalidValueError):
            pool.free(buf)

    def test_foreign_buffer_free(self):
        pool_a = DeviceMemoryPool(1000)
        pool_b = DeviceMemoryPool(1000)
        buf = pool_a.allocate(4)
        with pytest.raises(CudaInvalidValueError):
            pool_b.free(buf)

    def test_use_after_free(self):
        pool = DeviceMemoryPool(1000)
        buf = pool.allocate(4)
        pool.free(buf)
        with pytest.raises(CudaInvalidValueError):
            _ = buf.array

    def test_mem_get_info(self):
        pool = DeviceMemoryPool(1000)
        pool.allocate(10)
        assert pool.mem_get_info() == (920, 1000)

    def test_live_allocations(self):
        pool = DeviceMemoryPool(1000)
        a = pool.allocate(1)
        b = pool.allocate(1)
        assert pool.live_allocations == 2
        pool.free(a)
        assert pool.live_allocations == 1
        pool.free(b)

    def test_invalid_capacity(self):
        with pytest.raises(CudaInvalidValueError):
            DeviceMemoryPool(0)

    def test_timing_only_allocation(self):
        pool = DeviceMemoryPool(10**12)
        buf = pool.allocate((1024, 1024, 64), functional=False)
        assert pool.used_bytes == buf.nbytes
        with pytest.raises(CudaInvalidValueError):
            _ = buf.array
