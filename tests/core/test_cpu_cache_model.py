"""The §IV-A CPU cache-reuse model: tiles sized to the LLC avoid spill."""

import numpy as np
import pytest

from repro.baselines import run_tida_heat
from repro.baselines.common import default_init, reference_heat
from repro.config import k40m_pcie3
from repro.cuda.kernel import KernelSpec
from repro.errors import CudaInvalidValueError
from repro.kernels.heat import heat_kernel
from repro.tida.boundary import Neumann


class TestCpuSpecCacheModel:
    def test_spill_applies_only_beyond_llc(self, machine):
        cpu = machine.cpu
        fits = cpu.kernel_time(bytes_moved=1e6, flops=0, spill_bytes=1e6,
                               working_set_bytes=cpu.llc_bytes)
        spills = cpu.kernel_time(bytes_moved=1e6, flops=0, spill_bytes=1e6,
                                 working_set_bytes=cpu.llc_bytes + 1)
        assert spills == pytest.approx(2 * fits)

    def test_no_working_set_means_no_spill(self, machine):
        t = machine.cpu.kernel_time(bytes_moved=1e6, flops=0, spill_bytes=1e9)
        assert t == pytest.approx(1e6 / machine.cpu.mem_bandwidth)

    def test_negative_spill_rejected(self, machine):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            machine.cpu.kernel_time(bytes_moved=1, flops=0, spill_bytes=-1)

    def test_kernelspec_validation(self):
        with pytest.raises(CudaInvalidValueError):
            KernelSpec(name="k", body=None, bytes_per_cell=1.0,
                       cpu_spill_bytes_per_cell=-1.0)

    def test_duration_on_cpu_uses_spill(self, machine):
        k = heat_kernel(3)
        n = 10**6
        small = k.duration_on_cpu(machine, n, working_set_bytes=1024)
        big = k.duration_on_cpu(machine, n, working_set_bytes=machine.cpu.llc_bytes * 2)
        assert big == pytest.approx(2 * small)  # 16 B/cell spill on 16 B/cell base


class TestCpuTilingEndToEnd:
    def test_cache_sized_tiles_faster(self):
        machine = k40m_pcie3()
        shape = (128, 128, 128)    # region WS 2 fields x 16 MB >> 30 MB LLC
        big = run_tida_heat(machine, shape=shape, steps=3, n_regions=1,
                            gpu=False).elapsed
        tiled = run_tida_heat(machine, shape=shape, steps=3, n_regions=1,
                              tile_shape=(16, 128, 128), gpu=False).elapsed
        assert tiled < 0.7 * big

    def test_gpu_path_unaffected_by_cpu_spill(self):
        """The spill term is CPU-only; GPU timing is identical either way."""
        machine = k40m_pcie3()
        shape = (128, 128, 128)
        a = run_tida_heat(machine, shape=shape, steps=2, n_regions=4, gpu=True).elapsed
        k = heat_kernel(3)
        assert k.duration_on_gpu(machine, 128**3) == pytest.approx(
            k.bytes_moved(128**3) / machine.gpu.mem_bandwidth
        )
        assert a > 0

    def test_numerics_unchanged_by_tiling(self):
        machine = k40m_pcie3()
        shape = (12, 8, 8)
        init = default_init(shape, 1)
        ref = reference_heat(init, 3, coef=0.1, bc=Neumann(), ghost=1)
        r = run_tida_heat(machine, shape=shape, steps=3, n_regions=2,
                          tile_shape=(2, 8, 8), gpu=False, functional=True,
                          initial=init[1:-1, 1:-1, 1:-1].copy())
        np.testing.assert_allclose(r.result, ref)
