"""Schedule exploration: perturb timings and orders, demand identical results.

The hazard checker (:mod:`repro.check.hazards`) proves ordering for *one*
schedule.  This module supplies the other half of the conformance story:
run the same workload under many schedules — jittered engine/link speeds
(which reorder every FIFO race), shuffled tile-visit orders, different
eviction policies and prefetch depths — and assert that

1. the numerical result is **byte-identical** across all of them
   (:func:`digest` compares sha256 of the raw array bytes, not allclose), and
2. no run observed a racy hazard.

Timing jitter is the simulated analogue of "run it on a slower machine /
a busier PCIe bus": any ordering that only held because one engine
happened to be faster than another breaks under perturbation, and the
digest (or the checker) catches it.

Everything is seeded — a failing combination is reproducible from its
:class:`ScheduleRun.label` alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..config import MachineSpec
from .hazards import HazardChecker

__all__ = [
    "ExploreReport",
    "ScheduleRun",
    "conformance_matrix",
    "digest",
    "explore",
    "perturb_machine",
]


def digest(arr: Any) -> str:
    """sha256 over an array's dtype, shape, and raw bytes.

    Byte-identity is the right bar here: every schedule runs the same
    floating-point operations in the same per-cell order, so even
    non-associative arithmetic must agree exactly.  ``allclose`` would
    mask exactly the class of bug this harness exists to find (a stale
    region slipping into one schedule's result).
    """
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def perturb_machine(
    machine: MachineSpec, seed: int, *, jitter: float = 0.25
) -> MachineSpec:
    """A copy of ``machine`` with every rate/latency jittered by ±``jitter``.

    Kernel, transfer, and host durations all derive from these numbers,
    so this perturbs every engine latency in the simulation at once —
    reordering any two operations whose order was decided by timing
    rather than by a synchronization edge.
    """
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    rng = np.random.default_rng(seed)

    def j(value: float) -> float:
        return float(value) * float(rng.uniform(1.0 - jitter, 1.0 + jitter))

    link = replace(
        machine.link,
        h2d_bandwidth=j(machine.link.h2d_bandwidth),
        d2h_bandwidth=j(machine.link.d2h_bandwidth),
        latency=j(machine.link.latency),
    )
    gpu = replace(
        machine.gpu,
        dp_flops=j(machine.gpu.dp_flops),
        mem_bandwidth=j(machine.gpu.mem_bandwidth),
        kernel_launch_overhead=j(machine.gpu.kernel_launch_overhead),
    )
    cpu = replace(
        machine.cpu,
        dp_flops=j(machine.cpu.dp_flops),
        mem_bandwidth=j(machine.cpu.mem_bandwidth),
        api_call_overhead=j(machine.cpu.api_call_overhead),
        ghost_index_rate=j(machine.cpu.ghost_index_rate),
    )
    return replace(
        machine, name=f"{machine.name}~s{seed}", cpu=cpu, gpu=gpu, link=link
    )


@dataclass(frozen=True)
class ScheduleRun:
    """One schedule's outcome: config label, result digest, hazard counts."""

    label: str
    digest: str
    hazards: dict[str, int]
    elapsed: float
    meta: Any = None

    @property
    def racy(self) -> int:
        return self.hazards.get("error", 0)


@dataclass
class ExploreReport:
    """Outcomes of a schedule sweep, plus the two conformance verdicts."""

    runs: list[ScheduleRun]

    @property
    def digests(self) -> set[str]:
        """Distinct result digests (timing-only legs, ``digest == ""``, are
        excluded: they carry no numerics to compare)."""
        return {r.digest for r in self.runs if r.digest}

    @property
    def byte_identical(self) -> bool:
        return len(self.digests) <= 1

    @property
    def racy(self) -> int:
        return sum(r.racy for r in self.runs)

    @property
    def ok(self) -> bool:
        return self.byte_identical and self.racy == 0

    def failures(self) -> list[str]:
        """Human-readable conformance violations (empty when ``ok``)."""
        out: list[str] = []
        if not self.byte_identical:
            by_digest: dict[str, list[str]] = {}
            for r in self.runs:
                by_digest.setdefault(r.digest[:12], []).append(r.label)
            out.append(f"results diverge across schedules: {by_digest}")
        for r in self.runs:
            if r.racy:
                out.append(f"{r.label}: {r.racy} racy hazard(s)")
        return out


def explore(
    run: Callable[..., Any],
    variants: Iterable[dict[str, Any]],
    *,
    machine: MachineSpec | None = None,
    timing_seeds: Sequence[int] = (0,),
    jitter: float = 0.25,
) -> ExploreReport:
    """Run ``run(machine=..., **variant)`` across variants × perturbed machines.

    ``run`` must return an object with ``result`` (the array to digest),
    ``elapsed``, and ``metrics`` (a mapping; ``check.hazards.*`` counters
    are read from it) — the shape of
    :class:`~repro.baselines.common.BaselineResult`.  Each variant dict is
    splatted into the call; a ``label`` key (optional) names the runs.

    ``timing_seeds`` selects machine perturbations: seed ``0`` runs the
    unperturbed machine, any other seed a :func:`perturb_machine` copy.
    """
    runs: list[ScheduleRun] = []
    for seed in timing_seeds:
        m = machine
        if seed and machine is not None:
            m = perturb_machine(machine, seed, jitter=jitter)
        elif seed:
            raise ValueError("timing_seeds beyond 0 require an explicit machine")
        for variant in variants:
            variant = dict(variant)
            label = variant.pop("label", None) or ",".join(
                f"{k}={v}" for k, v in sorted(variant.items())
            )
            res = run(machine=m, **variant)
            metrics = getattr(res, "metrics", None) or {}
            # accept either a flat counter mapping or a full registry
            # snapshot ({"counters": {...}, "gauges": ..., ...})
            counters = metrics.get("counters", metrics)
            hazards = {
                "warning": int(counters.get("check.hazards.fifo_luck", 0)),
                "error": int(counters.get("check.hazards.racy", 0)),
            }
            runs.append(
                ScheduleRun(
                    label=f"t{seed}/{label}",
                    digest=digest(res.result),
                    hazards=hazards,
                    elapsed=float(res.elapsed),
                    meta=getattr(res, "meta", None),
                )
            )
    return ExploreReport(runs)


def conformance_matrix(
    workload: str = "heat",
    *,
    machine: MachineSpec | None = None,
    evictions: Sequence[str] = ("lru", "lookahead", "modulo"),
    prefetch_depths: Sequence[int | None] = (0, 2),
    order_seeds: Sequence[int | None] = (None, 1),
    timing_seeds: Sequence[int] = (0, 1),
    jitter: float = 0.25,
    faults_spec: str | None = None,
    surrogate: str = "full",
    timing_only: Callable[[dict], bool] | None = None,
    **workload_kwargs: Any,
) -> ExploreReport:
    """The canonical sweep: eviction × prefetch depth × visit order × timing.

    Runs the named baseline workload (``"heat"``, ``"wave"``,
    ``"compute"``, ``"coeff-heat"``, or their planner-derived
    ``"*-planned"`` twins) in functional mode with the hazard checker
    observing,
    over every combination, and reports digests + hazard counts.
    ``faults_spec`` additionally arms a
    :class:`~repro.faults.plan.FaultPlan` (``FaultPlan.from_spec``) with a
    retry policy, folding transfer-fault re-issues into the explored
    schedules.

    ``surrogate`` picks how the timing-seed axis is swept.  ``"full"``
    re-simulates every (variant, seed) combination.  ``"replay"`` runs
    each *variant* once on the unperturbed machine — that leg asserts
    byte-identity and records the causal DAG — then predicts every
    perturbed-seed leg by rescheduling that DAG under the jittered
    machine (:func:`~repro.obs.critpath.replay_machine`).  Replayed legs
    carry the base leg's digest and hazard counts (a replay moves times,
    never data) and ``meta={"surrogate": "replay"}``; the report shape
    (run count, labels) matches a full sweep.

    ``timing_only`` (a predicate over the variant dict) marks variants to
    run in timing mode — no numerics, no digest (``""``; excluded from
    :attr:`ExploreReport.digests`), hazard stream still checked.  The
    ``--quick`` harness path uses it to keep slow legs cheap.
    """
    # late imports: baselines import the library, which imports this package
    from ..baselines.plan_runners import (
        run_planned_compute,
        run_planned_coeff_heat,
        run_planned_heat,
        run_planned_wave,
        run_tida_coeff_heat,
    )
    from ..baselines.tida_runners import (
        run_tida_compute,
        run_tida_heat,
        run_tida_wave,
    )
    from ..config import DEFAULT_MACHINE
    from ..faults.retry import RetryPolicy
    from ..obs.critpath import replay_machine

    if machine is None:
        machine = DEFAULT_MACHINE
    if surrogate not in ("full", "replay"):
        raise ValueError(
            f'surrogate must be "full" or "replay", got {surrogate!r}'
        )
    runners = {
        "heat": run_tida_heat,
        "compute": run_tida_compute,
        "wave": run_tida_wave,
        "coeff-heat": run_tida_coeff_heat,
        # planner-derived twins: same workloads driven through
        # Program/plan_program/run_program.  A "-planned" matrix leg must
        # produce the same digest set as its hand-built counterpart —
        # that differential is the planner's acceptance spine.
        "heat-planned": run_planned_heat,
        "compute-planned": run_planned_compute,
        "wave-planned": run_planned_wave,
        "coeff-heat-planned": run_planned_coeff_heat,
    }
    try:
        runner = runners[workload]
    except KeyError:
        raise ValueError(
            f"workload must be one of {sorted(runners)}, got {workload!r}"
        ) from None

    def run(machine: MachineSpec | None, *, functional: bool, **variant: Any):
        kwargs = dict(workload_kwargs)
        kwargs.update(variant)
        if faults_spec is not None:
            from ..faults.plan import FaultPlan

            kwargs.setdefault("faults", FaultPlan.from_spec(faults_spec))
            kwargs.setdefault("retry", RetryPolicy(max_attempts=8))
        return runner(machine, functional=functional, check="observe", **kwargs)

    variants = []
    for ev in evictions:
        for depth in prefetch_depths:
            for oseed in order_seeds:
                variants.append(
                    {
                        "eviction": ev,
                        "prefetch_depth": depth,
                        "order": "sequential" if oseed is None else "shuffled",
                        "order_seed": oseed,
                        "label": f"{ev}/d{depth}/o{oseed}",
                    }
                )

    def hazard_counts(res: Any) -> dict[str, int]:
        metrics = getattr(res, "metrics", None) or {}
        counters = metrics.get("counters", metrics)
        return {
            "warning": int(counters.get("check.hazards.fifo_luck", 0)),
            "error": int(counters.get("check.hazards.racy", 0)),
        }

    runs: list[ScheduleRun] = []
    for variant in variants:
        v = dict(variant)
        label = v.pop("label")
        functional = not (timing_only is not None and timing_only(variant))
        # the base leg: unperturbed machine, full simulation — the one
        # place byte-identity is asserted and (replay mode) the DAG source
        base = run(machine, functional=functional, **v)
        base_digest = digest(base.result) if functional else ""
        base_hazards = hazard_counts(base)
        for seed in timing_seeds:
            if seed == 0:
                runs.append(ScheduleRun(
                    label=f"t0/{label}", digest=base_digest,
                    hazards=dict(base_hazards), elapsed=float(base.elapsed),
                    meta=getattr(base, "meta", None),
                ))
                continue
            perturbed = perturb_machine(machine, seed, jitter=jitter)
            if surrogate == "replay":
                if not base.dag:
                    raise ValueError(
                        "replay surrogate needs the base leg's DAG; the "
                        "runner returned none (checker disarmed?)"
                    )
                _, makespan = replay_machine(
                    base.dag, machine=machine, perturbed=perturbed
                )
                runs.append(ScheduleRun(
                    label=f"t{seed}/{label}", digest=base_digest,
                    hazards=dict(base_hazards), elapsed=float(makespan),
                    meta={"surrogate": "replay"},
                ))
            else:
                res = run(perturbed, functional=functional, **v)
                runs.append(ScheduleRun(
                    label=f"t{seed}/{label}",
                    digest=digest(res.result) if functional else "",
                    hazards=hazard_counts(res), elapsed=float(res.elapsed),
                    meta=getattr(res, "meta", None),
                ))
    return ExploreReport(runs)
