"""Tests for the live session viewer CLI (repro.obs.watch)."""

import io
import json

from repro.cuda.runtime import CudaRuntime
from repro.obs.live import TelemetryBus
from repro.obs.watch import main, parse_session, render, watch


def make_session(tmp_path, tiny_machine, *, alerts=False):
    path = tmp_path / "session.jsonl"
    bus = TelemetryBus(sample_interval=1e-3, jsonl=path)
    rt = CudaRuntime(tiny_machine, telemetry=bus)
    host = rt.malloc_pinned((256, 256))
    dev = rt.malloc((256, 256))
    for _ in range(4):
        rt.memcpy_async(dev, host, rt.default_stream)
        rt.device_synchronize()
    if alerts:
        from repro.obs.live.watchdog import Alert

        bus.publish_alert(Alert(detector="stub", severity="warning", t=rt.now,
                                window=(0.0, rt.now), message="stub"))
        bus.notify_incident("fault", error=RuntimeError("boom"))
    bus.close()
    return path


class TestOneShot:
    def test_renders_panels(self, tmp_path, tiny_machine, capsys):
        path = make_session(tmp_path, tiny_machine)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "health=ok" in out
        assert "recent samples" in out
        assert "alerts (0)" in out

    def test_alerts_and_incidents_shown(self, tmp_path, tiny_machine, capsys):
        path = make_session(tmp_path, tiny_machine, alerts=True)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "health=CRITICAL" in out
        assert "stub" in out
        assert "incident: kind=fault" in out

    def test_last_bounds_sample_rows(self, tmp_path, tiny_machine, capsys):
        path = make_session(tmp_path, tiny_machine)
        assert main([str(path), "--last", "2"]) == 0
        assert "last 2 of" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_telemetry_file_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\nnot json\n")
        assert main([str(path)]) == 2
        assert "not a telemetry session" in capsys.readouterr().err


class TestFollow:
    def test_redraws_as_file_grows(self, tmp_path, tiny_machine):
        path = make_session(tmp_path, tiny_machine)
        stream = io.StringIO()
        rc = watch(path, follow=True, poll=0.0, last=4, stream=stream,
                   max_redraws=2)
        assert rc == 0
        # ANSI clear between redraws marks the follow mode
        assert "\x1b[2J" in stream.getvalue()


class TestParseSession:
    def test_tolerates_torn_writes(self):
        records = parse_session([
            json.dumps({"kind": "session", "sample_interval": 1e-3, "t0": 0.0}),
            '{"kind": "sample", "t": 0.001',  # torn mid-write
            "",
        ])
        assert len(records["session"]) == 1
        assert len(records["invalid"]) == 1
        assert "invalid_lines=1" in render(records)
