"""Conjugate gradients on tiled fields: ``A x = b`` for the Poisson operator.

``A`` is the standard (2*ndim)-point negative Laplacian with homogeneous
Dirichlet boundaries — symmetric positive definite, so plain CG applies:

    r = b - A x0;  p = r
    repeat: Ap = A p
            alpha = (r.r)/(p.Ap)
            x += alpha p;  r -= alpha Ap
            beta = (r'.r')/(r.r);  p = r' + beta p

Every operation runs through the TiDA-acc public API: the matvec is a
stencil kernel preceded by a ghost exchange (Dirichlet 0), the vector
updates are two-field kernels, and both inner products are device
reductions whose partials stream back on the slot streams.  One CG
iteration therefore exercises the full §IV machinery — transfers,
caching, per-slot streams, hybrid ghost update, reductions — which is
exactly why it is the integration workload of choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MachineSpec
from ..core.library import TidaAcc
from ..cuda.kernel import KernelSpec
from ..errors import ReproError
from ..kernels.reductions import ReductionSpec, dot_reduction, norm2_reduction
from ..tida.boundary import Dirichlet


def _sl(lo, hi):
    return tuple(slice(l, h) for l, h in zip(lo, hi))


def _laplacian_body(out, x, lo, hi):
    ndim = out.ndim
    interior = _sl(lo, hi)
    acc = (2.0 * ndim) * x[interior]
    for axis in range(ndim):
        m = tuple(
            slice(l - (1 if a == axis else 0), h - (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        p = tuple(
            slice(l + (1 if a == axis else 0), h + (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        acc = acc - x[m] - x[p]
    out[interior] = acc


def laplacian_kernel(ndim: int) -> KernelSpec:
    """y = A x for the negative Laplacian (matrix-free matvec)."""
    return KernelSpec(
        name=f"laplacian{ndim}d",
        body=_laplacian_body,
        bytes_per_cell=16.0,
        flops_per_cell=2.0 * ndim + 2.0,
        arg_access=("w", "r"),
        footprint=(None, 1),   # out pointwise, x read at radius 1
        meta={"ndim": ndim, "spd": True},
    )


def _axpy_body(y, x, lo, hi, a=1.0):
    s = _sl(lo, hi)
    y[s] += a * x[s]


def axpy_kernel() -> KernelSpec:
    """y += a*x."""
    return KernelSpec(
        name="axpy", body=_axpy_body, bytes_per_cell=24.0, flops_per_cell=2.0,
        arg_access=("rw", "r"), footprint=(None, None),
    )


def _xpay_body(p, r, lo, hi, beta=0.0):
    s = _sl(lo, hi)
    p[s] = r[s] + beta * p[s]


def xpay_kernel() -> KernelSpec:
    """p = r + beta*p."""
    return KernelSpec(
        name="xpay", body=_xpay_body, bytes_per_cell=24.0, flops_per_cell=2.0,
        arg_access=("rw", "r"), footprint=(None, None),
    )


@dataclass
class CgResult:
    """Outcome of one CG solve."""

    x: np.ndarray | None      # solution (functional mode)
    iterations: int
    residual_norms: list[float]   # ||r||_2 after each iteration (functional mode)
    converged: bool
    elapsed: float            # virtual seconds


class TiledCG:
    """CG solver over TiDA-acc fields.

    Parameters mirror the library: region count, optional device-memory
    limit (the solver works out-of-core exactly like any other TiDA-acc
    program), and functional/timing mode.
    """

    FIELDS = ("x", "r", "p", "Ap")

    def __init__(
        self,
        shape: tuple[int, ...],
        *,
        machine: MachineSpec | None = None,
        n_regions: int = 4,
        functional: bool = True,
        device_memory_limit: int | None = None,
        n_slots: int | None = None,
        halo: int | tuple[int, ...] | str = "auto",
    ) -> None:
        self.shape = tuple(shape)
        self.lib = TidaAcc(machine, functional=functional,
                           device_memory_limit=device_memory_limit)
        self.matvec = laplacian_kernel(len(self.shape))
        self.axpy = axpy_kernel()
        self.xpay = xpay_kernel()
        # The ghost width is no longer hand-coded: every field derives it
        # from the declared stencil footprints of the kernels applied to
        # it (the matvec's radius-1 read; axpy/xpay are pointwise).  An
        # explicit ``halo=`` int keeps the hand-built path available as
        # the conformance baseline.
        kernels = (self.matvec, self.axpy, self.xpay) if halo == "auto" else None
        for name in self.FIELDS:
            self.lib.add_array(name, self.shape, n_regions=n_regions, halo=halo,
                               kernels=kernels, n_slots=n_slots)
        self.dot: ReductionSpec = dot_reduction()
        self.norm2: ReductionSpec = norm2_reduction()
        self.bc = Dirichlet(0.0)

    # -- tiled vector operations ------------------------------------------------

    def _apply_A(self, src: str, dst: str) -> None:
        self.lib.fill_boundary(src, self.bc)
        for dst_t, src_t in self.lib.iterator(dst, src).reset(gpu=True):
            self.lib.compute((dst_t, src_t), self.matvec, gpu=True)

    def _axpy(self, y: str, x: str, a: float) -> None:
        for y_t, x_t in self.lib.iterator(y, x).reset(gpu=True):
            self.lib.compute((y_t, x_t), self.axpy, gpu=True, params={"a": a})

    def _xpay(self, p: str, r: str, beta: float) -> None:
        for p_t, r_t in self.lib.iterator(p, r).reset(gpu=True):
            self.lib.compute((p_t, r_t), self.xpay, gpu=True, params={"beta": beta})

    # -- the solver ----------------------------------------------------------------

    def solve(
        self,
        b: np.ndarray | None,
        *,
        tol: float = 1e-8,
        max_iterations: int | None = None,
    ) -> CgResult:
        """Solve ``A x = b`` from ``x0 = 0``.

        In functional mode ``b`` is required and convergence is checked
        against ``tol * ||b||``; in timing-only mode ``b`` is ignored and
        exactly ``max_iterations`` iterations are costed.
        """
        functional = self.lib.runtime.functional
        if max_iterations is None:
            max_iterations = int(np.prod(self.shape))
        if functional:
            if b is None:
                raise ReproError("functional solves need a right-hand side")
            b = np.asarray(b, dtype=float)
            if b.shape != self.shape:
                raise ReproError(f"rhs shape {b.shape} != {self.shape}")
            self.lib.scatter("r", b)       # r = b - A*0 = b
            self.lib.scatter("p", b)
            self.lib.scatter("x", np.zeros(self.shape))
            b_norm2 = float((b * b).sum())
            threshold = (tol ** 2) * b_norm2 if b_norm2 > 0 else 0.0
        else:
            threshold = 0.0

        t0 = self.lib.now
        residuals: list[float] = []
        converged = False
        rr = self.lib.reduce_field("r", self.norm2)
        iterations = 0
        for _it in range(max_iterations):
            if functional and rr <= threshold:
                converged = True
                break
            self._apply_A("p", "Ap")
            p_ap = self.lib.reduce_field(["p", "Ap"], self.dot)
            if functional and p_ap <= 0.0:
                raise ReproError("matrix is not positive definite (p.Ap <= 0)")
            alpha = rr / p_ap if functional else 1.0
            self._axpy("x", "p", alpha)
            self._axpy("r", "Ap", -alpha)
            rr_new = self.lib.reduce_field("r", self.norm2)
            beta = rr_new / rr if functional and rr > 0 else 0.0
            self._xpay("p", "r", beta)
            rr = rr_new
            iterations += 1
            if functional:
                residuals.append(float(np.sqrt(max(rr, 0.0))))
        else:
            converged = functional and rr <= threshold

        x = self.lib.gather("x") if functional else None
        self.lib.synchronize()
        return CgResult(
            x=x,
            iterations=iterations,
            residual_norms=residuals,
            converged=converged,
            elapsed=self.lib.now - t0,
        )


def cg_program(
    shape: tuple[int, ...],
    *,
    max_iterations: int,
    tol: float = 1e-8,
) -> "Program":
    """The whole CG iteration as a declarative :class:`~repro.plan.Program`.

    Exercises every combinator: ``sweep(until=...)`` for the convergence
    loop, ``reduce(store=...)`` for the inner products, ``scalar`` for
    the alpha/beta updates (with the timing-mode fallbacks the hand-built
    solver uses: ``alpha=1``, ``beta=0``), and :func:`~repro.plan.ref`
    params feeding those scalars into the axpy/xpay kernels.

    Seed the run with ``env={"threshold": (tol*||b||)**2}`` and
    ``inputs={"r": b, "p": b, "x": zeros}``; after ``run_program``,
    gather ``"x"``.
    """
    from ..plan import Program, ref

    ndim = len(shape)
    matvec = laplacian_kernel(ndim)
    axpy = axpy_kernel()
    xpay = xpay_kernel()
    dot = dot_reduction()
    norm2 = norm2_reduction()
    prog = Program(shape, bc=Dirichlet(0.0))
    prog.reduce(norm2, "r", store="rr")
    with prog.sweep(max_iterations,
                    until=lambda env: env["rr"] <= env.get("threshold", 0.0)):
        prog.step(matvec, ("Ap", "p"))
        prog.reduce(dot, ("p", "Ap"), store="p_ap")
        prog.scalar("alpha", lambda env: env["rr"] / env["p_ap"], timing=1.0)
        prog.step(axpy, ("x", "p"), params={"a": ref("alpha")})
        prog.scalar("neg_alpha", lambda env: -env["alpha"], timing=-1.0)
        prog.step(axpy, ("r", "Ap"), params={"a": ref("neg_alpha")})
        prog.reduce(norm2, "r", store="rr_new")
        prog.scalar(
            "beta",
            lambda env: env["rr_new"] / env["rr"] if env["rr"] > 0 else 0.0,
            timing=0.0,
        )
        prog.step(xpay, ("p", "r"), params={"beta": ref("beta")})
        prog.scalar("rr", lambda env: env["rr_new"], timing=1.0)
    return prog


def assemble_laplacian_dense(shape: tuple[int, ...]) -> np.ndarray:
    """Dense matrix of the same operator (oracle for small tests)."""
    n = int(np.prod(shape))
    A = np.zeros((n, n))
    idx = np.arange(n).reshape(shape)
    ndim = len(shape)
    it = np.ndindex(*shape)
    for point in it:
        i = idx[point]
        A[i, i] = 2.0 * ndim
        for axis in range(ndim):
            for step in (-1, +1):
                neighbor = list(point)
                neighbor[axis] += step
                if 0 <= neighbor[axis] < shape[axis]:
                    A[i, idx[tuple(neighbor)]] = -1.0
    return A
