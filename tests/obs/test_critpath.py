"""Critical-path profiling, overlap attribution, and what-if replay.

The two acceptance-grade properties live here: the per-category
attribution of a real checked heat run sums to its wall time within 1%,
and the "PCIe x2" what-if prediction lands within 5% of actually
re-simulating the same workload at double link rate (the Fig. 3
workload).  Around them, unit coverage for the classifiers, the replay,
the trace-only fallback, the multi-GPU peer nodes, and the
``obs.report --critpath`` CLI.
"""

import json
from dataclasses import replace

import pytest

from repro.baselines.tida_runners import run_tida_heat
from repro.check.dag import DagNode, dag_to_json
from repro.config import PCIE_GEN3_X16, k40m_pcie3
from repro.obs.critpath import (
    CATEGORIES,
    RunDag,
    Scenario,
    attribution,
    attribution_by_field,
    attribution_by_region,
    categorize,
    critical_path,
    critpath_metrics,
    critpath_summary,
    field_of,
    flip_point,
    overlap_report,
    region_of,
    replay,
    whatif,
)
from repro.obs.report import main


def node(op_id, kind, label, start, end, *, deps=(), host_dep=None,
         host_gap=0.0, issue=None, nbytes=0):
    return DagNode(
        op_id=op_id, kind=kind, label=label, start=start, end=end,
        issue=start if issue is None else issue, nbytes=nbytes,
        streams=((0, 1),), engines=(kind,), deps=tuple(deps),
        host_dep=host_dep, host_gap=host_gap,
    )


@pytest.fixture(scope="module")
def heat_run():
    """A checked Fig. 3-style heat solve: DAG + iteration marks."""
    return run_tida_heat(
        machine=k40m_pcie3(), shape=(64, 64, 64), steps=2, n_regions=4,
        check="observe",
    )


@pytest.fixture(scope="module")
def heat_dag(heat_run):
    marks = [m["ts"] for m in heat_run.trace.marks if m["name"] == "iteration"]
    return RunDag.from_nodes(heat_run.dag, marks=marks)


class TestClassifiers:
    def test_categorize_by_kind_and_label(self):
        cases = [
            ("kernel", "compute:heat3d:u_new.r3", "kernel"),
            ("h2d", "h2d:u_old.r0", "h2d"),
            ("h2d", "prefetch:u_old.r5", "h2d"),
            ("d2h", "d2h:u_new.r1", "d2h"),
            ("d2h", "evict:u_new.r7", "write-back"),
            ("kernel", "ghost:u_old.r1<-u_old.r0", "ghost"),
            ("kernel", "bc-faces:u_old.r0", "ghost"),
            ("peer", "peer:halo", "peer"),
        ]
        for kind, label, expected in cases:
            assert categorize(node(1, kind, label, 0.0, 1.0)) == expected

    def test_field_and_region_of(self):
        assert field_of("h2d:u_old.r3") == "u_old"
        assert region_of("h2d:u_old.r3") == "u_old.r3"
        assert field_of("compute:heat3d:u_new.r12") == "u_new"
        assert region_of("ghost:u_old.r1<-u_old.r0") == "u_old.r1"
        assert field_of("(issue)") == "(issue)"
        assert region_of("(issue)") == "-"


class TestCriticalPathSmall:
    """Hand-built DAGs with known critical paths."""

    def test_chain_tiles_exactly(self):
        nodes = [
            node(1, "h2d", "h2d:u.r0", 0.0, 2.0),
            node(2, "kernel", "compute:k:u.r0", 2.0, 5.0,
                 deps=[(1, "stream")]),
            node(3, "d2h", "d2h:u.r0", 5.0, 6.0, deps=[(2, "stream")]),
        ]
        segs = critical_path(nodes)
        assert [s.category for s in segs] == ["h2d", "kernel", "d2h"]
        assert segs[0].start == 0.0 and segs[-1].end == 6.0
        for a, b in zip(segs, segs[1:]):
            assert a.end == b.start

    def test_gap_becomes_host_segment(self):
        nodes = [
            node(1, "h2d", "h2d:u.r0", 0.0, 2.0),
            # starts 1s after its only dep finished: host-bound interval
            node(2, "kernel", "compute:k:u.r0", 3.0, 5.0,
                 deps=[(1, "stream")]),
        ]
        segs = critical_path(nodes)
        assert [s.category for s in segs] == ["h2d", "host", "kernel"]
        host = segs[1]
        assert (host.start, host.end) == (2.0, 3.0)
        assert host.op_id is None
        assert attribution(segs)["host"] == 1.0

    def test_leading_gap_before_first_op(self):
        nodes = [
            node(1, "h2d", "h2d:a", 0.0, 1.0),
            # the sink has no deps and starts late: everything before it
            # is charged to the host
            node(2, "kernel", "compute:k:b.r0", 4.0, 9.0),
        ]
        segs = critical_path(nodes)
        assert [s.category for s in segs] == ["host", "kernel"]
        assert segs[0].start == 0.0 and segs[0].end == 4.0

    def test_binding_predecessor_is_latest_finisher(self):
        nodes = [
            node(1, "h2d", "h2d:a", 0.0, 1.0),
            node(2, "h2d", "h2d:b", 0.0, 4.0),
            node(3, "kernel", "compute:k:c.r0", 4.0, 5.0,
                 deps=[(1, "event"), (2, "event")]),
        ]
        segs = critical_path(nodes)
        assert [s.op_id for s in segs] == [2, 3]

    def test_empty_dag(self):
        assert critical_path([]) == []
        assert overlap_report(RunDag(nodes=())) == []

    def test_grouped_attribution(self):
        segs = critical_path([
            node(1, "h2d", "h2d:u.r0", 0.0, 2.0),
            node(2, "kernel", "compute:k:v.r1", 2.0, 5.0,
                 deps=[(1, "stream")]),
        ])
        by_field = attribution_by_field(segs)
        assert by_field["u"]["h2d"] == 2.0
        assert by_field["v"]["kernel"] == 3.0
        by_region = attribution_by_region(segs)
        assert by_region["u.r0"]["h2d"] == 2.0


class TestReplaySmall:
    def test_identity_reproduces_recorded_times(self):
        nodes = [
            node(1, "h2d", "h2d:u.r0", 0.0, 2.0),
            node(2, "kernel", "compute:k:u.r0", 2.0, 5.0,
                 deps=[(1, "stream")]),
            node(3, "d2h", "d2h:u.r0", 5.0, 6.0, deps=[(2, "stream")]),
        ]
        out, makespan = replay(nodes, Scenario("baseline"))
        assert makespan == 6.0
        for orig, new in zip(nodes, out):
            assert new.start == orig.start and new.end == orig.end

    def test_host_gap_is_preserved(self):
        nodes = [
            node(1, "h2d", "h2d:u.r0", 0.0, 2.0),
            node(2, "kernel", "compute:k:u.r0", 2.5, 4.5,
                 deps=[(1, "stream")], host_dep=1, host_gap=0.5, issue=2.5),
        ]
        out, makespan = replay(nodes, Scenario("baseline"))
        assert out[1].issue == pytest.approx(2.5)
        assert makespan == pytest.approx(4.5)

    def test_kernel_factor_halves_kernels_only(self):
        nodes = [
            node(1, "h2d", "h2d:u.r0", 0.0, 2.0),
            node(2, "kernel", "compute:k:u.r0", 2.0, 6.0,
                 deps=[(1, "stream")]),
        ]
        out, _ = replay(nodes, Scenario("k2", kernel_factor=2.0))
        assert out[0].duration == 2.0          # transfer untouched
        assert out[1].duration == pytest.approx(2.0)

    def test_drop_writebacks_zeroes_evictions_only(self):
        nodes = [
            node(1, "d2h", "evict:u.r0", 0.0, 2.0),
            node(2, "d2h", "d2h:u.r1", 2.0, 3.0, deps=[(1, "engine")]),
        ]
        out, makespan = replay(
            nodes, Scenario("slots", drop_writebacks=True)
        )
        assert out[0].duration == 0.0
        assert out[1].duration == 1.0
        assert makespan == pytest.approx(1.0)

    def test_link_factor_keeps_fixed_latency(self):
        machine = k40m_pcie3()
        lat = machine.link.latency
        dur = lat + 1e-3
        nodes = [node(1, "h2d", "h2d:u.r0", 0.0, dur)]
        out, _ = replay(
            nodes, Scenario("x2", link_factor=2.0), machine=machine
        )
        assert out[0].duration == pytest.approx(lat + 1e-3 / 2)


class TestHeatRunAttribution:
    """The real checked heat run: acceptance property #1."""

    def test_dag_recorded(self, heat_run):
        assert heat_run.dag
        kinds = {n.kind for n in heat_run.dag}
        assert {"h2d", "kernel"} <= kinds

    def test_attribution_sums_to_wall_within_1pct(self, heat_dag):
        segs = critical_path(heat_dag.nodes)
        total = sum(attribution(segs).values())
        assert total == pytest.approx(heat_dag.wall, rel=0.01)

    def test_segments_tile_the_run_span(self, heat_dag):
        segs = critical_path(heat_dag.nodes)
        assert segs[0].start == pytest.approx(heat_dag.t0)
        assert segs[-1].end == pytest.approx(heat_dag.t_end)
        for a, b in zip(segs, segs[1:]):
            assert a.end == pytest.approx(b.start)

    def test_identity_replay_is_exact(self, heat_dag):
        out, makespan = replay(heat_dag.nodes, Scenario("baseline"))
        err = max(
            abs(new.end - orig.end)
            for orig, new in zip(heat_dag.nodes, out)
        )
        assert err == pytest.approx(0.0, abs=1e-12)
        assert makespan == pytest.approx(heat_dag.wall, abs=1e-12)

    def test_grouped_attributions_sum_to_total(self, heat_dag):
        segs = critical_path(heat_dag.nodes)
        total = sum(attribution(segs).values())
        for grouped in (attribution_by_field(segs),
                        attribution_by_region(segs)):
            flat = sum(v for cats in grouped.values() for v in cats.values())
            assert flat == pytest.approx(total)

    def test_overlap_report_per_iteration(self, heat_dag):
        rows = overlap_report(heat_dag)
        assert len(rows) >= 2   # one row per marked iteration
        assert sum(r["wall_s"] for r in rows) == pytest.approx(heat_dag.wall)
        # (the window before the first swap may hold only uploads, so
        # positivity is asserted on the totals, not per row)
        assert sum(r["compute_s"] for r in rows) > 0
        assert sum(r["transfer_s"] for r in rows) > 0
        for r in rows:
            assert r["ideal_s"] == max(r["compute_s"], r["transfer_s"])
            assert 0.0 <= r["efficiency"]

    def test_whatif_panel(self, heat_dag):
        rows = {r["scenario"]: r for r in whatif(heat_dag)}
        assert rows["baseline"]["speedup"] == pytest.approx(1.0)
        # this workload is transfer-dominated: faster links help, and
        # more link speed never hurts
        assert rows["pcie x2"]["speedup"] > 1.2
        assert rows["pcie x4"]["speedup"] >= rows["pcie x2"]["speedup"]
        assert rows["kernels x2"]["speedup"] >= 1.0
        for r in rows.values():
            assert r["bound"] in ("transfer", "compute", "host")

    def test_flip_point_on_transfer_bound_run(self, heat_dag):
        flip = flip_point(heat_dag)
        assert flip is not None and flip > 1.0

    def test_summary_and_metrics_flattening(self, heat_dag):
        summary = critpath_summary(heat_dag)
        assert summary["wall_s"] == pytest.approx(heat_dag.wall)
        assert summary["n_ops"] == len(heat_dag.nodes)
        assert set(summary["attribution"]) == set(CATEGORIES)
        flat = critpath_metrics(summary)
        assert flat["critpath.wall_s"] == pytest.approx(heat_dag.wall)
        assert "critpath.path.kernel_s" in flat
        assert "critpath.path.write_back_s" in flat
        assert "critpath.overlap_efficiency" in flat
        assert flat["critpath.whatif.baseline.speedup"] == pytest.approx(1.0)
        assert "critpath.whatif.pcie_x2.speedup" in flat
        assert "critpath.whatif.nvlink__x5.speedup" in flat


class TestPcieX2Prediction:
    """Acceptance property #2: the what-if matches a real re-simulation."""

    def test_x2_prediction_within_5pct_of_resimulation(self):
        machine = k40m_pcie3()
        kwargs = dict(shape=(128, 128, 128), steps=3, n_regions=8)
        r = run_tida_heat(machine=machine, check="observe", **kwargs)
        link2 = replace(
            PCIE_GEN3_X16,
            h2d_bandwidth=2 * PCIE_GEN3_X16.h2d_bandwidth,
            d2h_bandwidth=2 * PCIE_GEN3_X16.d2h_bandwidth,
        )
        r2 = run_tida_heat(machine=machine.with_link(link2), **kwargs)
        actual = r.elapsed / r2.elapsed

        dag = RunDag.from_nodes(r.dag)
        _, base = replay(dag.nodes, Scenario("baseline"), machine=machine)
        _, fast = replay(
            dag.nodes, Scenario("x2", link_factor=2.0), machine=machine
        )
        predicted = base / fast
        assert actual > 1.3     # the workload really is transfer-bound
        assert predicted == pytest.approx(actual, rel=0.05)


class TestFromTraceFallback:
    """Runs without a checker still get a (coarser) analysis."""

    def test_attribution_sums_to_wall(self, heat_run):
        dag = RunDag.from_trace(heat_run.trace)
        assert dag.nodes
        segs = critical_path(dag.nodes)
        total = sum(attribution(segs).values())
        assert total == pytest.approx(dag.wall, rel=0.01)

    def test_iteration_marks_survive(self, heat_run):
        dag = RunDag.from_trace(heat_run.trace)
        assert len(dag.iteration_marks) == heat_run.steps

    def test_from_manifest_prefers_recorded_dag(self, heat_run):
        manifest = {
            "traceEvents": heat_run.trace.to_chrome_trace(),
            "dag": dag_to_json(heat_run.dag),
        }
        dag = RunDag.from_manifest(manifest)
        assert dag is not None
        assert len(dag.nodes) == len(heat_run.dag)
        assert dag.iteration_marks   # recovered from the trace instants
        assert RunDag.from_manifest({"traceEvents": []}) is None


class TestMultiGpuPeerNodes:
    def test_peer_copies_recorded_with_peer_kind(self, machine):
        from repro.multi.runtime import MultiGpuRuntime

        multi = MultiGpuRuntime(machine, n_devices=2, check="observe")
        d0, d1 = multi.devices
        a = d0.malloc(1024, label="a")
        b = d1.malloc(1024, label="b")
        h = d0.malloc_pinned(1024, label="h")
        end = d0.memcpy_async(a, h, d0.create_stream())
        multi.peer_copy(1, b, 0, a, after=end)
        peers = [n for n in multi.checker.dag if n.kind == "peer"]
        assert len(peers) == 1
        (peer,) = peers
        assert peer.nbytes == a.nbytes > 0
        assert len(peer.streams) == 2           # source + destination
        assert categorize(peer) == "peer"
        assert (1, "after") in peer.deps


class TestReportCli:
    @pytest.fixture(scope="class")
    def manifest_path(self, heat_run, tmp_path_factory):
        path = tmp_path_factory.mktemp("critpath") / "run.json"
        path.write_text(json.dumps({
            "schema": "repro-run-manifest/1",
            "traceEvents": heat_run.trace.to_chrome_trace(),
            "metrics": heat_run.metrics,
            "dag": dag_to_json(heat_run.dag),
        }))
        return path

    def test_critpath_flag_prints_all_four_tables(self, manifest_path, capsys):
        assert main([str(manifest_path), "--critpath"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "critical-path attribution" in out
        assert "overlap efficiency" in out
        assert "what-if (replayed schedule)" in out
        assert "lane utilization" in out        # the base report still prints

    def test_json_format_round_trips(self, manifest_path, tmp_path):
        out_file = tmp_path / "report.json"
        rc = main([
            str(manifest_path), "--critpath",
            "--format", "json", "--out", str(out_file),
        ])
        assert rc == 0
        data = json.loads(out_file.read_text())
        titles = [t["title"] for t in data["tables"]]
        assert "critical-path attribution" in titles
        assert "what-if (replayed schedule)" in titles
        for t in data["tables"]:
            assert set(t) == {"title", "columns", "rows", "notes"}

    def test_critpath_works_without_dag_via_trace(self, heat_run, tmp_path,
                                                  capsys):
        path = tmp_path / "nodag.json"
        path.write_text(json.dumps({
            "schema": "repro-run-manifest/1",
            "traceEvents": heat_run.trace.to_chrome_trace(),
            "metrics": heat_run.metrics,
        }))
        assert main([str(path), "--critpath"]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
