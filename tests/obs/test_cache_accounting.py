"""Exact slot-cache accounting for scripted schedules.

The Figs. 7/8 scenario: more regions than device memory can hold, so the
slot cache evicts.  Every hit/miss/eviction/write-back the TileAcc
performs must show up — with exact counts — in ``runtime.metrics``,
including the ``access="ro"`` no-write-back path.
"""

import pytest

from repro.core.slots import DEVICE
from repro.core.tile_acc import TileAcc
from repro.cuda.runtime import CudaRuntime
from repro.openacc.runtime import AccRuntime
from repro.tida.tile_array import TileArray

REGION_BYTES = (16 // 4) * 8  # 4 cells of float64 per region


def make_stack(machine, *, n_regions=4, device_memory_limit=None, read_only=False):
    rt = CudaRuntime(machine, functional=True, device_memory_limit=device_memory_limit)
    acc = AccRuntime(rt)
    ta = TileArray((16,), n_regions=n_regions, ghost=0, runtime=rt, label="f")
    mgr = TileAcc(rt, acc, ta, read_only=read_only)
    return rt, mgr


def cache_counters(rt):
    counters = rt.metrics.snapshot()["counters"]
    return {
        name.split(".")[1]: value
        for name, value in counters.items()
        if name.startswith("cache.") and name.endswith(".f")
    }


class TestLimitedMemorySchedule:
    """4 regions, device memory for 2 slots: the eviction pipeline."""

    @pytest.fixture
    def stack(self, machine):
        rt, mgr = make_stack(machine, device_memory_limit=2 * REGION_BYTES + 8)
        assert mgr.n_slots == 2
        return rt, mgr

    def test_exact_counts(self, stack):
        rt, mgr = stack
        mgr.request_device(0)            # miss (slot 0 empty)
        mgr.request_device(1)            # miss (slot 1 empty)
        mgr.request_device(0)            # hit
        mgr.request_device(2)            # miss; evicts 0 with write-back
        mgr.request_device(3)            # miss; evicts 1 with write-back
        mgr.request_host(2)              # download; no cache decision
        mgr.request_device(2)            # miss (host copy newer); slot kept
        stats = cache_counters(rt)
        assert stats["hits"] == 1
        assert stats["misses"] == 5
        assert stats["evictions"] == 2
        assert stats["writebacks"] == 2
        assert stats["writeback_bytes"] == 2 * REGION_BYTES
        assert stats.get("writebacks_skipped", 0) == 0
        assert stats["upload_bytes_avoided"] == REGION_BYTES

    def test_decision_marks_carry_region_and_slot(self, stack):
        rt, mgr = stack
        mgr.request_device(0)
        mgr.request_device(1)            # both slots now occupied
        mgr.request_device(2)            # evicts region 0 (LRU) from slot 0
        names = [m["name"] for m in rt.trace.marks]
        assert names == ["cache-miss", "cache-miss", "cache-miss", "cache-evict"]
        evict = rt.trace.marks[-1]
        assert evict["args"]["field"] == "f"
        assert evict["args"]["region"] == 0
        assert evict["args"]["slot"] == 0
        assert evict["args"]["writeback"] is True
        miss = rt.trace.marks[2]
        assert miss["args"]["occupant"] == 0

    def test_occupancy_counter_track(self, stack):
        rt, mgr = stack
        mgr.request_device(0)
        mgr.request_device(1)
        mgr.request_device(2)            # evict + rebind: dips to 1, back to 2
        samples = rt.trace.counter_tracks["cache_occupancy:f"]
        assert [v for _ts, v in samples] == [1, 2, 1, 2]
        assert all(ts >= 0 for ts, _v in samples)

    def test_eviction_of_host_resident_region_writes_nothing_back(self, stack):
        rt, mgr = stack
        mgr.request_device(0)
        mgr.request_device(1)            # both slots now occupied
        mgr.request_host(0)              # downloaded; device copy now stale
        mgr.request_device(2)            # takes slot 0, but 0 lives on host
        stats = cache_counters(rt)
        assert stats["evictions"] == 1
        assert stats.get("writebacks", 0) == 0
        assert stats.get("writeback_bytes", 0) == 0


class TestReadOnlySchedule:
    """``access="ro"`` fields: evictions and host reads skip write-back."""

    @pytest.fixture
    def stack(self, machine):
        rt, mgr = make_stack(
            machine, device_memory_limit=2 * REGION_BYTES + 8, read_only=True
        )
        return rt, mgr

    def test_eviction_skips_writeback(self, stack):
        rt, mgr = stack
        mgr.request_device(0)            # miss
        mgr.request_device(1)            # miss; both slots occupied
        mgr.request_device(2)            # miss; evicts 0 without write-back
        stats = cache_counters(rt)
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
        assert stats.get("writebacks", 0) == 0
        assert stats.get("writeback_bytes", 0) == 0
        assert stats["writebacks_skipped"] == 1
        evict = rt.trace.marks[-1]
        assert evict["name"] == "cache-evict"
        assert evict["args"]["writeback"] is False

    def test_host_read_keeps_device_copy_and_counts_skip(self, stack):
        rt, mgr = stack
        mgr.request_device(0)
        d2h_before = mgr.d2h_count
        mgr.request_host(0)              # free: host copy never went stale
        mgr.request_device(0)            # still resident -> hit
        stats = cache_counters(rt)
        assert mgr.d2h_count == d2h_before
        assert stats["writebacks_skipped"] == 1
        assert stats["hits"] == 1
        assert mgr.location(0) == DEVICE
        assert any(m["name"] == "writeback-skip" for m in rt.trace.marks)


class TestFullyResidentSchedule:
    """Everything fits: after the cold pass every access is a hit."""

    def test_second_pass_all_hits(self, machine):
        rt, mgr = make_stack(machine)
        assert mgr.n_slots == 4
        for rid in range(4):
            mgr.request_device(rid)
        for rid in range(4):
            mgr.request_device(rid)
        stats = cache_counters(rt)
        assert stats["misses"] == 4
        assert stats["hits"] == 4
        assert stats["upload_bytes_avoided"] == 4 * REGION_BYTES
        assert stats.get("evictions", 0) == 0


class TestDisabledMetrics:
    def test_runtime_with_disabled_registry_still_works(self, machine):
        from repro.obs import MetricsRegistry

        rt = CudaRuntime(machine, functional=True,
                         metrics=MetricsRegistry(enabled=False))
        acc = AccRuntime(rt)
        ta = TileArray((16,), n_regions=4, ghost=0, runtime=rt, label="f")
        mgr = TileAcc(rt, acc, ta)
        mgr.request_device(0)
        mgr.request_device(0)
        assert rt.metrics.snapshot()["counters"] == {}
        assert mgr.is_on_device(0)
