"""Deterministic fault plans: what fails, when, and how.

A :class:`FaultPlan` is a seedable list of :class:`FaultRule` entries
evaluated by the simulated CUDA runtime at every injectable call site
(``memcpy_async``, ``launch``, ``malloc``, stream/device synchronize).
Rules express the chaos-testing vocabulary the scheduler must survive:

* *"fail the 3rd H2D on field u"* — ``FaultRule(op="h2d", field="u", nth=3)``;
* *"ECC error on any launch with p = 0.01"* — ``FaultRule(op="launch", p=0.01)``;
* *"OOM spike of N bytes from t = 2 s"* —
  ``FaultRule(op="malloc", kind="pressure", oom_bytes=N, after_t=2.0)``;
* *"stream hang for S seconds"* —
  ``FaultRule(op="sync", kind="hang", hang_seconds=S, nth=1)``.

Determinism is the whole point: one ``random.Random(seed)`` is consumed
in call order, so a fixed seed plus a fixed operation sequence replays
the exact same failures — the property the byte-identical recovery
tests rely on.  First matching rule wins per call; a rule only fires
while its virtual-time window ``[after_t, until_t)`` is open.
"""

from __future__ import annotations

import contextlib
import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import (
    CudaEccUncorrectableError,
    CudaError,
    CudaInvalidValueError,
    CudaMemoryAllocationError,
    CudaTransferError,
    FaultPlanError,
)

#: Injectable call sites, as the runtime names them.
OPS = ("h2d", "d2h", "launch", "malloc", "sync")

#: ``op="copy"`` matches both transfer directions; ``"*"`` matches everything.
_OP_GROUPS = {"copy": ("h2d", "d2h"), "*": OPS}

#: Error spellings a rule may request, and the per-op defaults.
ERROR_CLASSES: dict[str, type[CudaError]] = {
    "transfer": CudaTransferError,
    "ecc": CudaEccUncorrectableError,
    "oom": CudaMemoryAllocationError,
    "invalid": CudaInvalidValueError,
}
_DEFAULT_ERROR = {
    "h2d": "transfer",
    "d2h": "transfer",
    "launch": "ecc",
    "malloc": "oom",
    "sync": "transfer",
}


@dataclass
class FaultRule:
    """One injection rule.  See the module docstring for the vocabulary.

    ``nth`` fires on the nth matching call only (and caps the rule at one
    fire); ``p`` fires per matching call with the plan's seeded RNG; a
    rule with neither fires on *every* match (bounded by ``max_fires``).
    """

    op: str = "*"                    # "h2d"|"d2h"|"copy"|"launch"|"malloc"|"sync"|"*"
    field: str | None = None         # substring of the operation label
    nth: int | None = None           # fire on the nth matching call (1-based)
    p: float | None = None           # per-match fire probability
    after_t: float = 0.0             # virtual-time window [after_t, until_t)
    until_t: float = math.inf
    kind: str = "error"              # "error" | "hang" | "pressure"
    error: str | None = None         # ERROR_CLASSES key (default depends on op)
    hang_seconds: float = 0.0        # for kind="hang"
    oom_bytes: int = 0               # for kind="pressure" (op="malloc")
    max_fires: int | None = None     # total fire cap (None = unlimited)

    def __post_init__(self) -> None:
        if self.op not in OPS and self.op not in _OP_GROUPS:
            raise FaultPlanError(
                f"unknown op {self.op!r}; expected one of {OPS + tuple(_OP_GROUPS)}"
            )
        if self.kind not in ("error", "hang", "pressure"):
            raise FaultPlanError(f"unknown rule kind {self.kind!r}")
        if self.nth is not None and self.nth < 1:
            raise FaultPlanError(f"nth is 1-based, got {self.nth}")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise FaultPlanError(f"p must be in [0, 1], got {self.p}")
        if self.nth is not None and self.p is not None:
            raise FaultPlanError("nth and p are mutually exclusive")
        if self.until_t <= self.after_t:
            raise FaultPlanError(
                f"empty time window [{self.after_t}, {self.until_t})"
            )
        if self.error is not None and self.error not in ERROR_CLASSES:
            raise FaultPlanError(
                f"unknown error {self.error!r}; have {sorted(ERROR_CLASSES)}"
            )
        if self.kind == "hang" and self.hang_seconds <= 0:
            raise FaultPlanError("hang rules need hang_seconds > 0")
        if self.kind == "pressure":
            if self.oom_bytes <= 0:
                raise FaultPlanError("pressure rules need oom_bytes > 0")
            if self.op not in ("malloc", "*"):
                raise FaultPlanError("pressure rules apply to op='malloc'")
        if self.max_fires is None and self.nth is not None:
            self.max_fires = 1

    def matches_op(self, op: str) -> bool:
        return op == self.op or op in _OP_GROUPS.get(self.op, ())

    def in_window(self, now: float) -> bool:
        return self.after_t <= now < self.until_t

    def error_class(self, op: str) -> type[CudaError]:
        return ERROR_CLASSES[self.error or _DEFAULT_ERROR[op]]


@dataclass(frozen=True)
class Injection:
    """One fired rule, handed back to the runtime call site."""

    rule: FaultRule
    rule_index: int
    op: str
    label: str

    @property
    def kind(self) -> str:
        return self.rule.kind

    @property
    def hang_seconds(self) -> float:
        return self.rule.hang_seconds

    def make_error(self) -> CudaError:
        cls = self.rule.error_class(self.op)
        return cls(
            f"injected fault (rule #{self.rule_index}: {self.op} on "
            f"{self.label or '<unlabelled>'})"
        )


class FaultPlan:
    """A seeded, deterministic schedule of failures.

    The runtime calls :meth:`draw` once per injectable operation;
    :meth:`memory_pressure` adds the active ``pressure`` rules' bytes to
    every allocation check.  :meth:`suspended` turns the plan off for a
    scope — the resilience layer uses it for the emergency
    flush-to-host, which must not itself be sabotaged.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), *, seed: int = 0) -> None:
        self.rules = list(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultPlanError(f"not a FaultRule: {rule!r}")
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._matches = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)
        self._suspended = 0

    def reset(self) -> None:
        """Rewind the plan to its initial state (fresh RNG and counters)."""
        self._rng = random.Random(self.seed)
        self._matches = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)

    @property
    def fired(self) -> int:
        """Total injections delivered so far (hangs included)."""
        return sum(self._fires)

    @contextlib.contextmanager
    def suspended(self) -> Iterator[None]:
        """No rule fires (and no RNG draw happens) inside this scope."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def draw(self, op: str, label: str, now: float) -> Injection | None:
        """Evaluate the plan for one operation; first firing rule wins."""
        if self._suspended:
            return None
        for i, rule in enumerate(self.rules):
            if rule.kind == "pressure":
                continue
            if not rule.matches_op(op) or not rule.in_window(now):
                continue
            if rule.field is not None and rule.field not in label:
                continue
            self._matches[i] += 1
            if rule.max_fires is not None and self._fires[i] >= rule.max_fires:
                continue
            if rule.nth is not None:
                if self._matches[i] != rule.nth:
                    continue
            elif rule.p is not None:
                if self._rng.random() >= rule.p:
                    continue
            self._fires[i] += 1
            return Injection(rule=rule, rule_index=i, op=op, label=label)
        return None

    def memory_pressure(self, now: float) -> int:
        """Extra bytes the active OOM-spike rules subtract from free memory."""
        if self._suspended:
            return 0
        return sum(
            r.oom_bytes for r in self.rules
            if r.kind == "pressure" and r.in_window(now)
        )

    # -- spec strings --------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact plan spec (the harness/CI knob).

        Semicolon-separated clauses, each ``op[:key=value,...]``, plus an
        optional ``seed=N`` clause::

            h2d:field=u,nth=3; launch:p=0.01; malloc:oom=1048576,after=0.5;
            sync:hang=0.002,nth=1; seed=42

        Keys: ``field``, ``nth``, ``p``, ``after``/``until`` (seconds),
        ``error``, ``hang`` (seconds, implies ``kind="hang"``), ``oom``
        (bytes, implies ``kind="pressure"``), ``max_fires``.
        """
        rules: list[FaultRule] = []
        seed = 0
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise FaultPlanError(f"bad seed clause {clause!r}") from None
                continue
            op, _, body = clause.partition(":")
            kwargs: dict[str, object] = {"op": op.strip()}
            for item in filter(None, (s.strip() for s in body.split(","))):
                key, sep, value = item.partition("=")
                if not sep:
                    raise FaultPlanError(f"bad rule item {item!r} in {clause!r}")
                key = key.strip()
                value = value.strip()
                try:
                    if key in ("nth", "max_fires"):
                        kwargs[key] = int(value)
                    elif key == "p":
                        kwargs["p"] = float(value)
                    elif key == "after":
                        kwargs["after_t"] = float(value)
                    elif key == "until":
                        kwargs["until_t"] = float(value)
                    elif key == "hang":
                        kwargs["kind"] = "hang"
                        kwargs["hang_seconds"] = float(value)
                    elif key == "oom":
                        kwargs["kind"] = "pressure"
                        kwargs["oom_bytes"] = int(value)
                    elif key in ("field", "error"):
                        kwargs[key] = value
                    else:
                        raise FaultPlanError(
                            f"unknown rule key {key!r} in {clause!r}"
                        )
                except ValueError:
                    raise FaultPlanError(
                        f"bad value {value!r} for {key!r} in {clause!r}"
                    ) from None
            rules.append(FaultRule(**kwargs))  # type: ignore[arg-type]
        return cls(rules, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self.rules)} rules, seed={self.seed}, fired={self.fired})"
