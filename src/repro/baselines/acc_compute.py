"""Pure-OpenACC runner for the compute-intensive kernel (Fig. 6).

A data region around the loop, one generated kernel per step with
compiler geometry and PGI math codegen — which is why this baseline is
*comparable* to TiDA-acc on this kernel (§VI-B: "the performance of
OpenACC is also comparable because this kernel does not require ghost
cell exchange").
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_MACHINE, MachineSpec
from ..cuda.runtime import CudaRuntime
from ..kernels.compute_intensive import DEFAULT_KERNEL_ITERATION, compute_intensive_kernel
from ..openacc.compiler import AccFlags
from ..openacc.runtime import AccRuntime
from .common import BaselineResult, default_init


def run_acc_compute(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    memory: str = "pageable",
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
    functional: bool = False,
    initial: np.ndarray | None = None,
) -> BaselineResult:
    """Run the OpenACC compute-intensive baseline."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    runtime = CudaRuntime(machine, functional=functional)
    acc = AccRuntime(runtime, AccFlags(pinned=(memory == "pinned"), managed=(memory == "managed")))
    kernel = compute_intensive_kernel(kernel_iteration)
    ndim = len(shape)
    n_cells = 1
    for s in shape:
        n_cells *= s
    params = {"lo": (0,) * ndim, "hi": shape, "kernel_iteration": kernel_iteration}

    data = acc.alloc_data(shape, label="data")
    if functional:
        init = initial if initial is not None else default_init(shape, 0)
        data.array[...] = init

    t0 = runtime.now
    with acc.data(copy=[data]):
        for _ in range(steps):
            acc.parallel_loop(
                kernel,
                arrays=[data],
                n_cells=n_cells,
                collapse=ndim,
                loop_dims=ndim,
                params=params,
                label="acc-compute",
            )
        acc.wait()
    if memory == "managed":
        final = runtime.managed_host_access(data)
    else:
        final = data.array if functional else None
    elapsed = runtime.now - t0
    return BaselineResult(
        name=f"openacc-{memory}", elapsed=elapsed, shape=shape, steps=steps,
        trace=runtime.trace, result=final.copy() if functional else None,
        meta={"memory": memory, "kernel_iteration": kernel_iteration},
    )
