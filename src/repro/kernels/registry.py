"""Kernel registry: name -> factory, for CLI-ish example/bench plumbing."""

from __future__ import annotations

from typing import Callable

from ..cuda.kernel import KernelSpec
from ..errors import ReproError
from .blur import blur_kernel
from .compute_intensive import compute_intensive_kernel
from .heat import heat_kernel
from .wave import wave_kernel

KERNELS: dict[str, Callable[..., KernelSpec]] = {
    "heat": heat_kernel,
    "compute-intensive": compute_intensive_kernel,
    "blur": blur_kernel,
    "wave": wave_kernel,
}


def get_kernel_factory(name: str) -> Callable[..., KernelSpec]:
    try:
        return KERNELS[name]
    except KeyError:
        raise ReproError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
