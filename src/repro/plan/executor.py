"""Execute a planned :class:`~repro.plan.Program` on a ``TidaAcc``.

The executor walks the program's statements and drives the exact same
public API the hand-built drivers use — ``fill_boundary``, ``iterator``
+ ``compute``, ``swap``, ``reduce_field`` — so a planned run's schedule
is operation-for-operation the schedule a careful human would have
written.  On top of that it applies the planner's redundancy proofs
dynamically:

* every field carries a *halo-dirty* bit (set initially, on any write,
  and transferred by swaps); a stencil-read step fills the halo only
  when the bit is set, otherwise the fill is **elided** and the bytes it
  would have copied are credited to ``plan.halo_bytes_saved``;
* read-only residencies need no dynamic handling — ``access="ro"``
  fields skip write-backs inside :class:`~repro.core.tile_acc.TileAcc`,
  surfacing as ``cache.writebacks_skipped.<field>`` counters.

Eliding a fill of a clean halo is byte-safe: the copy it skips would
have rewritten identical values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import PlanError
from ..tida.boundary import BoundaryCondition, domain_faces
from .planner import PlanReport
from .program import Loop, Program, Reduce, Scalar, ScalarRef, Step, Swap

if TYPE_CHECKING:  # pragma: no cover
    from ..core.library import TidaAcc


@dataclass
class ProgramRun:
    """Outcome of one ``run_program`` execution."""

    plan: PlanReport
    elapsed: float                 # virtual seconds
    env: dict[str, float]          # final scalar environment
    iterations: int                # trips completed by the outermost loop
    fills: int = 0                 # halo exchanges performed
    fills_elided: int = 0          # halo exchanges proven redundant
    halo_bytes_saved: int = 0      # bytes those elisions would have copied
    meta: dict[str, Any] = field(default_factory=dict)


def halo_fill_bytes(ta: Any, bc: BoundaryCondition | None) -> int:
    """Bytes one whole-field ``fill_boundary`` copies (analytically).

    Mirrors :meth:`~repro.tida.tile_array.TileArray.fill_region_ghosts`
    byte accounting without touching data — the credit booked when an
    exchange is elided.
    """
    if all(g == 0 for g in ta.ghost):
        return 0
    itemsize = ta.dtype.itemsize
    periodic = bc is not None and bc.is_periodic
    total = 0
    for region in ta.regions:
        for _src, src_box, _dst_box in ta.exchange_pairs(region, periodic=periodic):
            total += src_box.size * itemsize
        if bc is not None and not periodic:
            for _axis, _side, ghost_box, _src_box in domain_faces(region, ta.domain):
                total += ghost_box.size * itemsize
    return total


class _Executor:
    def __init__(
        self,
        lib: "TidaAcc",
        prog: Program,
        plan: PlanReport,
        *,
        order: str = "sequential",
        order_seed: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        env: dict[str, float] | None = None,
    ) -> None:
        self.lib = lib
        self.prog = prog
        self.plan = plan
        self.order = order
        self.order_seed = order_seed
        self.tile_shape = tile_shape
        self.env: dict[str, float] = dict(env or {})
        self.functional = lib.runtime.functional
        # ghosts start stale: nothing has filled them yet
        self.halo_dirty: dict[str, bool] = {n: True for n in plan.fields}
        self.fills = 0
        self.fills_elided = 0
        self.halo_bytes_saved = 0
        self.iterations = 0
        self._fill_bytes_cache: dict[tuple[str, int], int] = {}

    # -- helpers -----------------------------------------------------------

    def _resolve_params(self, params: dict[str, Any]) -> dict[str, Any]:
        out = {}
        for key, value in params.items():
            if isinstance(value, ScalarRef):
                if value.name not in self.env:
                    raise PlanError(
                        f"param {key!r} references scalar {value.name!r} "
                        "before any reduce/scalar produced it"
                    )
                out[key] = self.env[value.name]
            else:
                out[key] = value
        return out

    def _elided_bytes(self, fname: str, bc: BoundaryCondition | None) -> int:
        key = (fname, id(bc.__class__) if bc is not None else 0)
        if key not in self._fill_bytes_cache:
            self._fill_bytes_cache[key] = halo_fill_bytes(self.lib.field(fname), bc)
        return self._fill_bytes_cache[key]

    def _ensure_halo(self, fname: str, bc: BoundaryCondition | None) -> None:
        if self.halo_dirty[fname]:
            self.lib.fill_boundary(fname, bc)
            self.halo_dirty[fname] = False
            self.fills += 1
            self.lib.metrics.inc("plan.fills")
            return
        saved = self._elided_bytes(fname, bc)
        self.fills_elided += 1
        self.halo_bytes_saved += saved
        self.lib.metrics.inc("plan.fills_elided")
        self.lib.metrics.inc("plan.halo_bytes_saved", saved)

    # -- statement dispatch ------------------------------------------------
    #
    # The walk is written as a generator yielding at *quantum boundaries*:
    # after each region's compute call, each reduction, and each halo
    # fill.  Everything between two yields is an atomic unit — in
    # particular the request_device → launch → note_device_op sequence
    # inside ``lib.compute`` is never split, which is what keeps the
    # ``covers=True`` dependency collapse sound when the multi-tenant
    # service interleaves several programs on one runtime.  ``run()``
    # drains the generator, so a solo run issues the exact same
    # operation sequence it always did.

    def run(self) -> None:
        for _ in self.steps():
            pass

    def steps(self):
        """Generator over the program's quanta (see module docstring)."""
        return self._run_block(self.prog.statements, outermost=True)

    def _run_block(self, stmts: tuple[Any, ...], *, outermost: bool = False):
        for s in stmts:
            if isinstance(s, Loop):
                for _trip in range(s.count):
                    if self.functional and s.until is not None and s.until(self.env):
                        break
                    yield from self._run_block(s.body)
                    if outermost:
                        self.iterations += 1
            elif isinstance(s, Step):
                yield from self._run_step(s)
            elif isinstance(s, Swap):
                self.lib.swap(s.a, s.b)
                self.halo_dirty[s.a], self.halo_dirty[s.b] = (
                    self.halo_dirty[s.b], self.halo_dirty[s.a],
                )
            elif isinstance(s, Reduce):
                self.env[s.store] = self.lib.reduce_field(
                    list(s.fields), s.spec, gpu=s.gpu,
                    params=self._resolve_params(s.params),
                )
                yield
            elif isinstance(s, Scalar):
                self.env[s.name] = (
                    s.fn(self.env) if self.functional else s.timing
                )
            else:  # pragma: no cover - Program builders reject these
                raise PlanError(f"unknown statement {s!r}")

    def _run_step(self, s: Step):
        ndim = len(self.prog.domain)
        bc = s.bc if s.bc is not None else self.prog.bc
        for i, fname in enumerate(s.fields):
            if _reads(s.kernel, i) and s.kernel.reads_neighbors(i, ndim):
                filled = self.halo_dirty[fname]
                self._ensure_halo(fname, bc)
                if filled:
                    yield
        params = self._resolve_params(s.params)
        it = self.lib.iterator(
            *s.fields, tile_shape=self.tile_shape,
            order=self.order, seed=self.order_seed,
        ).reset(gpu=s.gpu)
        while it.is_valid():
            self.lib.compute(it, s.kernel, params=params)
            it.next()
            yield
        for i, fname in enumerate(s.fields):
            if _writes(s.kernel, i):
                self.halo_dirty[fname] = True


def _access(kernel: Any, index: int) -> str:
    if kernel.arg_access is not None and index < len(kernel.arg_access):
        return kernel.arg_access[index]
    return "rw"


def _reads(kernel: Any, index: int) -> bool:
    return _access(kernel, index) in ("r", "rw")


def _writes(kernel: Any, index: int) -> bool:
    return _access(kernel, index) in ("w", "rw")


def program_stepper(
    lib: "TidaAcc",
    prog: Program,
    plan: PlanReport,
    *,
    inputs: dict[str, Any] | None = None,
    env: dict[str, float] | None = None,
    order: str = "sequential",
    order_seed: int | None = None,
    tile_shape: tuple[int, ...] | None = None,
):
    """Cooperative-execution generator over a planned program.

    Yields ``None`` at every quantum boundary (one region's compute, one
    reduction, one halo fill) and *returns* the :class:`ProgramRun` via
    ``StopIteration.value``.  Setup (field allocation, input scatter) is
    lazy — it runs on the first ``next()`` — so a multi-tenant scheduler
    controls exactly when a job starts touching the device.

    Fields ``lib`` already has (attached by the service's cross-job
    read-only dedup) are not re-declared, and inputs targeting shared
    fields are not re-scattered: the share was keyed on byte-identical
    content, so the data is already there.
    """
    for fplan in plan.fields.values():
        if lib.has_field(fplan.name):
            continue  # pre-attached (cross-job read-only dedup)
        lib.add_array(
            fplan.name, plan.domain,
            n_regions=plan.n_regions,
            halo=fplan.halo,
            n_slots=plan.n_slots,
            access=fplan.access,
            dtype=plan.dtype,
        )
    if inputs:
        unknown = set(inputs) - set(plan.fields)
        if unknown:
            raise PlanError(f"inputs for unplanned field(s) {sorted(unknown)}")
        for name, arr in inputs.items():
            if name in lib._shared:
                continue
            lib.field(name).from_global(arr)

    t0 = lib.now
    ex = _Executor(
        lib, prog, plan, order=order, order_seed=order_seed,
        tile_shape=tile_shape, env=env,
    )
    yield from ex.steps()
    return ProgramRun(
        plan=plan,
        elapsed=lib.now - t0,
        env=ex.env,
        iterations=ex.iterations,
        fills=ex.fills,
        fills_elided=ex.fills_elided,
        halo_bytes_saved=ex.halo_bytes_saved,
    )


def execute_program(
    lib: "TidaAcc",
    prog: Program,
    plan: PlanReport,
    *,
    inputs: dict[str, Any] | None = None,
    env: dict[str, float] | None = None,
    order: str = "sequential",
    order_seed: int | None = None,
    tile_shape: tuple[int, ...] | None = None,
) -> ProgramRun:
    """Add the planned fields to ``lib``, scatter inputs, run ``prog``.

    Drains :func:`program_stepper` to completion — the solo-run path.
    See :meth:`repro.core.library.TidaAcc.run_program` for the public
    entry point and parameter semantics.
    """
    stepper = program_stepper(
        lib, prog, plan, inputs=inputs, env=env,
        order=order, order_seed=order_seed, tile_shape=tile_shape,
    )
    while True:
        try:
            next(stepper)
        except StopIteration as stop:
            return stop.value


def writebacks_skipped(metrics_snapshot: dict[str, Any], plan: PlanReport) -> float:
    """Sum of ``cache.writebacks_skipped.<field>`` over the plan's proven
    read-only fields — the write-back half of the skipped-traffic ledger."""
    counters = metrics_snapshot.get("counters", metrics_snapshot)
    return float(sum(
        v for name, v in counters.items()
        if name.startswith("cache.writebacks_skipped.")
        and name.split(".", 2)[2] in plan.ro_fields
    ))
