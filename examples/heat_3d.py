#!/usr/bin/env python
"""The paper's Fig. 5 experiment as a configurable command-line driver.

Runs the 3-D heat solver at paper scale (timing-only mode, so 512^3
simulates in seconds) under four execution models and prints the speedup
table over the CUDA-pageable baseline.

Run:  python examples/heat_3d.py [--size 512] [--regions 16] [--steps 1 10 100 1000]
"""

import argparse

from repro.baselines import run_acc_heat, run_cuda_heat, run_tida_heat
from repro.bench.report import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=512, help="cubic grid edge")
    parser.add_argument("--regions", type=int, default=16, help="TiDA-acc region count")
    parser.add_argument("--steps", type=int, nargs="+", default=[1, 10, 100, 1000])
    args = parser.parse_args()

    shape = (args.size,) * 3
    table = Table(
        title=f"heat {shape}: speedup over CUDA-pageable ({args.regions} regions)",
        columns=["iterations", "cuda-pageable_s", "cuda-pinned", "openacc", "tida-acc"],
    )
    for steps in args.steps:
        base = run_cuda_heat(shape=shape, steps=steps, memory="pageable").elapsed
        pinned = run_cuda_heat(shape=shape, steps=steps, memory="pinned").elapsed
        acc = run_acc_heat(shape=shape, steps=steps, memory="pageable").elapsed
        tida = run_tida_heat(shape=shape, steps=steps, n_regions=args.regions).elapsed
        table.add_row(steps, base, base / pinned, base / acc, base / tida)
    print(table.format())
    print("\npaper shape: TiDA-acc dominates at few iterations (transfers hidden),")
    print("converges toward the CUDA variants as compute amortizes; OpenACC lowest.")


if __name__ == "__main__":
    main()
