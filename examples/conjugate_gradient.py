#!/usr/bin/env python
"""Poisson solve with conjugate gradients, entirely on tiled GPU fields.

A full downstream application of the TiDA-acc API: the matrix-free
Laplacian matvec (stencil + ghost exchange), three vector-update kernels
and two device reductions per iteration, all pipelined across region
streams.  Verifies the solution against a dense solve and reports the
convergence history plus the virtual-time breakdown.

Run:  python examples/conjugate_gradient.py [--size 24] [--regions 4]
"""

import argparse

import numpy as np

from repro.apps import TiledCG
from repro.apps.cg import assemble_laplacian_dense


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=24)
    parser.add_argument("--regions", type=int, default=4)
    parser.add_argument("--tol", type=float, default=1e-10)
    args = parser.parse_args()

    shape = (args.size, args.size)
    rng = np.random.default_rng(7)
    b = rng.random(shape)

    cg = TiledCG(shape, n_regions=args.regions)
    res = cg.solve(b, tol=args.tol)

    A = assemble_laplacian_dense(shape)
    x_ref = np.linalg.solve(A, b.ravel()).reshape(shape)
    err = np.abs(res.x - x_ref).max()

    print(f"Poisson {shape}, {args.regions} regions")
    print(f"  converged      : {res.converged} in {res.iterations} iterations")
    print(f"  max |x - x_ref|: {err:.3e} (vs dense numpy solve)")
    print(f"  virtual time   : {res.elapsed * 1e3:.3f} ms")
    hist = res.residual_norms
    marks = [0, len(hist) // 4, len(hist) // 2, 3 * len(hist) // 4, len(hist) - 1]
    print("  residual history:")
    for i in sorted(set(marks)):
        print(f"    iter {i + 1:4d}: ||r|| = {hist[i]:.3e}")
    trace = cg.lib.trace
    kernels = len(trace.by_category("kernel"))
    print(f"  {kernels} kernel launches, "
          f"{len(trace.by_category('h2d'))} H2D / {len(trace.by_category('d2h'))} D2H transfers")


if __name__ == "__main__":
    main()
