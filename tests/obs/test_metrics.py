"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    merge_snapshots,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ObsError):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_tracks_last_and_high_water(self):
        g = Gauge("q")
        g.set(3.0)
        g.set(7.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max == 7.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", buckets=(1.0, 4.0, 16.0))
        for v in (0.5, 1.0, 3.0, 16.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # counts: <=1: {0.5, 1.0}, <=4: {3.0}, <=16: {16.0}, overflow: {100.0}
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(120.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0

    def test_empty_histogram_has_null_extrema(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_bad_buckets_rejected(self):
        with pytest.raises(ObsError):
            Histogram("h", buckets=())
        with pytest.raises(ObsError):
            Histogram("h", buckets=(4.0, 1.0))
        with pytest.raises(ObsError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_instruments_cached_by_name(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")

    def test_convenience_one_shots(self):
        m = MetricsRegistry()
        m.inc("c", 2.0)
        m.set_gauge("g", 5.0)
        m.observe("h", 3.0)
        assert m.value("c") == 2.0
        assert m.value("never") == 0.0
        snap = m.snapshot()
        assert snap["gauges"]["g"] == {"value": 5.0, "max": 5.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serializable_and_sorted(self):
        m = MetricsRegistry()
        m.inc("b")
        m.inc("a")
        snap = m.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]

    def test_save_json_round_trips(self, tmp_path):
        m = MetricsRegistry()
        m.inc("x", 4.0)
        path = m.save_json(tmp_path / "metrics.json")
        assert json.loads(path.read_text())["counters"]["x"] == 4.0

    def test_reset_drops_instruments(self):
        m = MetricsRegistry()
        m.inc("x")
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_registry_is_a_no_op(self):
        m = MetricsRegistry(enabled=False)
        m.counter("c").inc(10.0)
        m.gauge("g").set(5.0)
        m.histogram("h").observe(1.0)
        m.inc("c2")
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        # disabled instruments share one null object
        assert m.counter("a") is m.counter("b")


class TestMerge:
    def test_counters_sum_gauges_max_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1.0)
        b.inc("c", 2.0)
        b.inc("only_b", 5.0)
        a.set_gauge("g", 3.0)
        b.set_gauge("g", 7.0)
        a.observe("h", 1.0)
        b.observe("h", 100.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 3.0
        assert merged["counters"]["only_b"] == 5.0
        assert merged["gauges"]["g"]["max"] == 7.0
        h = merged["histograms"]["h"]
        assert h["count"] == 2
        assert h["sum"] == pytest.approx(101.0)
        assert h["min"] == 1.0 and h["max"] == 100.0

    def test_merge_does_not_mutate_inputs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        snap_a = a.snapshot()
        merge_snapshots([snap_a, b.snapshot()])
        assert snap_a["histograms"]["h"]["count"] == 1

    def test_incompatible_buckets_counted_not_raised(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        b.histogram("h", buckets=(10.0, 20.0)).observe(1.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["obs.merge_bucket_mismatch"] == 1

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}


class TestCollection:
    def test_collect_merges_registries_created_after_start(self):
        before = MetricsRegistry()
        before.inc("x")
        obs_metrics.start_collection()
        try:
            r1, r2 = MetricsRegistry(), MetricsRegistry()
            r1.inc("x", 1.0)
            r2.inc("x", 2.0)
        finally:
            merged = obs_metrics.collect()
        assert merged["counters"]["x"] == 3.0  # `before` not included
        # collection stops: new registries are no longer retained
        assert obs_metrics._collection is None


class TestHistogramStatistics:
    """Percentile/summary estimators, safe on degenerate series."""

    def test_empty_series(self):
        h = Histogram("h")
        assert h.mean is None
        assert h.percentile(0.5) is None
        s = h.summary()
        assert s == {"count": 0, "sum": 0.0, "mean": None, "min": None,
                     "max": None, "p50": None, "p90": None, "p99": None}

    def test_single_sample_series(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(3.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 3.0
        s = h.summary()
        assert s["mean"] == 3.0 and s["min"] == s["max"] == 3.0
        assert s["p50"] == s["p99"] == 3.0

    def test_constant_series_has_no_spread(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for _ in range(5):
            h.observe(4.0)
        assert h.percentile(0.1) == 4.0
        assert h.percentile(0.9) == 4.0

    def test_percentiles_are_monotone_and_clamped(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0, 16.0))
        for v in (0.5, 1.5, 1.7, 3.0, 3.5, 5.0, 7.0, 9.0, 12.0, 15.0):
            h.observe(v)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        ps = [h.percentile(q) for q in qs]
        assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))
        assert all(h.min <= p <= h.max for p in ps)

    def test_overflow_mass_returns_observed_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        for v in (100.0, 200.0, 300.0):
            h.observe(v)
        assert h.percentile(0.99) == 300.0

    def test_out_of_range_q_rejected(self):
        h = Histogram("h")
        with pytest.raises(ObsError):
            h.percentile(1.5)
        with pytest.raises(ObsError):
            h.percentile(-0.1)

    def test_snapshot_carries_mean(self):
        h = Histogram("h", buckets=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.snapshot()["mean"] == pytest.approx(3.0)


class TestSnapshotDeterminism:
    """Snapshots must be key-ordered so JSONL streams diff bytewise."""

    def test_registry_snapshot_is_sorted(self):
        r = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            r.inc(name)
            r.gauge(f"g.{name}").set(1.0)
            r.observe(f"h.{name}", 1.0)
        snap = r.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert list(snap["gauges"]) == sorted(snap["gauges"])
        assert list(snap["histograms"]) == sorted(snap["histograms"])

    def test_merged_snapshot_is_sorted(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("zebra")
        b.inc("ant")
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert list(merged["counters"]) == ["ant", "zebra"]

    def test_identical_registries_snapshot_identically(self):
        def build():
            r = MetricsRegistry()
            r.inc("b", 2.0)
            r.inc("a", 1.0)
            r.observe("h", 3.0)
            return json.dumps(r.snapshot(), sort_keys=False)

        assert build() == build()
