"""Managed (unified) memory semantics: Kepler-era migration model."""

import numpy as np
import pytest

from repro.cuda.kernel import KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.cuda.uvm import DEVICE, HOST
from repro.errors import CudaInvalidValueError


def inc_kernel():
    def body(arr):
        arr += 1.0
    return KernelSpec(name="inc", body=body, bytes_per_cell=16.0)


class TestMigration:
    def test_launch_migrates_to_device(self, runtime):
        buf = runtime.malloc_managed((8,))
        runtime.launch(inc_kernel(), buffers=[buf])
        assert buf.location == DEVICE

    def test_migration_appears_in_trace(self, runtime):
        buf = runtime.malloc_managed((8,), label="m")
        runtime.launch(inc_kernel(), buffers=[buf])
        migrations = [e for e in runtime.trace if e.meta.get("managed")]
        assert len(migrations) == 1
        assert migrations[0].category == "h2d"

    def test_second_launch_does_not_remigrate(self, runtime):
        buf = runtime.malloc_managed((8,))
        runtime.launch(inc_kernel(), buffers=[buf])
        runtime.launch(inc_kernel(), buffers=[buf])
        migrations = [e for e in runtime.trace if e.meta.get("managed")]
        assert len(migrations) == 1

    def test_host_access_migrates_back_and_blocks(self, tiny_runtime):
        rt = tiny_runtime
        buf = rt.malloc_managed((10_000,))
        rt.launch(inc_kernel(), buffers=[buf])
        t_before = rt.now
        arr = rt.managed_host_access(buf)
        assert buf.location == HOST
        assert rt.now > t_before
        assert np.all(arr == 1.0)

    def test_host_access_when_on_host_is_free_of_migration(self, runtime):
        buf = runtime.malloc_managed((8,))
        runtime.managed_host_access(buf)
        assert not any(e.meta.get("managed") for e in runtime.trace)

    def test_functional_single_pointer_semantics(self, runtime):
        """One array serves both sides — the UVM illusion."""
        buf = runtime.malloc_managed((4,), fill=1.0)
        runtime.launch(inc_kernel(), buffers=[buf])
        runtime.launch(inc_kernel(), buffers=[buf])
        assert np.all(runtime.managed_host_access(buf) == 3.0)

    def test_managed_slower_than_pinned_roundtrip(self, tiny_runtime):
        """Migration runs at a fraction of pinned bandwidth + launch tax."""
        rt = tiny_runtime
        n = 100_000
        k = inc_kernel()

        pinned_host = rt.malloc_pinned((n,))
        dev = rt.malloc((n,))
        t0 = rt.now
        rt.memcpy(dev, pinned_host)
        rt.launch(k, buffers=[dev])
        rt.memcpy(pinned_host, dev)
        t_pinned = rt.now - t0

        managed = rt.malloc_managed((n,))
        t0 = rt.now
        rt.launch(k, buffers=[managed])
        rt.managed_host_access(managed)
        t_managed = rt.now - t0
        assert t_managed > t_pinned

    def test_per_launch_managed_overhead(self, machine):
        rt = CudaRuntime(machine, functional=False)
        buf = rt.malloc_managed((8,))
        rt.launch(inc_kernel(), buffers=[buf])
        t0 = rt.now
        rt.launch(inc_kernel(), buffers=[buf])  # no migration, still taxed
        assert rt.now - t0 >= machine.gpu.managed_launch_overhead


class TestManagedErrors:
    def test_access_foreign_managed(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        buf = rt_a.malloc_managed((8,))
        with pytest.raises(CudaInvalidValueError):
            rt_b.managed_host_access(buf)

    def test_access_after_free(self, runtime):
        buf = runtime.malloc_managed((8,))
        runtime.free_managed(buf)
        with pytest.raises(CudaInvalidValueError):
            runtime.managed_host_access(buf)

    def test_launch_with_foreign_managed(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        buf = rt_a.malloc_managed((8,))
        with pytest.raises(CudaInvalidValueError):
            rt_b.launch(inc_kernel(), buffers=[buf], n_cells=8)

    def test_timing_only_managed(self, machine):
        rt = CudaRuntime(machine, functional=False)
        buf = rt.malloc_managed((512, 512, 512))
        rt.launch(inc_kernel().__class__(name="inc", body=None, bytes_per_cell=16.0),
                  buffers=[buf])
        assert rt.managed_host_access(buf) is None
