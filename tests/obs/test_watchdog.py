"""Unit tests for the online watchdog detectors (repro.obs.live.watchdog)."""

import pytest

from repro.obs.live import (
    Alert,
    TelemetryBus,
    Watchdog,
    default_detectors,
    severity_at_least,
)
from repro.obs.live.bus import TelemetrySample
from repro.obs.live.watchdog import (
    CacheThrashDetector,
    HazardRateDetector,
    OverlapCollapseDetector,
    QueueRunawayDetector,
    RetryStormDetector,
    SEVERITIES,
    StallSpikeDetector,
)


def mk_sample(seq, *, dt=1e-3, stall=0.0, compute=0.5, transfer=0.5,
              overlap=None, hit_rate=None, queue=0.0, deltas=None):
    """A hand-built telemetry sample at t = (seq+1)*dt."""
    return TelemetrySample(
        seq=seq, t=(seq + 1) * dt, dt=dt, totals={}, deltas=dict(deltas or {}),
        h2d_bytes_per_s=0.0, d2h_bytes_per_s=0.0, stall_fraction=stall,
        compute_fraction=compute, transfer_fraction=transfer,
        cache_hit_rate=hit_rate, overlap_efficiency=overlap, queue_depth=queue,
    )


def feed(detector, samples):
    return [a for a in (detector.update(s) for s in samples) if a is not None]


class TestSeverities:
    def test_order(self):
        assert severity_at_least("critical", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("info", "warning")

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError):
            severity_at_least("fatal", "warning")

    def test_alert_roundtrip(self):
        a = Alert(detector="d", severity="warning", t=1.0,
                  window=(0.0, 1.0), message="m", evidence={"x": 1})
        assert Alert.from_dict(a.to_dict()) == a


class TestOverlapCollapse:
    def test_fires_on_sustained_zero_overlap(self):
        d = OverlapCollapseDetector()
        alerts = feed(d, [mk_sample(i, overlap=0.0) for i in range(10)])
        assert alerts and alerts[0].detector == "overlap_collapse"
        assert alerts[0].severity == "critical"  # EWMA 0 < threshold/2

    def test_healthy_overlap_is_quiet(self):
        d = OverlapCollapseDetector()
        assert feed(d, [mk_sample(i, overlap=0.9) for i in range(20)]) == []

    def test_idle_windows_do_not_qualify(self):
        d = OverlapCollapseDetector()
        # overlap is zero but one engine is idle: nothing to hide behind
        samples = [mk_sample(i, overlap=0.0, transfer=0.01) for i in range(20)]
        assert feed(d, samples) == []

    def test_warning_band_above_half_threshold(self):
        d = OverlapCollapseDetector(min_efficiency=0.2)
        alerts = feed(d, [mk_sample(i, overlap=0.12) for i in range(10)])
        assert alerts and alerts[0].severity == "warning"


class TestStallSpike:
    def quiet_then_spike(self, n_spike):
        base = [mk_sample(i, stall=0.01) for i in range(12)]
        spike = [mk_sample(12 + i, stall=0.95) for i in range(n_spike)]
        return base + spike

    def test_single_dead_window_is_quiet(self):
        # one-off dead window (end-of-run teardown): no alert
        d = StallSpikeDetector()
        assert feed(d, self.quiet_then_spike(1)) == []

    def test_sustained_spike_fires(self):
        d = StallSpikeDetector()
        alerts = feed(d, self.quiet_then_spike(3))
        assert alerts and alerts[0].detector == "stall_spike"
        assert alerts[0].evidence["streak"] >= 2

    def test_constant_high_stall_is_baseline_not_spike(self):
        d = StallSpikeDetector()
        assert feed(d, [mk_sample(i, stall=0.9) for i in range(30)]) == []

    def test_evidence_carries_statistics(self):
        d = StallSpikeDetector()
        a = feed(d, self.quiet_then_spike(2))[0]
        assert a.evidence["stall_fraction"] == pytest.approx(0.95)
        assert a.evidence["rolling_mean"] < 0.1


class TestCacheThrash:
    def thrash(self, i):
        return mk_sample(i, hit_rate=0.0, compute=0.05, transfer=0.9,
                         deltas={"cache_hits": 0.0, "cache_misses": 8.0})

    def test_fires_when_gpu_starves_behind_misses(self):
        d = CacheThrashDetector()
        alerts = feed(d, [self.thrash(i) for i in range(10)])
        assert alerts and alerts[0].detector == "cache_thrash"

    def test_streaming_misses_with_busy_gpu_are_fine(self):
        # Fig. 7/8 streaming: hit rate ~0 by design, but compute is busy
        d = CacheThrashDetector()
        samples = [mk_sample(i, hit_rate=0.0, compute=0.9, transfer=0.9,
                             deltas={"cache_misses": 8.0})
                   for i in range(20)]
        assert feed(d, samples) == []

    def test_windows_without_accesses_do_not_qualify(self):
        d = CacheThrashDetector()
        samples = [mk_sample(i, hit_rate=None, compute=0.05, transfer=0.9)
                   for i in range(20)]
        assert feed(d, samples) == []


class TestRetryStorm:
    def test_fires_over_budget(self):
        d = RetryStormDetector(max_retries=3.0)
        samples = [mk_sample(i, deltas={"retries": 1.0}) for i in range(6)]
        alerts = feed(d, samples)
        assert alerts and alerts[0].detector == "retry_storm"

    def test_critical_at_twice_budget(self):
        d = RetryStormDetector(max_retries=3.0)
        samples = [mk_sample(i, deltas={"retries": 4.0}) for i in range(3)]
        alerts = feed(d, samples)
        assert alerts and alerts[-1].severity == "critical"

    def test_rare_retries_are_fine(self):
        d = RetryStormDetector(max_retries=3.0, window=4)
        samples = [mk_sample(i, deltas={"retries": 1.0 if i % 8 == 0 else 0.0})
                   for i in range(32)]
        assert feed(d, samples) == []


class TestHazardRate:
    def test_fires_on_accumulating_hazards(self):
        d = HazardRateDetector(max_hazards=2.0)
        samples = [mk_sample(i, deltas={"hazards": 1.0}) for i in range(6)]
        alerts = feed(d, samples)
        assert alerts and alerts[0].detector == "hazard_rate"


class TestQueueRunaway:
    def test_fires_on_monotone_growth_past_floor(self):
        d = QueueRunawayDetector(min_depth=256.0, growth=2.0, window=4)
        samples = [mk_sample(i, queue=128.0 * (i + 1)) for i in range(8)]
        alerts = feed(d, samples)
        assert alerts and alerts[0].detector == "queue_runaway"

    def test_deep_but_stable_queue_is_fine(self):
        d = QueueRunawayDetector(min_depth=256.0, window=4)
        assert feed(d, [mk_sample(i, queue=400.0) for i in range(12)]) == []


class TestCooldownAndWarmup:
    def test_cooldown_bounds_alert_rate(self):
        dt = 1e-3
        hot = [mk_sample(i, dt=dt, overlap=0.0) for i in range(40)]
        no_cd = feed(OverlapCollapseDetector(cooldown=0.0), hot)
        with_cd = feed(OverlapCollapseDetector(cooldown=10 * dt), hot)
        assert len(with_cd) < len(no_cd)
        for a, b in zip(with_cd, with_cd[1:]):
            assert b.t - a.t >= 10 * dt

    def test_no_alert_during_warmup(self):
        d = OverlapCollapseDetector(window=8)
        assert feed(d, [mk_sample(i, overlap=0.0) for i in range(7)]) == []

    def test_window_must_hold_two_samples(self):
        with pytest.raises(ValueError):
            OverlapCollapseDetector(window=1)


class TestWatchdogSubscriber:
    def test_publishes_through_bus(self):
        bus = TelemetryBus(sample_interval=1e-3)
        wd = Watchdog(default_detectors())
        bus.add_subscriber(wd)
        for i in range(10):
            wd.on_sample(mk_sample(i, overlap=0.0))
        assert bus.alerts and all(a.detector == "overlap_collapse"
                                  for a in bus.alerts)

    def test_default_detector_names_are_unique(self):
        names = [d.name for d in default_detectors()]
        assert len(names) == len(set(names)) == 6
        for name in SEVERITIES:
            assert name in ("info", "warning", "critical")


class TestTenantStarvation:
    """The service-layer starvation detector (registry-driven)."""

    def registry(self, *, backlog=2.0, quanta=None, tenant="t0"):
        from repro.obs import MetricsRegistry

        m = MetricsRegistry()
        m.set_gauge(f"service.tenant.{tenant}.backlog", backlog)
        if quanta is not None:
            m.inc(f"service.tenant.{tenant}.quanta", quanta)
        return m

    def test_fires_on_backlogged_tenant_with_no_quanta(self):
        from repro.obs.live.watchdog import TenantStarvationDetector

        m = self.registry()
        d = TenantStarvationDetector(m, window=4)
        alerts = feed(d, [mk_sample(i) for i in range(6)])
        assert alerts and alerts[0].detector == "tenant_starvation"
        assert alerts[0].severity == "critical"
        assert alerts[0].evidence["tenant"] == "t0"

    def test_fully_starved_tenant_is_discovered_via_backlog_gauge(self):
        # regression: quanta counters are created lazily on the first
        # scheduled quantum, so a tenant that never ran must still be
        # visible to the detector through its backlog gauge alone
        from repro.obs.live.watchdog import TenantStarvationDetector

        m = self.registry()                    # backlog gauge, NO counter
        d = TenantStarvationDetector(m, window=4)
        assert d._tenants() == ["t0"]

    def test_tenant_first_seen_mid_window_waits_its_own_window(self):
        # regression: a tenant appearing after the detector warmed up
        # has no progress baseline — it must be observed for a full
        # window of its *own* samples before it may fire
        from repro.obs import MetricsRegistry
        from repro.obs.live.watchdog import TenantStarvationDetector

        m = MetricsRegistry()
        d = TenantStarvationDetector(m, window=4)
        assert feed(d, [mk_sample(i) for i in range(6)]) == []
        m.set_gauge("service.tenant.late.backlog", 3.0)   # appears now
        # the detector is long past warmup, but 'late' has been seen for
        # fewer than window samples: no alert yet
        assert feed(d, [mk_sample(6 + i) for i in range(3)]) == []
        # after a full window of its own observations it fires
        alerts = feed(d, [mk_sample(9 + i) for i in range(2)])
        assert alerts and alerts[0].evidence["tenant"] == "late"

    def test_progressing_tenant_is_quiet(self):
        from repro.obs.live.watchdog import TenantStarvationDetector

        m = self.registry(quanta=1.0)
        d = TenantStarvationDetector(m, window=4)
        out = []
        for i in range(8):
            m.inc("service.tenant.t0.quanta")   # progress every sample
            a = d.update(mk_sample(i))
            if a is not None:
                out.append(a)
        assert out == []

    def test_drained_backlog_is_quiet(self):
        from repro.obs.live.watchdog import TenantStarvationDetector

        m = self.registry(backlog=0.0)
        d = TenantStarvationDetector(m, window=4)
        assert feed(d, [mk_sample(i) for i in range(8)]) == []

    def test_without_registry_is_inert(self):
        from repro.obs.live.watchdog import TenantStarvationDetector

        d = TenantStarvationDetector(None, window=4)
        assert feed(d, [mk_sample(i) for i in range(8)]) == []


class TestDefaultDetectorComposition:
    def test_metrics_arg_adds_tenant_starvation(self):
        from repro.obs import MetricsRegistry

        names = [d.name for d in default_detectors(metrics=MetricsRegistry())]
        assert "tenant_starvation" in names
        assert len(names) == 7

    def test_slo_arg_adds_slo_burn(self):
        from repro.obs.slo import SloPolicy, SloTracker

        tracker = SloTracker([SloPolicy(tenant="t", target=1.0)])
        names = [d.name for d in default_detectors(slo=tracker)]
        assert "slo_burn" in names

    def test_bare_call_is_unchanged(self):
        assert len(default_detectors()) == 6
