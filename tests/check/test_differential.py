"""Property-based differential conformance: scheduling never changes results.

Hypothesis draws a scheduling configuration — eviction policy, prefetch
depth, slot count, shuffled tile-visit order (see
``schedule_configs`` in ``tests/conftest.py``) — and the property is
that the TileAcc-managed run is byte-identical to the canonical
reference schedule (sequential order, LRU, no prefetch) on the same
initial data, with zero racy hazards observed.
"""

import conftest
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.tida_runners import run_tida_compute, run_tida_heat
from repro.check.explore import digest

COMPUTE = dict(shape=(64, 16, 16), steps=2, n_regions=8,
               device_memory_limit=70_000, functional=True)
# two ghosted fields: the limit must hold 2 × n_slots(≤4) slots of 43 kB
HEAT = dict(shape=(48, 24, 24), steps=2, n_regions=8,
            device_memory_limit=400_000, functional=True)

slow_sim = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def compute_reference():
    res = run_tida_compute(n_slots=3, **COMPUTE)
    return digest(res.result)


@pytest.fixture(scope="module")
def heat_reference():
    res = run_tida_heat(n_slots=3, **HEAT)
    return digest(res.result)


def run_config(runner, base, cfg):
    return runner(
        check="observe",
        eviction=cfg["eviction"],
        prefetch_depth=cfg["prefetch_depth"],
        n_slots=cfg["n_slots"],
        order="sequential" if cfg["order_seed"] is None else "shuffled",
        order_seed=cfg["order_seed"],
        **base,
    )


@slow_sim
@given(cfg=conftest.schedule_configs())
def test_compute_schedules_byte_identical(cfg, compute_reference):
    res = run_config(run_tida_compute, COMPUTE, cfg)
    assert digest(res.result) == compute_reference, cfg
    assert res.metrics["counters"].get("check.hazards.racy", 0) == 0, cfg


@slow_sim
@given(cfg=conftest.schedule_configs())
def test_heat_schedules_byte_identical(cfg, heat_reference):
    res = run_config(run_tida_heat, HEAT, cfg)
    assert digest(res.result) == heat_reference, cfg
    assert res.metrics["counters"].get("check.hazards.racy", 0) == 0, cfg


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cfg=conftest.schedule_configs(), init=conftest.initial_fields((64, 16, 16)))
def test_random_initial_data_agrees_with_reference_schedule(cfg, init):
    # same random field through both schedules: digests must match even
    # though neither equals the module-scope references
    base = dict(COMPUTE, initial=init)
    res = run_config(run_tida_compute, base, cfg)
    ref = run_tida_compute(n_slots=3, **base)
    assert digest(res.result) == digest(ref.result), cfg
