"""Bench harness smoke tests: every figure function at tiny sizes.

The full-scale runs live under ``benchmarks/``; here we verify the
experiment code paths, table schemas, and harness file output quickly.
"""

import json

import pytest

from repro.bench import figures
from repro.bench.harness import run_all
from repro.bench.report import Table
from repro.errors import ReproError

SMALL = (32, 32, 32)


class TestTable:
    def test_add_row_and_format(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2.5)
        t.add_note("hello")
        out = t.format()
        assert "T" in out and "2.5" in out and "note: hello" in out

    def test_row_arity_checked(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ReproError):
            t.add_row(1)

    def test_column_and_row_by(self):
        t = Table(title="T", columns=["k", "v"])
        t.add_row("x", 1.0)
        t.add_row("y", 2.0)
        assert t.column("v") == [1.0, 2.0]
        assert t.row_by("k", "y") == ["y", 2.0]
        with pytest.raises(ReproError):
            t.column("missing")
        with pytest.raises(ReproError):
            t.row_by("k", "z")

    def test_markdown(self):
        t = Table(title="T", columns=["a"])
        t.add_row(3)
        md = t.to_markdown()
        assert md.startswith("### T")
        assert "| 3 |" in md

    def test_save_json(self, tmp_path):
        t = Table(title="T", columns=["a"])
        t.add_row(3)
        p = t.save_json(tmp_path / "t.json")
        data = json.loads(p.read_text())
        assert data["rows"] == [[3]]


class TestFigureFunctions:
    def test_figure1_schema(self):
        t = figures.figure1(shape=SMALL, steps=2)
        assert t.columns == ["model", "memory", "seconds"]
        assert len(t.rows) == 9
        assert all(r[2] > 0 for r in t.rows)

    def test_figure3_overlap(self):
        r = figures.figure3(shape=SMALL, n_regions=4)
        assert 0.0 <= r.overlap_fraction <= 1.0
        assert "legend" in r.gantt

    def test_figure4_has_both_lanes(self):
        r = figures.figure4(shape=SMALL, n_regions=4)
        host = r.table.row_by("quantity", "host index computation")[1]
        gpu = r.table.row_by("quantity", "gpu ghost kernels")[1]
        assert host > 0 and gpu > 0

    def test_figure5_schema(self):
        t = figures.figure5(shape=SMALL, iterations=(1, 5), n_regions=4)
        assert t.columns[0] == "iterations"
        assert len(t.rows) == 2

    def test_figure6_schema(self):
        t = figures.figure6(shape=SMALL, steps=2, n_regions=4, kernel_iteration=4)
        names = t.column("implementation")
        assert "tida-acc" in names and "cuda-pinned-fastmath" in names

    def test_figure7_two_slots(self):
        r = figures.figure7(shape=(64, 64, 64), steps=2, n_regions=4)
        assert r.overlap_fraction > 0.0

    def test_figure8_schema(self):
        t = figures.figure8(shape=(64, 64, 64), steps=5, n_regions=4)
        assert len(t.rows) == 3
        limited = t.row_by("configuration", "tida-acc limited memory")
        assert limited[2] == 2  # slots

    def test_figure8_prefetch_win_and_counters(self):
        t = figures.figure8_prefetch(shape=(256, 256, 256), steps=40)
        assert len(t.rows) == 3
        base = t.row_by("configuration", "demand modulo (paper)")
        pf = t.rows[-1]
        assert pf[0].startswith("prefetch")
        # the ISSUE acceptance bar: >= 20% lower wall-clock than demand
        assert pf[1] <= base[1] * 0.80
        assert pf[3] < base[3]          # fewer uploads
        assert pf[4] > 0                # useful prefetches
        assert pf[5] > 0.0              # stall seconds avoided
        assert base[4] == 0 and base[5] == 0.0

    def test_ablation_prefetch_depth(self):
        t = figures.ablation_prefetch_depth(shape=(64, 64, 64), steps=4,
                                            candidates=(0, 1, 2))
        assert t.column("prefetch_depth") == [0, 1, 2]
        assert all(s > 0 for s in t.column("seconds"))

    def test_ablation_region_count(self):
        t = figures.ablation_region_count(shape=SMALL, steps=2, candidates=(1, 2, 4))
        assert len(t.rows) == 3
        assert all(r[1] > 0 and r[2] > 0 for r in t.rows)

    def test_ablation_interconnect(self):
        t = figures.ablation_interconnect(shape=SMALL, steps=1, n_regions=4)
        pcie = t.row_by("interconnect", "pcie-gen3-x16")
        nvl = t.row_by("interconnect", "nvlink-1.0")
        assert nvl[1] < pcie[1]  # faster link, faster CUDA transfers

    def test_ablation_model_accuracy(self):
        t = figures.ablation_model_accuracy(shape=(64, 64, 64), n_regions=4)
        assert all(0.3 < row[3] < 3.0 for row in t.rows)

    def test_ablation_tile_size_monotone_launches(self):
        t = figures.ablation_tile_size(shape=(64, 64, 64), steps=2, n_regions=4)
        launches = t.column("kernel_launches")
        assert launches[0] < launches[1] <= launches[2]


class TestHarness:
    def test_run_all_quick_writes_files(self, tmp_path):
        tables = run_all(tmp_path, quick=True, echo=False)
        assert len(tables) == 16
        assert (tmp_path / "fig5.json").exists()
        assert (tmp_path / "fig7.txt").exists()
        assert (tmp_path / "fig8_prefetch.json").exists()
        assert (tmp_path / "fig9_resilience.json").exists()
        assert (tmp_path / "ablation_a7.json").exists()
        assert (tmp_path / "all_results.md").exists()
        md = (tmp_path / "all_results.md").read_text()
        assert md.count("###") == 16
