"""TidaAcc: the user-facing library facade (§V).

A ``TidaAcc`` instance owns the simulated CUDA + OpenACC runtimes and a
set of named tile arrays.  The programmer never touches address spaces,
transfers, or directives — the §V contract:

* declare fields with :meth:`add_array` (pinned host allocations, region
  decomposition);
* iterate with :meth:`iterator` and flip GPU execution on with
  ``it.reset(gpu=True)``;
* call :meth:`compute` with the tile(s) and a kernel (the C++ lambda of
  the paper becomes a :class:`~repro.cuda.kernel.KernelSpec` whose body
  receives the data pointers plus ``lo``/``hi`` bounds — the same
  "data pointer as lambda parameter" design §V-A explains);
* exchange ghosts with :meth:`fill_boundary`, swap time levels with
  :meth:`swap`, read results with :meth:`gather`.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Any, Callable, Sequence

import numpy as np

from ..config import MachineSpec
from ..cuda.kernel import KernelSpec
from ..cuda.runtime import CudaRuntime
from ..errors import FaultError, ReproError, TidaError, TileAccError, TimingModeError
from ..faults import TRANSIENT_ERRORS
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..openacc.runtime import AccRuntime
from ..tida.boundary import BoundaryCondition
from ..tida.box import Box
from ..tida.tile import Tile
from ..tida.tile_array import TileArray
from ..tida.tile_iterator import TileIterator
from .ghost import fill_boundary_hybrid
from .prefetch import PrefetchScheduler
from .slots import EvictionPolicy
from .tile_acc import TileAcc

#: The library-chosen OpenACC vector length (§II-A: pragma attributes let
#: the library control kernel geometry; this is how TiDA-acc's kernels
#: reach tuned-CUDA efficiency while the naive OpenACC baseline does not).
DEFAULT_VECTOR_LENGTH = 128


class TidaAcc:
    """The TiDA-acc library."""

    def __init__(
        self,
        machine: MachineSpec | None = None,
        *,
        functional: bool = True,
        mode: str | None = None,
        device_memory_limit: int | None = None,
        runtime: CudaRuntime | None = None,
        acc: AccRuntime | None = None,
        vector_length: int = DEFAULT_VECTOR_LENGTH,
        prefetch_depth: int | None = None,
        eviction: str | EvictionPolicy = "lru",
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        check: str | bool | None = None,
        telemetry=None,
        label_prefix: str = "",
    ) -> None:
        if runtime is None:
            runtime = CudaRuntime(
                machine, functional=functional, mode=mode,
                device_memory_limit=device_memory_limit, check=check,
                telemetry=telemetry,
            )
        else:
            if check is not None:
                from ..check.hazards import resolve_checker
                runtime.checker = resolve_checker(
                    check, trace=runtime.trace, metrics=runtime.metrics
                )
            if telemetry is not None:
                runtime.attach_telemetry(telemetry)
        self.runtime = runtime
        if faults is not None:
            self.runtime.set_fault_plan(faults)
        #: resilience policy every field's TileAcc (and kernel launches)
        #: inherit; ``None`` = fail fast on the first injected fault
        self.retry = retry
        self.acc = acc if acc is not None else AccRuntime(runtime)
        if self.acc.cuda is not self.runtime:
            raise TileAccError("AccRuntime must wrap the same CudaRuntime")
        self.vector_length = int(vector_length)
        #: default eviction policy for new fields ("lru" | "lookahead" | "modulo")
        self.eviction = eviction
        #: ``prefetch_depth=None`` means auto: prefetch when the iterator's
        #: traversal order is known (sequential), stay demand-paged otherwise;
        #: ``0`` disables prefetching entirely.
        self._prefetcher = PrefetchScheduler(default_depth=prefetch_depth)
        #: prepended to every field's trace/metric label — the multi-tenant
        #: service namespaces each job's observability ("t3/j7:u_old")
        #: while field *names* stay the program's logical names
        self.label_prefix = str(label_prefix)
        self._fields: dict[str, TileArray] = {}
        self._managers: dict[str, TileAcc] = {}
        self._names_by_array: dict[int, str] = {}
        #: fields borrowed from (or lent to) another library on the same
        #: runtime — cross-job read-only dedup; ``close()`` leaves them alone
        self._shared: set[str] = set()

    @property
    def mode(self) -> str:
        """``"functional"`` or ``"timing"`` (see :class:`~repro.cuda.runtime.CudaRuntime`)."""
        return self.runtime.mode

    @property
    def checker(self):
        """The runtime's :class:`~repro.check.hazards.HazardChecker` (or None)."""
        return self.runtime.checker

    @property
    def telemetry(self):
        """The runtime's attached :class:`~repro.obs.live.TelemetryBus` (or None)."""
        return self.runtime.telemetry

    def health(self) -> dict:
        """Live health snapshot (see :meth:`CudaRuntime.health`)."""
        return self.runtime.health()

    # -- field management -----------------------------------------------------

    def add_array(
        self,
        name: str,
        domain: Box | tuple[int, ...],
        *,
        region_shape: tuple[int, ...] | None = None,
        n_regions: int | None = None,
        axis: int = 0,
        halo: int | tuple[int, ...] | str | None = None,
        kernels: Sequence[KernelSpec] | None = None,
        ghost: int | tuple[int, ...] | None = None,
        dtype: Any = np.float64,
        fill: float | None = None,
        n_slots: int | None = None,
        access: str = "rw",
        eviction: str | EvictionPolicy | None = None,
        policy: str | EvictionPolicy | None = None,
    ) -> TileArray:
        """Declare a field: a pinned-host tileArray plus its TileAcc.

        ``halo`` is the ghost width (int or per-axis tuple, default 0).
        Pass ``halo="auto"`` together with ``kernels=(KernelSpec, ...)``
        to derive it from the kernels' declared stencil footprints (the
        union of their read radii — see :func:`repro.plan.derive_halo`).
        ``ghost`` is a deprecated alias for an explicit ``halo``.

        ``access="ro"`` declares the field read-only on the device
        (coefficient tables, masks): evictions and host reads then cost no
        write-back.  Mutate such a field on the host only, followed by
        ``manager(name).invalidate_device()``.

        ``eviction`` overrides the library's default eviction policy for
        this field (``"lru"``, ``"lookahead"``, or ``"modulo"``);
        ``policy`` is a deprecated alias for it.
        """
        if policy is not None:
            warnings.warn(
                "add_array(policy=...) is deprecated; use eviction=...",
                DeprecationWarning, stacklevel=2,
            )
            if eviction is None:
                eviction = policy
        if ghost is not None:
            warnings.warn(
                "add_array(ghost=...) is deprecated; use halo=...",
                DeprecationWarning, stacklevel=2,
            )
            if halo is None:
                halo = ghost
        if isinstance(halo, str):
            if halo != "auto":
                raise TidaError(
                    f"halo must be an int, a per-axis tuple, or 'auto'; got {halo!r}"
                )
            if not kernels:
                raise TidaError(
                    "halo='auto' needs kernels=(KernelSpec, ...) to derive "
                    "the ghost width from"
                )
            from ..plan.planner import derive_halo
            ndim = domain.ndim if isinstance(domain, Box) else len(tuple(domain))
            halo = derive_halo(kernels, ndim)
        elif kernels is not None:
            raise TidaError("kernels= only applies with halo='auto'")
        if halo is None:
            halo = 0
        if access not in ("rw", "ro"):
            raise TidaError(f"access must be 'rw' or 'ro', got {access!r}")
        if name in self._fields:
            raise TidaError(f"field {name!r} already exists")
        ta = TileArray(
            domain,
            region_shape=region_shape,
            n_regions=n_regions,
            axis=axis,
            ghost=halo,
            dtype=dtype,
            runtime=self.runtime,
            pinned=True,
            fill=fill,
            label=f"{self.label_prefix}{name}",
        )
        # build the manager before registering anything, so a failure
        # (e.g. not even one region fits in device memory) leaves the
        # library with no half-registered field
        manager = TileAcc(
            self.runtime, self.acc, ta, n_slots=n_slots,
            read_only=(access == "ro"),
            eviction=eviction if eviction is not None else self.eviction,
            retry=self.retry,
        )
        self._fields[name] = ta
        self._managers[name] = manager
        self._names_by_array[id(ta)] = name
        return ta

    def field(self, name: str) -> TileArray:
        try:
            return self._fields[name]
        except KeyError:
            raise TidaError(f"unknown field {name!r}; have {sorted(self._fields)}") from None

    def manager(self, name: str) -> TileAcc:
        self.field(name)
        return self._managers[name]

    def field_names(self) -> list[str]:
        return sorted(self._fields)

    def has_field(self, name: str) -> bool:
        return name in self._fields

    def attach_shared_field(self, name: str, array: TileArray, manager: TileAcc) -> TileArray:
        """Register a field *owned by another library* on the same runtime.

        Cross-job read-only dedup: when two tenants' programs consume
        byte-identical read-only data (a coefficient table, a mask), the
        service attaches the first job's tile array + slot manager into
        later jobs instead of allocating and uploading a second copy.
        Only read-only fields are shareable — concurrent readers never
        conflict, so byte-identity and hazard-freedom are preserved.
        ``close()`` leaves shared fields alone; the sharing coordinator
        owns their lifetime.
        """
        if name in self._fields:
            raise TidaError(f"field {name!r} already exists")
        if manager.runtime is not self.runtime:
            raise TileAccError(
                f"shared field {name!r} lives on a different runtime"
            )
        if not manager.read_only:
            raise TileAccError(
                f"only read-only fields can be shared across jobs, "
                f"{name!r} is writable"
            )
        self._fields[name] = array
        self._managers[name] = manager
        self._names_by_array[id(array)] = name
        self._shared.add(name)
        return array

    def mark_field_shared(self, name: str) -> None:
        """Exclude ``name`` from :meth:`close` teardown (ownership moved out)."""
        self.field(name)
        self._shared.add(name)

    def name_of(self, array: TileArray) -> str:
        try:
            return self._names_by_array[id(array)]
        except KeyError:
            raise TidaError("tile array is not registered with this library") from None

    # -- iteration ---------------------------------------------------------------

    def iterator(
        self,
        *names: str,
        tile_shape: tuple[int, ...] | None = None,
        order: str = "sequential",
        seed: int | None = None,
    ) -> TileIterator:
        """A tile iterator over one or more compatible fields (§V)."""
        arrays = [self.field(n) for n in names]
        return TileIterator(*arrays, tile_shape=tile_shape, order=order, seed=seed)

    # -- resilience (launch retry) -------------------------------------------------

    def _launch_with_retry(
        self, kernel_name: str, rid: int, issue: Callable[[], float]
    ) -> float:
        """Re-launch a transiently failing kernel per the armed retry policy.

        ECC-style launch faults raise before the kernel body runs (no
        partial writes), so re-issuing the same launch is safe.  Retry
        exhaustion flushes every writable field to the host, then raises
        :class:`FaultError`.
        """
        policy = self.retry
        if policy is None:
            return issue()
        m = self.runtime.metrics
        last: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = issue()
            except TRANSIENT_ERRORS as exc:
                last = exc
                if attempt == policy.max_attempts:
                    break
                m.inc("faults.retries")
                m.inc(f"faults.retries.{kernel_name}")
                wait = policy.delay(attempt, key=(kernel_name, "launch", rid))
                self.runtime.trace.mark(
                    "fault-retry", self.runtime.now,
                    kernel=kernel_name, op="launch", region=rid,
                    attempt=attempt, backoff=wait,
                )
                self.runtime.clock.advance(wait)
                continue
            if last is not None:
                m.inc("faults.recovered")
                m.inc(f"faults.recovered.{kernel_name}")
                self.runtime.trace.mark(
                    "fault-recovered", self.runtime.now,
                    kernel=kernel_name, op="launch", region=rid, attempts=attempt,
                )
            return result
        # rescue what survives before surfacing the failure
        plan = self.runtime.faults
        ctx = plan.suspended() if plan is not None else contextlib.nullcontext()
        with ctx:
            for name in self.field_names():
                mgr = self._managers[name]
                try:
                    if not mgr.read_only:
                        mgr.flush_to_host()
                except ReproError:
                    continue
        err = FaultError(
            f"launch of kernel {kernel_name!r} on region {rid} failed after "
            f"{policy.max_attempts} attempts",
            op="launch", field=kernel_name, region=rid,
            attempts=policy.max_attempts,
        )
        self.runtime.notify_incident("fault", err)
        raise err from last

    # -- the compute method (§V) ---------------------------------------------------

    @staticmethod
    def _normalize_tiles(
        tiles: Tile | Sequence[Tile] | TileIterator,
    ) -> tuple[tuple[Tile, ...], bool | None, TileIterator | None]:
        if isinstance(tiles, TileIterator):
            return tiles.tiles(), tiles.gpu, tiles
        if isinstance(tiles, Tile):
            return (tiles,), None, None
        out = tuple(tiles)
        if not out or not all(isinstance(t, Tile) for t in out):
            raise TidaError("compute expects a Tile, a sequence of Tiles, or a TileIterator")
        return out, None, None

    def compute(
        self,
        tiles: Tile | Sequence[Tile] | TileIterator,
        kernel: KernelSpec,
        *,
        params: dict[str, Any] | None = None,
        gpu: bool | None = None,
        bounds: tuple[tuple[int, ...], tuple[int, ...]] | None = None,
        prefetch_depth: int | None = None,
    ) -> float:
        """Execute ``kernel`` over the tiles' iteration space.

        ``tiles`` may be a single tile, a tuple of tiles (multi-input
        computation — all must target the same region box), or a
        :class:`TileIterator` positioned on the current tile(s) (in which
        case the iterator's GPU flag applies).  ``bounds`` restricts the
        iteration space to global ``[lo, hi)`` (the two-dimension compute
        variant of §V).  Returns the virtual completion time.

        When driven by a sequential iterator, the next ``prefetch_depth``
        regions are uploaded asynchronously while this region's kernel
        runs (see :mod:`repro.core.prefetch`); the per-call value
        overrides the library-wide ``prefetch_depth``.
        """
        tile_tuple, it_gpu, iterator = self._normalize_tiles(tiles)
        if gpu is None:
            gpu = bool(it_gpu)
        if bounds is not None:
            lo, hi = bounds
            tile_tuple = tuple(t.subrange(lo, hi) for t in tile_tuple)

        rid = tile_tuple[0].rid
        box = tile_tuple[0].box
        for t in tile_tuple[1:]:
            if t.rid != rid or t.box != box:
                raise TidaError(
                    "all tiles of one compute call must cover the same region box"
                )
        names = []
        for t in tile_tuple:
            if t.array is None:
                raise TidaError("tiles passed to compute must come from a tileArray")
            names.append(self.name_of(t.array))

        lo, hi = tile_tuple[0].local_bounds
        for t in tile_tuple[1:]:
            if t.local_bounds != (lo, hi):
                raise TidaError(
                    "tiles disagree on local bounds (fields must share ghost width)"
                )
        params = dict(params or {})
        n_cells = box.size
        ndim = box.ndim

        if not gpu:
            regions = [self._managers[n].request_host(rid) for n in names]
            # §IV-A cache model: the tile's working set is its cells across
            # every accessed field (stencil halos are a lower-order term)
            working_set = n_cells * sum(
                self.field(n).dtype.itemsize for n in names
            )
            duration = kernel.duration_on_cpu(
                self.runtime.machine, n_cells, working_set_bytes=working_set
            )
            end = self.runtime.host_compute(f"cpu:{kernel.name}", duration, n_cells=n_cells)
            if self.runtime.functional and kernel.body is not None:
                kernel.body(*[r.array for r in regions], lo=lo, hi=hi, **params)
            return end

        managers = [self._managers[n] for n in names]
        # schedule-aware eviction sees the sweep's remaining order before
        # any placement decision for this region is made
        self._prefetcher.feed_schedule(managers, iterator)
        buffers = []
        ready: list[float] = []
        for mgr in managers:
            buf, _t_ready = mgr.request_device(rid)
            buffers.append(buf)
            # individual dep times, not their max: the checker resolves
            # each component to an ordering edge (see device_ready_deps)
            ready.extend(mgr.device_ready_deps(rid))
        qid = managers[0].queue_id_for(rid)
        end = self._launch_with_retry(
            kernel.name, rid,
            lambda: self.acc.parallel_loop(
                kernel,
                deviceptr=buffers,
                n_cells=n_cells,
                collapse=ndim,
                loop_dims=ndim,
                async_=qid,
                vector_length=self.vector_length,
                after=tuple(ready),
                params={"lo": lo, "hi": hi, **params},
                label=f"compute:{kernel.name}:{self.label_prefix}{names[0]}.r{rid}",
            ),
        )
        for mgr in managers:
            mgr.note_device_op(rid, end, covers=True)
        # with the kernel queued, upload the next regions of the sweep so
        # their transfers hide behind it (no-op for unknown schedules)
        depth = self._prefetcher.resolve_depth(iterator, prefetch_depth)
        self._prefetcher.issue(managers, iterator, depth)
        return end

    def parallel_for(
        self,
        tiles: Tile | Sequence[Tile] | TileIterator,
        body,
        *,
        bytes_per_cell: float,
        flops_per_cell: float = 0.0,
        gpu: bool | None = None,
        params: dict[str, Any] | None = None,
        name: str = "lambda",
        bounds: tuple[tuple[int, ...], tuple[int, ...]] | None = None,
    ) -> float:
        """The custom for-loop the paper wished for (§V-A) — an ad-hoc
        lambda without pre-declaring a kernel spec.

        The paper had to route every loop through ``compute`` + a
        pre-structured lambda because OpenACC could not treat captured
        pointers as device pointers inside lambdas.  On this substrate the
        limitation disappears: pass any callable
        ``body(*arrays, lo=..., hi=..., **params)`` plus its per-cell cost
        metadata, and it launches exactly like a declared kernel
        (imperfectly nested loops included — the body is arbitrary code).
        """
        kernel = KernelSpec(
            name=name,
            body=body,
            bytes_per_cell=bytes_per_cell,
            flops_per_cell=flops_per_cell,
        )
        return self.compute(tiles, kernel, gpu=gpu, params=params, bounds=bounds)

    # -- declarative programs (repro.plan) ---------------------------------------

    def run_program(
        self,
        prog,
        *,
        plan=None,
        inputs: dict[str, Any] | None = None,
        env: dict[str, float] | None = None,
        order: str = "sequential",
        order_seed: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        **plan_kwargs: Any,
    ):
        """Plan and execute a declarative :class:`~repro.plan.Program`.

        When ``plan`` is ``None`` the program is planned first
        (:func:`repro.plan.plan_program` on this library's machine;
        ``plan_kwargs`` — ``n_regions=``, ``eviction=``, … — pin
        individual knobs).  The planner decides *what* to allocate
        (fields, ghost widths, region/slot counts, access modes) and
        which halo exchanges and write-backs to elide; scheduling knobs
        this library was constructed with (``eviction=``,
        ``prefetch_depth=``) keep applying to how the work runs.

        ``inputs`` scatters initial global arrays into fields
        (functional mode); ``env`` seeds the scalar environment that
        ``reduce(store=...)`` / ``scalar(...)`` statements update and
        :func:`repro.plan.ref` params read.  Returns a
        :class:`~repro.plan.ProgramRun`.
        """
        from ..plan.executor import execute_program
        from ..plan.planner import plan_program

        if plan is None:
            free, _total = self.runtime.mem_get_info()
            plan = plan_program(
                prog, machine=self.runtime.machine, free_memory=free,
                **plan_kwargs,
            )
        elif plan_kwargs:
            raise TidaError(
                "pass planner knobs or a ready plan, not both: "
                f"{sorted(plan_kwargs)}"
            )
        return execute_program(
            self, prog, plan, inputs=inputs, env=env,
            order=order, order_seed=order_seed, tile_shape=tile_shape,
        )

    # -- reductions -----------------------------------------------------------------

    def reduce_field(
        self,
        names: str | Sequence[str],
        spec,
        *,
        gpu: bool = True,
        params: dict[str, Any] | None = None,
    ) -> float:
        """Reduce over the whole domain of one or more fields.

        GPU path: one partial-reduction kernel per region on the region's
        slot stream, a single batched download of the scalar partials, one
        synchronize, and a host-side fold — so partials of one region
        compute while another region's kernel still runs.  CPU path: host
        roofline time per region plus the fold.

        ``spec`` is a :class:`~repro.kernels.reductions.ReductionSpec`.
        Returns the folded value (identity for an empty domain).
        """
        if isinstance(names, str):
            names = [names]
        arrays = [self.field(n) for n in names]
        first = arrays[0]
        for other in arrays[1:]:
            if not first.compatible_with(other):
                raise TidaError("reduce_field requires compatible fields")
        params = dict(params or {})
        cost_kernel = spec.as_kernel()
        result = spec.identity

        if not gpu:
            for rid in range(first.n_regions):
                regions = [self._managers[n].request_host(rid) for n in names]
                region = regions[0]
                n_cells = region.box.size
                duration = cost_kernel.duration_on_cpu(self.runtime.machine, n_cells)
                self.runtime.host_compute(f"cpu-reduce:{spec.name}", duration)
                if self.runtime.functional:
                    lo, hi = region.local_bounds(region.box)
                    partial = spec.body(*[r.array for r in regions], lo=lo, hi=hi, **params)
                    result = spec.combine(result, partial)
            return result

        # device partials buffer: one scalar per region
        partials_dev = self.runtime.malloc((first.n_regions,), label=f"partials:{spec.name}")
        partials_host = self.runtime.malloc_pinned((first.n_regions,), label=f"partials:{spec.name}")
        managers = [self._managers[n] for n in names]
        for mgr in managers:
            mgr.set_schedule(range(first.n_regions))
        last_stream = None
        kernel_ends: list[float] = []
        values: list[float] = []
        for rid in range(first.n_regions):
            buffers = []
            ready: list[float] = []
            for mgr in managers:
                buf, _t_ready = mgr.request_device(rid)
                buffers.append(buf)
                ready.extend(mgr.device_ready_deps(rid))
            region = first.region(rid)
            lo, hi = region.local_bounds(region.box)
            qid = managers[0].queue_id_for(rid)
            end = self._launch_with_retry(
                spec.name, rid,
                lambda: self.acc.parallel_loop(
                    cost_kernel,
                    deviceptr=buffers,
                    n_cells=region.box.size,
                    collapse=region.ndim,
                    loop_dims=region.ndim,
                    async_=qid,
                    vector_length=self.vector_length,
                    after=tuple(ready),
                    params={"lo": lo, "hi": hi},
                    label=f"reduce:{spec.name}:r{rid}",
                ),
            )
            for mgr in managers:
                mgr.note_device_op(rid, end, covers=True)
            last_stream = managers[0].slot_for(rid).stream
            kernel_ends.append(end)
            if self.runtime.functional:
                partial = spec.body(*[b.array for b in buffers], lo=lo, hi=hi, **params)
                partials_dev.array[rid] = partial
                values.append(partial)
        # one batched download of all partials after every kernel.  Each
        # kernel's ``after=ready`` already folds in every involved field's
        # uploads, so this covers all managers — not just names[0]'s
        # streams (which would ignore the other fields' transfer queues).
        self.runtime.memcpy_async(
            partials_host, partials_dev,
            last_stream if last_stream is not None else self.runtime.default_stream,
            after=tuple(kernel_ends),
            label=f"d2h:partials:{spec.name}",
        )
        self.runtime.stream_synchronize(
            last_stream if last_stream is not None else self.runtime.default_stream
        )
        if self.runtime.functional:
            for v in values:
                result = spec.combine(result, v)
        # host fold over n_regions scalars: negligible but accounted
        self.runtime.host_compute(
            f"fold:{spec.name}", first.n_regions / self.runtime.machine.cpu.dp_flops
        )
        self.runtime.free(partials_dev)
        self.runtime.free_host(partials_host)
        return result

    # -- ghost exchange, swap, synchronization ------------------------------------

    def fill_boundary(
        self, name: str, bc: BoundaryCondition | None = None, *, safe: bool = False
    ) -> None:
        """Hybrid CPU/GPU ghost update for field ``name`` (§IV-B.6).

        ``safe=True`` closes the cross-stream write-after-read hazard with
        events (see :func:`~repro.core.ghost.fill_boundary_hybrid`)."""
        fill_boundary_hybrid(self, name, bc, safe=safe)

    def swap(self, name_a: str, name_b: str) -> None:
        """Exchange two fields (old/new time levels) without moving data.

        Pure renaming: host allocations, device slots, streams and cache
        state all travel with the array."""
        ta_a, ta_b = self.field(name_a), self.field(name_b)
        # iteration boundary: the time-step loop swaps old/new exactly once
        # per step, so this mark segments the trace for per-iteration
        # overlap-efficiency reporting (obs.critpath)
        self.trace.mark("iteration", self.now, fields=[name_a, name_b])
        self._fields[name_a], self._fields[name_b] = ta_b, ta_a
        self._managers[name_a], self._managers[name_b] = (
            self._managers[name_b],
            self._managers[name_a],
        )
        self._names_by_array[id(ta_a)] = name_b
        self._names_by_array[id(ta_b)] = name_a

    def synchronize(self) -> float:
        """Drain all device work (``acc wait`` over every queue)."""
        return self.acc.wait()

    def wait_own(self) -> float:
        """Drain this library's own device work (job-scoped ``acc wait``).

        Synchronizes exactly the streams this library's fields use — every
        slot stream and write-back stream of its managers, plus the default
        stream.  On a dedicated runtime that is the same stream set
        :meth:`synchronize` drains; under the multi-tenant service it scopes
        the paper's §IV-B.6 barrier to the one job instead of flooring the
        shared clock at every co-running tenant's backlog.
        """
        rt = self.runtime
        end = rt.now
        own: dict[int, Any] = {}
        for mgr in self._managers.values():
            for slot in mgr.slots:
                own.setdefault(slot.queue_id, slot.stream)
            own.setdefault(mgr._wb_qid, mgr._wb_stream)
        # sync in activity-queue creation order, default stream last — the
        # exact order acc.wait() drains, so a dedicated runtime sees a
        # byte-identical schedule either way
        for qid in sorted(own):
            end = max(end, rt.stream_synchronize(own[qid]))
        return max(end, rt.stream_synchronize(rt.default_stream))

    # -- results --------------------------------------------------------------------

    def _require_functional(self, what: str) -> None:
        if not self.runtime.functional:
            raise TimingModeError(
                f'{what} needs numeric field data, but this is a timing-only '
                f'run (mode="timing"): buffers carry no arrays.  Re-run with '
                f'mode="functional" (functional=True) to read results back.'
            )

    def gather(self, name: str) -> np.ndarray:
        """Download field ``name`` and assemble the global interior array.

        Functional mode only: a timing-only run has no values to gather
        (use :meth:`~repro.core.tile_acc.TileAcc.flush_to_host` to account
        the downloads without touching data)."""
        self._require_functional(f"gather({name!r})")
        mgr = self.manager(name)
        mgr.flush_to_host()
        return self.field(name).to_global()

    def scatter(self, name: str, arr: np.ndarray) -> None:
        """Overwrite field ``name`` from a global array (host side).

        Regions currently device-resident are downloaded first so the
        last-location cache stays truthful.  Functional mode only."""
        self._require_functional(f"scatter({name!r})")
        mgr = self.manager(name)
        mgr.flush_to_host()
        self.field(name).from_global(arr)

    @property
    def now(self) -> float:
        """Virtual wall-clock, seconds (what the paper's timings measure)."""
        return self.runtime.now

    @property
    def trace(self):
        return self.runtime.trace

    @property
    def metrics(self):
        """The runtime's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.runtime.metrics

    # -- lifetime -------------------------------------------------------------------

    def close(self) -> None:
        """Drain device work, flush every field to the host, free all slots.

        Fields marked shared (cross-job dedup) are skipped: their slots
        belong to the sharing coordinator, not to this library.
        """
        self.synchronize()
        for name in self.field_names():
            if name in self._shared:
                continue
            mgr = self._managers[name]
            if not mgr.read_only:
                mgr.flush_to_host()
            mgr.release_device_memory()

    def __enter__(self) -> "TidaAcc":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
