"""Per-tenant SLO tracking, burn-rate alerting, and contention blame
(repro.obs.slo + the critpath blame decomposition): unit behavior on
synthetic SLIs, then the service integration — monitored sessions stay
byte-identical, backpressure actually defers, blame sums exactly."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.critpath import (
    BLAME_COMPONENTS,
    blame_decomposition,
    blame_summary,
    job_phases,
)
from repro.obs.live.bus import TelemetrySample
from repro.obs.metrics import ObsError
from repro.obs.slo import (
    JobSli,
    SloBurnDetector,
    SloPolicy,
    SloTracker,
    read_slo,
)
from repro.service import Service


def sli(n, tenant="t0", latency=1.0, t=None):
    """A synthetic job SLI; latency phases split arbitrarily but tile."""
    return JobSli(
        job=f"{tenant}.j{n}", tenant=tenant, t=(n + 1.0) if t is None else t,
        latency=latency, queue_wait=latency / 4, start_delay=latency / 4,
        execute=latency / 4, drain=latency / 4,
    )


#: A policy whose burn math is easy to do by hand: allowed bad fraction
#: 0.1, enter on 3 straight misses, exit only once both windows are
#: fully clean (one miss in the slow ring blocks the exit).
POLICY = SloPolicy(tenant="t0", target=1.0, objective=0.9,
                   fast_window=3, slow_window=6,
                   fast_burn=3.0, slow_burn=2.0, exit_burn=0.5)


class TestSloPolicy:
    def test_validation(self):
        with pytest.raises(ObsError):
            SloPolicy(tenant="t", target=0.0)
        with pytest.raises(ObsError):
            SloPolicy(tenant="t", target=1.0, objective=1.0)
        with pytest.raises(ObsError):
            SloPolicy(tenant="t", target=1.0, fast_window=8, slow_window=4)
        with pytest.raises(ObsError):
            SloPolicy(tenant="t", target=1.0, fast_burn=0.0)

    def test_to_dict_roundtrips_through_tracker_header(self):
        tr = SloTracker([POLICY])
        header = json.loads(tr.to_text().splitlines()[0])
        assert header["schema"] == "repro-slo/1"
        assert header["policies"]["t0"] == POLICY.to_dict()

    def test_mapping_form_accepts_bare_targets(self):
        tr = SloTracker({"a": 0.5, "b": SloPolicy(tenant="b", target=2.0)})
        assert tr.policies["a"].target == 0.5
        assert tr.policies["a"].objective == SloPolicy(tenant="x", target=1).objective
        assert tr.policies["b"].target == 2.0


class TestBudgetAccounting:
    def test_no_misses_leaves_budget_whole(self):
        tr = SloTracker([POLICY])
        for n in range(10):
            tr.observe(sli(n, latency=0.5))
        budget = tr.error_budget("t0")
        assert budget["jobs"] == 10.0
        assert budget["burned"] == 0.0
        assert budget["remaining_fraction"] == 1.0

    def test_overdrawn_budget_goes_negative(self):
        tr = SloTracker([POLICY])
        for n in range(10):
            tr.observe(sli(n, latency=2.0))       # every job misses
        budget = tr.error_budget("t0")
        assert budget["allowed"] == pytest.approx(1.0)
        assert budget["burned"] == 10.0
        assert budget["remaining_fraction"] == pytest.approx(-9.0)

    def test_policyless_tenant_records_slis_but_no_budget(self):
        tr = SloTracker([POLICY])
        tr.observe(sli(0, tenant="other", latency=99.0))
        assert tr.error_budget("other")["jobs"] == 0.0
        snap = tr.snapshot()
        assert snap["tenants"]["other"]["policy"] is None
        assert snap["tenants"]["other"]["latency"]["count"] == 1


class TestBurnDetection:
    def test_three_misses_fire_one_critical_alert(self):
        tr = SloTracker([POLICY], metrics=MetricsRegistry())
        fired = []
        for n in range(3):
            fired += tr.observe(sli(n, latency=2.0))
        assert len(fired) == 1
        assert fired[0].severity == "critical"
        assert "t0" in fired[0].message
        assert tr.burning() == frozenset({"t0"})
        assert tr.metrics.value("service.slo.alerts") == 1.0

    def test_needs_a_full_fast_window(self):
        tr = SloTracker([POLICY])
        assert tr.observe(sli(0, latency=2.0)) == []
        assert tr.observe(sli(1, latency=2.0)) == []
        assert tr.burning() == frozenset()

    def test_one_off_miss_never_fires(self):
        tr = SloTracker([POLICY])
        fired = []
        for n in range(12):
            bad = n == 5
            fired += tr.observe(sli(n, latency=2.0 if bad else 0.5))
        assert fired == []

    def test_exit_needs_both_windows_clean(self):
        # the regression pinned here: a clean fast window alone must NOT
        # end the burn while misses are still in the slow window
        tr = SloTracker([POLICY])
        for n in range(3):
            tr.observe(sli(n, latency=2.0))
        assert tr.burning() == frozenset({"t0"})
        for n in range(3, 6):                     # fast window now clean
            tr.observe(sli(n, latency=0.5))
            assert tr.burning() == frozenset({"t0"})
        fast, slow = tr.burn_rates("t0")
        assert fast == 0.0 and slow > POLICY.exit_burn
        for n in range(6, 9):                     # misses age out of slow
            tr.observe(sli(n, latency=0.5))
        assert tr.burning() == frozenset()

    def test_no_double_alert_while_burning(self):
        tr = SloTracker([POLICY])
        fired = []
        for n in range(8):
            fired += tr.observe(sli(n, latency=2.0))
        assert len(fired) == 1
        assert len(tr.alerts) == 1

    def test_release_backpressure_clears_and_marks(self):
        tr = SloTracker([POLICY], metrics=MetricsRegistry())
        for n in range(3):
            tr.observe(sli(n, latency=2.0))
        assert tr.backpressure_active()
        assert tr.release_backpressure() is True
        assert not tr.backpressure_active()
        assert tr.release_backpressure() is False   # idempotent
        marks = [json.loads(l) for l in tr.to_text().splitlines()
                 if json.loads(l).get("kind") == "burn"]
        assert [m["state"] for m in marks] == ["start", "release"]
        assert tr.metrics.value("service.slo.backpressure_released") == 1.0


class TestJsonlStream:
    def test_stream_is_deterministic_and_roundtrips(self, tmp_path):
        def build():
            tr = SloTracker([POLICY])
            for n in range(4):
                tr.observe(sli(n, latency=2.0 if n < 3 else 0.5))
            return tr
        a, b = build(), build()
        assert a.to_bytes() == b.to_bytes()
        path = a.write(tmp_path / "slo.jsonl")
        records = read_slo(path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "header"
        assert kinds.count("sli") == 4
        assert "burn" in kinds
        sli_rec = next(r for r in records if r["kind"] == "sli")
        assert sli_rec["tenant"] == "t0"
        # the phase decomposition tiles the latency in the record too
        assert sli_rec["queue_wait"] + sli_rec["start_delay"] + \
            sli_rec["execute"] + sli_rec["drain"] == pytest.approx(
                sli_rec["latency"])

    def test_snapshot_shape(self):
        tr = SloTracker([POLICY])
        for n in range(6):
            tr.observe(sli(n, latency=0.5))
        snap = tr.snapshot()
        t0 = snap["tenants"]["t0"]
        assert t0["policy"]["target"] == 1.0
        assert t0["burning"] is False
        assert t0["latency"]["p95"] == pytest.approx(0.5)
        assert snap["alerts"] == []


def mk_sample(seq):
    return TelemetrySample(
        seq=seq, t=(seq + 1) * 1e-3, dt=1e-3, totals={}, deltas={},
        h2d_bytes_per_s=0.0, d2h_bytes_per_s=0.0, stall_fraction=0.0,
        compute_fraction=0.5, transfer_fraction=0.5,
        cache_hit_rate=None, overlap_efficiency=None, queue_depth=0.0,
    )


class TestSloBurnDetector:
    def test_fires_once_per_burning_set_growth(self):
        tr = SloTracker([POLICY])
        det = SloBurnDetector(tr)
        assert det.update(mk_sample(0)) is None     # warmup, not burning
        for n in range(3):
            tr.observe(sli(n, latency=2.0))
        alert = det.update(mk_sample(1))
        assert alert is not None and alert.severity == "critical"
        assert "t0" in alert.message
        assert det.update(mk_sample(2)) is None     # same set: announced
        tr.release_backpressure()
        assert det.update(mk_sample(3)) is None
        for n in range(3, 6):
            tr.observe(sli(n, latency=2.0))
        assert det.update(mk_sample(4)) is not None  # re-entered: re-fires


class TestBlameDecomposition:
    def timeline(self, *, submitted=0.0, admitted=1.0, started=1.5,
                 last_end=5.5, drained=6.0, own=3.0, wait=None):
        return {
            "submitted": submitted, "admitted": admitted, "started": started,
            "last_quantum_end": last_end, "drained": drained,
            "own_seconds": own, "quanta": 2, "wait": dict(wait or {}),
        }

    def test_phases_tile_the_latency(self):
        phases = job_phases(self.timeline(wait={"queued": 0.6, "memory": 0.4}))
        assert phases["queueing"] + phases["deferral"] + phases["preemption"] \
            + phases["own"] + phases["drain"] == pytest.approx(phases["latency"])
        assert phases["deferral"] == pytest.approx(0.4)

    def test_components_telescope_to_delta(self):
        solo = self.timeline(admitted=0.0, started=0.0, last_end=3.0,
                             drained=3.2, own=3.0)
        mux = self.timeline(admitted=1.0, started=1.5, last_end=6.5,
                            drained=7.0, own=3.0,
                            wait={"queued": 0.7, "backpressure": 0.3})
        row = blame_decomposition(mux, solo)
        assert row["delta"] == pytest.approx(7.0 - 3.2)
        assert sum(row["components"][c] for c in BLAME_COMPONENTS) == \
            pytest.approx(row["delta"])
        assert abs(row["residual"]) < 1e-12
        assert row["components"]["admission_deferral"] == pytest.approx(0.3)
        assert row["components"]["quantum_preemption"] == pytest.approx(2.5)

    def test_shrink_and_shed_split_out_of_interference(self):
        solo = self.timeline(admitted=0.0, started=0.0, last_end=3.0,
                             drained=3.0, own=3.0)
        shrunk = self.timeline(admitted=0.0, started=0.0, last_end=4.0,
                               drained=4.0, own=4.0)
        shed = self.timeline(admitted=0.0, started=0.0, last_end=4.5,
                             drained=4.5, own=4.5)
        mux = self.timeline(admitted=0.0, started=0.0, last_end=5.0,
                            drained=5.0, own=5.0)
        row = blame_decomposition(mux, solo, solo_shrunk=shrunk,
                                  solo_shed=shed)
        comp = row["components"]
        assert comp["slot_quota_shrink"] == pytest.approx(1.0)
        assert comp["shed_slots"] == pytest.approx(0.5)
        assert comp["barrier_interference"] == pytest.approx(0.5)
        assert abs(row["residual"]) < 1e-12

    def test_summary_totals(self):
        solo = self.timeline(admitted=0.0, started=0.0, last_end=3.0,
                             drained=3.2, own=3.0)
        mux = self.timeline(admitted=1.0, started=1.5, last_end=6.5,
                            drained=7.0, own=3.0)
        rows = [blame_decomposition(mux, solo) for _ in range(3)]
        agg = blame_summary(rows)
        assert agg["jobs"] == 3
        assert agg["delta"] == pytest.approx(3 * rows[0]["delta"])
        assert agg["max_residual"] <= 1e-12


# -- service integration ----------------------------------------------------

MIX = (
    ("a", "heat", {"shape": (16, 8, 8), "steps": 1, "seed": 0}, 0.0),
    ("b", "compute", {"shape": (8, 8, 8), "steps": 1,
                      "kernel_iteration": 256, "seed": 1}, 1e-5),
    ("a", "heat", {"shape": (16, 8, 8), "steps": 1, "seed": 2}, 2e-4),
)


def run_service(**kwargs):
    svc = Service(total_slots=32, **kwargs)
    svc.add_tenant("a", 2.0, priority=True)
    svc.add_tenant("b", 1.0)
    for tenant, wl, kw, at in MIX:
        svc.submit(tenant, workload=wl, workload_kwargs=kw, at=at)
    report = svc.run()
    session = svc.session.to_bytes()
    tracker = svc.slo
    svc.close()
    return report, session, tracker


class TestServiceIntegration:
    def test_monitoring_never_touches_the_clock(self):
        _, plain, _ = run_service()
        _, monitored, tracker = run_service(slo={"a": 1.0, "b": 1.0})
        assert monitored == plain
        assert tracker is not None

    def test_sli_stream_is_deterministic_across_reruns(self):
        _, _, tr1 = run_service(slo={"a": 1.0, "b": 1.0})
        _, _, tr2 = run_service(slo={"a": 1.0, "b": 1.0})
        assert tr1.to_bytes() == tr2.to_bytes()
        assert len([r for r in json.loads("[" + ",".join(
            tr1.to_text().splitlines()) + "]") if r.get("kind") == "sli"]) == 3

    def test_stamps_feed_tracker_and_tenant_histograms(self):
        report, _, tracker = run_service(slo={"a": 1.0, "b": 1.0})
        snap = tracker.snapshot()
        assert snap["tenants"]["a"]["budget"]["jobs"] == 2.0
        assert snap["tenants"]["b"]["budget"]["jobs"] == 1.0
        # generous targets: nothing burned
        assert all(t["budget"]["burned"] == 0.0
                   for t in snap["tenants"].values())
        assert report.tenants["a"]["latency_p95"] is not None
        assert report.tenants["a"]["latency_p95"] >= \
            report.jobs[min(report.jobs)].latency * 0.0  # present and finite

    def test_blame_is_exact_on_a_real_contention_run(self):
        from repro.service import run_solo

        svc = Service(total_slots=32)
        svc.add_tenant("a", 2.0, priority=True)
        svc.add_tenant("b", 1.0)
        specs = {}
        for tenant, wl, kw, at in MIX:
            jid = svc.submit(tenant, workload=wl, workload_kwargs=kw, at=at)
            specs[jid] = (tenant, wl, kw)
        report = svc.run()
        svc.close()
        rows = []
        for jid, (tenant, wl, kw) in specs.items():
            res = report.jobs[jid]
            solo = run_solo(tenant, workload=wl, workload_kwargs=kw,
                            total_slots=32)
            assert res.digests == solo.digests
            rows.append(blame_decomposition(res.timeline, solo.timeline))
        assert rows
        for row in rows:
            assert abs(row["residual"]) <= 1e-12
            assert sum(row["components"][c] for c in BLAME_COMPONENTS) == \
                pytest.approx(row["delta"], abs=1e-12)


class TestBackpressure:
    def overload(self, *, backpressure):
        policy = SloPolicy(tenant="prio", target=2e-4, objective=0.9,
                           fast_window=2, slow_window=4,
                           fast_burn=2.0, slow_burn=2.0, exit_burn=0.5)
        svc = Service(total_slots=32, slo=[policy], backpressure=backpressure)
        svc.add_tenant("prio", 2.0, priority=True)
        bg = ("bg0", "bg1", "bg2", "bg3")
        for t in bg:
            svc.add_tenant(t, 1.0)
        for k in range(6):
            svc.submit("prio", workload="heat", at=k * 4e-4,
                       workload_kwargs={"shape": (16, 8, 8), "steps": 1,
                                        "seed": k})
        for i, t in enumerate(bg):
            for k in range(4):
                svc.submit(t, workload="compute",
                           at=1e-5 * (i + 1) + k * 2e-4,
                           workload_kwargs={"shape": (16, 8, 8), "steps": 2,
                                            "kernel_iteration": 2048,
                                            "seed": 100 + k})
        report = svc.run()
        tracker = svc.slo
        deferrals = svc.metrics.value("service.slo.backpressure_deferrals")
        svc.close()
        return report, tracker, deferrals

    def test_burn_alert_fires_under_contention(self):
        _, tracker, deferrals = self.overload(backpressure=False)
        assert tracker.alerts
        assert deferrals == 0.0

    def test_backpressure_defers_best_effort_and_completes_everything(self):
        report, tracker, deferrals = self.overload(backpressure=True)
        assert tracker.alerts
        assert deferrals > 0
        # nothing is lost: the flood still runs after the priority
        # stream drains (the release escape hatch)
        assert sum(1 for r in report.jobs.values()
                   if r.tenant.startswith("bg")) == 16
        assert sum(1 for r in report.jobs.values() if r.tenant == "prio") == 6

    def test_backpressure_improves_priority_latency(self):
        plain, _, _ = self.overload(backpressure=False)
        guarded, _, _ = self.overload(backpressure=True)
        p95 = lambda xs: sorted(xs)[int(0.95 * (len(xs) - 1))]  # noqa: E731
        assert p95(guarded.latencies("prio")) < p95(plain.latencies("prio"))
