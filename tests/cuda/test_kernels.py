"""Kernel launch semantics, geometry validation, and the cost model."""

import numpy as np
import pytest

from repro.config import CUDA_FASTMATH, CUDA_LIBM, PGI_MATH
from repro.cuda.kernel import KernelSpec, LaunchConfig
from repro.cuda.runtime import CudaRuntime
from repro.errors import CudaInvalidValueError


def add_one_kernel():
    def body(arr, inc=1.0):
        arr += inc
    return KernelSpec(name="add-one", body=body, bytes_per_cell=16.0, flops_per_cell=1.0)


class TestLaunchConfig:
    def test_valid(self):
        cfg = LaunchConfig(grid=(10,), block=(256,))
        assert cfg.threads_per_block == 256
        assert cfg.total_threads == 2560

    def test_block_too_big(self):
        with pytest.raises(CudaInvalidValueError):
            LaunchConfig(grid=(1,), block=(2048,))

    def test_block_3d_product_checked(self):
        with pytest.raises(CudaInvalidValueError):
            LaunchConfig(grid=(1,), block=(32, 32, 2))  # 2048 threads

    def test_max_3_dims(self):
        with pytest.raises(CudaInvalidValueError):
            LaunchConfig(grid=(1, 1, 1, 1), block=(1,))

    def test_zero_extent_rejected(self):
        with pytest.raises(CudaInvalidValueError):
            LaunchConfig(grid=(0,), block=(1,))

    def test_for_cells_covers(self):
        cfg = LaunchConfig.for_cells(1000, block=(256,))
        assert cfg.total_threads >= 1000
        assert cfg.grid == (4,)

    def test_for_cells_rejects_nonpositive(self):
        with pytest.raises(CudaInvalidValueError):
            LaunchConfig.for_cells(0)


class TestKernelCostModel:
    def test_memory_bound_duration(self, machine):
        k = KernelSpec(name="memset", body=None, bytes_per_cell=16.0)
        n = 1_000_000
        expected = 16.0 * n / machine.gpu.mem_bandwidth
        assert k.duration_on_gpu(machine, n) == pytest.approx(expected)

    def test_compute_bound_duration(self, machine):
        k = KernelSpec(name="flops", body=None, bytes_per_cell=1.0, flops_per_cell=10_000.0)
        n = 1_000_000
        expected = 10_000.0 * n / machine.gpu.dp_flops
        assert k.duration_on_gpu(machine, n) == pytest.approx(expected)

    def test_untuned_geometry_penalty(self, machine):
        k = KernelSpec(name="x", body=None, bytes_per_cell=16.0)
        tuned = k.duration_on_gpu(machine, 1000, tuned_geometry=True)
        untuned = k.duration_on_gpu(machine, 1000, tuned_geometry=False)
        assert untuned == pytest.approx(tuned / machine.gpu.untuned_geometry_efficiency)

    def test_math_model_changes_cost(self, machine):
        k = KernelSpec(name="trig", body=None, bytes_per_cell=1.0, sin_per_cell=10, cos_per_cell=10)
        libm = k.duration_on_gpu(machine, 10**6, math=CUDA_LIBM)
        pgi = k.duration_on_gpu(machine, 10**6, math=PGI_MATH)
        fast = k.duration_on_gpu(machine, 10**6, math=CUDA_FASTMATH)
        assert libm > pgi >= fast

    def test_flop_equivalents(self):
        k = KernelSpec(name="trig", body=None, bytes_per_cell=0.0,
                       flops_per_cell=2.0, sin_per_cell=1.0, sqrt_per_cell=1.0)
        total = k.flop_equivalents(CUDA_LIBM, 10)
        assert total == pytest.approx(10 * (2.0 + 34.0 + 16.0))

    def test_cpu_duration_uses_cpu_roofline(self, machine):
        k = KernelSpec(name="x", body=None, bytes_per_cell=16.0)
        assert k.duration_on_cpu(machine, 1000) == pytest.approx(
            16.0 * 1000 / machine.cpu.mem_bandwidth
        )

    def test_negative_cost_rejected(self):
        with pytest.raises(CudaInvalidValueError):
            KernelSpec(name="bad", body=None, bytes_per_cell=-1.0)

    def test_negative_cells_rejected(self, machine):
        k = KernelSpec(name="x", body=None, bytes_per_cell=1.0)
        with pytest.raises(CudaInvalidValueError):
            k.duration_on_gpu(machine, -5)


class TestLaunch:
    def test_functional_body_executes(self, runtime):
        dev = runtime.malloc((8,))
        runtime.launch(add_one_kernel(), buffers=[dev], params={"inc": 2.0})
        assert np.all(dev.array == 2.0)

    def test_launch_returns_completion_time(self, tiny_runtime):
        dev = tiny_runtime.malloc((1000,))
        end = tiny_runtime.launch(add_one_kernel(), buffers=[dev])
        assert end > 0
        assert tiny_runtime.compute_engine.tail == end

    def test_n_cells_inferred_from_first_buffer(self, tiny_runtime):
        dev = tiny_runtime.malloc((50, 2))
        tiny_runtime.launch(add_one_kernel(), buffers=[dev])
        assert tiny_runtime.trace.by_category("kernel")[0].meta["n_cells"] == 100

    def test_no_buffers_no_cells_rejected(self, runtime):
        with pytest.raises(CudaInvalidValueError):
            runtime.launch(add_one_kernel())

    def test_launch_async_wrt_host(self, tiny_runtime):
        rt = tiny_runtime
        dev = rt.malloc((100_000,))  # 1.6 ms of kernel at 1 GB/s
        t0 = rt.now
        end = rt.launch(add_one_kernel(), buffers=[dev])
        assert rt.now - t0 < 1e-4
        assert end - t0 >= 1.6e-3 * 0.9

    def test_launch_overhead_serializes_on_engine(self, tiny_runtime):
        rt = tiny_runtime
        dev = rt.malloc((1,))
        e1 = rt.launch(add_one_kernel(), buffers=[dev], n_cells=1)
        e2 = rt.launch(add_one_kernel(), buffers=[dev], n_cells=1)
        assert e2 - e1 >= rt.machine.gpu.kernel_launch_overhead

    def test_freed_buffer_rejected(self, runtime):
        dev = runtime.malloc((8,))
        runtime.free(dev)
        with pytest.raises(CudaInvalidValueError):
            runtime.launch(add_one_kernel(), buffers=[dev], n_cells=8)

    def test_foreign_device_buffer_rejected(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        dev = rt_a.malloc((8,))
        with pytest.raises(CudaInvalidValueError):
            rt_b.launch(add_one_kernel(), buffers=[dev], n_cells=8)

    def test_kernel_waits_for_stream_transfer(self, tiny_runtime):
        """In-stream FIFO: a kernel issued after an upload sees the data."""
        rt = tiny_runtime
        s = rt.create_stream()
        host = rt.malloc_pinned((100_000,), fill=1.0)
        dev = rt.malloc((100_000,))
        copy_end = rt.memcpy_async(dev, host, s)
        kernel_end = rt.launch(add_one_kernel(), buffers=[dev], stream=s)
        assert kernel_end > copy_end
        assert np.all(dev.array == 2.0)

    def test_kernels_on_different_streams_serialize_on_compute_engine(self, tiny_runtime):
        rt = tiny_runtime
        s1, s2 = rt.create_stream(), rt.create_stream()
        d1, d2 = rt.malloc((100_000,)), rt.malloc((100_000,))
        e1 = rt.launch(add_one_kernel(), buffers=[d1], stream=s1)
        e2 = rt.launch(add_one_kernel(), buffers=[d2], stream=s2)
        assert e2 >= e1 + 1.6e-3 * 0.9  # one kernel body apart

    def test_after_dependency(self, tiny_runtime):
        rt = tiny_runtime
        dev = rt.malloc((1,))
        end = rt.launch(add_one_kernel(), buffers=[dev], n_cells=1, after=0.5)
        assert end >= 0.5

    def test_timing_only_skips_body(self, machine):
        rt = CudaRuntime(machine, functional=False)
        dev = rt.malloc((512, 512, 512))

        def exploding(arr):  # pragma: no cover - must not run
            raise AssertionError("body executed in timing-only mode")

        k = KernelSpec(name="boom", body=exploding, bytes_per_cell=1.0)
        end = rt.launch(k, buffers=[dev])
        assert end > 0
