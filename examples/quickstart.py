#!/usr/bin/env python
"""Quickstart: solve the 3-D heat equation with TiDA-acc in ~30 lines.

Demonstrates the full §V programming model: declare tiled fields, flip
the iterator's GPU switch, call ``compute`` with a kernel, exchange
ghosts, swap time levels, and read back a plain numpy result — while the
library pipelines every region transfer behind computation on a
simulated Tesla K40m.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Neumann, TidaAcc, heat_kernel
from repro.baselines.common import default_init, reference_heat

SHAPE = (32, 32, 32)
STEPS = 10
COEF = 0.1


def main() -> None:
    lib = TidaAcc()  # simulated K40m testbed, functional mode
    lib.add_array("u_old", SHAPE, n_regions=4, halo=1)
    lib.add_array("u_new", SHAPE, n_regions=4, halo=1)

    init = default_init(SHAPE, ghost=1)
    lib.scatter("u_old", init[1:-1, 1:-1, 1:-1])
    lib.scatter("u_new", init[1:-1, 1:-1, 1:-1])

    kernel = heat_kernel(ndim=3)
    for _step in range(STEPS):
        lib.fill_boundary("u_old", Neumann())
        it = lib.iterator("u_new", "u_old").reset(gpu=True)
        while it.is_valid():
            lib.compute(it, kernel, params={"coef": COEF})
            it.next()
        lib.swap("u_old", "u_new")

    result = lib.gather("u_old")
    expected = reference_heat(init, STEPS, coef=COEF, bc=Neumann(), ghost=1)
    assert np.allclose(result, expected), "TiDA-acc diverged from the reference!"

    print(f"heat {SHAPE}, {STEPS} steps on {lib.runtime.machine.name}")
    print(f"  result mean            : {result.mean():.6f} (matches numpy reference)")
    print(f"  virtual wall-clock     : {lib.now * 1e3:.3f} ms")
    print(f"  kernel launches        : {len(lib.trace.by_category('kernel'))}")
    print(f"  H2D / D2H transfers    : {len(lib.trace.by_category('h2d'))} / "
          f"{len(lib.trace.by_category('d2h'))}")
    hidden = lib.trace.overlap_fraction(["compute"], ["h2d", "d2h"])
    print(f"  compute overlapped with transfers: {hidden * 100:.0f}%")


if __name__ == "__main__":
    main()
