"""Exception hierarchy for the TiDA-acc reproduction.

Every layer of the stack (simulated CUDA runtime, OpenACC layer, TiDA
tiling library, TiDA-acc core) raises exceptions rooted at
:class:`ReproError` so callers can catch at the granularity they need.
The CUDA-facing errors mirror the ``cudaError_t`` values the paper's
library would encounter (allocation failure, invalid value, invalid
resource handle), which lets the failure-injection tests assert on the
same conditions a real CUDA program would see.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid hardware specification or calibration constant."""


class SimulationError(ReproError):
    """Internal inconsistency in the virtual-time engine (a bug, not user error)."""


# ---------------------------------------------------------------------------
# CUDA runtime errors (mirroring cudaError_t)
# ---------------------------------------------------------------------------

class CudaError(ReproError):
    """Base class for simulated CUDA runtime errors."""


class CudaMemoryAllocationError(CudaError):
    """cudaErrorMemoryAllocation: device memory exhausted."""


class CudaInvalidValueError(CudaError):
    """cudaErrorInvalidValue: bad argument to a runtime call."""


class CudaInvalidResourceHandleError(CudaError):
    """cudaErrorInvalidResourceHandle: stream/event/buffer not owned or destroyed."""


class CudaIllegalAddressError(CudaError):
    """cudaErrorIllegalAddress: kernel touched freed or foreign memory."""


# ---------------------------------------------------------------------------
# OpenACC layer errors
# ---------------------------------------------------------------------------

class AccError(ReproError):
    """Base class for OpenACC layer errors."""


class AccPresentError(AccError):
    """Data referenced by ``present`` clause is not in the present table."""


class AccCompileError(AccError):
    """The directive 'compiler' rejected the construct (bad collapse, etc.)."""


# ---------------------------------------------------------------------------
# Tiling library errors
# ---------------------------------------------------------------------------

class TidaError(ReproError):
    """Base class for TiDA tiling-library errors."""


class DecompositionError(TidaError):
    """Domain cannot be decomposed as requested."""


class TileAccError(ReproError):
    """Base class for TiDA-acc core errors (slot/cache management, compute)."""
