"""Named workloads tenants can submit by name.

A tenant either submits a full :class:`~repro.plan.Program` + inputs, or
just a workload name with size knobs; :func:`build_workload` turns the
name into the same declarative programs the conformance matrix runs
(heat, wave, compute-intensive, variable-coefficient heat), so every
service job is also runnable solo through ``run_program`` for the
byte-identity differential.

``coeff-heat`` is the dedup workload: its ``kappa`` coefficient field is
proven read-only by the planner, and every job built with the same
``kappa_seed`` carries a byte-identical coefficient table — exactly the
shape the service's cross-job transfer dedup keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..baselines.common import default_init
from ..baselines.plan_runners import coeff_heat_program, default_kappa
from ..errors import ServiceError
from ..kernels.compute_intensive import compute_intensive_kernel
from ..kernels.heat import heat_kernel
from ..kernels.wave import wave_kernel
from ..plan import Program
from ..tida.boundary import Dirichlet, Neumann

#: Catalog names `build_workload` accepts.
WORKLOADS = ("heat", "wave", "compute", "coeff-heat")


@dataclass(frozen=True)
class WorkloadSpec:
    """A buildable job: declarative program + initial data + knobs."""

    name: str
    prog: Program
    inputs: dict[str, np.ndarray]
    gather: str                       # field whose result defines the job output
    params: dict[str, Any] = field(default_factory=dict)


def _init(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    if seed is None:
        return default_init(shape, 0)
    rng = np.random.default_rng(seed)
    return rng.random(shape)


def build_workload(
    name: str,
    *,
    shape: tuple[int, ...] = (32, 16, 16),
    steps: int = 2,
    seed: int | None = None,
    coef: float = 0.1,
    c2: float = 0.25,
    kernel_iteration: int = 64,
    kappa_seed: int = 7,
) -> WorkloadSpec:
    """Instantiate a named workload at the given size.

    ``seed`` perturbs the initial condition (None = the shared Weyl
    sequence every baseline uses); ``kappa_seed`` pins the coefficient
    table of ``coeff-heat`` so equal seeds share bytes across tenants.
    """
    shape = tuple(int(s) for s in shape)
    if name == "heat":
        prog = Program(shape, bc=Neumann())
        with prog.sweep(steps):
            prog.step(heat_kernel(len(shape)), ("u_new", "u_old"),
                      params={"coef": coef})
            prog.swap("u_old", "u_new")
        init = _init(shape, seed)
        return WorkloadSpec(name, prog, {"u_old": init, "u_new": init},
                            "u_old", {"steps": steps, "coef": coef})
    if name == "wave":
        prog = Program(shape, bc=Dirichlet(0.0))
        with prog.sweep(steps):
            prog.step(wave_kernel(len(shape)), ("u_next", "u", "u_prev"),
                      params={"c2": c2})
            prog.swap("u_prev", "u")
            prog.swap("u", "u_next")
        init = _init(shape, seed)
        return WorkloadSpec(name, prog, {"u": init, "u_prev": init},
                            "u", {"steps": steps, "c2": c2})
    if name == "compute":
        prog = Program(shape)
        with prog.sweep(steps):
            prog.step(compute_intensive_kernel(kernel_iteration), ("data",),
                      params={"kernel_iteration": kernel_iteration})
        return WorkloadSpec(name, prog, {"data": _init(shape, seed)},
                            "data",
                            {"steps": steps, "kernel_iteration": kernel_iteration})
    if name == "coeff-heat":
        prog = coeff_heat_program(shape, steps, coef=coef)
        init = _init(shape, seed)
        kappa = default_kappa(shape, seed=kappa_seed)
        return WorkloadSpec(
            name, prog,
            {"u_old": init, "u_new": init, "kappa": kappa},
            "u_old", {"steps": steps, "coef": coef, "kappa_seed": kappa_seed},
        )
    raise ServiceError(
        f"unknown workload {name!r}; have {', '.join(WORKLOADS)}",
        reason="unknown-workload",
    )
