"""The causal run DAG the hazard checker records alongside its clocks.

Each test issues a tiny schedule through the real runtime under
``check="observe"`` and asserts the shape of ``checker.dag``: which edge
kinds appear, what the host edge captured, and that serialization is
lossless.  The critical-path analyses built *on* the DAG live in
``tests/obs/test_critpath.py``.
"""

import pytest

from repro.check import DagNode, dag_from_json, dag_to_json
from repro.cuda.runtime import CudaRuntime


@pytest.fixture
def rt(machine):
    return CudaRuntime(machine, check="observe")


def deps_of(node, kind):
    return [d for d, k in node.deps if k == kind]


class TestEdgeKinds:
    def test_stream_fifo_edge(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s = rt.create_stream()
        rt.memcpy_async(a, h, s)
        rt.memcpy_async(h, a, s)
        first, second = rt.checker.dag
        assert deps_of(second, "stream") == [first.op_id]
        assert first.deps == ()

    def test_event_edge(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        ev = rt.create_event()
        rt.memcpy_async(a, h, s1)
        rt.event_record(ev, s1)
        rt.stream_wait_event(s2, ev)
        rt.memcpy_async(h, a, s2)
        first, second = rt.checker.dag
        assert deps_of(second, "event") == [first.op_id]

    def test_after_edge(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        end = rt.memcpy_async(a, h, s1)
        rt.memcpy_async(h, a, s2, after=end)
        first, second = rt.checker.dag
        assert deps_of(second, "after") == [first.op_id]

    def test_engine_fifo_edge(self, rt):
        # two H2D copies of *different* buffers on different streams: no
        # program-order edge, but they share the H2D DMA engine
        a1, a2 = rt.malloc(1024, label="a1"), rt.malloc(1024, label="a2")
        h1 = rt.malloc_pinned(1024, label="h1")
        h2 = rt.malloc_pinned(1024, label="h2")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a1, h1, s1)
        rt.memcpy_async(a2, h2, s2)
        first, second = rt.checker.dag
        assert deps_of(second, "stream") == []
        assert deps_of(second, "engine") == [first.op_id]

    def test_strongest_kind_wins_for_shared_predecessor(self, rt):
        # same stream *and* same engine: the edge is reported as the
        # strong program-order kind, not the weak engine FIFO
        a = rt.malloc(1024, label="a")
        b = rt.malloc(1024, label="b")
        h1 = rt.malloc_pinned(1024, label="h1")
        h2 = rt.malloc_pinned(1024, label="h2")
        s = rt.create_stream()
        rt.memcpy_async(a, h1, s)
        rt.memcpy_async(b, h2, s)
        _, second = rt.checker.dag
        assert second.deps == ((1, "stream"),)


class TestNodeContents:
    def test_transfers_record_nbytes(self, rt):
        a = rt.malloc(4096, label="a")
        h = rt.malloc_pinned(4096, label="h")
        rt.memcpy_async(a, h, rt.create_stream())
        (node,) = rt.checker.dag
        assert node.kind == "h2d"
        assert node.nbytes == h.nbytes > 0

    def test_times_are_causal(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s = rt.create_stream()
        rt.memcpy_async(a, h, s)
        rt.memcpy_async(h, a, s)
        for node in rt.checker.dag:
            assert node.issue <= node.start < node.end
        assert rt.checker.dag[0].end <= rt.checker.dag[1].start

    def test_host_dep_after_blocking_sync(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.stream_synchronize(s1)
        rt.memcpy_async(h, a, s2)
        first, second = rt.checker.dag
        assert first.host_dep is None
        assert second.host_dep == first.op_id
        assert second.host_gap >= 0.0

    def test_host_dep_after_event_sync(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        ev = rt.create_event()
        rt.memcpy_async(a, h, s1)
        rt.event_record(ev, s1)
        rt.event_synchronize(ev)
        rt.memcpy_async(h, a, s2)
        first, second = rt.checker.dag
        assert second.host_dep == first.op_id


class TestResetSchedule:
    def test_dag_survives_but_resolution_state_clears(self, rt):
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s = rt.create_stream()
        rt.memcpy_async(a, h, s)
        rt.stream_synchronize(s)
        rt.checker.reset_schedule()
        assert len(rt.checker.dag) == 1  # history kept for the profiler
        # ...but a new op on the same stream starts a fresh schedule:
        # no stale stream edge, no stale host edge
        rt.memcpy_async(h, a, s)
        node = rt.checker.dag[-1]
        assert node.deps == ()
        assert node.host_dep is None


class TestSerialization:
    def make_dag(self, rt):
        a = rt.malloc(2048, label="a")
        h = rt.malloc_pinned(2048, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        end = rt.memcpy_async(a, h, s1)
        rt.stream_synchronize(s1)
        rt.memcpy_async(h, a, s2, after=end)
        return list(rt.checker.dag)

    def test_json_round_trip_is_lossless(self, rt):
        dag = self.make_dag(rt)
        assert dag_from_json(dag_to_json(dag)) == dag

    def test_from_json_sorts_and_tolerates_missing_optionals(self):
        rows = [
            {"op": 2, "start": 1.0, "end": 2.0},
            {"op": 1, "kind": "h2d", "label": "up", "start": 0.0, "end": 1.0,
             "issue": 0.0, "nbytes": 64, "streams": [[0, 1]],
             "engines": ["h2d"], "deps": [], "host_dep": None,
             "host_gap": 0.0},
        ]
        n1, n2 = dag_from_json(rows)
        assert (n1.op_id, n2.op_id) == (1, 2)
        assert n2.kind == "?" and n2.deps == () and n2.issue == n2.start

    def test_checker_dag_export_matches_to_json(self, rt):
        dag = self.make_dag(rt)
        assert rt.checker.dag_export() == dag_to_json(dag)

    def test_json_is_plain_data(self, rt):
        import json

        rows = rt.checker.dag_export()
        assert json.loads(json.dumps(rows)) == rows


class TestDagNode:
    def test_duration_and_shifted(self):
        n = DagNode(op_id=1, kind="h2d", label="up", start=1.0, end=3.0,
                    issue=0.5, nbytes=8, streams=((0, 1),), engines=("h2d",),
                    deps=(), host_dep=None, host_gap=0.25)
        assert n.duration == 2.0
        m = n.shifted(10.0, 12.0, 9.5)
        assert (m.start, m.end, m.issue) == (10.0, 12.0, 9.5)
        assert m.duration == 2.0
        # everything else is carried over
        assert (m.op_id, m.kind, m.label, m.nbytes) == (1, "h2d", "up", 8)
        assert m.deps == () and m.host_gap == 0.25
