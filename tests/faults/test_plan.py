"""Unit tests for repro.faults: rules, plans, spec strings, retry policies."""

from __future__ import annotations

import math

import pytest

from repro.errors import (
    CudaEccUncorrectableError,
    CudaMemoryAllocationError,
    CudaTransferError,
)
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    FaultRule,
    RetryPolicy,
)


class TestFaultRule:
    def test_defaults_match_everything(self):
        r = FaultRule()
        for op in ("h2d", "d2h", "launch", "malloc", "sync"):
            assert r.matches_op(op)
        assert r.in_window(0.0)
        assert r.in_window(1e9)

    def test_copy_group(self):
        r = FaultRule(op="copy")
        assert r.matches_op("h2d")
        assert r.matches_op("d2h")
        assert not r.matches_op("launch")

    def test_nth_implies_single_fire(self):
        assert FaultRule(nth=3).max_fires == 1

    def test_default_error_classes_per_op(self):
        assert FaultRule(op="h2d").error_class("h2d") is CudaTransferError
        assert FaultRule(op="launch").error_class("launch") is CudaEccUncorrectableError
        assert FaultRule(op="malloc").error_class("malloc") is CudaMemoryAllocationError

    @pytest.mark.parametrize("kwargs", [
        dict(op="teleport"),
        dict(kind="meteor"),
        dict(nth=0),
        dict(p=1.5),
        dict(nth=1, p=0.5),
        dict(after_t=2.0, until_t=1.0),
        dict(error="segfault"),
        dict(kind="hang"),                       # needs hang_seconds > 0
        dict(kind="pressure"),                   # needs oom_bytes > 0
        dict(kind="pressure", oom_bytes=1, op="h2d"),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultRule(**kwargs)


class TestFaultPlan:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultRule(op="h2d", nth=3)])
        fires = [plan.draw("h2d", "h2d:u.r0", 0.0) is not None for _ in range(6)]
        assert fires == [False, False, True, False, False, False]

    def test_field_substring_match(self):
        plan = FaultPlan([FaultRule(op="h2d", field="u_old", nth=1)])
        assert plan.draw("h2d", "h2d:u_new.r0", 0.0) is None
        assert plan.draw("h2d", "h2d:u_old.r0", 0.0) is not None

    def test_probability_is_seed_deterministic(self):
        def fires(seed):
            plan = FaultPlan([FaultRule(op="launch", p=0.3)], seed=seed)
            return [plan.draw("launch", "k", 0.0) is not None for _ in range(50)]

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)  # astronomically unlikely to collide

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultRule(op="copy", p=0.4)], seed=3)
        first = [plan.draw("h2d", "x", 0.0) is not None for _ in range(30)]
        plan.reset()
        second = [plan.draw("h2d", "x", 0.0) is not None for _ in range(30)]
        assert first == second

    def test_time_window(self):
        plan = FaultPlan([FaultRule(op="sync", after_t=1.0, until_t=2.0)])
        assert plan.draw("sync", "s", 0.5) is None
        assert plan.draw("sync", "s", 1.0) is not None
        assert plan.draw("sync", "s", 2.0) is None

    def test_suspended_scope_fires_nothing(self):
        plan = FaultPlan([FaultRule(op="h2d")])
        with plan.suspended():
            assert plan.draw("h2d", "x", 0.0) is None
            assert plan.memory_pressure(0.0) == 0
        assert plan.draw("h2d", "x", 0.0) is not None

    def test_memory_pressure_sums_active_rules(self):
        plan = FaultPlan([
            FaultRule(op="malloc", kind="pressure", oom_bytes=100),
            FaultRule(op="malloc", kind="pressure", oom_bytes=50, after_t=1.0),
        ])
        assert plan.memory_pressure(0.0) == 100
        assert plan.memory_pressure(1.5) == 150

    def test_first_matching_rule_wins(self):
        plan = FaultPlan([
            FaultRule(op="h2d", error="invalid"),
            FaultRule(op="h2d", error="transfer"),
        ])
        inj = plan.draw("h2d", "x", 0.0)
        assert inj is not None and inj.rule_index == 0

    def test_rejects_non_rules(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(["h2d:nth=1"])  # type: ignore[list-item]


class TestFromSpec:
    def test_parses_the_docstring_example(self):
        plan = FaultPlan.from_spec(
            "h2d:field=u,nth=3; launch:p=0.01; malloc:oom=1048576,after=0.5; "
            "sync:hang=0.002,nth=1; seed=42"
        )
        assert plan.seed == 42
        r_h2d, r_launch, r_oom, r_hang = plan.rules
        assert (r_h2d.op, r_h2d.field, r_h2d.nth) == ("h2d", "u", 3)
        assert (r_launch.op, r_launch.p) == ("launch", 0.01)
        assert (r_oom.kind, r_oom.oom_bytes, r_oom.after_t) == ("pressure", 1048576, 0.5)
        assert (r_hang.kind, r_hang.hang_seconds, r_hang.nth) == ("hang", 0.002, 1)

    def test_empty_clauses_ignored(self):
        plan = FaultPlan.from_spec(" ; h2d:nth=1 ; ")
        assert len(plan.rules) == 1

    @pytest.mark.parametrize("spec", [
        "h2d:nth=three",
        "h2d:wat=1",
        "seed=x",
        "h2d:nth",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec(spec)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(0)
        with pytest.raises(FaultPlanError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(FaultPlanError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(FaultPlanError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(FaultPlanError):
            RetryPolicy().delay(0)

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(backoff=1e-3, multiplier=2.0, max_backoff=3e-3, jitter=0.0)
        assert p.delay(1) == pytest.approx(1e-3)
        assert p.delay(2) == pytest.approx(2e-3)
        assert p.delay(3) == pytest.approx(3e-3)   # capped
        assert p.delay(4) == pytest.approx(3e-3)

    def test_jitter_is_bounded_and_deterministic(self):
        p = RetryPolicy(backoff=1e-3, jitter=0.25, jitter_seed=9)
        d1 = p.delay(1, key=("u", "h2d", 0))
        d2 = p.delay(1, key=("u", "h2d", 0))
        assert d1 == d2                             # same key -> same jitter
        assert 1e-3 <= d1 <= 1e-3 * 1.25
        other = p.delay(1, key=("u", "h2d", 1))
        assert other != d1                          # independent chains differ

    def test_jitter_seed_changes_schedule(self):
        a = RetryPolicy(jitter_seed=1).delay(2, key=("f", "d2h", 3))
        b = RetryPolicy(jitter_seed=2).delay(2, key=("f", "d2h", 3))
        assert a != b

    def test_backoff_sequence_is_finite(self):
        p = RetryPolicy(max_attempts=6)
        total = sum(p.delay(i) for i in range(1, 6))
        assert math.isfinite(total) and total > 0
