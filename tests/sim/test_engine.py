"""Unit tests for the virtual clock and FIFO engines."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import FifoEngine, HostClock


class TestHostClock:
    def test_starts_at_zero(self):
        assert HostClock().now == 0.0

    def test_custom_start(self):
        assert HostClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            HostClock(-1.0)

    def test_advance_accumulates(self):
        clock = HostClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        assert HostClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            HostClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = HostClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = HostClock(7.0)
        clock.advance_to(3.0)
        assert clock.now == 7.0

    def test_zero_advance_allowed(self):
        clock = HostClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0


class TestFifoEngine:
    def test_first_op_starts_at_ready(self):
        eng = FifoEngine("e")
        start, end = eng.submit(ready=2.0, duration=1.0)
        assert (start, end) == (2.0, 3.0)

    def test_back_to_back_ops_queue(self):
        eng = FifoEngine("e")
        eng.submit(0.0, 5.0)
        start, end = eng.submit(0.0, 1.0)
        assert (start, end) == (5.0, 6.0)

    def test_late_ready_op_delays(self):
        eng = FifoEngine("e")
        eng.submit(0.0, 1.0)
        start, end = eng.submit(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_early_op_blocks_later_ready_op(self):
        """FIFO discipline: an op issued first but ready late still runs first."""
        eng = FifoEngine("e")
        s1, e1 = eng.submit(10.0, 1.0)   # issued first, ready at 10
        s2, e2 = eng.submit(0.0, 1.0)    # ready immediately but queued after
        assert s2 >= e1

    def test_zero_duration(self):
        eng = FifoEngine("e")
        start, end = eng.submit(1.0, 0.0)
        assert start == end == 1.0

    def test_busy_time_and_count(self):
        eng = FifoEngine("e")
        eng.submit(0.0, 2.0)
        eng.submit(0.0, 3.0)
        assert eng.busy_time == 5.0
        assert eng.op_count == 2

    def test_tail_tracks_last_end(self):
        eng = FifoEngine("e")
        eng.submit(0.0, 2.0)
        assert eng.tail == 2.0

    def test_negative_ready_rejected(self):
        with pytest.raises(SimulationError):
            FifoEngine("e").submit(-1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            FifoEngine("e").submit(0.0, -1.0)

    def test_reset(self):
        eng = FifoEngine("e")
        eng.submit(0.0, 2.0)
        eng.reset()
        assert eng.tail == 0.0
        assert eng.busy_time == 0.0
        assert eng.op_count == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e6),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_property_no_overlap_and_monotone(self, ops):
        """Scheduled intervals never overlap and starts respect ready times."""
        eng = FifoEngine("e")
        prev_end = 0.0
        for ready, duration in ops:
            start, end = eng.submit(ready, duration)
            assert start >= prev_end
            assert start >= ready
            assert end == start + duration
            prev_end = end

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e3),
                st.floats(min_value=0, max_value=1e3),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_property_busy_time_is_sum_of_durations(self, ops):
        eng = FifoEngine("e")
        for ready, duration in ops:
            eng.submit(ready, duration)
        assert eng.busy_time == pytest.approx(sum(d for _, d in ops))
