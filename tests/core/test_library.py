"""TidaAcc facade: fields, iterators, compute dispatch, swap, gather."""

import numpy as np
import pytest

from repro.core.library import TidaAcc
from repro.cuda.kernel import KernelSpec
from repro.errors import TidaError
from repro.kernels.heat import heat_kernel


def scale_kernel():
    def body(arr, lo, hi, factor=2.0):
        view = arr[tuple(slice(l, h) for l, h in zip(lo, hi))]
        view *= factor
    return KernelSpec(name="scale", body=body, bytes_per_cell=16.0, flops_per_cell=1.0)


def axpy_kernel():
    """dst = dst + a*src over the tile bounds (two-array kernel)."""
    def body(dst, src, lo, hi, a=1.0):
        sl = tuple(slice(l, h) for l, h in zip(lo, hi))
        dst[sl] += a * src[sl]
    return KernelSpec(name="axpy", body=body, bytes_per_cell=24.0, flops_per_cell=2.0)


@pytest.fixture
def lib(machine):
    return TidaAcc(machine, functional=True)


class TestFields:
    def test_add_and_lookup(self, lib):
        ta = lib.add_array("u", (16,), n_regions=4, halo=1)
        assert lib.field("u") is ta
        assert lib.manager("u").tile_array is ta
        assert lib.name_of(ta) == "u"
        assert lib.field_names() == ["u"]

    def test_duplicate_name_rejected(self, lib):
        lib.add_array("u", (16,), n_regions=4)
        with pytest.raises(TidaError):
            lib.add_array("u", (16,), n_regions=4)

    def test_unknown_field(self, lib):
        with pytest.raises(TidaError):
            lib.field("nope")

    def test_unregistered_array(self, lib):
        from repro.tida.tile_array import TileArray
        foreign = TileArray((8,), n_regions=2)
        with pytest.raises(TidaError):
            lib.name_of(foreign)

    def test_fields_are_pinned(self, lib):
        ta = lib.add_array("u", (16,), n_regions=4)
        assert all(r.data.pinned for r in ta.regions)


class TestComputeDispatch:
    def test_gpu_single_array(self, lib):
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        for (tile,) in lib.iterator("u").reset(gpu=True):
            lib.compute(tile, scale_kernel(), gpu=True, params={"factor": 3.0})
        assert np.all(lib.gather("u") == 3.0)

    def test_cpu_single_array(self, lib):
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        for (tile,) in lib.iterator("u").reset(gpu=False):
            lib.compute(tile, scale_kernel(), gpu=False, params={"factor": 3.0})
        assert np.all(lib.gather("u") == 3.0)

    def test_iterator_gpu_flag_respected(self, lib):
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        it = lib.iterator("u").reset(gpu=True)
        while it.is_valid():
            lib.compute(it, scale_kernel())
            it.next()
        assert len(lib.trace.by_category("kernel")) == 4
        assert np.all(lib.gather("u") == 2.0)

    def test_cpu_and_gpu_give_identical_results(self, machine):
        results = []
        for gpu in (False, True):
            lib = TidaAcc(machine)
            lib.add_array("u", (16,), n_regions=4)
            lib.field("u").from_global(np.arange(16, dtype=float))
            for (tile,) in lib.iterator("u").reset(gpu=gpu):
                lib.compute(tile, scale_kernel(), gpu=gpu)
            results.append(lib.gather("u"))
        np.testing.assert_array_equal(results[0], results[1])

    def test_multi_array_compute(self, lib):
        lib.add_array("dst", (16,), n_regions=4, fill=1.0)
        lib.add_array("src", (16,), n_regions=4, fill=5.0)
        for dst_t, src_t in lib.iterator("dst", "src").reset(gpu=True):
            lib.compute((dst_t, src_t), axpy_kernel(), gpu=True, params={"a": 2.0})
        assert np.all(lib.gather("dst") == 11.0)

    def test_bounds_subrange(self, lib):
        lib.add_array("u", (16,), n_regions=2, fill=1.0)
        tiles = lib.field("u").tiles()
        lib.compute(tiles[0], scale_kernel(), gpu=True, bounds=((2,), (5,)))
        out = lib.gather("u")
        assert np.all(out[2:5] == 2.0)
        assert np.all(out[:2] == 1.0) and np.all(out[5:] == 1.0)

    def test_mixed_cpu_gpu_phases(self, lib):
        """GPU step then CPU step then GPU step: caching keeps data coherent."""
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        for gpu in (True, False, True):
            for (tile,) in lib.iterator("u").reset(gpu=gpu):
                lib.compute(tile, scale_kernel(), gpu=gpu)
        assert np.all(lib.gather("u") == 8.0)

    def test_tiles_must_share_region(self, lib):
        lib.add_array("a", (16,), n_regions=4)
        lib.add_array("b", (16,), n_regions=4)
        ta = lib.field("a").tiles()
        tb = lib.field("b").tiles()
        with pytest.raises(TidaError):
            lib.compute((ta[0], tb[1]), axpy_kernel(), gpu=True)

    def test_tile_without_array_rejected(self, lib):
        from repro.tida.tile import Tile
        lib.add_array("u", (16,), n_regions=4)
        region = lib.field("u").region(0)
        naked = Tile(region, region.box, None)
        with pytest.raises(TidaError):
            lib.compute(naked, scale_kernel(), gpu=True)

    def test_bad_tiles_argument(self, lib):
        with pytest.raises(TidaError):
            lib.compute("nope", scale_kernel())

    def test_gpu_kernel_launched_on_slot_stream(self, lib):
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        tile = lib.field("u").tiles()[2]
        lib.compute(tile, scale_kernel(), gpu=True)
        ev = lib.trace.by_category("kernel")[0]
        assert ev.stream == lib.manager("u").slot_for(2).stream.stream_id


class TestSwap:
    def test_swap_renames_everything(self, lib):
        a = lib.add_array("old", (8,), n_regions=2, fill=1.0)
        b = lib.add_array("new", (8,), n_regions=2, fill=2.0)
        lib.swap("old", "new")
        assert lib.field("old") is b
        assert lib.field("new") is a
        assert lib.name_of(a) == "new"
        assert np.all(lib.gather("old") == 2.0)

    def test_swap_preserves_device_state(self, lib):
        lib.add_array("old", (8,), n_regions=2, fill=1.0)
        lib.add_array("new", (8,), n_regions=2, fill=0.0)
        mgr_new = lib.manager("new")
        mgr_new.request_device(0)
        lib.swap("old", "new")
        # the manager travelled with the array under its new name
        assert lib.manager("old") is mgr_new
        assert lib.manager("old").is_on_device(0)

    def test_time_loop_with_swap(self, lib):
        """old/new ping-pong like the heat driver, using copy semantics."""
        lib.add_array("old", (8,), n_regions=2, fill=1.0)
        lib.add_array("new", (8,), n_regions=2)
        for _ in range(3):
            for dst_t, src_t in lib.iterator("new", "old").reset(gpu=True):
                lib.compute((dst_t, src_t), axpy_kernel(), gpu=True)
            lib.swap("old", "new")
        # new = new + old each step from (0,1): 1, then old=1 -> values grow
        assert lib.gather("old").sum() > 0


class TestGatherScatter:
    def test_scatter_then_gather(self, lib):
        lib.add_array("u", (16,), n_regions=4)
        data = np.arange(16, dtype=float)
        lib.scatter("u", data)
        np.testing.assert_array_equal(lib.gather("u"), data)

    def test_scatter_flushes_device_copies(self, lib):
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        lib.manager("u").request_device(0)
        lib.scatter("u", np.zeros(16))
        # device copy is now stale; next GPU access must re-upload
        h2d_before = lib.manager("u").h2d_count
        lib.manager("u").request_device(0)
        assert lib.manager("u").h2d_count == h2d_before + 1

    def test_synchronize_advances_clock_past_queues(self, lib):
        lib.add_array("u", (16,), n_regions=4, fill=1.0)
        for (tile,) in lib.iterator("u").reset(gpu=True):
            lib.compute(tile, scale_kernel(), gpu=True)
        end = lib.synchronize()
        assert lib.now >= end
