"""Virtual-time simulation substrate.

This package provides the building blocks the simulated CUDA runtime is
made of: a host clock, FIFO hardware engines (compute engine, H2D and D2H
copy engines), a trace recorder for timeline figures and overlap metrics,
and host/device memory buffers that carry real numpy data in functional
mode or only byte counts in timing-only mode.
"""

from .engine import FifoEngine, HostClock
from .trace import Trace, TraceEvent
from .hostmem import HostBuffer
from .device import DeviceBuffer, DeviceMemoryPool

__all__ = [
    "FifoEngine",
    "HostClock",
    "Trace",
    "TraceEvent",
    "HostBuffer",
    "DeviceBuffer",
    "DeviceMemoryPool",
]
