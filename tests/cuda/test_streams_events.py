"""Stream and event lifecycle/semantics tests."""

import pytest

from repro.cuda.runtime import CudaRuntime
from repro.errors import (
    CudaInvalidResourceHandleError,
    CudaInvalidValueError,
)


class TestStreams:
    def test_create_returns_distinct_ids(self, runtime):
        s1 = runtime.create_stream()
        s2 = runtime.create_stream()
        assert s1.stream_id != s2.stream_id
        assert not s1.is_default and not s2.is_default

    def test_default_stream_exists(self, runtime):
        assert runtime.default_stream.is_default
        assert runtime.default_stream in runtime.streams

    def test_destroy_removes(self, runtime):
        s = runtime.create_stream()
        runtime.destroy_stream(s)
        assert s not in runtime.streams

    def test_destroy_default_rejected(self, runtime):
        with pytest.raises(CudaInvalidValueError):
            runtime.destroy_stream(runtime.default_stream)

    def test_use_after_destroy(self, runtime):
        s = runtime.create_stream()
        runtime.destroy_stream(s)
        with pytest.raises(CudaInvalidResourceHandleError):
            runtime.stream_synchronize(s)

    def test_foreign_stream_rejected(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        s = rt_a.create_stream()
        with pytest.raises(CudaInvalidResourceHandleError):
            rt_b.stream_synchronize(s)

    def test_not_a_stream(self, runtime):
        with pytest.raises(CudaInvalidResourceHandleError):
            runtime.stream_synchronize("not-a-stream")

    def test_destroy_drains_stream(self, tiny_runtime):
        """cudaStreamDestroy blocks until queued work completes."""
        rt = tiny_runtime
        s = rt.create_stream()
        dev = rt.malloc((1000,))
        host = rt.malloc_pinned((1000,))
        end = rt.memcpy_async(dev, host, s)
        rt.destroy_stream(s)
        assert rt.now >= end

    def test_sync_advances_host_to_stream_tail(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        dev = rt.malloc((10000,))
        host = rt.malloc_pinned((10000,))
        end = rt.memcpy_async(dev, host, s)
        assert rt.now < end  # async: host ran ahead
        rt.stream_synchronize(s)
        assert rt.now >= end

    def test_sync_records_trace_event(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        dev = rt.malloc((10000,))
        host = rt.malloc_pinned((10000,))
        rt.memcpy_async(dev, host, s)
        rt.stream_synchronize(s)
        assert any(e.category == "sync" for e in rt.trace)

    def test_device_synchronize_drains_everything(self, tiny_runtime):
        rt = tiny_runtime
        s1, s2 = rt.create_stream(), rt.create_stream()
        dev1, dev2 = rt.malloc((5000,)), rt.malloc((5000,))
        host = rt.malloc_pinned((5000,))
        e1 = rt.memcpy_async(dev1, host, s1)
        e2 = rt.memcpy_async(dev2, host, s2)
        rt.device_synchronize()
        assert rt.now >= max(e1, e2)


class TestEvents:
    def test_unrecorded_event_query_fails(self, runtime):
        ev = runtime.create_event()
        with pytest.raises(CudaInvalidValueError):
            _ = ev.time

    def test_record_captures_stream_tail(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        dev = rt.malloc((10000,))
        host = rt.malloc_pinned((10000,))
        end = rt.memcpy_async(dev, host, s)
        ev = rt.create_event()
        rt.event_record(ev, s)
        assert ev.time == pytest.approx(end)

    def test_record_on_idle_stream_is_now(self, runtime):
        ev = runtime.create_event()
        runtime.event_record(ev)
        assert ev.time == pytest.approx(runtime.now, abs=1e-5)

    def test_elapsed_time_ms(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        dev = rt.malloc((100_000,))
        host = rt.malloc_pinned((100_000,))
        e_start = rt.create_event()
        rt.event_record(e_start, s)
        rt.memcpy_async(dev, host, s)  # 800 KB at 1 GB/s = 0.8 ms
        e_stop = rt.create_event()
        rt.event_record(e_stop, s)
        assert e_start.elapsed_time_ms(e_stop) == pytest.approx(0.8, rel=0.05)

    def test_event_synchronize_blocks_host(self, tiny_runtime):
        rt = tiny_runtime
        s = rt.create_stream()
        dev = rt.malloc((10000,))
        host = rt.malloc_pinned((10000,))
        rt.memcpy_async(dev, host, s)
        ev = rt.create_event()
        rt.event_record(ev, s)
        rt.event_synchronize(ev)
        assert rt.now >= ev.time

    def test_stream_wait_event_orders_cross_stream(self, tiny_runtime):
        """Work queued after a wait-event cannot start before the event."""
        rt = tiny_runtime
        s1, s2 = rt.create_stream(), rt.create_stream()
        dev = rt.malloc((100_000,))
        host = rt.malloc_pinned((100_000,))
        end1 = rt.memcpy_async(dev, host, s1)
        ev = rt.create_event()
        rt.event_record(ev, s1)
        rt.stream_wait_event(s2, ev)
        dev2 = rt.malloc((8,))
        host2 = rt.malloc_pinned((8,))
        end2 = rt.memcpy_async(host2, dev2, s2)
        # the s2 copy's completion must come after the s1 copy's
        assert end2 > end1

    def test_foreign_event_rejected(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        ev = rt_a.create_event()
        with pytest.raises(CudaInvalidResourceHandleError):
            rt_b.event_record(ev)
