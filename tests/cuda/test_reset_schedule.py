"""Resetting scheduling state between harness repetitions.

The failing-test-first half: repetition drivers used to call
``FifoEngine.reset()`` on the engines alone.  That rewinds the engine
FIFOs but leaves the *streams* believing their previous run's operations
are still in flight — the next repetition's first op is scheduled after
a stale tail, corrupting per-repetition busy-time and queue-depth
accounting.  ``CudaRuntime.reset_schedule()`` is the fix: engines,
stream tails, pending-work deques, and the hazard checker's per-run
state are cleared together.
"""

import pytest

from repro.cuda.runtime import CudaRuntime


@pytest.fixture
def rt(tiny_machine):
    # tiny machine: 1 GB/s pinned link, zero latency — a 1 MB copy is
    # a hand-checkable ~1 ms
    return CudaRuntime(tiny_machine, check="observe")


def one_rep(rt, stream, nbytes=1_000_000):
    """One repetition: a single H2D copy; returns its completion time."""
    h = rt.malloc_pinned(nbytes // 8, label="h")
    d = rt.malloc(nbytes // 8, label="d")
    end = rt.memcpy_async(d, h, stream)
    rt.free(d)
    rt.free_host(h)
    return end


class TestEngineOnlyResetIsNotEnough:
    """Documents the trap reset_schedule() exists to fix."""

    def test_stale_stream_tail_delays_the_next_repetition(self, rt):
        s = rt.create_stream()
        end1 = one_rep(rt, s)
        assert s.tail == end1

        rt.h2d_engine.reset()  # the old, engine-only "reset"

        # engine accounting looks fresh…
        assert rt.h2d_engine.busy_time == 0.0
        # …but the stream still carries the previous run's tail, so the
        # next repetition's copy is pushed past it instead of starting now
        assert s.tail == end1
        end2 = one_rep(rt, s)
        assert end2 >= end1 + 0.9e-3  # a full extra copy-time late

    def test_engine_reset_docstring_points_at_reset_schedule(self):
        from repro.sim.engine import FifoEngine

        assert "reset_schedule" in FifoEngine.reset.__doc__


class TestResetSchedule:
    def test_fresh_repetition_starts_from_now(self, rt):
        s = rt.create_stream()
        end1 = one_rep(rt, s)
        rt.reset_schedule()
        assert s.tail == 0.0
        end2 = one_rep(rt, s)
        # same work, scheduled from the current clock instead of the
        # previous run's completion: roughly one copy-time, not two
        assert end2 < end1 + 0.5e-3
        assert end2 == pytest.approx(rt.now, abs=2e-3)

    def test_busy_time_accounts_per_repetition(self, rt):
        s = rt.create_stream()
        one_rep(rt, s)
        busy1 = rt.h2d_engine.busy_time
        rt.reset_schedule()
        one_rep(rt, s)
        assert rt.h2d_engine.busy_time == pytest.approx(busy1)
        assert rt.h2d_engine.op_count == 1

    def test_pending_calendar_cleared(self, rt):
        s = rt.create_stream()
        one_rep(rt, s)
        assert len(rt._pending) > 0
        rt.reset_schedule()
        assert len(rt._pending) == 0
        assert rt._pending.depth(("e", rt.h2d_engine.name)) == 0
        assert rt._pending.depth(("s", s.stream_id)) == 0

    def test_aliased_copy_engine_reset_once(self, machine):
        # single-copy-engine parts alias d2h onto h2d; resetting twice
        # would be harmless, but the identity set must not blow up
        from dataclasses import replace

        single = replace(machine, gpu=replace(machine.gpu, copy_engines=1))
        rt = CudaRuntime(single)
        assert rt.d2h_engine is rt.h2d_engine
        s = rt.create_stream()
        one_rep(rt, s)
        rt.reset_schedule()
        assert rt.h2d_engine.busy_time == 0.0

    def test_checker_state_reset_with_the_schedule(self, rt):
        # same buffers, conflicting accesses — but in different
        # repetitions: no cross-run hazard may be reported
        a = rt.malloc(1024, label="a")
        h = rt.malloc_pinned(1024, label="h")
        s1, s2 = rt.create_stream(), rt.create_stream()
        rt.memcpy_async(a, h, s1)
        rt.reset_schedule()
        rt.memcpy_async(h, a, s2)
        assert rt.checker.hazards == []

    def test_allocations_and_metrics_survive(self, rt):
        s = rt.create_stream()
        h = rt.malloc_pinned(1024, label="h")
        d = rt.malloc(1024, label="d")
        rt.memcpy_async(d, h, s)
        copies_before = rt.metrics.snapshot()["counters"]["cuda.h2d_copies"]
        rt.reset_schedule()
        # buffers stay allocated, counters keep accumulating
        rt.memcpy_async(d, h, s)
        assert rt.metrics.snapshot()["counters"]["cuda.h2d_copies"] == copies_before + 1
