#!/usr/bin/env python
"""Out-of-core GPU execution: the paper's limited-memory contribution (§VI-C).

Caps device memory so only two regions fit (like Figs. 7/8), runs the
compute-intensive kernel, and shows that streaming regions through two
slots costs essentially nothing: the kernel pipeline hides every byte of
traffic.  Also prints the two-stream ASCII timeline that mirrors Fig. 7,
and demonstrates that plain CUDA simply cannot allocate the problem.

Run:  python examples/out_of_core.py [--size 512] [--regions 16] [--steps 20]
"""

import argparse

from repro.baselines import run_cuda_compute, run_tida_compute
from repro.config import k40m_pcie3
from repro.errors import CudaMemoryAllocationError


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=512)
    parser.add_argument("--regions", type=int, default=16)
    parser.add_argument("--steps", type=int, default=20)
    args = parser.parse_args()

    shape = (args.size,) * 3
    region_bytes = (args.size ** 3 * 8) // args.regions
    limit = 2 * region_bytes + region_bytes // 2
    total_gb = args.size ** 3 * 8 / 1e9

    print(f"problem: {total_gb:.1f} GB of data, device limited to {limit / 1e9:.2f} GB "
          f"(two of {args.regions} regions)\n")

    print("1. plain CUDA on the limited device:")
    try:
        run_cuda_compute(k40m_pcie3().with_gpu_memory(limit, reserved_bytes=0),
                         shape=shape, steps=1, variant="pinned")
        raise SystemExit("unexpectedly succeeded")
    except CudaMemoryAllocationError as exc:
        print(f"   cudaMalloc failed as expected: {exc}\n")

    print("2. TiDA-acc with full device memory:")
    full = run_tida_compute(shape=shape, steps=args.steps, n_regions=args.regions)
    print(f"   {full.elapsed:.3f}s  ({full.meta['n_slots']} slots)\n")

    print("3. TiDA-acc on the limited device (regions streamed through 2 slots):")
    limited = run_tida_compute(shape=shape, steps=args.steps, n_regions=args.regions,
                               device_memory_limit=limit)
    overlap = limited.trace.overlap_fraction(["h2d", "d2h"], ["compute"])
    print(f"   {limited.elapsed:.3f}s  ({limited.meta['n_slots']} slots), "
          f"{overlap * 100:.1f}% of transfer time hidden")
    print(f"   overhead vs full memory: "
          f"{(limited.elapsed / full.elapsed - 1) * 100:+.2f}%\n")

    print("Fig. 7-style timeline (first two steps):")
    t_cut = limited.trace.events[0].start + 2 * limited.elapsed / args.steps
    early = limited.trace.filter(lambda e: e.end <= t_cut)
    from repro.sim.trace import Trace
    sub = Trace()
    for e in early:
        sub.add(e)
    print(sub.gantt(width=110, lanes=["h2d", "compute", "d2h"]))


if __name__ == "__main__":
    main()
