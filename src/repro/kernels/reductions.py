"""Reduction kernels: per-tile partial reductions combined on the host.

Reductions are the one pattern the paper's compute method cannot express
(a lambda that only writes tiles).  TiDA-acc's natural extension — and a
requirement of real solvers (residual norms, dot products for CG, energy
diagnostics) — is a per-region partial reduction on the device whose
scalar partials stream back over the region's own slot stream and are
combined on the host.  :meth:`repro.core.library.TidaAcc.reduce_field`
implements that; these specs describe the device kernels it launches.

A :class:`ReductionSpec` mirrors :class:`~repro.cuda.kernel.KernelSpec`
but its body *returns* the partial value instead of mutating an output
array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..cuda.kernel import KernelSpec
from ..errors import CudaInvalidValueError


@dataclass(frozen=True)
class ReductionSpec:
    """A device reduction: per-cell cost metadata + a partial-producing body.

    ``body(*arrays, lo=..., hi=..., **params) -> float`` computes the
    partial over the local index box.  ``combine`` folds two partials
    (must be associative and commutative — region order is unspecified);
    ``identity`` is the fold's unit.
    """

    name: str
    body: Callable[..., float]
    combine: Callable[[float, float], float]
    identity: float
    bytes_per_cell: float
    flops_per_cell: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bytes_per_cell < 0 or self.flops_per_cell < 0:
            raise CudaInvalidValueError("per-cell costs must be >= 0")

    def as_kernel(self) -> KernelSpec:
        """The launch-cost view of this reduction (body handled separately:
        reductions return values, which KernelSpec bodies do not)."""
        return KernelSpec(
            name=f"reduce:{self.name}",
            body=None,
            bytes_per_cell=self.bytes_per_cell,
            flops_per_cell=self.flops_per_cell,
            # reductions only read their inputs (partials are folded host-side)
            arg_access=("r", "r", "r", "r", "r", "r", "r", "r"),
            meta=dict(self.meta),
        )


def _view(arr: np.ndarray, lo, hi) -> np.ndarray:
    return arr[tuple(slice(l, h) for l, h in zip(lo, hi))]


def sum_reduction() -> ReductionSpec:
    """Sum of all cells."""
    def body(arr, lo, hi):
        return float(_view(arr, lo, hi).sum())
    return ReductionSpec(
        name="sum", body=body, combine=lambda a, b: a + b, identity=0.0,
        bytes_per_cell=8.0, flops_per_cell=1.0,
    )


def max_reduction() -> ReductionSpec:
    """Maximum over all cells."""
    def body(arr, lo, hi):
        return float(_view(arr, lo, hi).max())
    return ReductionSpec(
        name="max", body=body, combine=max, identity=float("-inf"),
        bytes_per_cell=8.0, flops_per_cell=1.0,
    )


def norm2_reduction() -> ReductionSpec:
    """Sum of squares (callers take sqrt of the final fold)."""
    def body(arr, lo, hi):
        v = _view(arr, lo, hi)
        return float((v * v).sum())
    return ReductionSpec(
        name="norm2", body=body, combine=lambda a, b: a + b, identity=0.0,
        bytes_per_cell=8.0, flops_per_cell=2.0,
    )


def dot_reduction() -> ReductionSpec:
    """Dot product of two fields (the CG inner product)."""
    def body(a, b, lo, hi):
        return float((_view(a, lo, hi) * _view(b, lo, hi)).sum())
    return ReductionSpec(
        name="dot", body=body, combine=lambda a, b: a + b, identity=0.0,
        bytes_per_cell=16.0, flops_per_cell=2.0,
    )
