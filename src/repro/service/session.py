"""Deterministic JSONL session log for the multi-tenant service.

Every externally observable scheduling decision — submission,
admission, degradation, QoS shedding, start, finish, rejection — is
appended as one JSON line stamped with the *virtual* time it happened.
Because the whole service runs on the simulator's deterministic clock,
the same tenants + jobs + seed produce a byte-identical session file,
which is what the QoS property tests assert (``same seed ->
byte-identical service.jsonl``) and what makes two sessions diffable
with plain text tools.

Schema: a ``repro-service-session/1`` header line, then event lines
``{"kind": ..., "t": ..., ...}`` with sorted keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

#: Schema tag of the session header line.
SCHEMA = "repro-service-session/1"


def _round(t: float) -> float:
    """Stabilize virtual times against float formatting noise.

    12 decimal digits of seconds is far below any modeled duration
    (API calls cost ~1e-7 s) while absorbing representation differences
    that would break byte-level comparisons of otherwise equal logs.
    """
    return round(float(t), 12)


class ServiceSession:
    """Append-only, deterministic event log of one service run."""

    def __init__(self, *, meta: dict[str, Any] | None = None) -> None:
        header = {"kind": "header", "schema": SCHEMA}
        if meta:
            header.update(meta)
        self._lines: list[str] = [json.dumps(header, sort_keys=True)]

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        event: dict[str, Any] = {"kind": kind, "t": _round(t)}
        for key, value in fields.items():
            if isinstance(value, float):
                value = _round(value)
            event[key] = value
        self._lines.append(json.dumps(event, sort_keys=True))

    def __len__(self) -> int:
        return len(self._lines)

    def events(self) -> Iterator[dict[str, Any]]:
        for line in self._lines:
            yield json.loads(line)

    def to_text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def to_bytes(self) -> bytes:
        """The canonical byte form (what determinism tests compare)."""
        return self.to_text().encode("utf-8")

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path


def read_session(path: str | Path) -> list[dict[str, Any]]:
    """Parse a ``service.jsonl`` file back into event dicts."""
    out = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out
