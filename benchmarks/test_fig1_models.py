"""Figure 1: heat 384^3, 100 iterations, nine execution models (§II-C)."""

from repro.bench import figures


def test_fig1_models(run_once, results_dir):
    table = run_once(figures.figure1)
    print()
    print(table.format())
    table.save_json(results_dir / "fig1.json")

    t = {(r[0], r[1]): r[2] for r in table.rows}
    # per-model memory ordering: pinned < pageable < managed
    for model in ("cuda", "openacc", "cuda+openacc"):
        assert t[(model, "pinned")] < t[(model, "pageable")] < t[(model, "managed")]
    # per-memory model ordering: cuda < hybrid < openacc
    for memory in ("pageable", "pinned", "managed"):
        assert t[("cuda", memory)] <= t[("cuda+openacc", memory)] <= t[("openacc", memory)]
    # "the performance of OpenACC improves and gets much closer to that of
    # CUDA" when CUDA manages memory: the hybrid closes most of the gap
    gap_acc = t[("openacc", "pinned")] - t[("cuda", "pinned")]
    gap_hybrid = t[("cuda+openacc", "pinned")] - t[("cuda", "pinned")]
    assert gap_hybrid < gap_acc
