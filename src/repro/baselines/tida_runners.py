"""Canonical TiDA-acc drivers for the paper's two workloads.

These are the programs §V sketches, written against the public
:class:`~repro.core.library.TidaAcc` API, parameterized the way the
evaluation needs them: region count (Fig. 5: "16 regions gave the best
performance"), device-memory limit (Figs. 7/8), slot count, tile shape
(ablation A4), and CPU/GPU mixing.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_MACHINE, MachineSpec
from ..core.library import TidaAcc
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..kernels.compute_intensive import DEFAULT_KERNEL_ITERATION, compute_intensive_kernel
from ..kernels.heat import heat_kernel
from ..kernels.wave import wave_kernel
from ..tida.boundary import BoundaryCondition, Dirichlet, Neumann
from .common import BaselineResult, default_init


def run_tida_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    n_regions: int = 16,
    coef: float = 0.1,
    bc: BoundaryCondition | None = None,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    tile_shape: tuple[int, ...] | None = None,
    gpu: bool = True,
    initial: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str = "lru",
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """TiDA-acc heat solver: the Fig. 5 configuration.

    Region transfers pipeline across per-slot streams; ghost cells are
    exchanged with the hybrid CPU/GPU updater each step.  ``faults`` arms
    a fault plan on the runtime and ``retry`` a recovery policy — the
    resilience benchmark (Fig. 9) drives both.  ``check`` arms the hazard
    checker (see :mod:`repro.check`); ``order``/``order_seed`` control the
    tile-visit order (the schedule-exploration harness shuffles it).
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    bc = bc if bc is not None else Neumann()
    lib = TidaAcc(machine, functional=functional, mode=mode,
                  device_memory_limit=device_memory_limit,
                  prefetch_depth=prefetch_depth, eviction=eviction,
                  faults=faults, retry=retry, check=check, telemetry=telemetry)
    functional = lib.runtime.functional
    kernel = heat_kernel(len(shape))
    lib.add_array("u_old", shape, n_regions=n_regions, halo=1, n_slots=n_slots)
    lib.add_array("u_new", shape, n_regions=n_regions, halo=1, n_slots=n_slots)
    if functional:
        init = initial if initial is not None else default_init(shape, 0)
        lib.field("u_old").from_global(init)
        lib.field("u_new").from_global(init)

    t0 = lib.now
    for _ in range(steps):
        lib.fill_boundary("u_old", bc)
        it = lib.iterator(
            "u_new", "u_old", tile_shape=tile_shape, order=order, seed=order_seed
        ).reset(gpu=gpu)
        while it.is_valid():
            lib.compute(it, kernel, params={"coef": coef})
            it.next()
        lib.swap("u_old", "u_new")
    result = lib.gather("u_old") if functional else None
    if not functional:
        lib.manager("u_old").flush_to_host()
    lib.synchronize()
    elapsed = lib.now - t0
    return BaselineResult(
        name="tida-acc", elapsed=elapsed, shape=shape, steps=steps,
        trace=lib.trace, result=result,
        meta={
            "n_regions": n_regions,
            "n_slots": lib.manager("u_old").n_slots,
            "device_memory_limit": device_memory_limit,
            "tile_shape": tile_shape,
            "gpu": gpu,
            "prefetch_depth": prefetch_depth,
            "eviction": eviction,
            "mode": lib.mode,
        },
        metrics=lib.metrics.snapshot(),
        dag=(list(lib.checker.dag) if lib.checker is not None else None),
    )


def run_tida_compute(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    n_regions: int = 16,
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    gpu: bool = True,
    initial: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str = "lru",
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """TiDA-acc compute-intensive runner: the Figs. 6-8 configurations.

    Single in-place field, no ghosts — with a device-memory limit the
    per-slot streams turn every step into the Fig. 7 pipeline (eviction
    download, upload, kernel — all overlapped across slots).  ``check``
    arms the hazard checker; ``order``/``order_seed`` control the
    tile-visit order (the schedule-exploration harness shuffles it).
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    lib = TidaAcc(machine, functional=functional, mode=mode,
                  device_memory_limit=device_memory_limit,
                  prefetch_depth=prefetch_depth, eviction=eviction,
                  faults=faults, retry=retry, check=check, telemetry=telemetry)
    functional = lib.runtime.functional
    kernel = compute_intensive_kernel(kernel_iteration)
    lib.add_array("data", shape, n_regions=n_regions, halo=0, n_slots=n_slots)
    if functional:
        init = initial if initial is not None else default_init(shape, 0)
        lib.field("data").from_global(init)

    t0 = lib.now
    for _ in range(steps):
        it = lib.iterator("data", order=order, seed=order_seed).reset(gpu=gpu)
        while it.is_valid():
            lib.compute(it, kernel, params={"kernel_iteration": kernel_iteration})
            it.next()
    result = lib.gather("data") if functional else None
    if not functional:
        lib.manager("data").flush_to_host()
    lib.synchronize()
    elapsed = lib.now - t0
    return BaselineResult(
        name="tida-acc", elapsed=elapsed, shape=shape, steps=steps,
        trace=lib.trace, result=result,
        meta={
            "n_regions": n_regions,
            "n_slots": lib.manager("data").n_slots,
            "device_memory_limit": device_memory_limit,
            "kernel_iteration": kernel_iteration,
            "gpu": gpu,
            "prefetch_depth": prefetch_depth,
            "eviction": eviction,
            "mode": lib.mode,
        },
        metrics=lib.metrics.snapshot(),
        dag=(list(lib.checker.dag) if lib.checker is not None else None),
    )


def run_tida_wave(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512),
    steps: int = 100,
    n_regions: int = 16,
    c2: float = 0.25,
    bc: BoundaryCondition | None = None,
    functional: bool = False,
    mode: str | None = None,
    device_memory_limit: int | None = None,
    n_slots: int | None = None,
    tile_shape: tuple[int, ...] | None = None,
    gpu: bool = True,
    initial: np.ndarray | None = None,
    prefetch_depth: int | None = None,
    eviction: str = "lru",
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    check: str | bool | None = None,
    telemetry=None,
    order: str = "sequential",
    order_seed: int | None = None,
) -> BaselineResult:
    """TiDA-acc wave solver: three fields, three-way rotation per step.

    The second-order wave step reads two time levels (``u``, ``u_prev``)
    and writes a third (``u_next``) — the widest compute signature the
    §V API supports — so its schedule stresses multi-field slot pressure
    in a way heat (two fields) and compute-intensive (one) do not.
    Options mirror :func:`run_tida_heat`.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    bc = bc if bc is not None else Dirichlet(0.0)
    lib = TidaAcc(machine, functional=functional, mode=mode,
                  device_memory_limit=device_memory_limit,
                  prefetch_depth=prefetch_depth, eviction=eviction,
                  faults=faults, retry=retry, check=check, telemetry=telemetry)
    functional = lib.runtime.functional
    kernel = wave_kernel(len(shape))
    for name in ("u_next", "u", "u_prev"):
        lib.add_array(name, shape, n_regions=n_regions, halo=1, n_slots=n_slots)
    if functional:
        init = initial if initial is not None else default_init(shape, 0)
        lib.field("u").from_global(init)
        lib.field("u_prev").from_global(init)

    t0 = lib.now
    for _ in range(steps):
        lib.fill_boundary("u", bc)
        it = lib.iterator(
            "u_next", "u", "u_prev", tile_shape=tile_shape, order=order,
            seed=order_seed,
        ).reset(gpu=gpu)
        while it.is_valid():
            lib.compute(it, kernel, params={"c2": c2})
            it.next()
        lib.swap("u_prev", "u")
        lib.swap("u", "u_next")
    result = lib.gather("u") if functional else None
    if not functional:
        lib.manager("u").flush_to_host()
    lib.synchronize()
    elapsed = lib.now - t0
    return BaselineResult(
        name="tida-acc-wave", elapsed=elapsed, shape=shape, steps=steps,
        trace=lib.trace, result=result,
        meta={
            "n_regions": n_regions,
            "n_slots": lib.manager("u").n_slots,
            "device_memory_limit": device_memory_limit,
            "tile_shape": tile_shape,
            "gpu": gpu,
            "prefetch_depth": prefetch_depth,
            "eviction": eviction,
            "mode": lib.mode,
        },
        metrics=lib.metrics.snapshot(),
        dag=(list(lib.checker.dag) if lib.checker is not None else None),
    )
