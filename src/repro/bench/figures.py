"""One experiment function per paper figure (and per ablation).

Every function runs timing-only simulations at the paper's sizes by
default but accepts smaller ``shape``/``steps`` so the test suite can
exercise the same code paths quickly.  Returned tables carry exactly the
rows/series the paper plots; timeline figures also return the rendered
ASCII Gantt and overlap metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_MACHINE, MiB, MachineSpec, k40m_pcie3, p100_nvlink
from ..baselines.acc_compute import run_acc_compute
from ..baselines.acc_heat import run_acc_heat
from ..baselines.cuda_compute import run_cuda_compute
from ..baselines.cuda_heat import run_cuda_heat
from ..baselines.hybrid_heat import run_hybrid_heat
from ..baselines.tida_runners import run_tida_compute, run_tida_heat
from ..faults import FaultPlan, FaultRule, RetryPolicy
from ..kernels.compute_intensive import DEFAULT_KERNEL_ITERATION, compute_intensive_kernel
from ..kernels.heat import heat_kernel
from ..model.analytic import estimate_resident, estimate_streaming
from ..model.autotune import sweep_prefetch_depth, sweep_region_counts
from .report import Table


def _cells(shape: tuple[int, ...]) -> int:
    n = 1
    for s in shape:
        n *= s
    return n


def _region_bytes(shape: tuple[int, ...], n_regions: int, itemsize: int = 8) -> int:
    return _cells(shape) * itemsize // n_regions


# ---------------------------------------------------------------------------
# Figure 1 — execution models x memory kinds, heat 384^3 x 100 iterations
# ---------------------------------------------------------------------------

def figure1(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (384, 384, 384),
    steps: int = 100,
) -> Table:
    """Running time of the heat solver under the nine §II-C execution models."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    table = Table(
        title=f"Figure 1: heat {shape}, {steps} iterations — execution models",
        columns=["model", "memory", "seconds"],
    )
    runners = {"cuda": run_cuda_heat, "openacc": run_acc_heat, "cuda+openacc": run_hybrid_heat}
    for model, runner in runners.items():
        for memory in ("pageable", "pinned", "managed"):
            r = runner(machine, shape=shape, steps=steps, memory=memory)
            table.add_row(model, memory, r.elapsed)
    table.add_note("paper: CUDA-pinned fastest; managed slowest per model; hybrid close to CUDA")
    return table


# ---------------------------------------------------------------------------
# Figure 3 — transfers overlapped with tile execution (timeline)
# ---------------------------------------------------------------------------

@dataclass
class TimelineResult:
    table: Table
    gantt: str
    overlap_fraction: float


def figure3(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (256, 256, 256),
    n_regions: int = 8,
    steps: int = 1,
) -> TimelineResult:
    """The §III overlap schematic, regenerated from a real run's trace.

    The heat workload is transfer-bound, so the figure's quantity of
    interest is the fraction of *kernel* time that executes while a
    transfer is in flight (every such second is transfer latency hidden),
    plus the pipelining gain: end-to-end span versus the serial sum of
    engine busy times.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    r = run_tida_heat(machine, shape=shape, steps=steps, n_regions=n_regions)
    overlap = r.trace.overlap_fraction(["compute"], ["h2d", "d2h"])
    serial = sum(r.trace.busy_time(lane) for lane in ("h2d", "compute", "d2h"))
    table = Table(
        title=f"Figure 3: transfer/compute overlap, heat {shape}, {n_regions} regions",
        columns=["lane", "busy_seconds"],
    )
    for lane in ("h2d", "compute", "d2h"):
        table.add_row(lane, r.trace.busy_time(lane))
    table.add_row("end_to_end", r.elapsed)
    table.add_row("serial_sum", serial)
    table.add_row("compute_overlap_fraction", overlap)
    return TimelineResult(table=table, gantt=r.trace.gantt(width=100), overlap_fraction=overlap)


# ---------------------------------------------------------------------------
# Figure 4 — hybrid ghost update: CPU index work overlapping GPU kernels
# ---------------------------------------------------------------------------

def figure4(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (128, 128, 128),
    n_regions: int = 4,
) -> TimelineResult:
    """The §IV-B.6 ghost-update overlap, from the trace of one exchange.

    Two steps are run: the first leaves every region device-resident, so
    the second step's exchange takes the hybrid CPU/GPU path Fig. 4 shows.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    r = run_tida_heat(machine, shape=shape, steps=2, n_regions=n_regions)
    ghost_events = [
        e for e in r.trace
        if e.name.startswith(("ghost-idx", "bc-idx", "ghost:", "bc-faces"))
    ]
    host_busy = sum(e.duration for e in ghost_events if e.lane == "host")
    gpu_busy = sum(e.duration for e in ghost_events if e.lane == "compute")
    if ghost_events:
        span = max(e.end for e in ghost_events) - min(e.start for e in ghost_events)
    else:
        span = 0.0
    table = Table(
        title=f"Figure 4: hybrid ghost update, heat {shape}, {n_regions} regions",
        columns=["quantity", "seconds"],
    )
    table.add_row("host index computation", host_busy)
    table.add_row("gpu ghost kernels", gpu_busy)
    table.add_row("exchange span", span)
    table.add_note("span < host + gpu time means the two overlapped (Fig. 4's point)")
    return TimelineResult(
        table=table,
        gantt=r.trace.gantt(width=100, lanes=["host", "compute", "h2d", "d2h"]),
        overlap_fraction=(host_busy + gpu_busy - span) / max(gpu_busy, 1e-30),
    )


# ---------------------------------------------------------------------------
# Figure 5 — heat speedups over CUDA-pageable vs iteration count
# ---------------------------------------------------------------------------

def figure5(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    iterations: tuple[int, ...] = (1, 10, 100, 1000),
    n_regions: int = 16,
) -> Table:
    """Speedup over CUDA-pageable: CUDA-pinned, OpenACC-pageable, TiDA-acc."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    table = Table(
        title=f"Figure 5: heat {shape} speedup over CUDA-pageable ({n_regions} regions)",
        columns=["iterations", "cuda-pinned", "openacc-pageable", "tida-acc"],
    )
    for steps in iterations:
        base = run_cuda_heat(machine, shape=shape, steps=steps, memory="pageable").elapsed
        pinned = run_cuda_heat(machine, shape=shape, steps=steps, memory="pinned").elapsed
        acc = run_acc_heat(machine, shape=shape, steps=steps, memory="pageable").elapsed
        tida = run_tida_heat(machine, shape=shape, steps=steps, n_regions=n_regions).elapsed
        table.add_row(steps, base / pinned, base / acc, base / tida)
    table.add_note("paper: TiDA-acc largest at few iterations; converges to CUDA; OpenACC lowest")
    return table


# ---------------------------------------------------------------------------
# Figure 6 — compute-intensive kernel execution times
# ---------------------------------------------------------------------------

def figure6(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
    n_regions: int = 16,
) -> Table:
    """Execution times of the five Fig. 6 implementations."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    table = Table(
        title=f"Figure 6: compute-intensive {shape}, {steps} steps",
        columns=["implementation", "seconds"],
    )
    table.add_row(
        "cuda",
        run_cuda_compute(machine, shape=shape, steps=steps, variant="pageable",
                         kernel_iteration=kernel_iteration).elapsed,
    )
    table.add_row(
        "cuda-pinned",
        run_cuda_compute(machine, shape=shape, steps=steps, variant="pinned",
                         kernel_iteration=kernel_iteration).elapsed,
    )
    table.add_row(
        "cuda-pinned-fastmath",
        run_cuda_compute(machine, shape=shape, steps=steps, variant="pinned-fastmath",
                         kernel_iteration=kernel_iteration).elapsed,
    )
    table.add_row(
        "openacc-pageable",
        run_acc_compute(machine, shape=shape, steps=steps, memory="pageable",
                        kernel_iteration=kernel_iteration).elapsed,
    )
    table.add_row(
        "tida-acc",
        run_tida_compute(machine, shape=shape, steps=steps, n_regions=n_regions,
                         kernel_iteration=kernel_iteration).elapsed,
    )
    table.add_note("paper: PGI-math builds (OpenACC, TiDA-acc) and fast-math beat CUDA libm")
    return table


# ---------------------------------------------------------------------------
# Figure 7 — limited-memory two-stream timeline
# ---------------------------------------------------------------------------

def figure7(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 2,
    n_regions: int = 16,
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
) -> TimelineResult:
    """The Fig. 7 pipeline: two device slots, full transfer/compute overlap."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    region_bytes = _region_bytes(shape, n_regions)
    limit = 2 * region_bytes + region_bytes // 2
    r = run_tida_compute(
        machine, shape=shape, steps=steps, n_regions=n_regions,
        kernel_iteration=kernel_iteration, device_memory_limit=limit,
    )
    overlap = r.trace.overlap_fraction(["h2d", "d2h"], ["compute"])
    table = Table(
        title=f"Figure 7: limited memory (2 slots), compute-intensive {shape}",
        columns=["lane", "busy_seconds"],
    )
    for lane in ("h2d", "compute", "d2h"):
        table.add_row(lane, r.trace.busy_time(lane))
    table.add_row("overlap_fraction", overlap)
    table.add_note("paper: transfers fully overlapped with computation (no performance loss)")
    return TimelineResult(table=table, gantt=r.trace.gantt(width=100), overlap_fraction=overlap)


# ---------------------------------------------------------------------------
# Figure 8 — limited memory vs full memory vs one region
# ---------------------------------------------------------------------------

def figure8(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 1000,
    n_regions: int = 16,
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
) -> Table:
    """TiDA-acc, TiDA-acc with 2-region memory, and TiDA-acc single-region."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    region_bytes = _region_bytes(shape, n_regions)
    limit = 2 * region_bytes + region_bytes // 2
    full = run_tida_compute(machine, shape=shape, steps=steps, n_regions=n_regions,
                            kernel_iteration=kernel_iteration)
    limited = run_tida_compute(machine, shape=shape, steps=steps, n_regions=n_regions,
                               kernel_iteration=kernel_iteration, device_memory_limit=limit)
    one = run_tida_compute(machine, shape=shape, steps=steps, n_regions=1,
                           kernel_iteration=kernel_iteration)
    table = Table(
        title=f"Figure 8: compute-intensive {shape}, {steps} steps",
        columns=["configuration", "seconds", "n_slots"],
    )
    table.add_row("tida-acc", full.elapsed, full.meta["n_slots"])
    table.add_row("tida-acc limited memory", limited.elapsed, limited.meta["n_slots"])
    table.add_row("tida-acc 1 region", one.elapsed, one.meta["n_slots"])
    table.add_note("paper: all three almost identical; CUDA cannot run the limited case at all")
    return table


# ---------------------------------------------------------------------------
# Figure 8 variant — lookahead prefetch pipeline in the limited-memory regime
# ---------------------------------------------------------------------------

def figure8_prefetch(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 40,
    n_regions: int = 12,
    n_slots: int = 6,
    kernel_iteration: int = 1,
    prefetch_depth: int = 1,
) -> Table:
    """Fig. 8's limited-memory scenario, re-run with the associative slot
    cache and lookahead prefetching.

    The demand-paged baseline keeps the paper's fixed ``rid % n_slots``
    mapping (``eviction="modulo"``); the sweep is cyclic, so at 12
    regions over 6 slots every access is a conflict miss.  The lookahead
    (Belady-style) policy plus a ``prefetch_depth``-deep pipeline keeps
    next-needed regions resident and overlaps eviction write-backs (on
    the dedicated D2H queue) with replacement uploads.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    region_bytes = _region_bytes(shape, n_regions)
    limit = n_slots * region_bytes + region_bytes // 2
    table = Table(
        title=f"Figure 8 (prefetch): compute-intensive {shape}, {steps} steps, "
              f"{n_regions} regions / {n_slots} slots",
        columns=["configuration", "seconds", "speedup", "h2d_uploads",
                 "prefetch_useful", "stall_s_avoided"],
    )
    configs = (
        ("demand modulo (paper)", dict(prefetch_depth=0, eviction="modulo")),
        ("demand lru", dict(prefetch_depth=0, eviction="lru")),
        (f"prefetch({prefetch_depth}) lookahead",
         dict(prefetch_depth=prefetch_depth, eviction="lookahead")),
    )
    base = None
    for label, kw in configs:
        r = run_tida_compute(machine, shape=shape, steps=steps, n_regions=n_regions,
                             kernel_iteration=kernel_iteration,
                             device_memory_limit=limit, **kw)
        counters = r.metrics["counters"]

        def total(prefix: str) -> float:
            return sum(v for k, v in counters.items() if k.startswith(prefix))

        base = base if base is not None else r.elapsed
        table.add_row(
            label,
            r.elapsed,
            base / r.elapsed,
            int(total("cache.misses.") + total("cache.prefetch_issued.")),
            int(total("cache.prefetch_useful.")),
            total("cache.stall_seconds_avoided."),
        )
    table.add_note("uploads = demand misses + speculative prefetches; "
                   "lookahead eviction cuts the cyclic sweep's conflict misses")
    table.add_note("acceptance: prefetch+lookahead >= 20% below the demand baseline")
    return table


# ---------------------------------------------------------------------------
# Figure 9 — resilience under injected faults (beyond the paper)
# ---------------------------------------------------------------------------

def figure9_resilience(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (256, 256, 256),
    steps: int = 10,
    n_regions: int = 16,
    fault_rates: tuple[float, ...] = (0.005, 0.02, 0.05),
    plan_spec: str | None = None,
    seed: int = 42,
    max_attempts: int = 5,
) -> Table:
    """The Fig. 5 heat configuration re-run under injected chaos.

    Each row arms a seeded :class:`~repro.faults.FaultPlan` that fails
    transfers with per-copy probability ``rate`` and launches with
    ``rate/2`` (ECC-style), recovered by same-slot re-issue with
    exponential backoff.  The interesting outputs are the *slowdown*
    (how much scheduling slack the overlap pipeline donates to recovery)
    and the transfer-overlap fraction, which should degrade gracefully
    rather than collapse.  ``plan_spec`` — the harness ``--faults`` knob
    — replaces the rate sweep with one explicit plan.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    retry = RetryPolicy(max_attempts=max_attempts, jitter_seed=seed)
    table = Table(
        title=f"Figure 9: resilience, heat {shape}, {steps} steps, "
              f"{n_regions} regions",
        columns=["plan", "seconds", "slowdown", "injected", "retries",
                 "recovered", "transfer_overlap"],
    )
    plans: list[tuple[str, FaultPlan | None]] = [("fault-free", None)]
    if plan_spec is not None:
        plans.append(("spec", FaultPlan.from_spec(plan_spec)))
    else:
        for rate in fault_rates:
            plans.append((
                f"p={rate:g}",
                FaultPlan(
                    [FaultRule(op="copy", p=rate),
                     FaultRule(op="launch", p=rate / 2)],
                    seed=seed,
                ),
            ))
    base = None
    for label, plan in plans:
        r = run_tida_heat(machine, shape=shape, steps=steps, n_regions=n_regions,
                          faults=plan, retry=retry)
        counters = r.metrics["counters"]
        base = base if base is not None else r.elapsed
        lanes = r.trace.lanes()
        transfer = [l for l in lanes
                    if any(e.category in ("h2d", "d2h") for e in r.trace.by_lane(l))]
        compute = [l for l in lanes
                   if any(e.category == "kernel" for e in r.trace.by_lane(l))]
        table.add_row(
            label,
            r.elapsed,
            r.elapsed / base,
            int(counters.get("faults.injected", 0.0)),
            int(counters.get("faults.retries", 0.0)),
            int(counters.get("faults.recovered", 0.0)),
            r.trace.overlap_fraction(transfer, compute),
        )
    table.add_note("every faulted run completes with correct host data "
                   "(byte-identical to fault-free in functional mode)")
    table.add_note("acceptance: recovered tracks injected; overlap degrades "
                   "gracefully instead of collapsing")
    return table


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def ablation_region_count(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 10,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
) -> Table:
    """A1: measured + modelled time vs region count (paper picked 16)."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    kernel = heat_kernel(len(shape))
    measured = sweep_region_counts(
        machine, kernel=kernel, domain_cells=_cells(shape), steps=steps,
        candidates=candidates, strategy="measure",
        measure_fn=lambda n: run_tida_heat(machine, shape=shape, steps=steps, n_regions=n).elapsed,
    )
    modelled = sweep_region_counts(
        machine, kernel=kernel, domain_cells=_cells(shape), steps=steps,
        candidates=candidates, strategy="model", resident=True,
        fields=2, result_fields=1, ghost_width=1,
    )
    table = Table(
        title=f"Ablation A1: region-count sweep, heat {shape}, {steps} steps",
        columns=["n_regions", "measured_s", "model_s"],
    )
    for m, p in zip(measured, modelled):
        table.add_row(m.n_regions, m.seconds, p.seconds)
    return table


def ablation_prefetch_depth(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (256, 256, 256),
    steps: int = 20,
    n_regions: int = 12,
    n_slots: int = 6,
    kernel_iteration: int = 1,
    candidates: tuple[int, ...] = (0, 1, 2, 4),
) -> Table:
    """A7: measured time vs lookahead prefetch depth (depth 0 = demand).

    Deeper is not better: each extra speculative upload must displace a
    slot, so past the point where transfers hide behind compute the
    pipeline only pays for more eviction write-backs.
    """
    machine = machine if machine is not None else DEFAULT_MACHINE
    region_bytes = _region_bytes(shape, n_regions)
    limit = n_slots * region_bytes + region_bytes // 2
    sweep = sweep_prefetch_depth(
        candidates=candidates,
        measure_fn=lambda depth: run_tida_compute(
            machine, shape=shape, steps=steps, n_regions=n_regions,
            kernel_iteration=kernel_iteration, device_memory_limit=limit,
            prefetch_depth=depth, eviction="lookahead",
        ).elapsed,
    )
    table = Table(
        title=f"Ablation A7: prefetch-depth sweep, compute-intensive {shape}, "
              f"{n_regions} regions / {n_slots} slots, {steps} steps",
        columns=["prefetch_depth", "seconds"],
    )
    for p in sweep:
        table.add_row(p.prefetch_depth, p.seconds)
    return table


def ablation_interconnect(
    machine_a: MachineSpec | None = None,
    machine_b: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 1,
    n_regions: int = 16,
) -> Table:
    """A2: PCIe Gen3 vs NVLink (paper intro: >=5x transfer speed)."""
    machine_a = machine_a if machine_a is not None else k40m_pcie3()
    machine_b = machine_b if machine_b is not None else k40m_pcie3().with_link(p100_nvlink().link)
    table = Table(
        title=f"Ablation A2: interconnect, heat {shape}, {steps} step(s)",
        columns=["interconnect", "cuda-pinned_s", "tida-acc_s"],
    )
    for label, m in ((machine_a.link.name, machine_a), (machine_b.link.name, machine_b)):
        cuda = run_cuda_heat(m, shape=shape, steps=steps, memory="pinned").elapsed
        tida = run_tida_heat(m, shape=shape, steps=steps, n_regions=n_regions).elapsed
        table.add_row(label, cuda, tida)
    table.add_note("a faster link shrinks TiDA-acc's advantage on transfer-bound runs")
    return table


def ablation_model_accuracy(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    n_regions: int = 16,
    kernel_iteration: int = DEFAULT_KERNEL_ITERATION,
) -> Table:
    """A3: analytic model vs simulator for resident and streaming runs."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    cells = _cells(shape)
    table = Table(
        title="Ablation A3: analytic model vs simulator",
        columns=["scenario", "model_s", "simulated_s", "ratio"],
    )
    ck = compute_intensive_kernel(kernel_iteration)

    sim = run_tida_compute(machine, shape=shape, steps=10, n_regions=n_regions,
                           kernel_iteration=kernel_iteration).elapsed
    mod = estimate_resident(machine, ck, domain_cells=cells, steps=10,
                            n_regions=n_regions).total
    table.add_row("compute-intensive resident (10 steps)", mod, sim, mod / sim)

    region_bytes = _region_bytes(shape, n_regions)
    limit = 2 * region_bytes + region_bytes // 2
    sim = run_tida_compute(machine, shape=shape, steps=10, n_regions=n_regions,
                           kernel_iteration=kernel_iteration,
                           device_memory_limit=limit).elapsed
    mod = estimate_streaming(machine, ck, domain_cells=cells, steps=10,
                             n_regions=n_regions).total
    table.add_row("compute-intensive streaming (10 steps)", mod, sim, mod / sim)

    hk = heat_kernel(len(shape))
    sim = run_tida_heat(machine, shape=shape, steps=10, n_regions=n_regions).elapsed
    mod = estimate_resident(machine, hk, domain_cells=cells, steps=10,
                            n_regions=n_regions, fields=2, result_fields=1,
                            ghost_width=1).total
    table.add_row("heat resident (10 steps)", mod, sim, mod / sim)
    return table


def ablation_cpu_tile_size(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (256, 256, 256),
    steps: int = 5,
    n_regions: int = 2,
) -> Table:
    """A6: TiDA's original multicore claim (§IV-A) — CPU tiles sized to the
    last-level cache beat region-sized loops by keeping stencil reuse
    resident.  Pure CPU execution (gpu=False)."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    table = Table(
        title=f"Ablation A6: CPU tile size, heat {shape}, {steps} steps (gpu=False)",
        columns=["tile_shape", "working_set_MiB", "seconds"],
    )
    slab = shape[0] // n_regions
    # two fields of doubles per tile cell
    candidates: list[tuple[int, ...] | None] = [
        None,                                 # tile == region (way over LLC)
        (slab, shape[1], max(1, shape[2] // 8)),
        (max(1, slab // 8), shape[1], max(1, shape[2] // 8)),  # cache-sized
    ]
    for tile_shape in candidates:
        if tile_shape is None:
            cells = slab * shape[1] * shape[2]
        else:
            cells = 1
            for s in tile_shape:
                cells *= s
        ws = cells * 8 * 2 / MiB
        r = run_tida_heat(machine, shape=shape, steps=steps, n_regions=n_regions,
                          tile_shape=tile_shape, gpu=False)
        table.add_row("region" if tile_shape is None else str(tile_shape), ws, r.elapsed)
    table.add_note("paper §IV-A: pick tile size for cache reuse (CPU), region size for parallelism")
    return table


def ablation_tile_size(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (256, 256, 256),
    steps: int = 10,
    n_regions: int = 8,
) -> Table:
    """A4: §V's advice — on GPU, tiles smaller than a region only add launches."""
    machine = machine if machine is not None else DEFAULT_MACHINE
    slab = shape[0] // n_regions
    table = Table(
        title=f"Ablation A4: tile size, heat {shape}, {n_regions} regions, {steps} steps",
        columns=["tile_shape", "seconds", "kernel_launches"],
    )
    for tile_shape in (None, (slab, shape[1], shape[2] // 2), (slab, shape[1] // 2, shape[2] // 2)):
        r = run_tida_heat(machine, shape=shape, steps=steps, n_regions=n_regions,
                          tile_shape=tile_shape)
        launches = len([e for e in r.trace if e.category == "kernel"])
        table.add_row("region" if tile_shape is None else str(tile_shape), r.elapsed, launches)
    table.add_note("paper §V: tile size == region size recommended for GPU execution")
    return table
