"""Diffing two metric snapshots: the seed of bench-trajectory gating.

A snapshot (see :meth:`MetricsRegistry.snapshot`) is flattened to scalar
series and compared metric-by-metric against a baseline.  A metric
*regresses* when it moves past ``threshold`` (relative) in its bad
direction — most runtime counters (bytes moved, stall seconds, cache
misses, evictions) are **lower-is-better**, while hit/overlap/avoided
counters are **higher-is-better**.  The profiler CLI's ``--compare``
mode exits non-zero when any regression is found, so a CI job can gate
on a stored baseline manifest.
"""

from __future__ import annotations

from typing import Any

#: Metric-name fragments whose growth is an improvement, not a regression.
GOOD_WHEN_HIGH = (
    "hits",
    "hit_rate",
    "avoided",
    "useful",
    "skipped",
    "overlap",
    "bandwidth",
    "utilization",
    "recovered",
    "speedup",
    "saved",
    "elided",
)


def flatten_snapshot(snapshot: dict[str, Any]) -> dict[str, float]:
    """Scalar series from a snapshot: counters, gauge high-water marks,
    histogram counts and sums."""
    flat: dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = float(value)
    for name, g in snapshot.get("gauges", {}).items():
        flat[f"{name}.max"] = float(g["max"])
    for name, h in snapshot.get("histograms", {}).items():
        flat[f"{name}.count"] = float(h["count"])
        flat[f"{name}.sum"] = float(h["sum"])
    return flat


def higher_is_better(name: str) -> bool:
    return any(frag in name for frag in GOOD_WHEN_HIGH)


def failing_alerts(
    alerts: list[dict[str, Any]],
    min_severity: str = "warning",
) -> list[dict[str, Any]]:
    """The subset of watchdog ``alerts`` at or above ``min_severity``.

    ``alerts`` is a list of :meth:`~repro.obs.live.watchdog.Alert.to_dict`
    payloads, as stored under a run manifest's ``"alerts"`` key by the
    ``repro.bench.live`` leg.  This is the predicate behind the profiler
    CLI's ``--fail-on-alerts`` gate: any returned alert fails the run.
    Alerts without a recognised severity count as failing (an unknown
    severity should never slip through a gate).
    """
    from .live.watchdog import SEVERITIES, severity_at_least

    failing = []
    for alert in alerts:
        severity = alert.get("severity", "")
        if severity not in SEVERITIES or severity_at_least(severity, min_severity):
            failing.append(alert)
    return failing


def compare_snapshots(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    threshold: float = 0.10,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """Compare two snapshots.

    Returns ``(rows, regressions)``: one row per metric seen in either
    snapshot (``metric``, ``baseline``, ``current``, ``delta``,
    ``rel_change``, ``verdict``), and the subset whose verdict is
    ``"REGRESSED"``.  Metrics absent from one side — including those
    whose baseline value is zero, where no relative change exists — are
    reported with verdict ``"new"``/``"removed"`` and never regress
    (there is nothing to gate against).
    """
    cur = flatten_snapshot(current)
    base = flatten_snapshot(baseline)
    rows: list[dict[str, Any]] = []
    regressions: list[dict[str, Any]] = []
    for name in sorted(set(cur) | set(base)):
        if name not in base:
            rows.append({"metric": name, "baseline": None, "current": cur[name],
                         "delta": None, "rel_change": None, "verdict": "new"})
            continue
        if name not in cur:
            rows.append({"metric": name, "baseline": base[name], "current": None,
                         "delta": None, "rel_change": None, "verdict": "removed"})
            continue
        b, c = base[name], cur[name]
        delta = c - b
        if b == 0.0 and c != 0.0:
            # a counter that first moved off zero: no relative change to
            # gate on, so surface it as "new" rather than an infinite
            # regression (or a silent skip)
            rows.append({"metric": name, "baseline": b, "current": c,
                         "delta": delta, "rel_change": None, "verdict": "new"})
            continue
        rel = delta / abs(b) if b != 0.0 else 0.0
        bad = (-rel if higher_is_better(name) else rel) >= threshold
        verdict = "REGRESSED" if bad else ("ok" if abs(rel) < threshold else "improved")
        row = {"metric": name, "baseline": b, "current": c,
               "delta": delta, "rel_change": rel, "verdict": verdict}
        rows.append(row)
        if bad:
            regressions.append(row)
    return rows, regressions
