"""The redundancy proofs pay out — and never change bytes.

Covers the elision ledger end to end: loop-invariant halo fills elided
(with byte credits matching the analytic fill size), read-only eviction
write-backs skipped under memory pressure, and the proof *not* firing
for fields that are actually written.
"""

import numpy as np
import pytest

from repro.baselines.common import apply_bc_global, default_init
from repro.baselines.plan_runners import (
    coeff_heat_program,
    default_kappa,
    run_planned_coeff_heat,
    run_tida_coeff_heat,
)
from repro.core.library import TidaAcc
from repro.kernels import coeff_heat_reference_step, heat_kernel
from repro.plan import Program, halo_fill_bytes, writebacks_skipped
from repro.tida.boundary import Neumann

SHAPE = (24, 16, 16)
STEPS = 4


@pytest.fixture
def coeff_run(machine):
    lib = TidaAcc(machine, functional=True)
    prog = coeff_heat_program(SHAPE, STEPS, bc=Neumann())
    init = default_init(SHAPE, 0)
    kappa = default_kappa(SHAPE)
    run = lib.run_program(prog, inputs={"u_old": init, "u_new": init,
                                        "kappa": kappa}, n_regions=4)
    return lib, run, init, kappa


class TestHaloElision:
    def test_coefficient_filled_once_then_elided(self, coeff_run):
        _lib, run, _init, _kappa = coeff_run
        # u_old refills every step (rewritten via swap); kappa fills once
        assert run.fills == STEPS + 1
        assert run.fills_elided == STEPS - 1
        assert run.iterations == STEPS

    def test_byte_credit_matches_analytic_fill_size(self, coeff_run):
        lib, run, _init, _kappa = coeff_run
        per_fill = halo_fill_bytes(lib.field("kappa"), Neumann())
        assert per_fill > 0
        assert run.halo_bytes_saved == (STEPS - 1) * per_fill

    def test_elision_counters_surface_in_metrics(self, coeff_run):
        lib, run, _init, _kappa = coeff_run
        counters = lib.metrics.snapshot()["counters"]
        assert counters["plan.fills_elided"] == run.fills_elided
        assert counters["plan.halo_bytes_saved"] == run.halo_bytes_saved

    def test_result_matches_pure_numpy_reference(self, coeff_run):
        lib, _run, init, kappa = coeff_run
        ghost = 1
        full = tuple(s + 2 * ghost for s in SHAPE)
        src = np.zeros(full)
        kap = np.zeros(full)
        inner = tuple(slice(ghost, -ghost) for _ in SHAPE)
        src[inner] = init
        kap[inner] = kappa
        for _ in range(STEPS):
            apply_bc_global(src, ghost, Neumann())
            apply_bc_global(kap, ghost, Neumann())
            src = coeff_heat_reference_step(src, kap, coef=0.1, ghost=ghost)
        np.testing.assert_array_equal(lib.gather("u_old"), src[inner])

    def test_written_fields_never_elide(self, machine):
        lib = TidaAcc(machine, functional=True)
        prog = Program(SHAPE, bc=Neumann())
        with prog.sweep(STEPS):
            prog.step(heat_kernel(3), ("u_new", "u_old"), params={"coef": 0.1})
            prog.swap("u_old", "u_new")
        init = default_init(SHAPE, 0)
        run = lib.run_program(prog, inputs={"u_old": init, "u_new": init},
                              n_regions=4)
        assert run.fills == STEPS
        assert run.fills_elided == 0
        assert run.halo_bytes_saved == 0

    def test_zero_ghost_field_fills_nothing(self, machine):
        lib = TidaAcc(machine, functional=True)
        lib.add_array("flat", SHAPE, n_regions=2, halo=0)
        assert halo_fill_bytes(lib.field("flat"), Neumann()) == 0


class TestWritebackSkips:
    CONFIG = dict(shape=(64, 32, 32), steps=6, n_regions=8, n_slots=2,
                  functional=True, eviction="lru",
                  device_memory_limit=(64 * 32 * 32 * 8) * 3 // 2)

    def test_read_only_evictions_skip_writebacks(self):
        planned = run_planned_coeff_heat(**self.CONFIG)
        assert planned.meta["ro_fields"] == ["kappa"]
        assert planned.meta["writebacks_skipped"] > 0

    def test_skips_do_not_change_bytes(self):
        naive = run_tida_coeff_heat(**self.CONFIG)
        planned = run_planned_coeff_heat(**self.CONFIG)
        assert planned.result.tobytes() == naive.result.tobytes()

    def test_ledger_only_counts_proven_fields(self, machine):
        lib = TidaAcc(machine, functional=True)
        prog = coeff_heat_program((32, 16, 16), 2)
        plan = lib.run_program(prog, n_regions=4,
                               inputs={"u_old": default_init((32, 16, 16), 0),
                                       "u_new": default_init((32, 16, 16), 0),
                                       "kappa": default_kappa((32, 16, 16))}).plan
        snapshot = {"counters": {
            "cache.writebacks_skipped.kappa": 3.0,
            "cache.writebacks_skipped.u_old": 7.0,   # not proven ro
            "cache.evictions.kappa": 9.0,
        }}
        assert writebacks_skipped(snapshot, plan) == 3.0
