"""Device and host reductions over tiled fields."""

import numpy as np
import pytest

from repro.core.library import TidaAcc
from repro.errors import TidaError
from repro.kernels.reductions import (
    dot_reduction,
    max_reduction,
    norm2_reduction,
    sum_reduction,
)


@pytest.fixture
def lib(machine):
    lib = TidaAcc(machine)
    lib.add_array("u", (16,), n_regions=4, halo=1)
    lib.field("u").from_global(np.arange(16, dtype=float))
    return lib


class TestFunctionalValues:
    def test_sum_gpu(self, lib):
        assert lib.reduce_field("u", sum_reduction()) == pytest.approx(120.0)

    def test_sum_cpu(self, lib):
        assert lib.reduce_field("u", sum_reduction(), gpu=False) == pytest.approx(120.0)

    def test_max(self, lib):
        assert lib.reduce_field("u", max_reduction()) == 15.0

    def test_norm2(self, lib):
        expected = float((np.arange(16.0) ** 2).sum())
        assert lib.reduce_field("u", norm2_reduction()) == pytest.approx(expected)

    def test_dot_two_fields(self, machine):
        lib = TidaAcc(machine)
        lib.add_array("a", (16,), n_regions=4)
        lib.add_array("b", (16,), n_regions=4)
        a = np.arange(16.0)
        b = np.full(16, 2.0)
        lib.scatter("a", a)
        lib.scatter("b", b)
        assert lib.reduce_field(["a", "b"], dot_reduction()) == pytest.approx(a @ b)

    def test_ghosts_excluded(self, machine):
        """Ghost cells must not contaminate the reduction."""
        lib = TidaAcc(machine)
        lib.add_array("u", (8,), n_regions=2, halo=2, fill=0.0)
        lib.scatter("u", np.ones(8))
        # poison ghost cells
        for region in lib.field("u").regions:
            region.array[:2] = 1e9
            region.array[-2:] = 1e9
        assert lib.reduce_field("u", sum_reduction()) == pytest.approx(8.0)

    def test_reduction_sees_device_state(self, lib):
        """A GPU kernel's writes are visible to a following reduction
        without any host round trip."""
        from repro.cuda.kernel import KernelSpec

        def body(arr, lo, hi):
            arr[tuple(slice(l, h) for l, h in zip(lo, hi))] += 1.0

        k = KernelSpec(name="inc", body=body, bytes_per_cell=16.0)
        for (tile,) in lib.iterator("u").reset(gpu=True):
            lib.compute(tile, k, gpu=True)
        assert lib.reduce_field("u", sum_reduction()) == pytest.approx(120.0 + 16)

    def test_gpu_cpu_agree(self, lib):
        g = lib.reduce_field("u", norm2_reduction(), gpu=True)
        c = lib.reduce_field("u", norm2_reduction(), gpu=False)
        assert g == pytest.approx(c)

    def test_incompatible_fields_rejected(self, machine):
        lib = TidaAcc(machine)
        lib.add_array("a", (16,), n_regions=4)
        lib.add_array("b", (16,), n_regions=2)
        with pytest.raises(TidaError):
            lib.reduce_field(["a", "b"], dot_reduction())


class TestSchedulingShape:
    def test_one_kernel_per_region_one_partial_download(self, lib):
        before_k = len(lib.trace.by_category("kernel"))
        before_d = len(lib.trace.by_category("d2h"))
        lib.reduce_field("u", sum_reduction())
        kernels = [e for e in lib.trace.by_category("kernel")[before_k:]]
        d2h = [e for e in lib.trace.by_category("d2h")[before_d:]]
        assert len(kernels) == 4
        assert len(d2h) == 1            # batched partial download
        assert d2h[0].nbytes == 4 * 8

    def test_partials_download_waits_for_all_kernels(self, lib):
        lib.reduce_field("u", sum_reduction())
        kernels = [e for e in lib.trace.by_category("kernel") if e.name.startswith("reduce:")]
        download = [e for e in lib.trace.by_category("d2h") if "partials" in e.name][0]
        assert download.start >= max(k.end for k in kernels)

    def test_host_blocked_until_result(self, lib):
        lib.reduce_field("u", sum_reduction())
        download = [e for e in lib.trace.by_category("d2h") if "partials" in e.name][0]
        assert lib.now >= download.end

    def test_no_leak_of_partial_buffers(self, lib):
        lib.reduce_field("u", sum_reduction())   # slot buffers now allocated
        free0 = lib.runtime.mem_get_info()[0]
        lib.reduce_field("u", sum_reduction())   # steady state: no net change
        assert lib.runtime.mem_get_info()[0] == free0

    def test_timing_only_mode(self, machine):
        lib = TidaAcc(machine, functional=False)
        lib.add_array("u", (128, 128, 128), n_regions=4)
        out = lib.reduce_field("u", sum_reduction())
        assert out == sum_reduction().identity  # no data: identity fold
        assert lib.now > 0
