"""Multi-tenant GPU service layer: admission control, QoS, load generation."""

from ..errors import ServiceError
from .admission import (
    ADMIT,
    DEFER,
    DEGRADE,
    REJECT,
    AdmissionController,
    plan_footprint_bytes,
    plan_slot_bytes,
    plan_total_slots,
)
from .loadgen import Arrival, LoadGenerator, TrafficPattern
from .service import JobResult, Service, ServiceReport, Tenant, run_solo
from .session import ServiceSession, read_session
from .workloads import WORKLOADS, WorkloadSpec, build_workload

__all__ = [
    "ADMIT",
    "DEFER",
    "DEGRADE",
    "REJECT",
    "AdmissionController",
    "Arrival",
    "JobResult",
    "LoadGenerator",
    "Service",
    "ServiceError",
    "ServiceReport",
    "ServiceSession",
    "Tenant",
    "TrafficPattern",
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "plan_footprint_bytes",
    "plan_slot_bytes",
    "plan_total_slots",
    "read_session",
    "run_solo",
]
