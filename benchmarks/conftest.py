"""Benchmark-suite fixtures.

Each benchmark runs its experiment exactly once (the virtual-time
simulation is deterministic — repeated rounds would measure Python
overhead, not the experiment), prints the paper-style table, saves JSON
under ``results/``, and asserts the figure's qualitative shape.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_once(benchmark):
    """Run the experiment once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
