"""Byte-reproducibility of the live telemetry pipeline (satellite of the
live-observability PR): same seed + fault plan => identical session
JSONL, identical alert sequence, identical incident.json."""

import pytest

from repro.baselines.tida_runners import run_tida_compute, run_tida_heat
from repro.errors import FaultError
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.obs.live import FlightRecorder, TelemetryBus, Watchdog, default_detectors

SHAPE = (64, 64, 64)
INTERVAL = 5e-4


def monitored_faulty_run(tmp_dir, tag):
    """One seeded fault-plan run under full telemetry; returns artifacts."""
    jsonl = tmp_dir / f"session_{tag}.jsonl"
    bus = TelemetryBus(sample_interval=INTERVAL, jsonl=jsonl)
    bus.add_subscriber(Watchdog(default_detectors(cooldown=4 * INTERVAL)))
    run_tida_compute(
        shape=SHAPE, steps=3, n_regions=8,
        faults=FaultPlan.from_spec("launch:p=0.5; seed=11"),
        retry=RetryPolicy(max_attempts=8),
        functional=False, telemetry=bus,
    )
    bus.close()
    return jsonl.read_bytes(), [a.to_dict() for a in bus.alerts]


class TestSessionDeterminism:
    def test_jsonl_and_alerts_byte_identical(self, tmp_path):
        blob_a, alerts_a = monitored_faulty_run(tmp_path, "a")
        blob_b, alerts_b = monitored_faulty_run(tmp_path, "b")
        assert alerts_a, "sanity: the seeded run alerts"
        assert alerts_a == alerts_b
        assert blob_a == blob_b

    def test_incident_json_byte_identical(self, tmp_path):
        def crash(tag):
            inc_dir = tmp_path / tag
            bus = TelemetryBus(sample_interval=INTERVAL)
            rec = bus.add_subscriber(FlightRecorder(incident_dir=inc_dir))
            with pytest.raises(FaultError):
                run_tida_heat(shape=SHAPE, steps=2, n_regions=4,
                              functional=False,
                              faults=FaultPlan([FaultRule(op="h2d")]),
                              retry=RetryPolicy(max_attempts=2),
                              telemetry=bus)
            bus.close()
            assert len(rec.incident_paths) == 1
            return rec.incident_paths[0].read_bytes()

        assert crash("a") == crash("b")

    def test_different_seed_different_stream(self, tmp_path):
        def run(seed, tag):
            jsonl = tmp_path / f"s{tag}.jsonl"
            bus = TelemetryBus(sample_interval=INTERVAL, jsonl=jsonl)
            run_tida_compute(
                shape=SHAPE, steps=2, n_regions=4,
                faults=FaultPlan.from_spec(f"launch:p=0.5; seed={seed}"),
                retry=RetryPolicy(max_attempts=8),
                functional=False, telemetry=bus,
            )
            bus.close()
            return jsonl.read_bytes()

        assert run(11, "a") != run(12, "b")
