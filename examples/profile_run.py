#!/usr/bin/env python
"""Profile a pipelined heat solve: critical path, attribution, what-if.

Runs the 2-D heat solver under the observing hazard checker so the run
records its causal DAG, then prints the analyses of
``repro.obs.critpath``: which operations bound the end-to-end time, how
the wall time splits across kernel / H2D / D2H / ghost / write-back /
host-stall per field, how close each iteration came to the ideal
``max(compute, transfer)`` lower bound, and what a faster link or
faster kernels would buy — including the link speed where the
bottleneck flips to compute.

Run:  python examples/profile_run.py [--size 512] [--regions 8]
          [--steps 3] [--out run.json]

``--out`` additionally writes the full run manifest (trace + metrics +
DAG + critpath summary); inspect it later with
``python -m repro.obs.report run.json --critpath [--format json]``.
"""

import argparse
import json

from repro.baselines import run_tida_heat
from repro.check.dag import dag_to_json
from repro.obs.critpath import RunDag, critpath_summary
from repro.obs.report import build_critpath_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=512, help="square grid edge")
    parser.add_argument("--regions", type=int, default=8, help="region count")
    parser.add_argument("--steps", type=int, default=3, help="time steps")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the run manifest there")
    args = parser.parse_args()

    r = run_tida_heat(
        shape=(args.size, args.size), steps=args.steps,
        n_regions=args.regions, check="observe",
    )
    marks = [m["ts"] for m in r.trace.marks if m["name"] == "iteration"]
    dag = RunDag.from_nodes(r.dag or (), marks=marks)
    summary = critpath_summary(dag)
    manifest = {
        "schema": "repro-run-manifest/1",
        "traceEvents": r.trace.to_chrome_trace(),
        "metrics": r.metrics,
        "dag": dag_to_json(r.dag or ()),
        "critpath": summary,
    }
    for table in build_critpath_report(r.trace, manifest):
        print(table.format())
        print()
    if args.out is not None:
        with open(args.out, "w") as f:
            json.dump(manifest, f)
        print(f"wrote run manifest to {args.out}")
        print(f"inspect with: python -m repro.obs.report {args.out} --critpath")


if __name__ == "__main__":
    main()
