"""Simulated CUDA runtime.

A virtual-time reimplementation of the slice of the CUDA runtime API the
paper's library uses (§IV): ``cudaMalloc``/``cudaMallocHost``/
``cudaMallocManaged``, ``cudaMemGetInfo``, ``cudaMemcpy``/
``cudaMemcpyAsync``, streams, events, and kernel launches.  Device
allocations are numpy-backed in functional mode, so kernels really execute
and results can be verified; in timing-only mode only virtual time and
byte counts flow, so paper-sized problems (512³ doubles) simulate in
milliseconds.
"""

from .kernel import KernelSpec, LaunchConfig
from .stream import Stream
from .event import Event
from .runtime import CudaRuntime
from .uvm import ManagedBuffer

__all__ = [
    "CudaRuntime",
    "KernelSpec",
    "LaunchConfig",
    "Stream",
    "Event",
    "ManagedBuffer",
]
