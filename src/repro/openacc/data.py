"""OpenACC data environment: the present table and data regions.

OpenACC tracks which host arrays currently have a device copy in a
*present table*.  Structured ``data`` regions and unstructured
``enter data``/``exit data`` directives manipulate it with reference
counting (nested regions naming the same array don't re-copy), and a
``present`` clause on a construct asserts membership (§II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AccPresentError
from ..sim.device import DeviceBuffer
from ..sim.hostmem import HostBuffer


@dataclass
class PresentEntry:
    host: HostBuffer
    device: DeviceBuffer
    refcount: int
    copyout_on_delete: bool


class PresentTable:
    """Host-array -> device-copy mapping with OpenACC refcount semantics."""

    def __init__(self) -> None:
        self._entries: dict[int, PresentEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, host: HostBuffer) -> PresentEntry | None:
        return self._entries.get(id(host))

    def is_present(self, host: HostBuffer) -> bool:
        return id(host) in self._entries

    def device_of(self, host: HostBuffer) -> DeviceBuffer:
        entry = self.lookup(host)
        if entry is None:
            raise AccPresentError(
                f"array {host.label or id(host)} is not present on the device "
                "(no enclosing data region created a device copy)"
            )
        return entry.device

    def insert(self, host: HostBuffer, device: DeviceBuffer, *, copyout_on_delete: bool) -> PresentEntry:
        if id(host) in self._entries:
            raise AccPresentError(f"array {host.label or id(host)} is already present")
        entry = PresentEntry(host=host, device=device, refcount=1, copyout_on_delete=copyout_on_delete)
        self._entries[id(host)] = entry
        return entry

    def retain(self, host: HostBuffer) -> PresentEntry:
        entry = self.lookup(host)
        if entry is None:
            raise AccPresentError(f"cannot retain non-present array {host.label or id(host)}")
        entry.refcount += 1
        return entry

    def release(self, host: HostBuffer) -> PresentEntry | None:
        """Decrement; return the entry if its refcount hit zero (caller
        performs the copyout/free and then calls :meth:`drop`)."""
        entry = self.lookup(host)
        if entry is None:
            raise AccPresentError(f"cannot release non-present array {host.label or id(host)}")
        entry.refcount -= 1
        if entry.refcount < 0:
            raise AccPresentError("present-table refcount underflow")
        return entry if entry.refcount == 0 else None

    def drop(self, host: HostBuffer) -> None:
        del self._entries[id(host)]
