"""Analytic model and autotuner tests, including model-vs-simulator accuracy."""

import pytest

from repro.baselines import run_tida_compute, run_tida_heat
from repro.errors import ReproError
from repro.kernels.compute_intensive import compute_intensive_kernel
from repro.kernels.heat import heat_kernel
from repro.model.analytic import estimate_resident, estimate_streaming
from repro.model.autotune import (
    autotune_prefetch_depth,
    autotune_region_count,
    sweep_prefetch_depth,
    sweep_region_counts,
)


class TestStreamingEstimate:
    def test_compute_bound_case(self, machine):
        k = compute_intensive_kernel(48)
        est = estimate_streaming(machine, k, domain_cells=512**3, steps=10, n_regions=16)
        assert est.bottleneck == "compute"
        assert est.total > 0
        assert est.per_step == pytest.approx(est.compute)

    def test_transfer_bound_case(self, machine):
        k = heat_kernel(3)  # memory-light relative to PCIe
        est = estimate_streaming(machine, k, domain_cells=512**3, steps=10, n_regions=16)
        assert est.bottleneck in ("h2d", "d2h")

    def test_scales_linearly_in_steps(self, machine):
        k = compute_intensive_kernel(48)
        e1 = estimate_streaming(machine, k, domain_cells=64**3, steps=10, n_regions=4)
        e2 = estimate_streaming(machine, k, domain_cells=64**3, steps=20, n_regions=4)
        assert e2.total == pytest.approx(2 * e1.total - e1.total + e1.per_step * 10, rel=0.1)

    def test_invalid_args(self, machine):
        k = heat_kernel(3)
        with pytest.raises(ReproError):
            estimate_streaming(machine, k, domain_cells=0, steps=1, n_regions=1)
        with pytest.raises(ReproError):
            estimate_streaming(machine, k, domain_cells=10, steps=0, n_regions=1)


class TestResidentEstimate:
    def test_more_regions_more_overhead(self, machine):
        k = heat_kernel(3)
        e4 = estimate_resident(machine, k, domain_cells=256**3, steps=100, n_regions=4,
                               fields=2, ghost_width=1)
        e64 = estimate_resident(machine, k, domain_cells=256**3, steps=100, n_regions=64,
                                fields=2, ghost_width=1)
        assert e64.per_step > e4.per_step

    def test_ghost_zero_for_single_region(self, machine):
        k = heat_kernel(3)
        est = estimate_resident(machine, k, domain_cells=64**3, steps=10, n_regions=1,
                                fields=2, ghost_width=1)
        assert est.ghost == 0.0

    def test_upload_overlaps_first_step(self, machine):
        """Total is max(h2d, step) + rest, not h2d + everything."""
        k = compute_intensive_kernel(48)
        est = estimate_resident(machine, k, domain_cells=256**3, steps=2, n_regions=8)
        assert est.total < est.h2d + 2 * est.per_step + est.d2h


class TestModelAccuracy:
    """Model-vs-simulator within modest bounds (ablation A3's claim)."""

    @pytest.mark.parametrize("n_regions", [4, 16])
    def test_compute_resident(self, machine, n_regions):
        shape = (128, 128, 128)
        sim = run_tida_compute(machine, shape=shape, steps=10, n_regions=n_regions).elapsed
        mod = estimate_resident(machine, compute_intensive_kernel(48),
                                domain_cells=128**3, steps=10, n_regions=n_regions).total
        assert 0.8 < mod / sim < 1.2

    def test_compute_streaming(self, machine):
        shape = (128, 128, 128)
        region_bytes = (128**3 // 8) * 8
        sim = run_tida_compute(machine, shape=shape, steps=10, n_regions=8,
                               device_memory_limit=2 * region_bytes + region_bytes // 2).elapsed
        mod = estimate_streaming(machine, compute_intensive_kernel(48),
                                 domain_cells=128**3, steps=10, n_regions=8).total
        assert 0.8 < mod / sim < 1.2

    def test_heat_resident(self, machine):
        shape = (256, 256, 256)
        sim = run_tida_heat(machine, shape=shape, steps=10, n_regions=8).elapsed
        mod = estimate_resident(machine, heat_kernel(3), domain_cells=256**3,
                                steps=10, n_regions=8, fields=2, result_fields=1,
                                ghost_width=1).total
        assert 0.6 < mod / sim < 1.4   # looser: BC faces + host work unmodelled


class TestAutotune:
    def test_sweep_returns_all_candidates(self, machine):
        pts = sweep_region_counts(
            machine, kernel=heat_kernel(3), domain_cells=64**3, steps=10,
            candidates=(1, 2, 4), fields=2, ghost_width=1,
        )
        assert [p.n_regions for p in pts] == [1, 2, 4]
        assert all(p.seconds > 0 for p in pts)

    def test_autotune_picks_minimum(self, machine):
        best = autotune_region_count(
            machine, kernel=heat_kernel(3), domain_cells=512**3, steps=1,
            candidates=(1, 4, 16, 64), fields=2, ghost_width=1,
        )
        # 1 step is transfer-dominated: pipelining must beat 1 region
        assert best > 1

    def test_measure_strategy(self, machine):
        pts = sweep_region_counts(
            machine, kernel=heat_kernel(3), domain_cells=32**3, steps=2,
            candidates=(1, 2), strategy="measure",
            measure_fn=lambda n: float(n),
        )
        assert [p.seconds for p in pts] == [1.0, 2.0]

    def test_measure_requires_fn(self, machine):
        with pytest.raises(ReproError):
            sweep_region_counts(machine, kernel=heat_kernel(3), domain_cells=8,
                                steps=1, strategy="measure")

    def test_bad_strategy(self, machine):
        with pytest.raises(ReproError):
            sweep_region_counts(machine, kernel=heat_kernel(3), domain_cells=8,
                                steps=1, strategy="guess")

    def test_bad_candidates(self, machine):
        with pytest.raises(ReproError):
            sweep_region_counts(machine, kernel=heat_kernel(3), domain_cells=8,
                                steps=1, candidates=())
        with pytest.raises(ReproError):
            sweep_region_counts(machine, kernel=heat_kernel(3), domain_cells=8,
                                steps=1, candidates=(0,))


class TestPrefetchAutotune:
    def test_sweep_returns_all_candidates(self):
        pts = sweep_prefetch_depth(candidates=(0, 1, 4),
                                   measure_fn=lambda d: 10.0 - d)
        assert [p.prefetch_depth for p in pts] == [0, 1, 4]
        assert [p.seconds for p in pts] == [10.0, 9.0, 6.0]

    def test_autotune_picks_minimum(self):
        best = autotune_prefetch_depth(candidates=(0, 1, 2, 4),
                                       measure_fn=lambda d: abs(d - 2) + 1.0)
        assert best == 2

    def test_ties_favor_shallowest_depth(self):
        best = autotune_prefetch_depth(candidates=(0, 1, 2),
                                       measure_fn=lambda d: 1.0)
        assert best == 0

    def test_bad_candidates(self):
        with pytest.raises(ReproError):
            sweep_prefetch_depth(candidates=(), measure_fn=lambda d: 1.0)
        with pytest.raises(ReproError):
            sweep_prefetch_depth(candidates=(-1,), measure_fn=lambda d: 1.0)
