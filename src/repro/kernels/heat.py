"""The heat-equation stencil (§VI-A): the data transfer-intensive kernel.

Explicit 7-point (in 3-D) finite-difference step::

    dst[i] = src[i] + coef * (sum of 2*ndim nearest neighbours - 2*ndim*src[i])

The body works for any rank (1-D to 3-D) by summing shifted slices, so
the same kernel drives the paper's 384³/512³ experiments and the small
grids the correctness tests use.

Cost metadata: with a ghost-cell layout every cell streams one read and
one write per array through device memory (the neighbour reads hit
cache), i.e. 16 B/cell in double precision; arithmetic is ``2*ndim + 2``
flops/cell — deeply memory-bound, which is exactly why the paper calls
this kernel transfer-intensive.
"""

from __future__ import annotations

import numpy as np

from ..cuda.kernel import KernelSpec

#: Streaming traffic per cell: one 8-byte read of src + one 8-byte write of dst.
HEAT_BYTES_PER_CELL = 16.0


def _heat_body(
    dst: np.ndarray,
    src: np.ndarray,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
    coef: float = 0.1,
) -> None:
    """Apply one stencil step on local index box [lo, hi)."""
    ndim = dst.ndim
    interior = tuple(slice(l, h) for l, h in zip(lo, hi))
    acc = (-2.0 * ndim) * src[interior]
    for axis in range(ndim):
        lo_m = tuple(
            slice(l - (1 if a == axis else 0), h - (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        lo_p = tuple(
            slice(l + (1 if a == axis else 0), h + (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        acc = acc + src[lo_m] + src[lo_p]
    dst[interior] = src[interior] + coef * acc


def heat_kernel(ndim: int = 3) -> KernelSpec:
    """The heat stencil as a launchable kernel spec."""
    return KernelSpec(
        name=f"heat{ndim}d",
        body=_heat_body,
        bytes_per_cell=HEAT_BYTES_PER_CELL,
        flops_per_cell=2.0 * ndim + 2.0,
        # On a CPU whose LLC cannot hold the working set, the two
        # neighbouring stencil planes fall out between row sweeps and are
        # re-fetched from DRAM (+2 x 8 B per cell) — the classic reuse
        # loss that cache-sized tiles avoid (§IV-A).
        cpu_spill_bytes_per_cell=16.0,
        arg_access=("w", "r"),  # dst written, src read
        footprint=(None, 1),    # dst pointwise, src radius-1 faces
        meta={"ndim": ndim, "stencil_radius": 1},
    )


def _coeff_heat_body(
    dst: np.ndarray,
    src: np.ndarray,
    kappa: np.ndarray,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
    coef: float = 0.1,
) -> None:
    """Variable-coefficient step: flux-form divergence of kappa * grad(src).

    Face conductivities average the two adjacent cells, so ``kappa`` is
    read at radius 1 — a loop-invariant stencil read, which is what makes
    the planner's halo-fill and write-back elision observable.
    """
    ndim = dst.ndim
    interior = tuple(slice(l, h) for l, h in zip(lo, hi))
    acc = np.zeros_like(src[interior])
    for axis in range(ndim):
        m = tuple(
            slice(l - (1 if a == axis else 0), h - (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        p = tuple(
            slice(l + (1 if a == axis else 0), h + (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        k_plus = 0.5 * (kappa[interior] + kappa[p])
        k_minus = 0.5 * (kappa[interior] + kappa[m])
        acc = acc + k_plus * (src[p] - src[interior]) - k_minus * (src[interior] - src[m])
    dst[interior] = src[interior] + coef * acc


def coeff_heat_kernel(ndim: int = 3) -> KernelSpec:
    """Heat with a spatially varying conductivity field.

    Three-argument signature ``(dst, src, kappa)``: ``kappa`` is only
    ever read, so a planner that trusts the declarations can keep it
    device-resident with no write-backs and fill its halo exactly once.
    """
    return KernelSpec(
        name=f"coeff-heat{ndim}d",
        body=_coeff_heat_body,
        bytes_per_cell=24.0,   # stream src + kappa reads and the dst write
        flops_per_cell=8.0 * ndim + 1.0,
        cpu_spill_bytes_per_cell=24.0,
        arg_access=("w", "r", "r"),
        footprint=(None, 1, 1),   # dst pointwise; src and kappa radius 1
        meta={"ndim": ndim, "stencil_radius": 1},
    )


def coeff_heat_reference_step(
    src: np.ndarray, kappa: np.ndarray, coef: float = 0.1, ghost: int = 1
) -> np.ndarray:
    """Reference variable-coefficient step on global ghosted arrays."""
    dst = src.copy()
    lo = (ghost,) * src.ndim
    hi = tuple(s - ghost for s in src.shape)
    _coeff_heat_body(dst, src, kappa, lo, hi, coef=coef)
    return dst


def heat_reference_step(src: np.ndarray, coef: float = 0.1, ghost: int = 1) -> np.ndarray:
    """Reference step on a global ghosted array (for correctness checks).

    ``src`` includes a ghost layer of width ``ghost``; returns a new array
    of the same shape whose interior holds the stepped values and whose
    ghosts copy ``src``'s (BCs are applied separately by the caller).
    """
    dst = src.copy()
    lo = (ghost,) * src.ndim
    hi = tuple(s - ghost for s in src.shape)
    _heat_body(dst, src, lo, hi, coef=coef)
    return dst
