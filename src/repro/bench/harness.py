"""Run every experiment and write results (``python -m repro.bench.harness``).

Produces, under ``results/`` (or ``--out DIR``):

* one JSON file per figure/ablation;
* ``all_results.md`` — every table in markdown (the source for
  EXPERIMENTS.md's measured columns);
* ``fig3/fig4/fig7 .txt`` — the ASCII timelines.

``--quick`` shrinks problem sizes ~8x for a fast smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..obs import metrics as obs_metrics
from . import figures
from .report import Table


def run_all(
    out_dir: Path,
    *,
    quick: bool = False,
    echo: bool = True,
    metrics_out: Path | None = None,
    faults_spec: str | None = None,
    check: bool = False,
    critpath: bool = False,
) -> list[Table]:
    """Execute every experiment; returns the tables in paper order.

    ``metrics_out`` writes a run manifest (``{"metrics": ...}``) merging
    the counters of every runtime the experiments created — the input
    format of ``python -m repro.obs.report`` and its ``--compare`` gate.

    ``check=True`` arms the strict hazard checker on every runtime the
    experiments create (see :mod:`repro.check`): any racy device-buffer
    access raises :class:`~repro.errors.HazardError` on the spot, and a
    hazard summary is printed at the end — the CI conformance leg.

    ``critpath=True`` additionally runs the critical-path leg
    (:func:`run_critpath_leg`), writing ``critpath.json`` next to the
    figures — the manifest ``BENCH_critpath.json`` is gated against.

    ``check=True`` also runs the conformance-matrix leg
    (:func:`run_conformance_leg`) after the figures: the schedule sweep
    must stay byte-identical and race-free or the harness exits loudly.
    """
    if check:
        from ..check import set_default_mode

        set_default_mode("strict")
    if metrics_out is not None or check:
        obs_metrics.start_collection()
    try:
        tables = _run_figures(
            out_dir, quick=quick, echo=echo, metrics_out=metrics_out,
            faults_spec=faults_spec, check=check,
        )
    finally:
        if check:
            set_default_mode(None)
    if check:
        run_conformance_leg(out_dir, quick=quick, echo=echo)
    if critpath:
        run_critpath_leg(out_dir, echo=echo)
    return tables


def run_conformance_leg(
    out_dir: Path, *, quick: bool = False, echo: bool = True
) -> Path:
    """The conformance-matrix leg: schedule sweeps over all workloads.

    Sweeps eviction policy × prefetch depth × visit order × timing seed
    for heat, compute-intensive, and wave with the replay surrogate
    (perturbed-seed legs are DAG replays of the base leg — see
    :func:`~repro.check.explore.conformance_matrix`), asserts
    byte-identity and zero racy hazards, and writes ``conformance.json``.

    Under ``--quick`` the shuffled-visit-order variants — the slowest
    functional legs: shuffling defeats the slot cache, so they re-upload
    and write back far more regions — run timing-only.  Their hazard
    stream is still fully checked; byte-identity is carried by the
    sequential legs.  Raises :class:`AssertionError` on any conformance
    failure, so a gating CI run cannot silently pass.
    """
    from ..check.explore import conformance_matrix

    timing_only = (
        (lambda v: v.get("order") == "shuffled") if quick else None
    )
    configs = {
        "heat": dict(shape=(48, 24, 24), steps=2, n_regions=8, n_slots=3,
                     device_memory_limit=310_000),
        "compute": dict(shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
                        device_memory_limit=70_000),
        "wave": dict(shape=(48, 48), steps=3, n_regions=8),
    }
    summary: dict[str, dict] = {}
    failures: list[str] = []
    for workload, kw in configs.items():
        report = conformance_matrix(
            workload, surrogate="replay", timing_only=timing_only,
            timing_seeds=(0, 1, 2), **kw,
        )
        summary[workload] = {
            "legs": len(report.runs),
            "digests": len(report.digests),
            "racy": report.racy,
            "ok": report.ok,
            "failures": report.failures(),
        }
        failures.extend(f"{workload}: {f}" for f in report.failures())
        if echo:
            verdict = "ok" if report.ok else "FAIL"
            print(f"conformance {workload:<8} {len(report.runs):3d} legs, "
                  f"{len(report.digests)} digest(s), {report.racy} racy "
                  f"-> {verdict}")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "conformance.json"
    path.write_text(json.dumps(summary, indent=2))
    if echo:
        print(f"wrote conformance summary to {path}")
    if failures:
        raise AssertionError(
            "conformance sweep failed: " + "; ".join(failures)
        )
    return path


def run_critpath_leg(out_dir: Path, *, echo: bool = True) -> Path:
    """The critical-path trend leg: analyse the Fig. 3 heat workload.

    Runs the pipelined heat solve under the observing hazard checker
    (fixed shape/steps regardless of ``--quick``, so the numbers are
    comparable across runs — virtual time makes them deterministic),
    computes the full critpath summary, and writes ``critpath.json``:
    a run manifest whose ``metrics`` are the flat ``critpath.*``
    counters.  CI gates that file against the committed
    ``BENCH_critpath.json`` with ``obs.report --compare``, so critical
    path composition, overlap efficiency, and predicted what-if
    speedups become a ratcheted trend ledger.
    """
    from ..baselines.tida_runners import run_tida_heat
    from ..check.dag import dag_to_json
    from ..obs.critpath import RunDag, critpath_metrics, critpath_summary
    from ..obs.report import build_critpath_report

    r = run_tida_heat(shape=(128, 128, 128), n_regions=8, steps=3,
                      check="observe")
    marks = [m["ts"] for m in r.trace.marks if m["name"] == "iteration"]
    dag = RunDag.from_nodes(r.dag or (), marks=marks)
    summary = critpath_summary(dag)
    manifest = {
        "schema": "repro-run-manifest/1",
        "traceEvents": r.trace.to_chrome_trace(),
        "metrics": {"counters": critpath_metrics(summary)},
        "dag": dag_to_json(r.dag or ()),
        "critpath": summary,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "critpath.json"
    path.write_text(json.dumps(manifest, indent=2))
    if echo:
        for table in build_critpath_report(None, manifest):
            print()
            print(table.format())
        print(f"\nwrote critical-path manifest to {path}")
    return path


def _run_figures(
    out_dir: Path,
    *,
    quick: bool,
    echo: bool,
    metrics_out: Path | None,
    faults_spec: str | None,
    check: bool,
) -> list[Table]:
    shape3 = (128, 128, 128) if quick else (512, 512, 512)
    shape_f1 = (96, 96, 96) if quick else (384, 384, 384)
    steps_f1 = 10 if quick else 100
    steps_f6 = 10 if quick else 100
    steps_f8 = 50 if quick else 1000
    iters_f5 = (1, 10, 100) if quick else (1, 10, 100, 1000)

    tables: list[Table] = []

    def emit(table: Table, stem: str, gantt: str | None = None) -> None:
        tables.append(table)
        table.save_json(out_dir / f"{stem}.json")
        if gantt is not None:
            (out_dir / f"{stem}.txt").write_text(gantt)
        if echo:
            print()
            print(table.format())
            if gantt is not None:
                print(gantt)

    t0 = time.time()
    emit(figures.figure1(shape=shape_f1, steps=steps_f1), "fig1")
    r3 = figures.figure3(shape=(128,) * 3 if quick else (256,) * 3)
    emit(r3.table, "fig3", r3.gantt)
    r4 = figures.figure4(shape=(64,) * 3 if quick else (128,) * 3)
    emit(r4.table, "fig4", r4.gantt)
    emit(figures.figure5(shape=shape3, iterations=iters_f5), "fig5")
    emit(figures.figure6(shape=shape3, steps=steps_f6), "fig6")
    r7 = figures.figure7(shape=shape3)
    emit(r7.table, "fig7", r7.gantt)
    emit(figures.figure8(shape=shape3, steps=steps_f8), "fig8")
    emit(figures.figure8_prefetch(shape=shape3, steps=20 if quick else 40), "fig8_prefetch")
    emit(figures.figure9_resilience(shape=(96,) * 3 if quick else (256,) * 3,
                                    steps=5 if quick else 10,
                                    plan_spec=faults_spec), "fig9_resilience")
    emit(figures.ablation_region_count(shape=shape3, steps=5 if quick else 10), "ablation_a1")
    emit(figures.ablation_interconnect(shape=shape3), "ablation_a2")
    emit(figures.ablation_model_accuracy(shape=shape3), "ablation_a3")
    emit(figures.ablation_tile_size(shape=(128,) * 3 if quick else (256,) * 3), "ablation_a4")
    emit(figures.ablation_cpu_tile_size(shape=(128,) * 3 if quick else (256,) * 3,
                                        steps=2 if quick else 5), "ablation_a6")
    emit(figures.ablation_prefetch_depth(shape=(128,) * 3 if quick else (256,) * 3,
                                         steps=10 if quick else 20), "ablation_a7")
    from ..multi import run_multi_gpu_heat

    a5 = Table(
        title="Ablation A5: multi-GPU strong scaling, heat "
              f"{(128,) * 3 if quick else (512,) * 3}, {10 if quick else 100} steps",
        columns=["n_devices", "seconds", "speedup", "efficiency"],
    )
    base = None
    for nd in (1, 2, 4):
        r = run_multi_gpu_heat(shape=(128,) * 3 if quick else (512,) * 3,
                               steps=10 if quick else 100, n_devices=nd,
                               regions_per_device=8)
        base = base if base is not None else r.elapsed
        a5.add_row(nd, r.elapsed, base / r.elapsed, base / r.elapsed / nd)
    emit(a5, "ablation_a5")

    md = "\n\n".join(t.to_markdown() for t in tables)
    (out_dir / "all_results.md").write_text(md + "\n")
    if metrics_out is not None or check:
        snapshot = obs_metrics.collect()
        if metrics_out is not None:
            metrics_out.parent.mkdir(parents=True, exist_ok=True)
            metrics_out.write_text(json.dumps(
                {"schema": "repro-run-manifest/1", "metrics": snapshot}, indent=2
            ))
            if echo:
                n = len(snapshot["counters"])
                print(f"wrote {n} merged counters to {metrics_out}")
        if check:
            counters = snapshot["counters"]
            ops = int(counters.get("check.ops", 0))
            racy = int(counters.get("check.hazards.racy", 0))
            luck = int(counters.get("check.hazards.fifo_luck", 0))
            print(
                f"\nstrict hazard check: {ops} device ops, "
                f"{racy} racy, {luck} fifo-luck warning(s)"
            )
    if echo:
        print(f"\nwrote {len(tables)} tables to {out_dir} in {time.time() - t0:.1f}s")
    return tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--quick", action="store_true", help="small sizes, fast run")
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="also dump a run manifest of merged runtime metrics "
             "(readable by python -m repro.obs.report)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-plan spec for the resilience figure, e.g. "
             "'h2d:p=0.02; launch:p=0.01; seed=7' "
             "(default: sweep built-in fault rates)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run every experiment under the strict hazard checker "
             "(racy device-buffer accesses abort the run; see repro.check)",
    )
    parser.add_argument(
        "--critpath", action="store_true",
        help="also run the critical-path leg and write critpath.json "
             "(the manifest gated against BENCH_critpath.json)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="also run the live-telemetry watchdog legs (see "
             "repro.bench.live): nominal runs must stay alert-free, seeded "
             "degradations must alert; writes live.json / live_nominal.json "
             "and the per-leg telemetry_*.jsonl sessions",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_all(
        out_dir,
        quick=args.quick,
        metrics_out=Path(args.metrics_out) if args.metrics_out else None,
        faults_spec=args.faults,
        check=args.check,
        critpath=args.critpath,
    )
    if args.live:
        from .live import run_live

        return run_live(out_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
