"""Live observability: telemetry bus, flight recorder, online watchdog.

The offline layers (:mod:`repro.obs.metrics`, :mod:`repro.sim.trace`,
:mod:`repro.obs.critpath`) explain a run after it finishes.  This package
watches a run *while it executes* — entirely in virtual time, so every
sample, alert, and incident dump is byte-reproducible under a seed:

* :class:`~repro.obs.live.bus.TelemetryBus` — samples the runtime's
  metrics registry on a virtual-clock cadence into typed
  :class:`~repro.obs.live.bus.TelemetrySample` snapshots with derived
  rates, fans them out to subscribers, and persists a JSONL session log;
* :class:`~repro.obs.live.watchdog.Watchdog` — rolling-window EWMA /
  z-score detectors over the sampled series, emitting structured
  :class:`~repro.obs.live.watchdog.Alert` records;
* :class:`~repro.obs.live.recorder.FlightRecorder` — a bounded ring
  buffer of recent samples/alerts that dumps a self-contained
  ``incident.json`` when a fault, strict-mode hazard, or alert fires.

Wire it in with ``CudaRuntime(telemetry=bus)`` / ``TidaAcc(telemetry=)``
/ ``MultiGpuRuntime(telemetry=)`` and poll ``runtime.health()``.
"""

from .bus import TelemetryBus, TelemetrySample, TelemetrySubscriber
from .recorder import FlightRecorder
from .watchdog import (
    Alert,
    Watchdog,
    default_detectors,
    severity_at_least,
)

__all__ = [
    "Alert",
    "FlightRecorder",
    "TelemetryBus",
    "TelemetrySample",
    "TelemetrySubscriber",
    "Watchdog",
    "default_detectors",
    "severity_at_least",
]
