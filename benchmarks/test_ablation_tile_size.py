"""Ablation A4: §V's recommendation — GPU tiles should equal regions."""

from repro.bench import figures


def test_ablation_tile_size(run_once, results_dir):
    table = run_once(figures.ablation_tile_size)
    print()
    print(table.format())
    table.save_json(results_dir / "ablation_a4.json")

    seconds = table.column("seconds")
    launches = table.column("kernel_launches")
    # smaller tiles => strictly more kernel launches => slower runs
    assert launches[0] < launches[1] < launches[2]
    assert seconds[0] < seconds[1] < seconds[2]
