"""Multi-GPU heat solver: TiDA-acc per device + packed peer halo exchange.

The global domain is slab-decomposed across devices along axis 0; each
device runs the ordinary TiDA-acc pipeline over its subdomain (regions in
*global* coordinates, so all index algebra stays consistent), and the
inter-device halos move as pack-kernel → ``cudaMemcpyPeerAsync`` →
unpack-kernel chains on the edge regions' own slot streams.

Ordering trick: each step first runs the normal per-device ghost update
(which fills the cut-face ghosts with locally-wrong values, since the
device cannot see its neighbour), then the peer halos overwrite exactly
those ghost planes — so Dirichlet/Neumann/Periodic all come out right and
the single-device code path is reused unchanged.
"""

from __future__ import annotations

import numpy as np

from ..baselines.common import BaselineResult, default_init
from ..config import DEFAULT_MACHINE, MachineSpec
from ..core.library import TidaAcc
from ..cuda.kernel import KernelSpec
from ..errors import TidaError
from ..kernels.heat import heat_kernel
from ..openacc.runtime import AccRuntime
from ..tida.boundary import BoundaryCondition, Neumann, Periodic
from ..tida.box import Box
from .runtime import MultiGpuRuntime


def _pack_body(staging, field, src_slices):
    staging[...] = field[src_slices]


def _unpack_body(field, staging, dst_slices):
    field[dst_slices] = staging


def _pack_kernel() -> KernelSpec:
    return KernelSpec(
        name="halo-pack", body=_pack_body, bytes_per_cell=16.0,
        arg_access=("w", "r"),  # staging <- field plane
    )


def _unpack_kernel() -> KernelSpec:
    return KernelSpec(
        name="halo-unpack", body=_unpack_body, bytes_per_cell=16.0,
        arg_access=("w", "r"),  # field ghost plane <- staging
    )


class _Halo:
    """One direction of one inter-device cut: src plane -> dst ghost plane."""

    __slots__ = (
        "src_dev", "dst_dev", "src_rid", "dst_rid",
        "src_box", "dst_box", "src_stage", "dst_stage",
    )

    def __init__(self, src_dev, dst_dev, src_rid, dst_rid, src_box, dst_box,
                 src_stage, dst_stage):
        self.src_dev = src_dev
        self.dst_dev = dst_dev
        self.src_rid = src_rid
        self.dst_rid = dst_rid
        self.src_box = src_box
        self.dst_box = dst_box
        self.src_stage = src_stage
        self.dst_stage = dst_stage


class MultiGpuHeat:
    """The multi-device heat driver (also reusable from tests/examples)."""

    def __init__(
        self,
        machine: MachineSpec | None = None,
        *,
        shape: tuple[int, ...],
        n_devices: int = 2,
        regions_per_device: int = 4,
        functional: bool = False,
        mode: str | None = None,
        bc: BoundaryCondition | None = None,
        coef: float = 0.1,
        check: str | bool | None = None,
        telemetry=None,
    ) -> None:
        if len(shape) < 1:
            raise TidaError("shape must have at least one dimension")
        if shape[0] % n_devices != 0:
            raise TidaError(
                f"axis-0 extent {shape[0]} must divide evenly across {n_devices} devices"
            )
        self.machine = machine if machine is not None else DEFAULT_MACHINE
        self.shape = shape
        self.bc = bc if bc is not None else Neumann()
        self.coef = coef
        self.mgr = MultiGpuRuntime(
            self.machine, n_devices, functional=functional, mode=mode,
            check=check, telemetry=telemetry,
        )
        self.kernel = heat_kernel(len(shape))
        self.ghost = 1

        slab = shape[0] // n_devices
        self.libs: list[TidaAcc] = []
        self.subdomains: list[Box] = []
        for d, dev in enumerate(self.mgr.devices):
            lo = (d * slab,) + (0,) * (len(shape) - 1)
            hi = ((d + 1) * slab,) + tuple(shape[1:])
            sub = Box(lo, hi)
            lib = TidaAcc(runtime=dev, acc=AccRuntime(dev))
            lib.add_array("old", sub, n_regions=regions_per_device, halo=self.ghost)
            lib.add_array("new", sub, n_regions=regions_per_device, halo=self.ghost)
            self.libs.append(lib)
            self.subdomains.append(sub)
        self._halos = self._build_halos()

    # -- halo plumbing -------------------------------------------------------

    def _cut_pairs(self) -> list[tuple[int, int]]:
        """(left device, right device) pairs, including the periodic wrap."""
        n = self.mgr.n_devices
        pairs = [(d, d + 1) for d in range(n - 1)]
        if isinstance(self.bc, Periodic) and n > 1:
            pairs.append((n - 1, 0))
        return pairs

    def _build_halos(self) -> list[_Halo]:
        halos: list[_Halo] = []
        ndim = len(self.shape)
        plane_shape = (self.ghost,) + tuple(self.shape[1:]) if ndim > 1 else (self.ghost,)
        for left, right in self._cut_pairs():
            sub_l, sub_r = self.subdomains[left], self.subdomains[right]
            rid_l = self.libs[left].field("old").n_regions - 1   # rightmost region
            rid_r = 0                                            # leftmost region
            wrap = left > right  # the periodic (n-1, 0) pair
            back = (-self.shape[0],) + (0,) * (ndim - 1)
            fwd = (self.shape[0],) + (0,) * (ndim - 1)

            # left's top interior plane -> right's low ghost plane
            src_box = _plane(sub_l, axis=0, side=+1, ghost=self.ghost)
            dst_box = src_box.shift(back) if wrap else src_box
            halos.append(self._make_halo(left, right, rid_l, rid_r,
                                         src_box, dst_box, plane_shape))
            # right's bottom interior plane -> left's high ghost plane
            src_box = _plane(sub_r, axis=0, side=-1, ghost=self.ghost)
            dst_box = src_box.shift(fwd) if wrap else src_box
            halos.append(self._make_halo(right, left, rid_r, rid_l,
                                         src_box, dst_box, plane_shape))
        return halos

    def _make_halo(self, src_dev, dst_dev, src_rid, dst_rid, src_box, dst_box, plane_shape):
        src_stage = self.mgr.device(src_dev).malloc(plane_shape, label=f"halo-stage-s{src_dev}")
        dst_stage = self.mgr.device(dst_dev).malloc(plane_shape, label=f"halo-stage-d{dst_dev}")
        return _Halo(src_dev, dst_dev, src_rid, dst_rid, src_box, dst_box, src_stage, dst_stage)

    def _exchange_halos(self, field: str) -> None:
        pack = _pack_kernel()
        unpack = _unpack_kernel()
        for h in self._halos:
            lib_s, lib_d = self.libs[h.src_dev], self.libs[h.dst_dev]
            mgr_s, mgr_d = lib_s.manager(field), lib_d.manager(field)
            src_region = lib_s.field(field).region(h.src_rid)
            dst_region = lib_d.field(field).region(h.dst_rid)
            src_buf, _src_ready = mgr_s.request_device(h.src_rid)
            dst_buf, _dst_ready = mgr_d.request_device(h.dst_rid)
            src_stream = mgr_s.slot_for(h.src_rid).stream
            dst_stream = mgr_d.slot_for(h.dst_rid).stream
            n_cells = h.src_box.size

            pack_end = lib_s.acc.parallel_loop(
                pack,
                deviceptr=[h.src_stage, src_buf],
                n_cells=n_cells,
                async_=mgr_s.queue_id_for(h.src_rid),
                vector_length=lib_s.vector_length,
                after=mgr_s.device_ready_deps(h.src_rid),
                params={"src_slices": src_region.local_slices(h.src_box)},
                label=f"halo-pack:gpu{h.src_dev}",
            )
            mgr_s.note_device_op(h.src_rid, pack_end, covers=True)
            # the peer copy reads the staging buffer the pack just wrote on
            # the same src stream — FIFO order covers it, no edge needed
            end = self.mgr.peer_copy(
                h.dst_dev, h.dst_stage, h.src_dev, h.src_stage,
                dst_stream=dst_stream, src_stream=src_stream,
            )
            end = lib_d.acc.parallel_loop(
                unpack,
                deviceptr=[dst_buf, h.dst_stage],
                n_cells=n_cells,
                async_=mgr_d.queue_id_for(h.dst_rid),
                vector_length=lib_d.vector_length,
                after=(end,) + mgr_d.device_ready_deps(h.dst_rid),
                params={"dst_slices": dst_region.local_slices(h.dst_box)},
                label=f"halo-unpack:gpu{h.dst_dev}",
            )
            # keep the historic conservative readiness on the source side
            # (its next consumer waits for the whole chain, as before)
            mgr_s.note_device_op(h.src_rid, end)
            mgr_d.note_device_op(h.dst_rid, end, covers=True)

    # -- driver ---------------------------------------------------------------

    def set_initial(self, interior: np.ndarray) -> None:
        for lib, sub in zip(self.libs, self.subdomains):
            window = interior[sub.slices()]
            lib.scatter("old", window)
            lib.scatter("new", window)

    def step(self, n: int = 1) -> None:
        for _ in range(n):
            for lib in self.libs:
                lib.fill_boundary("old", self.bc)
            if self.mgr.n_devices > 1:
                self._exchange_halos("old")
            for lib in self.libs:
                it = lib.iterator("new", "old").reset(gpu=True)
                while it.is_valid():
                    lib.compute(it, self.kernel, params={"coef": self.coef})
                    it.next()
            for lib in self.libs:
                lib.swap("old", "new")

    def gather(self) -> np.ndarray:
        out = np.empty(self.shape)
        for lib, sub in zip(self.libs, self.subdomains):
            out[sub.slices()] = lib.gather("old")
        return out

    def synchronize(self) -> float:
        return self.mgr.synchronize_all()

    @property
    def now(self) -> float:
        return self.mgr.now

    @property
    def trace(self):
        return self.mgr.trace


def _plane(sub: Box, *, axis: int, side: int, ghost: int) -> Box:
    """The interior boundary plane of a subdomain (global coordinates)."""
    lo = list(sub.lo)
    hi = list(sub.hi)
    if side < 0:
        hi[axis] = sub.lo[axis] + ghost
    else:
        lo[axis] = sub.hi[axis] - ghost
    return Box(tuple(lo), tuple(hi))


def run_multi_gpu_heat(
    machine: MachineSpec | None = None,
    *,
    shape: tuple[int, ...] = (512, 512, 512),
    steps: int = 100,
    n_devices: int = 2,
    regions_per_device: int = 8,
    functional: bool = False,
    mode: str | None = None,
    bc: BoundaryCondition | None = None,
    coef: float = 0.1,
    initial: np.ndarray | None = None,
    check: str | bool | None = None,
    telemetry=None,
) -> BaselineResult:
    """Run the multi-GPU heat solver; timing starts after initialization."""
    solver = MultiGpuHeat(
        machine, shape=shape, n_devices=n_devices,
        regions_per_device=regions_per_device, functional=functional,
        mode=mode, bc=bc, coef=coef, check=check, telemetry=telemetry,
    )
    functional = solver.mgr.functional
    if functional:
        init = initial if initial is not None else default_init(shape, 0)
        solver.set_initial(init)
    t0 = solver.now
    solver.step(steps)
    result = solver.gather() if functional else None
    if not functional:
        for lib in solver.libs:
            lib.manager("old").flush_to_host()
    solver.synchronize()
    elapsed = solver.now - t0
    return BaselineResult(
        name=f"tida-acc-{n_devices}gpu", elapsed=elapsed, shape=shape, steps=steps,
        trace=solver.trace, result=result,
        meta={"n_devices": n_devices, "regions_per_device": regions_per_device,
              "mode": solver.mgr.mode},
        metrics=solver.mgr.metrics.snapshot(),
        dag=(list(solver.mgr.checker.dag) if solver.mgr.checker is not None else None),
    )
