"""TileAcc: slot sizing, the cache protocol, eviction, transfers.

Includes a hypothesis state-machine-style test: a random sequence of
host/device accesses is checked against a naive model of the paper's
cache list — and data integrity is verified at every step.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.slots import DEVICE, EMPTY, HOST
from repro.core.tile_acc import TileAcc
from repro.cuda.runtime import CudaRuntime
from repro.errors import TileAccError
from repro.openacc.runtime import AccRuntime
from repro.tida.tile_array import TileArray


def make_stack(machine, *, n_regions=4, shape=(16,), ghost=0, n_slots=None,
               device_memory_limit=None, functional=True, eviction="lru"):
    rt = CudaRuntime(machine, functional=functional, device_memory_limit=device_memory_limit)
    acc = AccRuntime(rt)
    ta = TileArray(shape, n_regions=n_regions, ghost=ghost, runtime=rt, label="f")
    mgr = TileAcc(rt, acc, ta, n_slots=n_slots, eviction=eviction)
    return rt, acc, ta, mgr


class TestSlotSizing:
    def test_all_regions_fit(self, machine):
        _, _, _, mgr = make_stack(machine, n_regions=4)
        assert mgr.n_slots == 4

    def test_limited_memory_fewer_slots(self, machine):
        region_bytes = (16 // 4) * 8
        _, _, _, mgr = make_stack(
            machine, n_regions=4, device_memory_limit=2 * region_bytes + 8
        )
        assert mgr.n_slots == 2

    def test_explicit_n_slots(self, machine):
        _, _, _, mgr = make_stack(machine, n_regions=4, n_slots=2)
        assert mgr.n_slots == 2

    def test_n_slots_capped_at_regions(self, machine):
        _, _, _, mgr = make_stack(machine, n_regions=4, n_slots=99)
        assert mgr.n_slots == 4

    def test_n_slots_exceeding_memory_rejected(self, machine):
        region_bytes = (16 // 4) * 8
        with pytest.raises(TileAccError):
            make_stack(machine, n_regions=4, n_slots=4,
                       device_memory_limit=2 * region_bytes + 8)

    def test_nothing_fits_rejected(self, machine):
        with pytest.raises(TileAccError):
            make_stack(machine, n_regions=4, device_memory_limit=8)

    def test_invalid_n_slots(self, machine):
        with pytest.raises(TileAccError):
            make_stack(machine, n_slots=0)

    def test_each_slot_has_its_own_stream(self, machine):
        _, _, _, mgr = make_stack(machine, n_regions=4)
        streams = {slot.stream.stream_id for slot in mgr.slots}
        assert len(streams) == 4

    def test_mismatched_runtimes_rejected(self, machine):
        rt_a = CudaRuntime(machine)
        rt_b = CudaRuntime(machine)
        acc_b = AccRuntime(rt_b)
        ta = TileArray((16,), n_regions=4, runtime=rt_a)
        with pytest.raises(TileAccError):
            TileAcc(rt_a, acc_b, ta)


class TestCacheProtocol:
    def test_first_request_uploads(self, machine):
        _, _, ta, mgr = make_stack(machine)
        ta.region(0).interior[...] = 5.0
        buf, _ = mgr.request_device(0)
        assert np.all(buf.array == 5.0)
        assert mgr.is_on_device(0)
        assert mgr.h2d_count == 1

    def test_repeated_request_is_cache_hit(self, machine):
        _, _, _, mgr = make_stack(machine)
        mgr.request_device(0)
        mgr.request_device(0)
        assert mgr.h2d_count == 1

    def test_request_host_downloads_and_syncs(self, machine):
        rt, _, ta, mgr = make_stack(machine)
        mgr.request_device(0)
        slot = mgr.slot_for(0)
        slot.buffer.array[...] = 9.0  # device-side update
        region = mgr.request_host(0)
        assert np.all(region.interior == 9.0)
        assert mgr.location(0) == HOST
        assert rt.now >= slot.stream.tail  # host waited (§IV-B.3)

    def test_request_host_when_on_host_is_free(self, machine):
        _, _, _, mgr = make_stack(machine)
        mgr.request_host(0)
        assert mgr.d2h_count == 0

    def test_host_then_device_retransfers(self, machine):
        """Last-location caching: host access invalidates the device copy."""
        _, _, ta, mgr = make_stack(machine)
        mgr.request_device(0)
        mgr.request_host(0)
        ta.region(0).interior[...] = 3.0
        buf, _ = mgr.request_device(0)
        assert mgr.h2d_count == 2
        assert np.all(buf.array == 3.0)

    def test_eviction_when_all_slots_busy(self, machine):
        """With every slot occupied, a new request evicts the LRU region."""
        _, _, ta, mgr = make_stack(machine, n_slots=2)
        buf0, _ = mgr.request_device(0)
        buf0.array[...] = 7.0
        mgr.request_device(1)
        mgr.request_device(2)          # evicts region 0 (least recently used)
        assert mgr.location(0) == HOST
        assert mgr.slot_for(2).index == 0   # took over region 0's slot
        assert np.all(ta.region(0).interior == 7.0)  # written back

    def test_no_conflict_miss_when_free_slot_exists(self, machine):
        """Regions 0 and 2 alias to the same slot under the paper's
        ``rid % n_slots`` mapping; the associative pool uses the free
        slot instead of thrashing (conflict-miss regression)."""
        _, _, _, mgr = make_stack(machine, n_slots=2)
        for _ in range(3):
            mgr.request_device(0)
            mgr.request_device(2)
        assert mgr.h2d_count == 2      # one cold miss each, then hits
        assert mgr.d2h_count == 0      # nothing was ever evicted

    def test_modulo_policy_keeps_paper_mapping(self, machine):
        """``eviction="modulo"`` restores the paper's fixed direct mapping:
        the 0/2 aliasing pair thrashes even with slot 1 free."""
        _, _, _, mgr = make_stack(machine, n_slots=2, eviction="modulo")
        for _ in range(3):
            mgr.request_device(0)
            mgr.request_device(2)
        assert mgr.h2d_count == 6      # every access is a conflict miss
        assert mgr.slot_for(2).index == 0

    def test_eviction_preserves_all_data_through_cycles(self, machine):
        _, _, ta, mgr = make_stack(machine, n_regions=4, n_slots=1)
        for rid in range(4):
            ta.region(rid).interior[...] = float(rid)
        for step in range(3):
            for rid in range(4):
                buf, _ = mgr.request_device(rid)
                buf.array[...] += 1.0
        mgr.flush_to_host()
        for rid in range(4):
            assert np.all(ta.region(rid).interior == rid + 3.0)

    def test_no_eviction_writeback_for_clean_region(self, machine):
        """A region already downloaded (location HOST) is not re-downloaded
        when its slot is taken over."""
        _, _, _, mgr = make_stack(machine, n_slots=2)
        mgr.request_device(0)
        mgr.request_host(0)       # d2h 1
        mgr.request_device(2)     # takeover: no second d2h
        assert mgr.d2h_count == 1

    def test_flush_to_host(self, machine):
        _, _, _, mgr = make_stack(machine)
        for rid in range(4):
            mgr.request_device(rid)
        mgr.flush_to_host()
        assert all(mgr.location(rid) == HOST for rid in range(4))

    def test_release_device_memory_requires_flush(self, machine):
        rt, _, _, mgr = make_stack(machine)
        mgr.request_device(0)
        with pytest.raises(TileAccError):
            mgr.release_device_memory()
        mgr.flush_to_host()
        free0 = rt.mem_get_info()[0]
        mgr.release_device_memory()
        assert rt.mem_get_info()[0] > free0

    def test_uneven_region_shapes_realloc(self, machine):
        """10 cells in 3 regions -> shapes 4,4,2: slot buffers realloc."""
        rt, acc, ta, mgr = make_stack(machine, n_regions=3, shape=(10,), n_slots=1)
        for rid in range(3):
            ta.region(rid).interior[...] = float(rid)
        for rid in range(3):
            mgr.request_device(rid)
        mgr.flush_to_host()
        for rid in range(3):
            assert np.all(ta.region(rid).interior == float(rid))

    def test_note_device_op_monotone(self, machine):
        _, _, _, mgr = make_stack(machine)
        mgr.request_device(0)
        r0 = mgr.device_ready(0)
        mgr.note_device_op(0, r0 + 1.0)
        assert mgr.device_ready(0) == r0 + 1.0
        mgr.note_device_op(0, r0)  # older times don't regress
        assert mgr.device_ready(0) == r0 + 1.0

    def test_out_of_range_region(self, machine):
        from repro.errors import TidaError
        _, _, _, mgr = make_stack(machine)
        with pytest.raises(TidaError):
            mgr.request_device(99)


_ACCESS_SEQS = st.lists(
    st.tuples(st.sampled_from(["gpu", "cpu"]), st.integers(0, 3)),
    min_size=1, max_size=40,
)


class TestCachePropertyBased:
    @given(accesses=_ACCESS_SEQS, n_slots=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_random_access_sequences(self, accesses, n_slots):
        """Against a naive model of the associative slot pool with LRU
        eviction:

        - placement prefers the region's old slot, then the first empty
          slot, then the first stale binding, then the LRU victim;
        - data written on either side is never lost;
        - no transfer happens on a same-side repeat access.
        """
        from repro.config import k40m_pcie3
        rt, acc, ta, mgr = make_stack(k40m_pcie3(), n_regions=4, shape=(16,),
                                      n_slots=n_slots)
        # model state
        model_loc = {rid: HOST for rid in range(4)}
        model_bound = {s: EMPTY for s in range(n_slots)}
        last_tick: dict[int, int] = {}
        tick = 0
        counters = [0.0, 0.0, 0.0, 0.0]  # expected region values

        def model_place(rid):
            for s in range(n_slots):            # 1. the slot already bound to rid
                if model_bound[s] == rid:
                    return s
            for s in range(n_slots):            # 2. first empty slot
                if model_bound[s] == EMPTY:
                    return s
            for s in range(n_slots):            # 3. first stale binding
                if model_loc[model_bound[s]] != DEVICE:
                    return s
            victim = min((model_bound[s] for s in range(n_slots)),
                         key=lambda r: last_tick.get(r, -1))
            return next(s for s in range(n_slots) if model_bound[s] == victim)

        for side, rid in accesses:
            h2d_before, d2h_before = mgr.h2d_count, mgr.d2h_count
            if side == "gpu":
                buf, _ = mgr.request_device(rid)
                buf.array[...] += 1.0
                counters[rid] += 1.0
                # model transition
                last_tick[rid] = tick
                tick += 1
                hit = (model_loc[rid] == DEVICE
                       and any(model_bound[s] == rid for s in range(n_slots)))
                if hit:
                    assert mgr.h2d_count == h2d_before
                    assert mgr.d2h_count == d2h_before
                else:
                    s = model_place(rid)
                    old = model_bound[s]
                    if old != EMPTY and old != rid and model_loc[old] == DEVICE:
                        model_loc[old] = HOST          # eviction writes back
                        assert mgr.d2h_count == d2h_before + 1
                    else:
                        assert mgr.d2h_count == d2h_before
                    model_bound[s] = rid
                    model_loc[rid] = DEVICE
                    assert mgr.h2d_count == h2d_before + 1
            else:
                region = mgr.request_host(rid)
                region.interior[...] = region.interior + 1.0
                counters[rid] += 1.0
                if model_loc[rid] == DEVICE:
                    assert mgr.d2h_count == d2h_before + 1
                else:
                    assert mgr.d2h_count == d2h_before
                model_loc[rid] = HOST
            # invariant: library bindings agree with the model exactly
            for s, slot in enumerate(mgr.slots):
                assert slot.bound == model_bound[s]

        mgr.flush_to_host()
        for rid in range(4):
            assert np.all(ta.region(rid).interior == counters[rid]), (
                f"region {rid} lost updates"
            )

    @given(accesses=_ACCESS_SEQS, n_slots=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_random_access_sequences_modulo(self, accesses, n_slots):
        """``eviction="modulo"`` against a naive model of §IV-B.4's fixed
        ``rid % n_slots`` cache list (the paper's original mapping)."""
        from repro.config import k40m_pcie3
        rt, acc, ta, mgr = make_stack(k40m_pcie3(), n_regions=4, shape=(16,),
                                      n_slots=n_slots, eviction="modulo")
        # model state
        model_loc = {rid: HOST for rid in range(4)}
        model_slot = {s: EMPTY for s in range(n_slots)}
        counters = [0.0, 0.0, 0.0, 0.0]  # expected region values

        for side, rid in accesses:
            h2d_before, d2h_before = mgr.h2d_count, mgr.d2h_count
            if side == "gpu":
                buf, _ = mgr.request_device(rid)
                buf.array[...] += 1.0
                counters[rid] += 1.0
                # model transition
                slot_id = rid % n_slots
                expect_transfer = not (
                    model_slot[slot_id] == rid and model_loc[rid] == DEVICE
                )
                if expect_transfer:
                    assert mgr.h2d_count == h2d_before + 1
                else:
                    assert mgr.h2d_count == h2d_before
                model_slot[slot_id] = rid
                model_loc[rid] = DEVICE
                for other in range(4):
                    if other != rid and other % n_slots == slot_id and model_loc[other] == DEVICE:
                        model_loc[other] = HOST
            else:
                region = mgr.request_host(rid)
                region.interior[...] = region.interior + 1.0
                counters[rid] += 1.0
                if model_loc[rid] == DEVICE:
                    assert mgr.d2h_count == d2h_before + 1
                else:
                    assert mgr.d2h_count == d2h_before
                model_loc[rid] = HOST
            # invariant: library agrees with model
            for s, slot in enumerate(mgr.slots):
                if model_slot[s] != EMPTY and model_loc[model_slot[s]] == DEVICE:
                    assert slot.bound == model_slot[s]

        mgr.flush_to_host()
        for rid in range(4):
            assert np.all(ta.region(rid).interior == counters[rid]), (
                f"region {rid} lost updates"
            )
