"""The access-set planner: footprints in, decomposition + proofs out."""

import json

import pytest

from repro.cuda.kernel import KernelSpec
from repro.errors import CudaInvalidValueError, PlanError
from repro.kernels import coeff_heat_kernel, compute_intensive_kernel, heat_kernel, wave_kernel
from repro.plan import Program, derive_halo, plan_program


def nop(*args, **kwargs):
    pass


# -- footprint declarations on KernelSpec -----------------------------------


class TestFootprintDeclarations:
    def test_radius_normalizes_to_symmetric_pairs(self):
        k = heat_kernel(3)
        assert k.arg_footprint(1, 3) == ((-1, 1),) * 3
        assert k.arg_footprint(0, 3) == ((0, 0),) * 3  # written arg pointwise

    def test_reads_neighbors_and_read_radius(self):
        k = heat_kernel(2)
        assert k.reads_neighbors(1, 2) and not k.reads_neighbors(0, 2)
        assert k.read_radius(2) == (1, 1)
        assert compute_intensive_kernel(4).read_radius(3) == (0, 0, 0)

    def test_asymmetric_and_per_axis_footprints(self):
        k = KernelSpec(name="upwind", body=nop, bytes_per_cell=8.0, arg_access=("w", "r"),
                       footprint=(None, (-2, 0)))
        assert k.arg_footprint(1, 2) == ((-2, 0), (-2, 0))
        k2 = KernelSpec(name="aniso", body=nop, bytes_per_cell=8.0, arg_access=("w", "r"),
                        footprint=(None, ((-1, 1), (0, 0))))
        assert k2.arg_footprint(1, 2) == ((-1, 1), (0, 0))
        assert k2.read_radius(2) == (1, 0)

    def test_negative_radius_rejected(self):
        with pytest.raises(CudaInvalidValueError, match="negative radius"):
            KernelSpec(name="bad", body=nop, bytes_per_cell=8.0, footprint=(-1,))

    def test_inverted_extent_rejected(self):
        with pytest.raises(CudaInvalidValueError, match="lo <= 0 <= hi"):
            KernelSpec(name="bad", body=nop, bytes_per_cell=8.0, footprint=((1, 2),))

    def test_garbage_entry_rejected(self):
        with pytest.raises(CudaInvalidValueError, match="radius or extent"):
            KernelSpec(name="bad", body=nop, bytes_per_cell=8.0, footprint=("wide",))

    def test_write_only_arg_with_stencil_footprint_rejected(self):
        with pytest.raises(CudaInvalidValueError, match="write-only"):
            KernelSpec(name="bad", body=nop, bytes_per_cell=8.0, arg_access=("w",), footprint=(1,))

    def test_ndim_mismatch_rejected_at_normalization(self):
        k = KernelSpec(name="aniso", body=nop, bytes_per_cell=8.0, arg_access=("w", "r"),
                       footprint=(None, ((-1, 1), (0, 0))))
        with pytest.raises(CudaInvalidValueError, match="axes"):
            k.arg_footprint(1, 3)


# -- derive_halo -------------------------------------------------------------


class TestDeriveHalo:
    def test_union_over_kernels(self):
        wide = KernelSpec(name="wide", body=nop, bytes_per_cell=8.0, arg_access=("w", "r"),
                          footprint=(None, 2))
        assert derive_halo([heat_kernel(2), wide], 2) == (2, 2)

    def test_pointwise_kernels_need_no_ghosts(self):
        assert derive_halo([compute_intensive_kernel(4)], 3) == (0, 0, 0)

    def test_rejects_empty_and_non_kernels(self):
        with pytest.raises(PlanError, match="at least one"):
            derive_halo([], 2)
        with pytest.raises(PlanError, match="KernelSpec"):
            derive_halo([object()], 2)


# -- plan_program ------------------------------------------------------------


def heat_program(shape=(32, 16, 16), steps=3):
    prog = Program(shape)
    with prog.sweep(steps):
        prog.step(heat_kernel(len(shape)), ("u_new", "u_old"),
                  params={"coef": 0.1})
        prog.swap("u_old", "u_new")
    return prog


def coeff_program(shape=(32, 16, 16), steps=3):
    prog = Program(shape)
    with prog.sweep(steps):
        prog.step(coeff_heat_kernel(len(shape)), ("u_new", "u_old", "kappa"),
                  params={"coef": 0.1})
        prog.swap("u_old", "u_new")
    return prog


class TestGhostDerivation:
    def test_heat_halos_unified_across_swap_pair(self, machine):
        plan = plan_program(heat_program(), machine=machine)
        assert plan.fields["u_old"].halo == (1, 1, 1)
        # u_new is only written, but it swaps/co-iterates with u_old:
        # the compute path requires equal ghosts
        assert plan.fields["u_new"].halo == (1, 1, 1)
        assert plan.fields["u_new"].group == ("u_new", "u_old")

    def test_pointwise_program_gets_zero_halo(self, machine):
        prog = Program((16, 16))
        prog.step(compute_intensive_kernel(4), ("data",),
                  params={"kernel_iteration": 4})
        plan = plan_program(prog, machine=machine)
        assert plan.fields["data"].halo == (0, 0)

    def test_wave_three_way_rotation_shares_halo(self, machine):
        prog = Program((32, 32))
        with prog.sweep(2):
            prog.step(wave_kernel(2), ("u_next", "u", "u_prev"),
                      params={"c2": 0.25})
            prog.swap("u_prev", "u")
            prog.swap("u", "u_next")
        plan = plan_program(prog, machine=machine)
        assert all(plan.fields[n].halo == (1, 1)
                   for n in ("u_next", "u", "u_prev"))


class TestReadOnlyProof:
    def test_coefficient_proven_read_only(self, machine):
        plan = plan_program(coeff_program(), machine=machine)
        assert plan.ro_fields == ("kappa",)
        assert plan.loop_invariant_halos == ("kappa",)
        assert plan.fields["kappa"].access == "ro"
        assert not plan.fields["kappa"].written

    def test_swap_alias_defeats_the_proof(self, machine):
        # u_old is never written directly, but it swaps with u_new which
        # is: the alias group is written, so no read-only proof
        plan = plan_program(heat_program(), machine=machine)
        assert plan.fields["u_old"].access == "rw"
        assert plan.ro_fields == ()
        assert plan.loop_invariant_halos == ()

    def test_decisions_record_the_proof(self, machine):
        plan = plan_program(coeff_program(), machine=machine)
        assert any("proven read-only" in d for d in plan.decisions)
        assert any("loop-invariant" in d for d in plan.decisions)


class TestSizing:
    def test_resident_when_fields_fit(self, machine):
        plan = plan_program(heat_program(), machine=machine)
        assert plan.resident and plan.n_slots is None
        assert plan.eviction == "lru"

    def test_streaming_under_memory_pressure(self, machine):
        shape = (64, 32, 32)
        nbytes = 64 * 32 * 32 * 8
        plan = plan_program(coeff_program(shape=shape), machine=machine,
                            free_memory=nbytes * 3 // 2, n_regions=8)
        assert not plan.resident
        assert plan.n_slots is not None and 1 <= plan.n_slots <= 8
        assert plan.eviction == "lookahead"

    def test_pinned_knobs_pass_through(self, machine):
        plan = plan_program(heat_program(), machine=machine, n_regions=4,
                            n_slots=2, eviction="modulo", prefetch_depth=2)
        assert (plan.n_regions, plan.n_slots) == (4, 2)
        assert (plan.eviction, plan.prefetch_depth) == ("modulo", 2)
        assert any("caller-pinned" in d for d in plan.decisions)

    def test_pinned_n_regions_range_checked(self, machine):
        with pytest.raises(PlanError, match="out of range"):
            plan_program(heat_program(), machine=machine, n_regions=64)

    def test_auto_region_count_is_a_candidate(self, machine):
        plan = plan_program(heat_program(shape=(64, 32, 32), steps=4),
                            machine=machine)
        assert plan.n_regions in (1, 2, 4, 8, 16, 32)
        assert plan.estimate is not None
        assert plan.total_sweeps == 4

    def test_empty_program_rejected(self, machine):
        with pytest.raises(PlanError, match="no fields"):
            plan_program(Program((8, 8)), machine=machine)


class TestReport:
    def test_to_json_round_trips(self, machine):
        payload = json.loads(plan_program(coeff_program(), machine=machine).to_json())
        assert payload["ro_fields"] == ["kappa"]
        assert payload["fields"]["kappa"]["access"] == "ro"
        assert payload["n_regions"] >= 1
