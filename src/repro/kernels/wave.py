"""2-D wave equation: a three-array workload.

Second-order explicit step::

    u_next = 2*u - u_prev + c2 * laplacian(u)

Exercises the multi-input compute signature of §V with *three* tiles per
call (the paper's examples stop at two) and the field-swap machinery with
a three-way rotation.
"""

from __future__ import annotations

import numpy as np

from ..cuda.kernel import KernelSpec


def _wave_body(
    dst: np.ndarray,
    u: np.ndarray,
    u_prev: np.ndarray,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
    c2: float = 0.25,
) -> None:
    ndim = dst.ndim
    interior = tuple(slice(l, h) for l, h in zip(lo, hi))
    lap = (-2.0 * ndim) * u[interior]
    for axis in range(ndim):
        m = tuple(
            slice(l - (1 if a == axis else 0), h - (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        p = tuple(
            slice(l + (1 if a == axis else 0), h + (1 if a == axis else 0))
            for a, (l, h) in enumerate(zip(lo, hi))
        )
        lap = lap + u[m] + u[p]
    dst[interior] = 2.0 * u[interior] - u_prev[interior] + c2 * lap


def wave_kernel(ndim: int = 2) -> KernelSpec:
    return KernelSpec(
        name=f"wave{ndim}d",
        body=_wave_body,
        bytes_per_cell=32.0,   # read u, read u_prev, write dst, re-read traffic
        flops_per_cell=2.0 * ndim + 5.0,
        cpu_spill_bytes_per_cell=16.0,  # u's neighbour planes re-fetched without tiling
        arg_access=("w", "r", "r"),  # dst written; u, u_prev read
        footprint=(None, 1, None),   # only u is read at radius 1
        meta={"ndim": ndim, "stencil_radius": 1},
    )


def wave_reference_step(
    u: np.ndarray, u_prev: np.ndarray, c2: float = 0.25, ghost: int = 1
) -> np.ndarray:
    """Reference wave step on global ghosted arrays."""
    dst = u.copy()
    lo = (ghost,) * u.ndim
    hi = tuple(s - ghost for s in u.shape)
    _wave_body(dst, u, u_prev, lo, hi, c2=c2)
    return dst
