"""Profiler CLI: ``python -m repro.obs.report <trace-or-run.json>``.

Input is either a Chrome/Perfetto trace file (as written by
:meth:`Trace.save_chrome_trace`) or a *run manifest* — a JSON object
carrying ``traceEvents`` and/or a ``metrics`` snapshot (as written by
``python -m repro trace`` and ``python -m repro.bench.harness
--metrics-out``).  It prints:

* per-lane utilization and overlap fractions (the Fig. 3/7 health check);
* slot-cache statistics per field (hits, misses, evictions, write-backs);
* fault-injection statistics (injected/retried/recovered/degraded), when
  a fault plan was armed;
* the top-N widest pipeline stalls — engine-lane idle gaps, labelled
  with the operation that eventually filled them;
* counter-track and runtime-metric summaries.

``--critpath`` adds the causal-DAG analyses of
:mod:`repro.obs.critpath`: the critical path and its per-category /
per-field attribution, per-iteration overlap efficiency against the
``max(compute, transfer)`` lower bound, and the what-if panel of
predicted speedups under perturbed machines.  The DAG comes from the
manifest's ``"dag"`` key (recorded by the hazard checker) when present,
else it is reconstructed from the trace's FIFO orders.

``--format json`` emits every table as machine-readable JSON instead of
aligned text; ``--out FILE`` writes the output there instead of stdout.

``--compare baseline.json`` instead diffs the two manifests' metric
snapshots and fails when any metric regressed by more than
``--threshold`` (default 10%) — the seed of bench-trajectory gating.

``--slo`` / ``--blame`` add the multi-tenant operability tables: the
per-tenant SLO rollup (latency percentiles, error budget, burn rates)
from the manifest's ``"slo"`` key and the contention-blame decomposition
(who stole each job's time, summing to the mux-vs-solo delta) from its
``"blame"`` key, both written by ``repro.bench.slo_bench``.

``--alerts`` / ``--health`` add the live-telemetry tables (watchdog
alerts and the health rollup recorded under the manifest's ``"alerts"``
and ``"health"`` keys by the ``repro.bench.live`` leg);
``--fail-on-alerts [SEVERITY]`` gates on them, failing when any alert
at or above SEVERITY (default ``warning``) is present.

Every gate failure — a ``--compare`` regression, a ``--fail-on-alerts``
hit, or an unreadable/contentless input — exits with code **2**, so CI
jobs can treat the exit code uniformly across compare/critpath/alert
gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from ..bench.report import Table
from ..sim.trace import Trace
from .compare import compare_snapshots

#: Trace categories executed by a hardware engine (stall analysis targets).
_ENGINE_CATEGORIES = {"kernel", "h2d", "d2h"}


def load_manifest(
    path: str | Path,
) -> tuple[Trace | None, dict[str, Any] | None, dict[str, Any]]:
    """Load a run manifest or raw Chrome trace.

    Returns ``(trace, metrics, manifest)`` — the manifest dict gives
    access to the optional ``"dag"`` and ``"critpath"`` keys (empty
    for a bare Chrome event array).
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, list):  # bare Chrome event array
        return Trace.from_chrome_trace(data), None, {}
    trace = None
    if "traceEvents" in data:
        trace = Trace.from_chrome_trace(data["traceEvents"])
    return trace, data.get("metrics"), data


def load_run(path: str | Path) -> tuple[Trace | None, dict[str, Any] | None]:
    """Load a run manifest or raw Chrome trace; returns (trace, metrics)."""
    trace, metrics, _data = load_manifest(path)
    return trace, metrics


# -- trace-derived tables ---------------------------------------------------

def utilization_table(trace: Trace) -> Table:
    table = Table(
        title="lane utilization",
        columns=["lane", "busy_s", "utilization", "operations"],
    )
    span = trace.span()
    for lane in trace.lanes():
        busy = trace.busy_time(lane)
        table.add_row(lane, busy, busy / span if span else 0.0, len(trace.by_lane(lane)))
    transfer_lanes = [
        lane for lane in trace.lanes()
        if any(e.category in ("h2d", "d2h") for e in trace.by_lane(lane))
    ]
    compute_lanes = [
        lane for lane in trace.lanes()
        if any(e.category == "kernel" for e in trace.by_lane(lane))
    ]
    table.add_note(f"span = {span:.6g} s")
    table.add_note(
        "transfer hidden behind compute = "
        f"{trace.overlap_fraction(transfer_lanes, compute_lanes):.4g}"
    )
    table.add_note(
        "compute overlapped with transfer = "
        f"{trace.overlap_fraction(compute_lanes, transfer_lanes):.4g}"
    )
    table.add_note(
        "host/compute hybrid overlap = "
        f"{trace.overlap_fraction(['host'], compute_lanes):.4g}"
    )
    return table


def stall_table(trace: Trace, *, top: int = 10) -> Table:
    """The ``top`` widest idle gaps on engine lanes.

    A gap is a maximal interval inside the trace span during which an
    engine lane ran nothing; each is labelled with the operation that
    ended it (what the engine was waiting to start).
    """
    table = Table(
        title=f"widest pipeline stalls (top {top})",
        columns=["lane", "start_s", "width_s", "next_op"],
    )
    if len(trace) == 0:
        return table
    t0 = min(e.start for e in trace)
    gaps: list[tuple[float, str, float, str]] = []
    for lane in trace.lanes():
        events = sorted(
            (e for e in trace.by_lane(lane)
             if e.category in _ENGINE_CATEGORIES and e.duration > 0),
            key=lambda e: e.start,
        )
        if not events:
            continue
        cursor = t0
        for e in events:
            if e.start > cursor:
                gaps.append((e.start - cursor, lane, cursor, e.name))
            cursor = max(cursor, e.end)
    gaps.sort(key=lambda g: -g[0])
    for width, lane, start, next_op in gaps[:top]:
        table.add_row(lane, start, width, next_op)
    return table


def counter_track_table(trace: Trace) -> Table:
    table = Table(
        title="counter tracks",
        columns=["track", "samples", "last", "max"],
    )
    for track, samples in sorted(trace.counter_tracks.items()):
        values = [v for _ts, v in samples]
        table.add_row(track, len(samples), values[-1] if values else 0.0,
                      max(values) if values else 0.0)
    return table


# -- metrics-derived tables -------------------------------------------------

def cache_table(metrics: dict[str, Any]) -> Table:
    """Per-field slot-cache statistics from ``cache.<stat>.<field>`` counters."""
    table = Table(
        title="slot-cache statistics",
        columns=["field", "hits", "misses", "hit rate", "evictions",
                 "writeback_bytes", "writebacks_skipped", "upload_bytes_avoided",
                 "pf_issued", "pf_useful", "pf_wasted", "stall_s_avoided"],
    )
    counters = metrics.get("counters", {})
    fields: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        parts = name.split(".", 2)
        if len(parts) == 3 and parts[0] == "cache":
            fields.setdefault(parts[2], {})[parts[1]] = value
    for fname in sorted(fields):
        stats = fields[fname]
        hits = stats.get("hits", 0.0)
        misses = stats.get("misses", 0.0)
        accesses = hits + misses
        table.add_row(
            fname,
            int(hits),
            int(misses),
            hits / accesses if accesses else 0.0,
            int(stats.get("evictions", 0.0)),
            int(stats.get("writeback_bytes", 0.0)),
            int(stats.get("writebacks_skipped", 0.0)),
            int(stats.get("upload_bytes_avoided", 0.0)),
            int(stats.get("prefetch_issued", 0.0)),
            int(stats.get("prefetch_useful", 0.0)),
            int(stats.get("prefetch_wasted", 0.0)),
            stats.get("stall_seconds_avoided", 0.0),
        )
    return table


def faults_table(metrics: dict[str, Any]) -> Table:
    """Fault-injection and recovery statistics from ``faults.*`` counters."""
    table = Table(
        title="fault injection & recovery",
        columns=["field", "retries", "recovered", "degraded"],
    )
    counters = metrics.get("counters", {})
    per_field: dict[str, dict[str, float]] = {}
    totals: dict[str, float] = {}
    injected_by_op: dict[str, float] = {}
    for name, value in counters.items():
        if not name.startswith("faults."):
            continue
        parts = name.split(".", 2)
        stat = parts[1]
        if len(parts) == 2:
            totals[stat] = value
        elif stat == "injected":
            injected_by_op[parts[2]] = value
        else:
            per_field.setdefault(parts[2], {})[stat] = value
    for fname in sorted(per_field):
        stats = per_field[fname]
        table.add_row(
            fname,
            int(stats.get("retries", 0.0)),
            int(stats.get("recovered", 0.0)),
            int(stats.get("degraded", 0.0)),
        )
    if totals.get("injected"):
        ops = ", ".join(f"{op}={int(v)}" for op, v in sorted(injected_by_op.items()))
        table.add_note(f"injected = {int(totals['injected'])} ({ops})")
    if totals.get("hang_seconds"):
        table.add_note(f"hang time injected = {totals['hang_seconds']:.6g} s")
    return table


def hazard_table(
    trace: Trace | None, metrics: dict[str, Any] | None
) -> Table:
    """Happens-before hazards flagged by the checker (:mod:`repro.check`).

    Rows come from the ``hazard`` decision marks the checker writes to the
    trace (one per flagged pair); the note summarizes the ``check.*``
    counters.  An armed checker with zero rows is itself a result: every
    device-buffer access of the run was provably ordered.
    """
    table = Table(
        title="happens-before hazards",
        columns=["t_s", "severity", "kind", "buffer", "earlier", "later"],
    )
    if trace is not None:
        for m in trace.marks:
            if m["name"] != "hazard":
                continue
            a = m.get("args", {})
            table.add_row(
                m["ts"], a.get("severity", "?"), a.get("kind", "?"),
                a.get("buffer", "?"), a.get("earlier", "?"), a.get("later", "?"),
            )
    if metrics is not None:
        counters = metrics.get("counters", {})
        ops = int(counters.get("check.ops", 0))
        if ops:
            table.add_note(
                f"checked ops = {ops}; "
                f"racy = {int(counters.get('check.hazards.racy', 0))}, "
                f"fifo-luck = {int(counters.get('check.hazards.fifo_luck', 0))} "
                f"(RAW={int(counters.get('check.raw', 0))}, "
                f"WAR={int(counters.get('check.war', 0))}, "
                f"WAW={int(counters.get('check.waw', 0))})"
            )
        unresolved = int(counters.get("check.after_unresolved", 0))
        if unresolved:
            table.add_note(f"unresolved after= components = {unresolved}")
    return table


def metrics_table(metrics: dict[str, Any]) -> Table:
    table = Table(title="runtime metrics", columns=["metric", "value"])
    for name, value in metrics.get("counters", {}).items():
        # cache, fault, and hazard counters have their own tables
        if not name.startswith(("cache.", "faults.", "check.")):
            table.add_row(name, value)
    for name, g in metrics.get("gauges", {}).items():
        table.add_row(f"{name} (last/max)", f"{g['value']:g}/{g['max']:g}")
    for name, h in metrics.get("histograms", {}).items():
        table.add_row(name, h)
    return table


# -- critical-path tables ---------------------------------------------------

def critical_path_table(summary: dict[str, Any], *, top: int = 10) -> Table:
    """The ``top`` longest segments of the critical path, in time order."""
    table = Table(
        title="critical path",
        columns=["t_start_s", "duration_s", "category", "operation"],
    )
    path = summary.get("path", [])
    widest = sorted(path, key=lambda s: -s["duration"])[:top]
    keep = {id(s) for s in widest}
    for seg in path:
        if id(seg) in keep:
            table.add_row(seg["start"], seg["duration"], seg["category"],
                          seg["label"])
    table.add_note(
        f"wall = {summary['wall_s']:.6g} s over {summary['n_ops']} ops; "
        f"path has {len(path)} segments (showing the {len(widest)} longest)"
    )
    return table


def attribution_table(summary: dict[str, Any]) -> Table:
    """Per-category and per-field critical-path attribution.

    The category rows partition the wall time exactly (the path tiles
    the run span); field rows re-slice the same seconds by the field
    each operation targets, host stalls under ``"-"``.
    """
    table = Table(
        title="critical-path attribution",
        columns=["category", "path_s", "share"],
    )
    wall = summary["wall_s"] or 1.0
    for cat, secs in summary["attribution"].items():
        if secs > 0.0:
            table.add_row(cat, secs, secs / wall)
    by_field = summary.get("attribution_by_field", {})
    for fname in sorted(by_field):
        total = sum(by_field[fname].values())
        parts = ", ".join(
            f"{c}={s:.3g}s" for c, s in sorted(by_field[fname].items()) if s > 0
        )
        table.add_note(f"field {fname}: {total:.3g}s ({parts})")
    by_region = summary.get("attribution_by_region", {})
    regions = sorted(
        ((sum(cats.values()), r) for r, cats in by_region.items() if r != "-"),
        reverse=True,
    )
    if regions:
        table.add_note(
            "hottest regions: "
            + ", ".join(f"{r}={s:.3g}s" for s, r in regions[:5])
        )
    return table


def overlap_table(summary: dict[str, Any]) -> Table:
    """Per-iteration achieved vs. ideal overlap (the Fig. 3/7 metric)."""
    table = Table(
        title="overlap efficiency",
        columns=["iteration", "wall_s", "compute_s", "transfer_s",
                 "ideal_s", "achieved_overlap_s", "ideal_overlap_s",
                 "efficiency"],
    )
    rows = summary.get("overlap", [])
    for r in rows:
        table.add_row(r["iteration"], r["wall_s"], r["compute_s"],
                      r["transfer_s"], r["ideal_s"], r["achieved_overlap_s"],
                      r["ideal_overlap_s"], r["efficiency"])
    if rows:
        wall = sum(r["wall_s"] for r in rows)
        ideal = sum(r["ideal_s"] for r in rows)
        table.add_note(
            f"ideal lower bound sum(max(compute, transfer)) = {ideal:.6g} s "
            f"vs wall {wall:.6g} s ({wall / ideal if ideal else 0.0:.3g}x)"
        )
    return table


def whatif_table(summary: dict[str, Any]) -> Table:
    """Predicted speedups under perturbed machines, from the DAG replay."""
    table = Table(
        title="what-if (replayed schedule)",
        columns=["scenario", "makespan_s", "speedup", "bound"],
    )
    for r in summary.get("whatif", ()):
        table.add_row(r["scenario"], r["makespan_s"], r["speedup"], r["bound"])
    flip = summary.get("flip_link_factor")
    if flip is None:
        table.add_note("baseline is not transfer-bound: no link-speed flip point")
    elif flip == float("inf"):
        table.add_note("still transfer-bound at the largest swept link factor")
    else:
        table.add_note(
            f"bottleneck flips from transfer- to compute-bound at link x{flip:g}"
        )
    return table


def build_critpath_report(
    trace: Trace | None,
    manifest: dict[str, Any],
    *,
    top: int = 10,
) -> list[Table]:
    """The four critpath tables, from the manifest's DAG or the trace.

    Returns an empty list when neither a recorded DAG nor a usable
    trace is available.
    """
    from .critpath import RunDag, critpath_summary

    dag = RunDag.from_manifest(manifest) if manifest else None
    source = "checker-recorded DAG"
    if dag is None and trace is not None and len(trace):
        dag = RunDag.from_trace(trace)
        source = "trace FIFO reconstruction (no checker DAG in manifest)"
    if dag is None or not dag.nodes:
        return []
    summary = manifest.get("critpath") or critpath_summary(dag)
    tables = [
        critical_path_table(summary, top=top),
        attribution_table(summary),
        overlap_table(summary),
        whatif_table(summary),
    ]
    tables[0].add_note(f"DAG source: {source}")
    return tables


def build_report(
    trace: Trace | None, metrics: dict[str, Any] | None, *, top: int = 10
) -> list[Table]:
    tables: list[Table] = []
    if trace is not None:
        tables.append(utilization_table(trace))
        tables.append(stall_table(trace, top=top))
        if trace.counter_tracks:
            tables.append(counter_track_table(trace))
    if metrics is not None:
        cache = cache_table(metrics)
        if cache.rows:
            tables.append(cache)
        faults = faults_table(metrics)
        if faults.rows or faults.notes:
            tables.append(faults)
        tables.append(metrics_table(metrics))
    hazards = hazard_table(trace, metrics)
    if hazards.rows or hazards.notes:
        tables.append(hazards)
    return tables


def alerts_table(alerts: list[dict[str, Any]]) -> Table:
    """Watchdog alerts recorded under the manifest's ``"alerts"`` key."""
    table = Table(
        title="watchdog alerts",
        columns=["t_s", "leg", "detector", "severity", "message"],
    )
    for a in alerts:
        table.add_row(
            a.get("t", 0.0), a.get("leg", "-"), a.get("detector", "?"),
            a.get("severity", "?"), a.get("message", ""),
        )
    if not alerts:
        table.add_note("no alerts recorded")
    return table


def health_table(health: dict[str, Any]) -> Table:
    """Health rollups recorded under the manifest's ``"health"`` key.

    Accepts either one health dict (``TelemetryBus.health()``) or a
    mapping of leg name to health dict, as ``repro.bench.live`` writes.
    """
    table = Table(
        title="telemetry health",
        columns=["leg", "status", "samples", "warnings", "criticals",
                 "incidents", "t_s"],
    )
    legs = health if health and "status" not in health else {"-": health}
    for name in sorted(legs):
        h = legs[name] or {}
        alerts = h.get("alerts", {})
        table.add_row(
            name, h.get("status", "?"), h.get("samples", 0),
            alerts.get("warning", 0), alerts.get("critical", 0),
            h.get("incidents", 0), h.get("now", 0.0),
        )
    return table


def slo_table(slo: dict[str, Any]) -> Table:
    """Per-tenant SLO rollup from the manifest's ``"slo"`` key.

    Accepts one :meth:`~repro.obs.slo.SloTracker.snapshot` payload or a
    mapping of leg name to snapshot (as ``repro.bench.slo_bench``
    writes); leg names prefix the tenant column.
    """
    table = Table(
        title="per-tenant SLO status",
        columns=["tenant", "jobs", "p50_s", "p95_s", "p99_s", "target_s",
                 "objective", "budget_left", "burn_fast", "burn_slow",
                 "burning"],
    )
    legs = slo if slo and "tenants" not in slo else {"": slo}
    n_alerts = 0
    for leg in sorted(legs):
        snap = legs[leg] or {}
        n_alerts += len(snap.get("alerts", ()))
        for tenant in sorted(snap.get("tenants", {})):
            row = snap["tenants"][tenant]
            pol = row.get("policy") or {}
            lat = row.get("latency", {})
            budget = row.get("budget", {})
            table.add_row(
                f"{leg}/{tenant}" if leg else tenant,
                int(budget.get("jobs", lat.get("count", 0))),
                lat.get("p50"), lat.get("p95"), lat.get("p99"),
                pol.get("target", "-"),
                f"{pol['objective']:.0%}" if pol else "-",
                (f"{budget['remaining_fraction']:+.0%}"
                 if pol and budget else "-"),
                f"{row.get('burn_fast', 0.0):.2f}x" if pol else "-",
                f"{row.get('burn_slow', 0.0):.2f}x" if pol else "-",
                "BURNING" if row.get("burning") else "-",
            )
    table.add_note(f"burn alerts recorded = {n_alerts}")
    return table


def blame_table(blame: dict[str, Any], *, top: int = 10) -> Table:
    """Contention blame from the manifest's ``"blame"`` key.

    ``blame`` carries per-job :func:`~repro.obs.critpath
    .blame_decomposition` rows under ``"jobs"`` and their
    :func:`~repro.obs.critpath.blame_summary` under ``"summary"``; the
    table shows the ``top`` most-delayed jobs and the summary totals as
    notes.  Components sum to the observed mux-vs-solo delta by
    construction, so every second of slowdown is attributed.
    """
    from .critpath import BLAME_COMPONENTS

    table = Table(
        title=f"contention blame (top {top} by delta)",
        columns=["job", "delta_s"] + list(BLAME_COMPONENTS) + ["residual"],
    )
    rows = sorted(blame.get("jobs", ()),
                  key=lambda r: -abs(r.get("delta", 0.0)))[:top]
    for r in rows:
        comp = r.get("components", {})
        table.add_row(
            r.get("job", "?"), r.get("delta", 0.0),
            *(comp.get(c, 0.0) for c in BLAME_COMPONENTS),
            r.get("residual", 0.0),
        )
    summary = blame.get("summary")
    if summary:
        parts = ", ".join(
            f"{c}={summary['components'].get(c, 0.0):.3g}s"
            for c in BLAME_COMPONENTS
            if summary.get("components", {}).get(c)
        )
        table.add_note(
            f"{summary.get('jobs', 0)} jobs, total delta "
            f"{summary.get('delta', 0.0):.6g}s ({parts or 'no contention'})"
        )
        table.add_note(
            f"max residual = {summary.get('max_residual', 0.0):.3g}s "
            "(components sum to delta by construction)"
        )
    return table


def compare_table(rows: list[dict[str, Any]], *, show_ok: bool = False) -> Table:
    table = Table(
        title="metric comparison vs baseline",
        columns=["metric", "baseline", "current", "rel_change", "verdict"],
    )
    for row in rows:
        if not show_ok and row["verdict"] == "ok":
            continue
        rel = row["rel_change"]
        table.add_row(
            row["metric"],
            row["baseline"] if row["baseline"] is not None else "-",
            row["current"] if row["current"] is not None else "-",
            f"{rel:+.1%}" if rel is not None else "-",
            row["verdict"],
        )
    return table


def _emit(
    tables: list[Table],
    *,
    fmt: str,
    out: str | None,
    extra: dict[str, Any] | None = None,
) -> None:
    """Render tables as text or JSON, to stdout or ``out``.

    Missing parent directories of ``out`` are created.  Callers must
    validate ``out`` with :func:`check_out_path` first — this function
    overwrites unconditionally.
    """
    if fmt == "json":
        payload: dict[str, Any] = {"tables": [t.to_json() for t in tables]}
        if extra:
            payload.update(extra)
        text = json.dumps(payload, indent=2, default=str) + "\n"
    else:
        text = "\n\n".join(t.format() for t in tables) + "\n"
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    else:
        sys.stdout.write(text)


def check_out_path(out: str | None) -> str | None:
    """Refuse ``--out`` targets that would silently clobber foreign files.

    Reports, in either format, belong in ``.json`` or ``.txt`` files;
    overwriting those on a re-run is expected.  An *existing* file with
    any other suffix (a source file, a manifest the user meant as input,
    ...) is almost certainly a mistyped path, so it is an error rather
    than a silent overwrite.  Returns an error message, or None when the
    target is acceptable.
    """
    if out is None:
        return None
    path = Path(out)
    if path.exists() and path.suffix not in (".json", ".txt"):
        return (
            f"refusing to overwrite existing non-report file {out!r} "
            "(reports go to .json or .txt; pick a new path or delete it first)"
        )
    if path.exists() and path.is_dir():
        return f"--out target {out!r} is a directory"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("run", help="trace or run-manifest JSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="number of widest stalls to show (default 10)")
    parser.add_argument("--critpath", action="store_true",
                        help="add critical-path, attribution, overlap-efficiency "
                             "and what-if tables (from the manifest's DAG, or "
                             "reconstructed from the trace)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default text)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the report there instead of stdout")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="diff metric snapshots against a baseline manifest; "
                             "exit 2 when any metric regresses past --threshold")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression threshold for --compare (default 0.10)")
    parser.add_argument("--show-ok", action="store_true",
                        help="with --compare, list unchanged metrics too")
    parser.add_argument("--alerts", action="store_true",
                        help="add the watchdog-alert table (from the manifest's "
                             "'alerts' key, as written by repro.bench.live)")
    parser.add_argument("--health", action="store_true",
                        help="add the telemetry health table (from the manifest's "
                             "'health' key)")
    parser.add_argument("--slo", action="store_true",
                        help="add the per-tenant SLO table (from the manifest's "
                             "'slo' key, as written by repro.bench.slo_bench)")
    parser.add_argument("--blame", action="store_true",
                        help="add the contention-blame table (from the "
                             "manifest's 'blame' key)")
    parser.add_argument("--fail-on-alerts", nargs="?", const="warning",
                        default=None, choices=("info", "warning", "critical"),
                        metavar="SEVERITY",
                        help="exit 2 when the manifest carries any alert at or "
                             "above SEVERITY (default warning when given bare)")
    args = parser.parse_args(argv)

    out_error = check_out_path(args.out)
    if out_error is not None:
        print(f"error: {out_error}", file=sys.stderr)
        return 2

    try:
        trace, metrics, manifest = load_manifest(args.run)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.run}: {exc}", file=sys.stderr)
        return 2

    if args.compare is not None:
        try:
            _base_trace, base_metrics = load_run(args.compare)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline {args.compare}: {exc}", file=sys.stderr)
            return 2
        if metrics is None or base_metrics is None:
            print("error: --compare needs a 'metrics' snapshot in both files",
                  file=sys.stderr)
            return 2
        rows, regressions = compare_snapshots(
            metrics, base_metrics, threshold=args.threshold
        )
        _emit(
            [compare_table(rows, show_ok=args.show_ok)],
            fmt=args.format, out=args.out,
            extra={"rows": rows, "regressions": regressions},
        )
        if regressions:
            print(f"{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0%}:")
            for row in regressions:
                cur = ("missing" if row["current"] is None
                       else format(row["current"], "g"))
                rel = ("" if row["rel_change"] is None
                       else f" ({row['rel_change']:+.1%})")
                print(f"  {row['metric']}: {row['baseline']:g} -> {cur}{rel}")
            return 2
        print(f"no regressions beyond {args.threshold:.0%}")
        return 0

    manifest_alerts = list(manifest.get("alerts", ()))
    wants_live = (args.alerts or args.health or args.slo or args.blame
                  or args.fail_on_alerts is not None)
    if trace is None and metrics is None and not (wants_live and manifest):
        print(f"error: {args.run} carries neither traceEvents nor metrics",
              file=sys.stderr)
        return 2
    tables = build_report(trace, metrics, top=args.top)
    if args.alerts:
        tables.append(alerts_table(manifest_alerts))
    if args.health:
        tables.append(health_table(manifest.get("health", {})))
    if args.slo:
        slo = manifest.get("slo")
        if not slo:
            print(f"error: {args.run} carries no 'slo' snapshot "
                  "(write one with repro.bench.slo_bench)", file=sys.stderr)
            return 2
        tables.append(slo_table(slo))
    if args.blame:
        blame = manifest.get("blame")
        if not blame:
            print(f"error: {args.run} carries no 'blame' decomposition "
                  "(write one with repro.bench.slo_bench)", file=sys.stderr)
            return 2
        tables.append(blame_table(blame, top=args.top))
    if args.critpath:
        crit = build_critpath_report(trace, manifest, top=args.top)
        if not crit:
            print(f"error: {args.run} carries neither a DAG nor trace events "
                  "to build the critical path from", file=sys.stderr)
            return 2
        tables.extend(crit)
    _emit(tables, fmt=args.format, out=args.out)
    if args.fail_on_alerts is not None:
        from .compare import failing_alerts

        failing = failing_alerts(manifest_alerts, args.fail_on_alerts)
        if failing:
            print(f"{len(failing)} alert(s) at or above "
                  f"{args.fail_on_alerts!r}:")
            for a in failing:
                print(f"  [{a.get('severity', '?')}] {a.get('detector', '?')} "
                      f"t={a.get('t', 0.0):.6g}: {a.get('message', '')}")
            return 2
        print(f"no alerts at or above {args.fail_on_alerts!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
