"""Kernel specifications: functional body + analytic cost model.

A :class:`KernelSpec` pairs the numpy implementation of a kernel body
(executed in functional mode, so numerics are real and testable) with
per-cell cost metadata (consumed by the roofline duration model in
timing mode).  Special-function counts (sin/cos/sqrt) are kept separate
from plain flops because the paper's Fig. 6 compares three math code
generation paths (CUDA libm, PGI, ``--use_fast_math``) whose only
difference is the cost of those calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..config import MachineSpec, MathModel
from ..errors import CudaInvalidValueError

#: Maximum threads per block on every CUDA architecture the paper targets.
MAX_THREADS_PER_BLOCK = 1024
#: Kepler limit on grid dimension x.
MAX_GRID_DIM = 2 ** 31 - 1


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry for a kernel launch.

    The paper tunes geometry by hand for the CUDA baselines and lets the
    compiler pick for OpenACC (§II-C); ``tuned`` carries that distinction
    into the cost model.
    """

    grid: tuple[int, ...]
    block: tuple[int, ...]
    tuned: bool = True

    def __post_init__(self) -> None:
        if not self.grid or not self.block:
            raise CudaInvalidValueError("grid and block must be non-empty")
        if len(self.grid) > 3 or len(self.block) > 3:
            raise CudaInvalidValueError("grid and block have at most 3 dimensions")
        if any(g <= 0 for g in self.grid) or any(b <= 0 for b in self.block):
            raise CudaInvalidValueError("grid and block extents must be positive")
        if self.threads_per_block > MAX_THREADS_PER_BLOCK:
            raise CudaInvalidValueError(
                f"block {self.block} exceeds {MAX_THREADS_PER_BLOCK} threads"
            )
        if self.grid[0] > MAX_GRID_DIM:
            raise CudaInvalidValueError(f"grid.x {self.grid[0]} exceeds {MAX_GRID_DIM}")

    @property
    def threads_per_block(self) -> int:
        n = 1
        for b in self.block:
            n *= b
        return n

    @property
    def total_threads(self) -> int:
        n = self.threads_per_block
        for g in self.grid:
            n *= g
        return n

    @classmethod
    def for_cells(cls, n_cells: int, *, block: tuple[int, ...] = (256,), tuned: bool = True) -> "LaunchConfig":
        """1-D geometry covering ``n_cells`` iteration points."""
        if n_cells <= 0:
            raise CudaInvalidValueError(f"n_cells must be positive, got {n_cells}")
        cfg = cls(grid=(1,), block=block, tuned=tuned)
        per_block = cfg.threads_per_block
        grid_x = (n_cells + per_block - 1) // per_block
        return cls(grid=(grid_x,), block=block, tuned=tuned)


def _entry_is_nonzero(entry: Any) -> bool:
    """Does a footprint entry declare any off-cell read?"""
    if entry is None:
        return False
    if isinstance(entry, int):
        return entry != 0
    if len(entry) == 2 and all(isinstance(v, int) for v in entry):
        lo, hi = entry
        return lo != 0 or hi != 0
    return any(lo != 0 or hi != 0 for lo, hi in entry)


def _validate_footprint_entry(name: str, index: int, entry: Any) -> None:
    def bad(why: str) -> CudaInvalidValueError:
        return CudaInvalidValueError(
            f"kernel {name!r}: footprint entry {index} {why} (got {entry!r}); "
            "use None, a radius int, a (lo, hi) pair with lo <= 0 <= hi, "
            "or a tuple of per-axis (lo, hi) pairs"
        )

    if entry is None:
        return
    if isinstance(entry, int):
        if entry < 0:
            raise bad("has a negative radius")
        return
    if not isinstance(entry, (tuple, list)):
        raise bad("is not a radius or extent tuple")
    pairs: list[Any]
    if len(entry) == 2 and all(isinstance(v, int) for v in entry):
        pairs = [tuple(entry)]
    else:
        pairs = [tuple(p) if isinstance(p, (tuple, list)) else p for p in entry]
    for p in pairs:
        if not (isinstance(p, tuple) and len(p) == 2
                and all(isinstance(v, int) for v in p)):
            raise bad("mixes scalars and pairs")
        lo, hi = p
        if lo > 0 or hi < 0:
            raise bad(f"must satisfy lo <= 0 <= hi per axis, offends at {p}")


def _normalize_footprint_entry(
    name: str, index: int, entry: Any, ndim: int
) -> tuple[tuple[int, int], ...]:
    if entry is None:
        return ((0, 0),) * ndim
    if isinstance(entry, int):
        return ((-entry, entry),) * ndim
    if len(entry) == 2 and all(isinstance(v, int) for v in entry):
        return (tuple(entry),) * ndim
    pairs = tuple(tuple(p) for p in entry)
    if len(pairs) != ndim:
        raise CudaInvalidValueError(
            f"kernel {name!r}: footprint entry {index} declares "
            f"{len(pairs)} axes but the iteration space is {ndim}-D"
        )
    return pairs


@dataclass(frozen=True)
class KernelSpec:
    """A GPU kernel: functional body plus per-cell cost metadata.

    ``body`` receives the numpy arrays of the launch's buffers (in order)
    followed by the launch's keyword ``params``; it mutates the output
    array(s) in place.  ``body`` may be ``None`` for pure-timing kernels.

    Costs are *per iteration-space cell*:

    * ``bytes_per_cell`` — device-memory traffic (reads+writes, assuming
      cache-friendly access, e.g. 16 B/cell for an 8-byte stencil that
      streams one read and one write per cell);
    * ``flops_per_cell`` — plain FMA-class arithmetic;
    * ``sin/cos/sqrt_per_cell`` — special-function calls, costed via the
      active :class:`~repro.config.MathModel`.
    """

    name: str
    body: Callable[..., None] | None
    bytes_per_cell: float
    flops_per_cell: float = 0.0
    sin_per_cell: float = 0.0
    cos_per_cell: float = 0.0
    sqrt_per_cell: float = 0.0
    #: Extra per-cell DRAM traffic on the *CPU* when a tile's working set
    #: exceeds the last-level cache (stencil planes falling out between row
    #: sweeps) — the §IV-A cache-reuse effect tiles exist to avoid.
    cpu_spill_bytes_per_cell: float = 0.0
    #: Per-buffer-argument access declaration for the hazard checker:
    #: one of ``"r"``, ``"w"``, ``"rw"`` per positional buffer (in the
    #: body's argument order).  ``None`` (or missing trailing entries)
    #: means the conservative ``"rw"``.
    arg_access: tuple[str, ...] | None = None
    #: Per-buffer-argument stencil footprint: the index-offset extents the
    #: kernel *reads* around each iteration point, in the body's argument
    #: order.  Each entry is one of
    #:
    #: * ``None`` / ``0`` — pointwise (reads only its own cell);
    #: * ``r`` (int) — isotropic radius ``r`` on every axis;
    #: * ``(lo, hi)`` — the same offset extents on every axis
    #:   (``lo <= 0 <= hi``, e.g. ``(-1, 1)`` for a radius-1 stencil);
    #: * a tuple of per-axis ``(lo, hi)`` pairs.
    #:
    #: Missing trailing entries mean pointwise.  The planner
    #: (:mod:`repro.plan`) derives ghost widths and halo-exchange
    #: schedules from these declarations, so an under-declared footprint
    #: reads stale ghost cells — declare what the body actually touches.
    footprint: tuple[Any, ...] | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for attr in (
            "bytes_per_cell", "flops_per_cell", "sin_per_cell",
            "cos_per_cell", "sqrt_per_cell", "cpu_spill_bytes_per_cell",
        ):
            if getattr(self, attr) < 0:
                raise CudaInvalidValueError(f"{attr} must be >= 0")
        if self.arg_access is not None:
            bad = [a for a in self.arg_access if a not in ("r", "w", "rw")]
            if bad:
                raise CudaInvalidValueError(
                    f"arg_access entries must be 'r', 'w', or 'rw', got {bad}"
                )
        if self.footprint is not None:
            for i, entry in enumerate(self.footprint):
                _validate_footprint_entry(self.name, i, entry)
                if (
                    self.arg_access is not None
                    and i < len(self.arg_access)
                    and self.arg_access[i] == "w"
                    and _entry_is_nonzero(entry)
                ):
                    raise CudaInvalidValueError(
                        f"kernel {self.name!r}: arg {i} is declared write-only "
                        f"('w') but has a non-pointwise footprint {entry!r}; "
                        "stencil footprints describe reads"
                    )

    def arg_footprint(self, index: int, ndim: int) -> tuple[tuple[int, int], ...]:
        """Normalized per-axis ``(lo, hi)`` read extents of buffer arg ``index``.

        Undeclared arguments (no ``footprint``, or missing trailing
        entries) are pointwise: ``((0, 0),) * ndim``.
        """
        entry = None
        if self.footprint is not None and index < len(self.footprint):
            entry = self.footprint[index]
        return _normalize_footprint_entry(self.name, index, entry, ndim)

    def reads_neighbors(self, index: int, ndim: int) -> bool:
        """Does buffer arg ``index`` read beyond its own cell?"""
        return any(lo < 0 or hi > 0 for lo, hi in self.arg_footprint(index, ndim))

    def read_radius(self, ndim: int, n_args: int | None = None) -> tuple[int, ...]:
        """Per-axis ghost width this kernel needs on any field it reads.

        The maximum offset magnitude over every *reading* argument
        (access ``"r"``/``"rw"``, or undeclared — conservative ``"rw"``).
        """
        if n_args is None:
            n_args = max(
                len(self.footprint or ()), len(self.arg_access or ())
            )
        radius = [0] * ndim
        for i in range(n_args):
            a = "rw"
            if self.arg_access is not None and i < len(self.arg_access):
                a = self.arg_access[i]
            if a == "w":
                continue
            for axis, (lo, hi) in enumerate(self.arg_footprint(i, ndim)):
                radius[axis] = max(radius[axis], -lo, hi)
        return tuple(radius)

    def flop_equivalents(self, math: MathModel, n_cells: int) -> float:
        """Total FMA-equivalent work for ``n_cells``, folding in special functions."""
        per_cell = (
            self.flops_per_cell
            + self.sin_per_cell * math.sin_cost
            + self.cos_per_cell * math.cos_cost
            + self.sqrt_per_cell * math.sqrt_cost
        )
        return per_cell * n_cells

    def bytes_moved(self, n_cells: int) -> float:
        return self.bytes_per_cell * n_cells

    def duration_on_gpu(
        self,
        machine: MachineSpec,
        n_cells: int,
        *,
        tuned_geometry: bool = True,
        math: MathModel | None = None,
    ) -> float:
        """Kernel-body duration on the machine's GPU (launch overhead excluded)."""
        if n_cells < 0:
            raise CudaInvalidValueError(f"n_cells must be >= 0, got {n_cells}")
        math = math if math is not None else machine.math
        return machine.gpu.kernel_time(
            bytes_moved=self.bytes_moved(n_cells),
            flops=self.flop_equivalents(math, n_cells),
            tuned_geometry=tuned_geometry,
        )

    def cost_components(
        self,
        machine: MachineSpec,
        n_cells: int,
        *,
        tuned_geometry: bool = True,
        math: MathModel | None = None,
    ) -> tuple[float, float]:
        """The ``(mem_time, flop_time)`` roofline legs of the kernel body.

        ``duration_on_gpu`` equals ``max(*cost_components(...))`` — the
        legs are what the run DAG records per kernel node so the replay
        surrogate can rescale each under a candidate machine and re-take
        the max (see :meth:`repro.config.GpuSpec.kernel_time_components`).
        """
        if n_cells < 0:
            raise CudaInvalidValueError(f"n_cells must be >= 0, got {n_cells}")
        math = math if math is not None else machine.math
        return machine.gpu.kernel_time_components(
            bytes_moved=self.bytes_moved(n_cells),
            flops=self.flop_equivalents(math, n_cells),
            tuned_geometry=tuned_geometry,
        )

    def duration_on_cpu(
        self,
        machine: MachineSpec,
        n_cells: int,
        *,
        math: MathModel | None = None,
        working_set_bytes: float | None = None,
    ) -> float:
        """Duration of the same loop nest executed on the host CPU.

        When ``working_set_bytes`` is given, the §IV-A cache model applies:
        working sets beyond the LLC pay ``cpu_spill_bytes_per_cell`` of
        extra DRAM traffic — the reason CPU tiles should be cache-sized.
        """
        if n_cells < 0:
            raise CudaInvalidValueError(f"n_cells must be >= 0, got {n_cells}")
        math = math if math is not None else machine.math
        return machine.cpu.kernel_time(
            bytes_moved=self.bytes_moved(n_cells),
            flops=self.flop_equivalents(math, n_cells),
            spill_bytes=self.cpu_spill_bytes_per_cell * n_cells,
            working_set_bytes=working_set_bytes,
        )
