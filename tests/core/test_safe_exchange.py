"""Safe (event-ordered) ghost exchange vs the paper's FIFO-only protocol."""

import numpy as np
import pytest

from repro.baselines.common import default_init, reference_heat
from repro.core.library import TidaAcc
from repro.kernels.heat import heat_kernel
from repro.tida.boundary import Neumann


def run_heat(machine, *, safe: bool, functional: bool, steps=4, shape=(12, 8, 8)):
    init = default_init(shape, 1)
    lib = TidaAcc(machine, functional=functional)
    lib.add_array("old", shape, n_regions=3, halo=1)
    lib.add_array("new", shape, n_regions=3, halo=1)
    if functional:
        lib.field("old").from_global(init[1:-1, 1:-1, 1:-1])
        lib.field("new").from_global(init[1:-1, 1:-1, 1:-1])
    k = heat_kernel(3)
    for _ in range(steps):
        lib.fill_boundary("old", Neumann(), safe=safe)
        for dst_t, src_t in lib.iterator("new", "old").reset(gpu=True):
            lib.compute((dst_t, src_t), k, gpu=True, params={"coef": 0.1})
        lib.swap("old", "new")
    result = lib.gather("old") if functional else None
    return lib, result, init


def test_safe_mode_same_numerics(machine):
    _, unsafe_result, init = run_heat(machine, safe=False, functional=True)
    _, safe_result, _ = run_heat(machine, safe=True, functional=True)
    ref = reference_heat(init, 4, coef=0.1, bc=Neumann(), ghost=1)
    np.testing.assert_allclose(unsafe_result, ref)
    np.testing.assert_array_equal(unsafe_result, safe_result)


def test_safe_mode_costs_no_less_time(machine):
    lib_unsafe, _, _ = run_heat(machine, safe=False, functional=False,
                                steps=10, shape=(64, 64, 64))
    lib_safe, _, _ = run_heat(machine, safe=True, functional=False,
                              steps=10, shape=(64, 64, 64))
    lib_unsafe.synchronize()
    lib_safe.synchronize()
    # extra host API calls + cross-stream ordering: never faster
    assert lib_safe.now >= lib_unsafe.now


def test_safe_mode_orders_source_stream(machine):
    """After a safe exchange, the source region's stream tail is pushed to
    (at least) the ghost kernel that read it."""
    lib = TidaAcc(machine, functional=False)
    lib.add_array("u", (12,), n_regions=3, halo=1)
    mgr = lib.manager("u")
    for rid in range(3):
        mgr.request_device(rid)
    lib.fill_boundary("u", Neumann(), safe=True)
    ghost_kernels = [e for e in lib.trace if e.name.startswith("ghost:")]
    assert ghost_kernels
    last_ghost_end = max(e.end for e in ghost_kernels)
    # every slot stream now sits at/after the last ghost kernel that
    # involved it as source or destination
    tails = [mgr.slot_for(rid).stream.tail for rid in range(3)]
    assert max(tails) >= last_ghost_end
