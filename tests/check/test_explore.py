"""Schedule exploration: digests, machine perturbation, conformance sweeps."""

import numpy as np
import pytest

from repro.check.explore import (
    ExploreReport,
    ScheduleRun,
    conformance_matrix,
    digest,
    explore,
    perturb_machine,
)
from repro.config import k40m_pcie3


class TestDigest:
    def test_deterministic(self):
        a = np.arange(64, dtype=np.float64).reshape(8, 8)
        assert digest(a) == digest(a.copy())

    def test_one_ulp_flip_changes_digest(self):
        a = np.arange(64, dtype=np.float64)
        b = a.copy()
        b[17] = np.nextafter(b[17], np.inf)  # allclose would miss this
        assert digest(a) != digest(b)

    def test_shape_and_dtype_matter(self):
        a = np.zeros(16, dtype=np.float64)
        assert digest(a) != digest(a.reshape(4, 4))
        assert digest(a) != digest(a.astype(np.float32))

    def test_non_contiguous_input(self):
        a = np.arange(64, dtype=np.float64).reshape(8, 8)
        assert digest(a[:, ::2]) == digest(np.ascontiguousarray(a[:, ::2]))


class TestPerturbMachine:
    def test_deterministic_per_seed(self, machine):
        m1 = perturb_machine(machine, 7)
        m2 = perturb_machine(machine, 7)
        assert m1.link.h2d_bandwidth == m2.link.h2d_bandwidth
        assert m1.gpu.dp_flops == m2.gpu.dp_flops

    def test_different_seeds_differ(self, machine):
        m1 = perturb_machine(machine, 1)
        m2 = perturb_machine(machine, 2)
        assert m1.link.h2d_bandwidth != m2.link.h2d_bandwidth

    def test_jitter_bounds(self, machine):
        for seed in range(5):
            m = perturb_machine(machine, seed, jitter=0.25)
            for got, ref in [
                (m.link.h2d_bandwidth, machine.link.h2d_bandwidth),
                (m.link.d2h_bandwidth, machine.link.d2h_bandwidth),
                (m.gpu.dp_flops, machine.gpu.dp_flops),
                (m.gpu.mem_bandwidth, machine.gpu.mem_bandwidth),
                (m.cpu.dp_flops, machine.cpu.dp_flops),
            ]:
                assert 0.75 * ref <= got <= 1.25 * ref

    def test_original_untouched_and_renamed(self, machine):
        before = machine.link.h2d_bandwidth
        m = perturb_machine(machine, 3)
        assert machine.link.h2d_bandwidth == before
        assert m.name == f"{machine.name}~s3"
        assert m.gpu.memory_bytes == machine.gpu.memory_bytes  # capacity kept

    def test_jitter_validation(self, machine):
        with pytest.raises(ValueError, match="jitter"):
            perturb_machine(machine, 0, jitter=1.0)
        with pytest.raises(ValueError, match="jitter"):
            perturb_machine(machine, 0, jitter=-0.1)


class _FakeResult:
    def __init__(self, arr, counters=None, elapsed=1.0):
        self.result = arr
        self.elapsed = elapsed
        self.metrics = counters or {}
        self.meta = None


class TestExplore:
    def test_labels_and_grouping(self):
        calls = []

        def run(machine=None, **kw):
            calls.append((machine, kw))
            return _FakeResult(np.zeros(4))

        report = explore(
            run, [{"x": 1}, {"x": 2, "label": "two"}],
            machine=k40m_pcie3(), timing_seeds=(0, 5),
        )
        assert [r.label for r in report.runs] == ["t0/x=1", "t0/two", "t5/x=1", "t5/two"]
        # seed 0 runs the unperturbed machine, seed 5 a jittered copy
        assert calls[0][0].name == "k40m-pcie3"
        assert calls[2][0].name == "k40m-pcie3~s5"
        assert report.ok and report.byte_identical and report.racy == 0

    def test_divergent_digests_fail(self):
        arrs = iter([np.zeros(4), np.ones(4)])

        def run(machine=None, **kw):
            return _FakeResult(next(arrs))

        report = explore(run, [{"x": 1}, {"x": 2}])
        assert not report.byte_identical
        assert not report.ok
        assert any("diverge" in f for f in report.failures())

    def test_racy_counters_read_from_snapshot(self):
        # BaselineResult.metrics is a full registry snapshot
        counters = {"counters": {"check.hazards.racy": 2,
                                 "check.hazards.fifo_luck": 1}}

        def run(machine=None, **kw):
            return _FakeResult(np.zeros(4), counters=counters)

        report = explore(run, [{"x": 1}])
        assert report.runs[0].hazards == {"warning": 1, "error": 2}
        assert report.runs[0].racy == 2
        assert not report.ok
        assert any("racy" in f for f in report.failures())

    def test_flat_counter_mapping_accepted(self):
        def run(machine=None, **kw):
            return _FakeResult(np.zeros(4), counters={"check.hazards.racy": 1})

        assert explore(run, [{}]).racy == 1

    def test_perturbation_requires_machine(self):
        with pytest.raises(ValueError, match="explicit machine"):
            explore(lambda machine=None, **kw: _FakeResult(np.zeros(2)),
                    [{}], machine=None, timing_seeds=(0, 1))

    def test_report_properties(self):
        report = ExploreReport([
            ScheduleRun("a", "d1", {"warning": 0, "error": 0}, 1.0),
            ScheduleRun("b", "d1", {"warning": 3, "error": 0}, 1.0),
        ])
        assert report.digests == {"d1"}
        assert report.ok  # warnings alone don't fail conformance
        assert report.failures() == []


class TestConformanceMatrix:
    """The tentpole acceptance sweep, at test-sized shapes.

    Every eviction policy × prefetch depth × visit order × timing seed
    must produce the byte-identical result with zero racy hazards.
    """

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            conformance_matrix("lbm")

    def test_compute_sweep_conforms(self, machine):
        report = conformance_matrix(
            "compute", machine=machine,
            evictions=("lru", "lookahead", "modulo"),
            prefetch_depths=(0, 2),
            order_seeds=(None, 1),
            timing_seeds=(0, 1),
            shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
            device_memory_limit=70_000,
        )
        assert len(report.runs) == 24
        assert report.ok, report.failures()
        assert len(report.digests) == 1

    def test_wave_sweep_conforms(self, machine):
        report = conformance_matrix(
            "wave", machine=machine,
            evictions=("lru",), prefetch_depths=(0,),
            order_seeds=(None, 1), timing_seeds=(0, 1),
            shape=(48, 48), steps=2, n_regions=8,
        )
        assert len(report.runs) == 4
        assert report.ok, report.failures()

    def test_heat_sweep_with_faults_conforms(self, machine):
        # transfer faults + retries fold re-issued uploads into the
        # explored schedules; recovery must stay byte-identical too
        report = conformance_matrix(
            "heat", machine=machine,
            evictions=("lru",),
            prefetch_depths=(0, 2),
            order_seeds=(None, 1),
            timing_seeds=(0, 1),
            faults_spec="h2d:p=0.1; seed=9",
            shape=(48, 24, 24), steps=2, n_regions=8, n_slots=3,
            device_memory_limit=310_000,
        )
        assert len(report.runs) == 8
        assert report.ok, report.failures()


class TestReplaySurrogate:
    """The sweep fast path: perturbed-seed legs replayed, not re-simulated."""

    KW = dict(
        evictions=("lru", "lookahead"), prefetch_depths=(0,),
        order_seeds=(None,),
        shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
        device_memory_limit=70_000,
    )

    def test_same_shape_as_full_sweep(self, machine):
        full = conformance_matrix(
            "compute", machine=machine, timing_seeds=(0, 1, 2),
            surrogate="full", **self.KW)
        replay = conformance_matrix(
            "compute", machine=machine, timing_seeds=(0, 1, 2),
            surrogate="replay", **self.KW)
        assert [r.label for r in full.runs] == [r.label for r in replay.runs]
        assert full.ok and replay.ok
        assert full.digests == replay.digests

    def test_replayed_legs_are_marked_and_predictive(self, machine):
        full = conformance_matrix(
            "compute", machine=machine, timing_seeds=(0, 3),
            surrogate="full", **self.KW)
        replay = conformance_matrix(
            "compute", machine=machine, timing_seeds=(0, 3),
            surrogate="replay", **self.KW)
        by_label = {r.label: r for r in full.runs}
        surrogate_legs = [r for r in replay.runs if r.label.startswith("t3/")]
        assert surrogate_legs
        for leg in surrogate_legs:
            assert leg.meta == {"surrogate": "replay"}
            # elapsed is a DAG-replay prediction; the simulated leg's
            # device-op span must agree closely (elapsed excludes init,
            # so compare loosely: same order of magnitude and within 20%)
            simulated = by_label[leg.label]
            assert leg.elapsed == pytest.approx(simulated.elapsed, rel=0.2)

    def test_base_legs_identical_between_surrogates(self, machine):
        full = conformance_matrix(
            "compute", machine=machine, timing_seeds=(0, 1),
            surrogate="full", **self.KW)
        replay = conformance_matrix(
            "compute", machine=machine, timing_seeds=(0, 1),
            surrogate="replay", **self.KW)
        for a, b in zip(full.runs, replay.runs):
            if a.label.startswith("t0/"):
                assert a.digest == b.digest
                assert a.elapsed == b.elapsed

    def test_invalid_surrogate_rejected(self, machine):
        with pytest.raises(ValueError, match="surrogate"):
            conformance_matrix("compute", machine=machine,
                               surrogate="cached", **self.KW)


class TestTimingOnlyLegs:
    KW = dict(
        evictions=("lru",), prefetch_depths=(0,),
        order_seeds=(None, 1), timing_seeds=(0,),
        shape=(64, 16, 16), steps=2, n_regions=8, n_slots=3,
        device_memory_limit=70_000,
    )

    def test_marked_legs_run_without_digest(self, machine):
        report = conformance_matrix(
            "compute", machine=machine,
            timing_only=lambda v: v.get("order") == "shuffled", **self.KW)
        shuffled = [r for r in report.runs if "/o1" in r.label]
        sequential = [r for r in report.runs if "/oNone" in r.label]
        assert all(r.digest == "" for r in shuffled)
        assert all(r.digest for r in sequential)
        assert all(r.meta["mode"] == "timing" for r in shuffled)
        # digestless legs do not poison byte-identity
        assert report.byte_identical
        assert len(report.digests) == 1
        assert report.ok, report.failures()

    def test_hazards_still_counted_on_timing_legs(self, machine):
        report = conformance_matrix(
            "compute", machine=machine, timing_only=lambda v: True, **self.KW)
        assert all(r.digest == "" for r in report.runs)
        assert report.digests == set()
        assert report.byte_identical       # vacuously: nothing to compare
        assert all("error" in r.hazards for r in report.runs)
