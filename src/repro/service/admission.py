"""Admission control: gate jobs against ``cudaMemGetInfo``-style budgets.

A job's device footprint is what its slot pools will allocate: for every
planned field, ``n_slots`` buffers of the *largest* region's ghosted
extent (mirroring :class:`~repro.core.tile_acc.TileAcc`'s sizing rule).
The controller compares that against the device budget — current free
memory minus any injected memory pressure
(:meth:`~repro.faults.plan.FaultPlan.memory_pressure`) minus a
configurable headroom — and answers one of:

* ``admit`` — the requested plan fits now;
* ``degrade`` — the requested plan does not fit but a minimum-slot
  replan does, and the policy allows shrinking (``policy="degrade"``);
* ``defer`` — nothing fits now but the job fits an *empty* device, so
  it queues instead of OOMing;
* ``reject`` — even the degraded footprint exceeds total device
  capacity; the service raises :class:`~repro.errors.ServiceError`.

Jobs never reach ``cudaMalloc`` unless the controller said yes, which is
what turns would-be OOM crashes into queueing delay.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..cuda.runtime import CudaRuntime
    from ..plan.planner import PlanReport

#: Admission decisions (returned by :meth:`AdmissionController.decide`).
ADMIT = "admit"
DEGRADE = "degrade"
DEFER = "defer"
REJECT = "reject"

#: Admission policies.
POLICIES = ("queue", "degrade")


def plan_slot_bytes(plan: "PlanReport", fname: str) -> int:
    """Bytes of one device slot of field ``fname`` under ``plan``.

    The slot covers the largest region: the domain is split along axis 0
    into ``n_regions`` chunks (first chunks take the ceiling), each
    grown by the field's ghost width on every axis.
    """
    fplan = plan.fields[fname]
    shape = tuple(plan.domain)
    halo = fplan.halo
    if isinstance(halo, int):
        halo = (halo,) * len(shape)
    chunk = math.ceil(shape[0] / plan.n_regions)
    local = (chunk + 2 * halo[0],) + tuple(
        d + 2 * h for d, h in zip(shape[1:], halo[1:])
    )
    itemsize = np.dtype(plan.dtype).itemsize
    n = itemsize
    for d in local:
        n *= d
    return n


def plan_footprint_bytes(plan: "PlanReport") -> int:
    """Total device bytes the plan's slot pools will allocate."""
    n_slots = plan.n_slots if plan.n_slots is not None else plan.n_regions
    return sum(n_slots * plan_slot_bytes(plan, f) for f in plan.fields)


def plan_total_slots(plan: "PlanReport") -> int:
    """Total device slots across the plan's fields (occupancy unit)."""
    n_slots = plan.n_slots if plan.n_slots is not None else plan.n_regions
    return n_slots * len(plan.fields)


class AdmissionController:
    """Decides admit/degrade/defer/reject against the live device budget."""

    def __init__(
        self,
        runtime: "CudaRuntime",
        *,
        headroom_bytes: int = 0,
        policy: str = "degrade",
    ) -> None:
        if policy not in POLICIES:
            from ..errors import ServiceError
            raise ServiceError(
                f"unknown admission policy {policy!r}; have {POLICIES}",
                reason="bad-policy",
            )
        self.runtime = runtime
        self.headroom_bytes = int(headroom_bytes)
        self.policy = policy
        self._backpressure_hook = None

    def set_backpressure_hook(self, hook) -> None:
        """Install ``hook(tenant) -> bool`` consulted before scheduling.

        The SLO tracker uses this to defer best-effort tenants while a
        protected tenant's error budget is burning
        (:meth:`~repro.obs.slo.SloTracker.burning`).  The hook gates the
        *scheduling pass*, not :meth:`decide` — memory admission stays a
        pure function of footprints and budgets, so backpressure can
        never turn a feasible job into a reject.
        """
        self._backpressure_hook = hook

    def backpressured(self, tenant: str) -> bool:
        """True when the installed hook says ``tenant`` must wait."""
        return (self._backpressure_hook is not None
                and bool(self._backpressure_hook(tenant)))

    def budget(self, reserved: int = 0) -> int:
        """Admittable bytes right now.

        ``min(free, capacity - reserved) - pressure - headroom``: slot
        buffers allocate *lazily*, so live free memory overstates what is
        really available while admitted jobs are still warming up their
        pools — the caller passes the summed footprints it has already
        promised (``reserved``) and the budget honors whichever bound is
        tighter.
        """
        free, total = self.runtime.mem_get_info()
        pressure = 0
        if self.runtime.faults is not None:
            pressure = self.runtime.faults.memory_pressure(self.runtime.clock.now)
        return min(free, total - reserved) - pressure - self.headroom_bytes

    def capacity(self) -> int:
        """Bytes an *empty* device could offer (defer-vs-reject line)."""
        _free, total = self.runtime.mem_get_info()
        return total - self.headroom_bytes

    def pressure_relief_time(self) -> float | None:
        """When the currently active injected memory pressure lifts.

        The earliest finite ``until_t`` among active pressure rules —
        the time the service may ``advance_to`` when nothing is running
        and a deferred job is only blocked by injection.  ``None`` when
        no finite-window pressure is active.
        """
        plan = self.runtime.faults
        if plan is None:
            return None
        now = self.runtime.clock.now
        ends = [
            r.until_t for r in plan.rules
            if r.kind == "pressure" and r.in_window(now) and math.isfinite(r.until_t)
        ]
        return min(ends) if ends else None

    def decide(self, footprint: int, degraded_footprint: int | None = None,
               *, reserved: int = 0) -> str:
        """Classify a job given its (and optionally its degraded) footprint."""
        budget = self.budget(reserved)
        if footprint <= budget:
            return ADMIT
        floor = degraded_footprint if degraded_footprint is not None else footprint
        if self.policy == "degrade" and degraded_footprint is not None \
                and degraded_footprint <= budget:
            return DEGRADE
        if floor <= self.capacity():
            return DEFER
        return REJECT
